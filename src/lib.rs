//! Umbrella crate: re-exports for examples and integration tests.
pub use hostcc_sim as sim;
