//! Incast with a congested receiver host: fabric congestion (many flows
//! fan into one switch port) combined with host congestion — the paper's
//! Fig 13(b) as a standalone scenario.
//!
//! Demonstrates that hostCC composes with DCTCP's fabric-side response:
//! switch ECN handles the incast, receiver-side ECN + MBA handle the host.
//!
//! ```sh
//! cargo run --release --example incast_hostcc
//! ```

use hostcc_experiments::{Scenario, Simulation};
use hostcc_sim::Nanos;

fn main() {
    println!("incast: 2 senders fan into one receiver through one switch port\n");
    println!(
        "{:>7} {:>6} {:>12} {:>10} {:>13} {:>10}",
        "flows", "mapp", "cc", "tput", "switch drops", "nic drops"
    );
    for mapp in [0.0, 3.0] {
        for flows in [4u32, 8, 10] {
            for hostcc in [false, true] {
                let mut s = Scenario::incast(flows, mapp);
                if hostcc {
                    s = s.enable_hostcc();
                }
                s.warmup = Nanos::from_millis(3);
                s.measure = Nanos::from_millis(10);
                let r = Simulation::new(s).run();
                println!(
                    "{:>7} {:>5}x {:>12} {:>7.1} G {:>13} {:>10}",
                    flows,
                    mapp,
                    if hostcc { "dctcp+hostcc" } else { "dctcp" },
                    r.goodput_gbps(),
                    r.switch_drops,
                    r.nic_drops,
                );
            }
        }
        println!();
    }
    println!("expected shape (paper Fig 13): without MApp the two CCs coincide;");
    println!("with MApp, hostCC recovers throughput and eliminates NIC drops.");
}
