//! Beyond the paper: the §6 "future work" extensions implemented here —
//! sender-side host congestion + response, the NIC-buffer alternative
//! congestion signal, and a delay-based (Swift-style) protocol absorbing
//! host congestion through RTT.
//!
//! ```sh
//! cargo run --release --example beyond_the_paper
//! ```

use hostcc_core::SignalSource;
use hostcc_experiments::{CcKind, Scenario, Simulation};
use hostcc_sim::Nanos;

fn quick(mut s: Scenario) -> hostcc_experiments::RunResult {
    s.warmup = Nanos::from_millis(3);
    s.measure = Nanos::from_millis(10);
    Simulation::new(s).run()
}

fn main() {
    println!("1) Sender-side host congestion (TX DMA starved by sender MApp)\n");
    let tx_base = quick(Scenario::paper_baseline().with_sender_congestion(3.0, false));
    let tx_hcc = quick(Scenario::paper_baseline().with_sender_congestion(3.0, true));
    println!(
        "   sender 3x, no response : {:>6.1} Gbps",
        tx_base.goodput_gbps()
    );
    println!(
        "   sender 3x, +response   : {:>6.1} Gbps",
        tx_hcc.goodput_gbps()
    );
    println!("   (paper Fig 5: the sender arm keeps network traffic from being starved)\n");

    println!("2) NIC-buffer occupancy as the congestion signal (paper §6)\n");
    let iio = quick(Scenario::with_congestion(3.0).enable_hostcc());
    let mut s = Scenario::with_congestion(3.0).enable_hostcc();
    if let Some(hc) = &mut s.hostcc {
        hc.signal_source = SignalSource::NicBuffer;
    }
    let nic = quick(s);
    println!(
        "   IIO signal : {:>6.1} Gbps, peak NIC queue {:>7} B",
        iio.goodput_gbps(),
        iio.nic_peak_bytes
    );
    println!(
        "   NIC signal : {:>6.1} Gbps, peak NIC queue {:>7} B",
        nic.goodput_gbps(),
        nic.nic_peak_bytes
    );
    println!("   (the NIC signal asserts only after the domino effect reaches the NIC:");
    println!("    similar throughput, ~2x the standing queue = ~2x the P99 delay)\n");

    println!("3) Delay-based CC (Swift-style) under host congestion\n");
    let mut sw = Scenario::with_congestion(3.0);
    sw.cc = CcKind::Swift;
    let swift = quick(sw);
    let dctcp = quick(Scenario::with_congestion(3.0));
    println!(
        "   DCTCP : {:>6.1} Gbps, {:.3}% drops",
        dctcp.goodput_gbps(),
        dctcp.drop_rate_pct
    );
    println!(
        "   Swift : {:>6.1} Gbps, {:.3}% drops",
        swift.goodput_gbps(),
        swift.drop_rate_pct
    );
    println!("   (RTT-sensing backs off before the NIC overflows — §6's observation that");
    println!("    hostCC's delay signal would integrate naturally with delay-based CC)");
}
