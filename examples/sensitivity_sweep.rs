//! Operator's view: how do hostCC's two knobs (B_T, I_T) trade network
//! throughput against host-local (MApp) bandwidth? The paper's Fig 16/17
//! sweeps, printed as a policy table.
//!
//! ```sh
//! cargo run --release --example sensitivity_sweep
//! ```

use hostcc_experiments::{Scenario, Simulation};
use hostcc_sim::{Nanos, Rate};

fn main() {
    println!("B_T sweep at 3x congestion (I_T = 70):\n");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "B_T", "net tput", "drop %", "net mem", "MApp mem"
    );
    for bt in [20.0, 40.0, 60.0, 80.0, 95.0] {
        let mut s = Scenario::with_congestion(3.0).enable_hostcc();
        if let Some(hc) = &mut s.hostcc {
            hc.bt = Rate::gbps(bt);
        }
        s.warmup = Nanos::from_millis(3);
        s.measure = Nanos::from_millis(10);
        let r = Simulation::new(s).run();
        println!(
            "{:>6.0}G {:>8.1}G {:>10.4} {:>10.2} {:>10.2}",
            bt,
            r.goodput_gbps(),
            r.drop_rate_pct,
            r.net_mem_util,
            r.mapp_mem_util
        );
    }

    println!("\nI_T sweep at 3x congestion (B_T = 80 Gbps):\n");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "I_T", "net tput", "drop %", "mean I_S", "MApp mem"
    );
    for it in [70.0, 75.0, 80.0, 85.0, 90.0] {
        let mut s = Scenario::with_congestion(3.0).enable_hostcc();
        if let Some(hc) = &mut s.hostcc {
            hc.it = it;
        }
        s.warmup = Nanos::from_millis(3);
        s.measure = Nanos::from_millis(10);
        let r = Simulation::new(s).run();
        println!(
            "{:>8.0} {:>8.1}G {:>10.4} {:>10.1} {:>10.2}",
            it,
            r.goodput_gbps(),
            r.drop_rate_pct,
            r.mean_is,
            r.mapp_mem_util
        );
    }
    println!("\ntakeaway: B_T sets the network/host split; raising I_T delays the");
    println!("congestion reaction (more drops, more MApp bandwidth) — paper §5.3.");
}
