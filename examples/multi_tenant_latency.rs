//! Multi-tenant tail latency: a latency-sensitive RPC service sharing a
//! receiver with a bulk-transfer tenant and a memory-hungry tenant — the
//! paper's Fig 4/12 scenario as a downstream user would run it.
//!
//! Shows the two tail-latency cliffs of host congestion (NIC queueing at
//! P99, 200 ms RTOs at P99.9) and how hostCC removes both.
//!
//! ```sh
//! cargo run --release --example multi_tenant_latency
//! ```

use hostcc_experiments::{Scenario, Simulation};
use hostcc_sim::Nanos;
use hostcc_workloads::PAPER_RPC_SIZES;

fn run(name: &str, s: Scenario) {
    let mut s = s;
    s.warmup = Nanos::from_millis(3);
    s.measure = Nanos::from_millis(150); // enough closed-loop RPCs for P99.9
    let r = Simulation::new(s).run();
    println!(
        "\n{name}: bulk tenant {:.1} Gbps, drops {:.3}%, timeouts {}",
        r.goodput_gbps(),
        r.drop_rate_pct,
        r.timeouts
    );
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "size", "P50", "P99", "P99.9", "samples"
    );
    for size in PAPER_RPC_SIZES {
        if let Some([p50, _, p99, p999, _]) = r.rpc_whiskers(size) {
            let n = r.rpc.get(&size).map(|x| x.count).unwrap_or(0);
            println!(
                "{:>7}B {:>9.1}u {:>9.1}u {:>9.1}u {:>10}",
                size,
                p50.as_micros_f64(),
                p99.as_micros_f64(),
                p999.as_micros_f64(),
                n
            );
        }
    }
}

fn main() {
    println!("multi-tenant receiver: 4 bulk flows + RPC service + MApp antagonist");
    run(
        "A) quiet host (no MApp)",
        Scenario::paper_baseline().with_rpc(4),
    );
    run(
        "B) 3x memory antagonist",
        Scenario::with_congestion(3.0).with_rpc(4),
    );
    run(
        "C) 3x antagonist + hostCC",
        Scenario::with_congestion(3.0).with_rpc(4).enable_hostcc(),
    );
}
