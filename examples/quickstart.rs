//! Quickstart: reproduce the headline host-congestion phenomenon in ~20
//! lines — DCTCP at 100 Gbps against a memory-bandwidth antagonist, with
//! and without hostCC.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hostcc_experiments::{Scenario, Simulation};

fn main() {
    println!("hostCC quickstart: 4 DCTCP flows at 100 Gbps, 3x MApp congestion\n");

    // Vanilla DCTCP against a fully loaded memory subsystem.
    let baseline = Simulation::new(Scenario::with_congestion(3.0)).run();

    // The same scenario with the hostCC controller enabled
    // (I_T = 70, B_T = 80 Gbps — the paper's defaults).
    let with_hostcc = Simulation::new(Scenario::with_congestion(3.0).enable_hostcc()).run();

    // And the uncongested reference.
    let reference = Simulation::new(Scenario::paper_baseline()).run();

    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>10}",
        "config", "tput", "drops", "NIC drops", "mem(MApp)"
    );
    for (name, r) in [
        ("no congestion", &reference),
        ("dctcp @ 3x", &baseline),
        ("+hostCC @ 3x", &with_hostcc),
    ] {
        println!(
            "{:<16} {:>7.1} G {:>9.3}% {:>12} {:>9.2}",
            name,
            r.goodput_gbps(),
            r.drop_rate_pct,
            r.nic_drops,
            r.mapp_mem_util,
        );
    }

    println!(
        "\nhostCC restored {:.0}% of the lost throughput and cut drops {}x",
        100.0 * (with_hostcc.goodput_gbps() - baseline.goodput_gbps())
            / (reference.goodput_gbps() - baseline.goodput_gbps()),
        if with_hostcc.drop_rate_pct > 0.0 {
            format!("{:.0}", baseline.drop_rate_pct / with_hostcc.drop_rate_pct)
        } else {
            "∞".into()
        }
    );
}
