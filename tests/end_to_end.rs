//! Cross-crate integration tests: the full simulation stack reproduces the
//! paper's qualitative claims end to end.
//!
//! These run at reduced (but still meaningful) durations so the whole file
//! completes in seconds in release mode; the `repro` CLI regenerates the
//! full-budget numbers.

use hostcc_experiments::{CcKind, Scenario, Simulation};
use hostcc_sim::Nanos;

fn quick(mut s: Scenario) -> hostcc_experiments::RunResult {
    s.warmup = Nanos::from_millis(2);
    s.measure = Nanos::from_millis(5);
    Simulation::new(s).run()
}

#[test]
fn claim_uncongested_dctcp_saturates_100g() {
    let r = quick(Scenario::paper_baseline());
    assert!(r.goodput_gbps() > 92.0, "got {:.1}", r.goodput_gbps());
    assert_eq!(r.nic_drops, 0);
    assert_eq!(r.switch_drops, 0);
}

#[test]
fn claim_throughput_degrades_monotonically_with_congestion() {
    let mut last = f64::INFINITY;
    for degree in [0.0, 1.0, 2.0, 3.0] {
        let r = quick(Scenario::with_congestion(degree));
        assert!(
            r.goodput_gbps() < last + 2.0,
            "degree {degree}: {:.1} vs previous {:.1}",
            r.goodput_gbps(),
            last
        );
        last = r.goodput_gbps();
    }
    // And the end-to-end degradation is the paper's >35 % (ours ≈ 58 %).
    assert!(last < 65.0, "3x must lose >35% of line rate: {last:.1}");
}

#[test]
fn claim_host_congestion_drops_at_nic_not_switch() {
    let r = quick(Scenario::with_congestion(3.0));
    assert!(r.nic_drops > 0, "host congestion drops at the NIC");
    assert_eq!(r.switch_drops, 0, "no fabric congestion in this scenario");
}

#[test]
fn claim_hostcc_restores_target_bandwidth() {
    let base = quick(Scenario::with_congestion(3.0));
    let hcc = quick(Scenario::with_congestion(3.0).enable_hostcc());
    assert!(
        hcc.goodput_gbps() > base.goodput_gbps() + 20.0,
        "hostCC {:.1} vs baseline {:.1}",
        hcc.goodput_gbps(),
        base.goodput_gbps()
    );
    assert!(hcc.drop_rate_pct < base.drop_rate_pct / 5.0 + 1e-9);
}

#[test]
fn claim_hostcc_does_not_starve_mapp() {
    // Fig 10 right: MApp keeps a meaningful share under hostCC; and when
    // the network needs nothing, MApp gets everything back.
    let hcc = quick(Scenario::with_congestion(3.0).enable_hostcc());
    assert!(
        hcc.mapp_mem_util > 0.05,
        "MApp starved: {}",
        hcc.mapp_mem_util
    );
    // No network traffic at all: MApp unthrottled despite hostCC.
    let mut idle = Scenario::with_congestion(3.0).enable_hostcc();
    idle.flows_per_sender = vec![0];
    let idle = quick(idle);
    assert!(
        idle.mapp_mem_util > 0.6,
        "no net traffic ⇒ full MApp bandwidth, got {}",
        idle.mapp_mem_util
    );
}

#[test]
fn claim_hostcc_negligible_without_congestion() {
    let base = quick(Scenario::paper_baseline());
    let hcc = quick(Scenario::paper_baseline().enable_hostcc());
    let diff = (base.goodput_gbps() - hcc.goodput_gbps()).abs();
    assert!(diff < 2.0, "hostCC overhead at 0x: {diff:.2} Gbps");
    assert_eq!(hcc.host_marks, 0, "no false congestion signals at 0x");
}

#[test]
fn claim_ablation_needs_both_mechanisms() {
    // Fig 18: echo-only loses throughput; local-only drops packets.
    let mk = |local: bool, echo: bool| {
        let mut s = Scenario::with_congestion(3.0).enable_hostcc();
        if let Some(hc) = &mut s.hostcc {
            hc.local_response = local;
            hc.echo = echo;
        }
        quick(s)
    };
    let echo_only = mk(false, true);
    let local_only = mk(true, false);
    let both = mk(true, true);
    assert!(
        echo_only.goodput_gbps() < both.goodput_gbps() - 15.0,
        "echo-only {:.1} vs both {:.1}",
        echo_only.goodput_gbps(),
        both.goodput_gbps()
    );
    assert!(
        local_only.drop_rate_pct > both.drop_rate_pct * 5.0,
        "local-only drops {} vs both {}",
        local_only.drop_rate_pct,
        both.drop_rate_pct
    );
    assert!(local_only.goodput_gbps() > echo_only.goodput_gbps());
}

#[test]
fn claim_incast_hostcc_matches_dctcp_without_host_congestion() {
    let base = quick(Scenario::incast(8, 0.0));
    let hcc = quick(Scenario::incast(8, 0.0).enable_hostcc());
    assert!((base.goodput_gbps() - hcc.goodput_gbps()).abs() < 2.0);
}

#[test]
fn claim_incast_hostcc_wins_with_host_congestion() {
    let base = quick(Scenario::incast(8, 3.0));
    let hcc = quick(Scenario::incast(8, 3.0).enable_hostcc());
    assert!(hcc.goodput_gbps() > base.goodput_gbps() + 20.0);
    assert!(hcc.nic_drops < base.nic_drops / 2 + 1);
}

#[test]
fn claim_bt_sensitivity_tracks_target() {
    // Fig 16 / §5.3: for small B_T the rate settles between B_T and the
    // echo-gated equilibrium ("less than 40 Gbps"), with near-zero drops
    // because arrivals stay below the PCIe drain rate; larger B_T values
    // are tracked increasingly closely.
    let run_bt = |bt: f64| {
        let mut s = Scenario::with_congestion(3.0).enable_hostcc();
        if let Some(hc) = &mut s.hostcc {
            hc.bt = hostcc_sim::Rate::gbps(bt);
        }
        quick(s)
    };
    let small = run_bt(20.0);
    assert!(
        (15.0..42.0).contains(&small.goodput_gbps()),
        "B_T=20: got {:.1}",
        small.goodput_gbps()
    );
    assert!(small.drop_rate_pct < 0.02, "small B_T ⇒ near-zero drops");
    let mid = run_bt(50.0);
    let large = run_bt(80.0);
    assert!(mid.goodput_gbps() >= small.goodput_gbps() - 2.0);
    assert!(large.goodput_gbps() > mid.goodput_gbps() + 5.0);
}

#[test]
fn claim_it_sensitivity_more_drops_at_higher_threshold() {
    let run_it = |it: f64| {
        let mut s = Scenario::with_congestion(3.0).enable_hostcc();
        if let Some(hc) = &mut s.hostcc {
            hc.it = it;
        }
        quick(s)
    };
    let low = run_it(70.0);
    let high = run_it(90.0);
    // Higher threshold ⇒ later reaction ⇒ more MApp bandwidth (Fig 17).
    assert!(
        high.mapp_mem_util >= low.mapp_mem_util - 0.02,
        "I_T=90 MApp {} vs I_T=70 {}",
        high.mapp_mem_util,
        low.mapp_mem_util
    );
}

#[test]
fn claim_ddio_helps_at_low_congestion_not_high() {
    let off_1x = quick(Scenario::with_congestion(1.0));
    let on_1x = quick(Scenario::with_congestion(1.0).enable_ddio());
    assert!(
        on_1x.goodput_gbps() > off_1x.goodput_gbps() + 3.0,
        "DDIO shines at 1x: on={:.1} off={:.1}",
        on_1x.goodput_gbps(),
        off_1x.goodput_gbps()
    );
    let off_3x = quick(Scenario::with_congestion(3.0));
    let on_3x = quick(Scenario::with_congestion(3.0).enable_ddio());
    // "DDIO helps a little but observes similar performance degradation."
    assert!(
        (on_3x.goodput_gbps() - off_3x.goodput_gbps()).abs() < 12.0,
        "DDIO at 3x: on={:.1} off={:.1}",
        on_3x.goodput_gbps(),
        off_3x.goodput_gbps()
    );
}

#[test]
fn claim_signals_are_accurate_in_time_and_value() {
    let mut s = Scenario::with_congestion(3.0);
    s.record = true;
    let r = quick(s);
    // Congested: I_S saturates near the credit limit.
    assert!(r.mean_is > 80.0, "mean I_S = {}", r.mean_is);
    let is_raw = r.series("core.signals.is_raw").unwrap();
    assert!(is_raw.max().unwrap() <= 93.0 + 1e-9);
    // Uncongested: I_S near the 65-cacheline anchor.
    let mut s0 = Scenario::paper_baseline();
    s0.record = true;
    let r0 = quick(s0);
    assert!((55.0..75.0).contains(&r0.mean_is), "I_S = {}", r0.mean_is);
}

#[test]
fn claim_other_ccs_also_work_with_hostcc() {
    for cc in [CcKind::Reno, CcKind::Cubic, CcKind::Timely] {
        let mut base = Scenario::with_congestion(3.0);
        base.cc = cc;
        let mut hcc = Scenario::with_congestion(3.0).enable_hostcc();
        hcc.cc = cc;
        let b = quick(base);
        let h = quick(hcc);
        assert!(
            h.goodput_gbps() > b.goodput_gbps(),
            "{cc:?}: hostCC {:.1} vs base {:.1}",
            h.goodput_gbps(),
            b.goodput_gbps()
        );
    }
}

#[test]
fn determinism_across_runs() {
    let a = quick(Scenario::with_congestion(2.0).enable_hostcc());
    let b = quick(Scenario::with_congestion(2.0).enable_hostcc());
    assert_eq!(a.goodput.as_gbps(), b.goodput.as_gbps());
    assert_eq!(a.nic_drops, b.nic_drops);
    assert_eq!(a.host_marks, b.host_marks);
    assert_eq!(a.mba_writes, b.mba_writes);
}

#[test]
fn different_seeds_differ_slightly() {
    let mut s1 = Scenario::with_congestion(2.0);
    s1.seed = 1;
    let mut s2 = Scenario::with_congestion(2.0);
    s2.seed = 2;
    let a = quick(s1);
    let b = quick(s2);
    // Same physics, different jitter: results close but not identical.
    assert!((a.goodput_gbps() - b.goodput_gbps()).abs() < 10.0);
}

#[test]
fn abrupt_mapp_onset_is_survived() {
    // §3.3: "suppose severe host congestion is introduced abruptly" — the
    // system must converge rather than collapse.
    let mut s = Scenario::with_congestion(3.0).enable_hostcc();
    s.mapp_start = Nanos::from_millis(4); // mid-measurement onset
    s.warmup = Nanos::from_millis(2);
    s.measure = Nanos::from_millis(14);
    let r = Simulation::new(s).run();
    assert!(r.goodput_gbps() > 60.0, "got {:.1}", r.goodput_gbps());
    // The onset itself drops a burst (§3.3: "for a few RTTs, the arrival
    // rate … will still be higher than B_T"); amortized over the window
    // the rate must converge back to near-zero drops.
    assert!(r.drop_rate_pct < 1.5, "got {}", r.drop_rate_pct);
}

#[test]
fn fault_injection_recovers() {
    // smoltcp-style robustness: 0.2% random fabric loss; DCTCP + SACK must
    // keep the pipe mostly full.
    let mut s = Scenario::paper_baseline();
    s.fault = hostcc_fabric::FaultConfig {
        drop_chance: 0.002,
        corrupt_chance: 0.001,
    };
    let r = quick(s);
    assert!(r.goodput_gbps() > 60.0, "got {:.1}", r.goodput_gbps());
    assert!(r.retransmits > 0);
}

#[test]
fn extension_sender_side_congestion_and_response() {
    // Paper Fig 5's sender-side arm: sender-local MApp starves TX DMA; the
    // sender-side host-local response ensures "network traffic is not
    // starved, even at sub-RTT granularity".
    let base = quick(Scenario::paper_baseline().with_sender_congestion(3.0, false));
    assert!(
        base.goodput_gbps() < 80.0,
        "sender congestion must throttle TX: got {:.1}",
        base.goodput_gbps()
    );
    let defended = quick(Scenario::paper_baseline().with_sender_congestion(3.0, true));
    assert!(
        defended.goodput_gbps() > base.goodput_gbps() + 10.0,
        "sender-side response restores TX: {:.1} vs {:.1}",
        defended.goodput_gbps(),
        base.goodput_gbps()
    );
}

#[test]
fn extension_nic_buffer_signal_reacts_later_than_iio() {
    // Paper §6 asks whether NIC buffer occupancy could replace the IIO
    // signal. Structurally it cannot react as early: the NIC only queues
    // *after* the IIO has filled and PCIe credits have run out, so the
    // NIC-signal variant lets more queueing build before responding.
    use hostcc_core::SignalSource;
    let iio = quick(Scenario::with_congestion(3.0).enable_hostcc());
    let mut s = Scenario::with_congestion(3.0).enable_hostcc();
    if let Some(hc) = &mut s.hostcc {
        hc.signal_source = SignalSource::NicBuffer;
        hc.nic_it_bytes = 64.0 * 1024.0;
    }
    let nic = quick(s);
    // Both still beat vanilla DCTCP…
    assert!(
        nic.goodput_gbps() > 55.0,
        "nic-signal tput {:.1}",
        nic.goodput_gbps()
    );
    // …but the NIC signal sustains much higher standing NIC queues.
    assert!(
        nic.nic_peak_bytes > iio.nic_peak_bytes,
        "nic-signal peak queue {} vs iio-signal {}",
        nic.nic_peak_bytes,
        iio.nic_peak_bytes
    );
}

#[test]
fn extension_swift_delay_cc_sees_host_congestion_in_rtt() {
    // Paper §6: delay-based protocols can absorb host congestion signals
    // naturally — NIC queueing inflates RTT, which Swift reacts to without
    // any marking, trading throughput for far fewer drops than DCTCP.
    let mut s = Scenario::with_congestion(3.0);
    s.cc = CcKind::Swift;
    let swift = quick(s);
    let dctcp = quick(Scenario::with_congestion(3.0));
    assert!(
        swift.drop_rate_pct < dctcp.drop_rate_pct,
        "swift {} vs dctcp {}",
        swift.drop_rate_pct,
        dctcp.drop_rate_pct
    );
    assert!(
        swift.goodput_gbps() > 20.0,
        "swift collapsed: {:.1}",
        swift.goodput_gbps()
    );
}

#[test]
fn extension_iommu_congestion_is_invisible_to_iio_signal() {
    // §6: "host congestion may occur due to bottlenecks at any of the
    // resources along the host network; one particularly interesting case
    // is PCIe underutilization due to … IOMMU". The IOTLB stall throttles
    // DMA *before* the IIO, so the IIO stays empty while the NIC drops —
    // and the paper concludes "we need additional congestion signals to
    // capture IOMMU-induced host congestion". Demonstrate exactly that.
    use hostcc_core::SignalSource;

    // 300-page working set over a 128-entry IOTLB ≈ 57 % miss ⇒ PCIe
    // effective rate well below line rate. No MApp at all.
    let plain = quick(Scenario::paper_baseline().with_iommu(300));
    assert!(
        plain.goodput_gbps() < 60.0,
        "IOMMU must throttle: got {:.1}",
        plain.goodput_gbps()
    );
    assert!(plain.nic_drops > 0, "NIC must overflow");
    assert!(
        plain.mean_is < 40.0,
        "the IIO stays quiet during IOMMU congestion: I_S = {:.1}",
        plain.mean_is
    );

    // hostCC with the paper's IIO signal: blind — drops persist.
    let iio_hcc = quick(Scenario::paper_baseline().with_iommu(300).enable_hostcc());
    assert!(
        iio_hcc.nic_drops > 0,
        "the IIO signal cannot see IOMMU congestion"
    );

    // hostCC with the NIC-buffer signal: detects it; echo tames the
    // senders and the drops vanish.
    let mut s = Scenario::paper_baseline().with_iommu(300).enable_hostcc();
    if let Some(hc) = &mut s.hostcc {
        hc.signal_source = SignalSource::NicBuffer;
    }
    let nic_hcc = quick(s);
    assert!(
        nic_hcc.nic_drops < plain.nic_drops / 5 + 1,
        "NIC-buffer signal rescues IOMMU congestion: {} vs {} drops",
        nic_hcc.nic_drops,
        plain.nic_drops
    );
    assert!(nic_hcc.host_marks > 0);
}

#[test]
fn extension_dynamic_policy_returns_bandwidth_when_demand_ends() {
    // §3.2: "we envision hostCC to embody various host resource allocation
    // policies". With the paper's fixed B_T, a network tenant that exits
    // mid-run can leave the host throttled in regime 4 (B_S < B_T and
    // I_S < I_T holds the level — the conservation decision). A demand-
    // following policy lowers B_T as demand vanishes, releasing MApp.
    use hostcc_core::PriorityShareTarget;
    use hostcc_sim::Rate;

    let scenario = || {
        let mut s = Scenario::with_congestion(3.0).enable_hostcc();
        s.warmup = Nanos::from_millis(2);
        s.measure = Nanos::from_millis(10);
        s.net_stop = Some(Nanos::from_millis(4)); // flows exit mid-measure
        s
    };
    let fixed = Simulation::new(scenario()).run();

    let mut sim = Simulation::new(scenario());
    sim.set_target_policy(Box::new(PriorityShareTarget::new(
        Rate::gbps(5.0),
        Rate::gbps(90.0),
        0.9,
    )));
    let dynamic = sim.run();

    // Both see the same network demand; the dynamic policy hands MApp
    // meaningfully more bandwidth after the tenant exits.
    assert!(
        dynamic.mapp_mem_util > fixed.mapp_mem_util + 0.05,
        "dynamic policy MApp {} vs fixed {}",
        dynamic.mapp_mem_util,
        fixed.mapp_mem_util
    );
}
