//! Cross-crate acceptance tests for the telemetry pipeline: per-cell
//! telemetry summaries must be bit-identical at any worker count, and
//! every sweep preset must run clean under `--strict-invariants` — the
//! watchdog's conservation identities (NIC packets, PCIe credits, IIO
//! bytes, MBA level range) hold across the whole scenario space.

use hostcc_experiments::grid::GridSpec;
use hostcc_experiments::sweep::{run_sweep, SweepOptions};
use hostcc_sim::Nanos;

fn quick_figure_grid() -> GridSpec {
    let mut spec = GridSpec::preset("figure-grid").expect("preset exists");
    spec.base.warmup = Nanos::from_micros(500);
    spec.base.measure = Nanos::from_millis(2);
    spec
}

fn telemetry_opts(workers: usize) -> SweepOptions {
    SweepOptions {
        workers,
        telemetry: true,
        strict_invariants: true,
        ..SweepOptions::default()
    }
}

#[test]
fn telemetry_fingerprints_are_bit_identical_across_worker_counts() {
    let spec = quick_figure_grid();
    let serial = run_sweep(&spec, &telemetry_opts(1)).expect("strict run is clean");
    let parallel = run_sweep(&spec, &telemetry_opts(4)).expect("strict run is clean");

    assert_eq!(serial.cells.len(), 16, "the acceptance grid is 2x2x4");
    assert_eq!(serial.fingerprint, parallel.fingerprint);
    for (a, b) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(a.index, b.index);
        let (sa, sb) = (
            a.telemetry.as_ref().expect("telemetry attached"),
            b.telemetry.as_ref().expect("telemetry attached"),
        );
        assert_eq!(
            sa.fingerprint(),
            sb.fingerprint(),
            "cell '{}' telemetry diverges at 4 workers",
            a.key
        );
        assert_eq!(sa.total_violations(), 0, "cell '{}'", a.key);
        assert!(sa.samples > 0, "cell '{}' sampled nothing", a.key);
    }

    let merged = serial.telemetry.as_ref().expect("manifest summary");
    assert_eq!(
        merged.samples,
        serial
            .cells
            .iter()
            .map(|r| r.telemetry.as_ref().unwrap().samples)
            .sum::<u64>()
    );
    assert_eq!(
        merged.fingerprint(),
        parallel.telemetry.as_ref().unwrap().fingerprint()
    );
}

#[test]
fn every_sweep_preset_is_clean_under_strict_invariants() {
    for (_, name, _) in GridSpec::presets() {
        let mut spec = GridSpec::preset(name).expect("listed preset exists");
        spec.base.warmup = Nanos::from_micros(200);
        spec.base.measure = Nanos::from_micros(600);
        let manifest = run_sweep(&spec, &telemetry_opts(0))
            .unwrap_or_else(|e| panic!("preset '{name}' violates invariants: {e}"));
        let summary = manifest.telemetry.as_ref().expect("telemetry merged");
        assert_eq!(summary.total_violations(), 0, "preset '{name}'");
        assert!(summary.checks > 0, "preset '{name}' never checked");
    }
}
