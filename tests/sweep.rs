//! Cross-crate acceptance tests for the parallel sweep engine: a ≥16-cell
//! grid must produce bit-identical per-cell results at any worker count,
//! the exports must be well-formed, and the per-cell seed-derivation
//! scheme must never drift (pinned values — changing the scheme silently
//! re-seeds every published figure).

use hostcc_experiments::grid::{derive_cell_seed, GridSpec};
use hostcc_experiments::sweep::{run_cells, run_sweep, SweepOptions};
use hostcc_sim::Nanos;

fn quick_figure_grid() -> GridSpec {
    let mut spec = GridSpec::preset("figure-grid").expect("preset exists");
    spec.base.warmup = Nanos::from_micros(500);
    spec.base.measure = Nanos::from_millis(2);
    spec
}

fn opts(workers: usize) -> SweepOptions {
    SweepOptions {
        workers,
        ..SweepOptions::default()
    }
}

#[test]
fn sixteen_cell_grid_is_bit_identical_across_worker_counts() {
    let spec = quick_figure_grid();
    let cells = spec.expand().unwrap();
    assert_eq!(cells.len(), 16, "the acceptance grid is 2x2x4");

    let serial = run_cells(&cells, &opts(1));
    for workers in [2, 4] {
        let parallel = run_cells(&cells, &opts(workers));
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.key, b.key);
            assert_eq!(a.seed, b.seed);
            assert_eq!(
                a.metrics, b.metrics,
                "cell '{}' at {workers} workers",
                a.key
            );
            assert_eq!(a.trace, b.trace, "cell '{}' at {workers} workers", a.key);
            assert_eq!(a.events, b.events);
            assert_eq!(a.sim_ns, b.sim_ns);
        }
    }
}

#[test]
fn manifest_exports_are_deterministic_and_well_formed() {
    let spec = quick_figure_grid();
    let serial = run_sweep(&spec, &opts(1)).unwrap();
    let parallel = run_sweep(&spec, &opts(4)).unwrap();

    // The CSV carries only deterministic columns: byte-identical.
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.fingerprint, parallel.fingerprint);

    let csv = parallel.to_csv();
    assert_eq!(csv.lines().count(), 17, "header + 16 cells");
    let header = csv.lines().next().unwrap();
    assert!(header.starts_with("index,seed,ddio,hostcc,degree,goodput_gbps"));
    let cols = header.split(',').count();
    for line in csv.lines().skip(1) {
        assert_eq!(line.split(',').count(), cols, "ragged CSV row: {line}");
    }

    // Structural JSON checks (full parse happens in the CI smoke job).
    let json = parallel.to_json();
    assert!(json.starts_with("{\n"));
    assert!(json.ends_with("}\n"));
    assert!(json.contains("\"name\": \"figure-grid\""));
    assert!(json.contains("\"cell_count\": 16"));
    assert!(json.contains("\"speedup\": "));
    assert!(json.contains("\"trace_totals\": {"));
    assert_eq!(json.matches("\"index\": ").count(), 16);

    // hostCC-on cells actually exercised the controller.
    assert!(parallel
        .cells
        .iter()
        .filter(|c| c.get("hostcc") == Some("on") && c.get("degree") != Some("0"))
        .all(|c| c.metrics.mean_level > 0.0));
}

#[test]
fn cell_seed_derivation_is_pinned() {
    // These constants are load-bearing: changing the derivation re-seeds
    // every grid cell and silently shifts all published figure numbers.
    assert_eq!(
        derive_cell_seed(1, "ddio=off hostcc=off degree=0"),
        0xd9db_7a29_000d_441a
    );
    assert_eq!(
        derive_cell_seed(1, "ddio=on hostcc=on degree=3"),
        0x49b9_dcec_a87e_ecac
    );
    assert_eq!(derive_cell_seed(7, "mtu=9000"), 0x7305_df96_0613_bcf0);
    // The empty key is the identity: a one-cell grid runs the base seed.
    assert_eq!(derive_cell_seed(1, ""), 1);
    assert_eq!(derive_cell_seed(42, ""), 42);
}

#[test]
fn single_cell_grid_matches_direct_run() {
    use hostcc_experiments::{Scenario, Simulation};

    let mut base = Scenario::with_congestion(3.0).enable_hostcc();
    base.warmup = Nanos::from_micros(500);
    base.measure = Nanos::from_millis(2);

    let direct = Simulation::new(base.clone()).run();
    let spec = GridSpec::new("one", base);
    let runs = run_cells(&spec.expand().unwrap(), &opts(1));
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].key, "");
    assert_eq!(runs[0].metrics.goodput_gbps, direct.goodput.as_gbps());
    assert_eq!(runs[0].metrics.drop_rate_pct, direct.drop_rate_pct);
    assert_eq!(runs[0].metrics.retransmits, direct.retransmits);
    assert_eq!(runs[0].metrics.mean_level, direct.mean_level);
}
