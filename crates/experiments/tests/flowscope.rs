//! Flowscope acceptance tests: latency conservation across workloads, and
//! proof that attaching the recorder never perturbs a run.
//!
//! These pin the two load-bearing guarantees of the flow ledger:
//!
//! 1. **Conservation**: per-packet stage residencies are a telescoping sum
//!    in integer nanoseconds, so the per-stage totals must equal the
//!    end-to-end latency total *exactly* (±0 ns) — on dense congestion,
//!    incast, and a chaos blackout alike.
//! 2. **Non-perturbation**: the recorder only reads model state, so a
//!    flows-on sweep is bit-identical to a flows-off sweep in every cell
//!    metric and telemetry fingerprint, at any worker count.

use hostcc_experiments::grid::GridSpec;
use hostcc_experiments::sweep::{run_sweep, SweepOptions};
use hostcc_experiments::{Scenario, Simulation};
use hostcc_flowscope::{FlowScope, FlowscopeHandle, FlowscopeResult};
use hostcc_sim::Nanos;

/// Run `s` under a short budget with the recorder attached.
fn run_scoped(mut s: Scenario) -> FlowscopeResult {
    s.warmup = Nanos::from_millis(2);
    s.measure = Nanos::from_millis(4);
    let mut sim = Simulation::new(s);
    sim.set_flowscope(FlowscopeHandle::new(FlowScope::new()));
    sim.run().flowscope.expect("recorder was attached")
}

#[test]
fn stage_residencies_sum_to_end_to_end_latency_exactly() {
    let mut flap = Scenario::with_congestion(2.0);
    flap.chaos = Some("flap".to_string());
    let workloads = [
        ("dense", Scenario::with_congestion(3.0).enable_hostcc()),
        ("incast", Scenario::incast(8, 3.0).enable_hostcc()),
        ("chaos:flap", flap),
    ];
    for (name, s) in workloads {
        let fs = run_scoped(s);
        assert!(fs.summary.completed > 0, "{name}: packets must complete");
        assert_eq!(
            fs.summary.stage_grand_total_ns(),
            fs.summary.e2e_total_ns,
            "{name}: stage sums must equal end-to-end latency to the nanosecond"
        );
        assert_eq!(
            fs.summary.conservation_failures, 0,
            "{name}: no per-packet failure may be hidden by aggregate luck"
        );
        assert_eq!(fs.orphan_stamps, 0, "{name}: every stamp found its packet");
        assert!(fs.conservation_holds(), "{name}");
    }
}

/// A 4-cell hostcc × degree grid under a short budget, telemetry on so the
/// fingerprints cover the watchdog series too.
fn grid() -> GridSpec {
    let mut base = Scenario::with_congestion(3.0);
    base.warmup = Nanos::from_millis(2);
    base.measure = Nanos::from_millis(3);
    let mut g = GridSpec::new("flowscope-perturb", base);
    g.hostcc = vec![false, true];
    g.degree = vec![1.0, 3.0];
    g
}

#[test]
fn recorder_is_invisible_to_metrics_and_telemetry_at_any_worker_count() {
    let opts = |workers, flows| SweepOptions {
        workers,
        flows,
        telemetry: true,
        ..SweepOptions::default()
    };
    let spec = grid();
    let off = [
        run_sweep(&spec, &opts(1, false)).unwrap(),
        run_sweep(&spec, &opts(4, false)).unwrap(),
    ];
    let on = [
        run_sweep(&spec, &opts(1, true)).unwrap(),
        run_sweep(&spec, &opts(4, true)).unwrap(),
    ];
    // Each mode is deterministic across worker counts...
    assert_eq!(off[0].fingerprint, off[1].fingerprint);
    assert_eq!(on[0].fingerprint, on[1].fingerprint);
    // ...and flows-on matches flows-off cell for cell: identical metrics
    // and telemetry fingerprints, with the ledger riding alongside.
    for (a, b) in off[0].cells.iter().zip(&on[0].cells) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.metrics, b.metrics, "cell {}", a.key);
        assert_eq!(
            a.telemetry.as_ref().map(|t| t.fingerprint()),
            b.telemetry.as_ref().map(|t| t.fingerprint()),
            "cell {}",
            a.key
        );
        assert!(a.flowscope.is_none() && b.flowscope.is_some());
        assert!(b.flowscope.as_ref().unwrap().conservation_holds());
    }
}
