//! End-to-end scenario configuration: one struct that pins every knob of
//! an experiment, with presets for the paper's setups.

use hostcc_core::HostCcConfig;
use hostcc_fabric::{FaultConfig, SwitchPortConfig};
use hostcc_host::HostConfig;
use hostcc_sim::{Nanos, Rate};
use hostcc_workloads::RpcConfig;

/// Which congestion-control protocol the flows run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcKind {
    /// Linux DCTCP (the paper's protocol).
    Dctcp,
    /// TCP NewReno.
    Reno,
    /// CUBIC.
    Cubic,
    /// Swift-style delay-based CC (paper §6 extension).
    Swift,
    /// TIMELY-style RTT-gradient CC (paper reference \[31\]).
    Timely,
}

impl CcKind {
    /// Every protocol, in the order used by grid axes and CLI listings.
    pub const ALL: [CcKind; 5] = [
        CcKind::Dctcp,
        CcKind::Reno,
        CcKind::Cubic,
        CcKind::Swift,
        CcKind::Timely,
    ];

    /// Stable lower-case name (grid keys, CLI, manifests).
    pub fn name(self) -> &'static str {
        match self {
            CcKind::Dctcp => "dctcp",
            CcKind::Reno => "reno",
            CcKind::Cubic => "cubic",
            CcKind::Swift => "swift",
            CcKind::Timely => "timely",
        }
    }

    /// Parse a protocol name as printed by [`CcKind::name`].
    pub fn parse(s: &str) -> Option<CcKind> {
        CcKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// A complete experiment scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// RNG seed: every run is exactly repeatable from this.
    pub seed: u64,
    /// MTU in bytes (paper default 4096, Fig 3/11 sweep {1500, 4000, 9000}).
    pub mtu: u64,
    /// Number of sender hosts (1; 2 for the Fig 13 incast).
    pub senders: usize,
    /// Greedy (NetApp-T) flows per sender.
    pub flows_per_sender: Vec<u32>,
    /// Attach a NetApp-L RPC client (flows on sender 0)?
    pub rpc: Option<RpcConfig>,
    /// Number of parallel RPC client connections (sample-rate knob; the
    /// paper's netperf uses 1 — more clients gather tail samples faster
    /// without materially changing load).
    pub rpc_clients: usize,
    /// MApp congestion degree at the receiver.
    pub mapp_degree: f64,
    /// Start MApp at this time instead of t = 0 (abrupt-onset studies).
    pub mapp_start: Nanos,
    /// Stop all greedy (NetApp-T) flows at this time (None = never):
    /// exercises how host resources are returned when network demand
    /// vanishes — where the target-bandwidth *policy* matters (§3.2).
    pub net_stop: Option<Nanos>,
    /// MApp congestion degree at sender 0 (sender-side host congestion:
    /// TX DMA reads starve; paper Fig 5's sender-side response exercises
    /// this). 0 disables the sender host model entirely.
    pub sender_mapp_degree: f64,
    /// Run a sender-side hostCC response (only meaningful with
    /// `sender_mapp_degree > 0`): keeps network TX from being starved by
    /// backpressuring the sender's host-local traffic.
    pub sender_hostcc: bool,
    /// Receiver host model.
    pub host: HostConfig,
    /// hostCC controller (None = vanilla network CC).
    pub hostcc: Option<HostCcConfig>,
    /// Congestion control protocol.
    pub cc: CcKind,
    /// Pin the receiver's MBA to a fixed response level for the whole run
    /// (the Fig 9 actuator-efficacy sweep). Only meaningful without hostCC,
    /// which would otherwise steer the level away — `validate` rejects the
    /// combination.
    pub forced_mba_level: Option<u8>,
    /// Switch egress port toward the receiver.
    pub switch: SwitchPortConfig,
    /// One-way per-link propagation (incl. per-hop stack overheads).
    pub link_prop: Nanos,
    /// Receive-side stack delay from DMA completion to transport.
    pub rx_stack_delay: Nanos,
    /// Fixed reverse-path delay for ACKs (uncongested direction).
    pub ack_delay: Nanos,
    /// Per-flow receive socket buffer.
    pub rcv_buf: u64,
    /// Warm-up before measurement starts.
    pub warmup: Nanos,
    /// Measurement window.
    pub measure: Nanos,
    /// Record signal/level time series during measurement (Fig 8/18/19).
    pub record: bool,
    /// Fabric fault injection (robustness tests; off for paper figures).
    pub fault: FaultConfig,
    /// Chaos timeline: a preset name or compact spec string resolved by
    /// `hostcc_chaos::ChaosTimeline::resolve` (None = no injected faults).
    /// Kept as the raw string so grid cell keys — and hence per-cell RNG
    /// seeds — stay purely textual.
    pub chaos: Option<String>,
}

impl Scenario {
    /// The paper's baseline setup (§2.2/§5.1): one sender, 4 greedy DCTCP
    /// flows at 4 KiB MTU into one receiver, no RPC client, MApp degree 0,
    /// DDIO off, no hostCC.
    pub fn paper_baseline() -> Self {
        Scenario {
            seed: 1,
            mtu: 4096,
            senders: 1,
            flows_per_sender: vec![4],
            rpc: None,
            rpc_clients: 1,
            mapp_degree: 0.0,
            mapp_start: Nanos::ZERO,
            net_stop: None,
            sender_mapp_degree: 0.0,
            sender_hostcc: false,
            host: HostConfig::paper_default(),
            hostcc: None,
            cc: CcKind::Dctcp,
            forced_mba_level: None,
            switch: SwitchPortConfig::paper_default(),
            link_prop: Nanos::from_micros(8),
            rx_stack_delay: Nanos::from_nanos(1500),
            ack_delay: Nanos::from_micros(17),
            rcv_buf: 1 << 20,
            warmup: Nanos::from_millis(3),
            measure: Nanos::from_millis(10),
            record: false,
            fault: FaultConfig::none(),
            chaos: None,
        }
    }

    /// Baseline at an MApp congestion degree.
    pub fn with_congestion(degree: f64) -> Self {
        Scenario {
            mapp_degree: degree,
            ..Self::paper_baseline()
        }
    }

    /// Enable hostCC with the paper's defaults (matched to the host's DDIO
    /// setting: `I_T` = 70 DDIO-off / 50 DDIO-on).
    pub fn enable_hostcc(mut self) -> Self {
        self.hostcc = Some(if self.host.ddio_enabled {
            HostCcConfig::paper_ddio()
        } else {
            HostCcConfig::paper_default()
        });
        self
    }

    /// Enable DDIO on the receiver host.
    pub fn enable_ddio(mut self) -> Self {
        self.host = HostConfig {
            ddio_enabled: true,
            ..self.host
        };
        // If hostCC was already configured, retune its threshold.
        if self.hostcc.is_some() {
            self.hostcc = Some(HostCcConfig::paper_ddio());
        }
        self
    }

    /// The Fig 13 incast setup: `total_flows` split over two senders.
    pub fn incast(total_flows: u32, mapp_degree: f64) -> Self {
        let spec = hostcc_workloads::IncastSpec {
            senders: 2,
            total_flows,
        };
        Scenario {
            senders: 2,
            flows_per_sender: (0..2).map(|i| spec.flows_for_sender(i)).collect(),
            mapp_degree,
            ..Self::paper_baseline()
        }
    }

    /// Enable the IOMMU with a DMA working set of `footprint_pages` I/O
    /// pages (§6: IOMMU-induced host congestion — invisible to the IIO
    /// occupancy signal because it throttles DMA *before* the IIO).
    pub fn with_iommu(mut self, footprint_pages: u64) -> Self {
        self.host.iommu = hostcc_host::IommuConfig::with_footprint(footprint_pages);
        self
    }

    /// Add sender-side host congestion (TX DMA contention at sender 0),
    /// optionally with the sender-side hostCC response.
    pub fn with_sender_congestion(mut self, degree: f64, hostcc: bool) -> Self {
        self.sender_mapp_degree = degree;
        self.sender_hostcc = hostcc;
        self
    }

    /// Attach a chaos timeline (a preset name or a compact spec string —
    /// see `hostcc_chaos::ChaosTimeline::resolve`).
    pub fn with_chaos(mut self, spec: &str) -> Self {
        self.chaos = Some(spec.to_string());
        self
    }

    /// Attach the NetApp-L RPC workload (Fig 4/12/15).
    pub fn with_rpc(mut self, clients: usize) -> Self {
        self.rpc = Some(RpcConfig::default());
        self.rpc_clients = clients;
        self
    }

    /// Total greedy flows.
    pub fn total_greedy_flows(&self) -> u32 {
        self.flows_per_sender.iter().sum()
    }

    /// Maximum segment size for this MTU.
    pub fn mss(&self) -> u64 {
        self.mtu - u64::from(hostcc_fabric::HEADER_BYTES)
    }

    /// Sanity-check the configuration.
    pub fn validate(&self) {
        assert_eq!(self.senders, self.flows_per_sender.len());
        assert!(self.mtu > u64::from(hostcc_fabric::HEADER_BYTES) + 64);
        assert!(self.measure > Nanos::ZERO);
        assert!(self.rpc_clients >= 1);
        assert!(
            self.forced_mba_level.is_none() || self.hostcc.is_none(),
            "a forced MBA level conflicts with an active hostCC controller"
        );
        if let Some(spec) = &self.chaos {
            if let Err(e) = hostcc_chaos::ChaosTimeline::resolve(spec) {
                panic!("invalid chaos spec: {e}");
            }
        }
        self.host.validate();
    }

    /// Approximate base RTT of the scenario (diagnostics).
    pub fn base_rtt(&self) -> Nanos {
        // data: ser ×2 + prop ×2 + host + stack; ack: fixed.
        let ser = Rate::gbps(100.0).time_for_bytes(self.mtu) * 2;
        ser + self.link_prop * 2 + Nanos::from_micros(1) + self.rx_stack_delay + self.ack_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        Scenario::paper_baseline().validate();
        Scenario::with_congestion(3.0).validate();
        Scenario::with_congestion(3.0).enable_hostcc().validate();
        Scenario::incast(10, 3.0).validate();
        Scenario::paper_baseline().with_rpc(4).validate();
        Scenario::paper_baseline()
            .enable_ddio()
            .enable_hostcc()
            .validate();
    }

    #[test]
    fn chaos_specs_validate() {
        Scenario::with_congestion(3.0).with_chaos("flap").validate();
        Scenario::with_congestion(3.0)
            .with_chaos("degrade@5ms:50%:1ms")
            .validate();
    }

    #[test]
    #[should_panic(expected = "invalid chaos spec")]
    fn bad_chaos_spec_rejected() {
        Scenario::with_congestion(3.0)
            .with_chaos("zap@2ms")
            .validate();
    }

    #[test]
    fn base_rtt_near_paper() {
        // The paper's RTT is ~44 µs (MBA write = 22 µs = RTT/2).
        let rtt = Scenario::paper_baseline().base_rtt();
        assert!(
            (Nanos::from_micros(30)..Nanos::from_micros(50)).contains(&rtt),
            "base RTT = {rtt}"
        );
    }

    #[test]
    fn hostcc_threshold_follows_ddio() {
        let s = Scenario::paper_baseline().enable_hostcc();
        assert_eq!(s.hostcc.as_ref().unwrap().it, 70.0);
        let s = Scenario::paper_baseline().enable_ddio().enable_hostcc();
        assert_eq!(s.hostcc.as_ref().unwrap().it, 50.0);
        // Order-independent.
        let s = Scenario::paper_baseline().enable_hostcc().enable_ddio();
        assert_eq!(s.hostcc.as_ref().unwrap().it, 50.0);
    }

    #[test]
    fn incast_splits_flows() {
        let s = Scenario::incast(10, 3.0);
        assert_eq!(s.flows_per_sender, vec![5, 5]);
        let s = Scenario::incast(7, 0.0);
        assert_eq!(s.total_greedy_flows(), 7);
    }

    #[test]
    fn mss_accounts_headers() {
        assert_eq!(Scenario::paper_baseline().mss(), 4096 - 66);
    }
}
