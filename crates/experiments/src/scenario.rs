//! End-to-end scenario configuration: one struct that pins every knob of
//! an experiment, with presets for the paper's setups.

use hostcc_core::HostCcConfig;
use hostcc_fabric::{FaultConfig, SwitchPortConfig, TopologySpec};
use hostcc_host::HostConfig;
use hostcc_sim::{Nanos, Rate};
use hostcc_workloads::{RpcConfig, TrafficPattern};

/// Which congestion-control protocol the flows run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcKind {
    /// Linux DCTCP (the paper's protocol).
    Dctcp,
    /// TCP NewReno.
    Reno,
    /// CUBIC.
    Cubic,
    /// Swift-style delay-based CC (paper §6 extension).
    Swift,
    /// TIMELY-style RTT-gradient CC (paper reference \[31\]).
    Timely,
}

impl CcKind {
    /// Every protocol, in the order used by grid axes and CLI listings.
    pub const ALL: [CcKind; 5] = [
        CcKind::Dctcp,
        CcKind::Reno,
        CcKind::Cubic,
        CcKind::Swift,
        CcKind::Timely,
    ];

    /// Stable lower-case name (grid keys, CLI, manifests).
    pub fn name(self) -> &'static str {
        match self {
            CcKind::Dctcp => "dctcp",
            CcKind::Reno => "reno",
            CcKind::Cubic => "cubic",
            CcKind::Swift => "swift",
            CcKind::Timely => "timely",
        }
    }

    /// Parse a protocol name as printed by [`CcKind::name`].
    pub fn parse(s: &str) -> Option<CcKind> {
        CcKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// A complete experiment scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// RNG seed: every run is exactly repeatable from this.
    pub seed: u64,
    /// MTU in bytes (paper default 4096, Fig 3/11 sweep {1500, 4000, 9000}).
    pub mtu: u64,
    /// Number of sender hosts (1; 2 for the Fig 13 incast).
    pub senders: usize,
    /// Greedy (NetApp-T) flows per sender.
    pub flows_per_sender: Vec<u32>,
    /// Attach a NetApp-L RPC client (flows on sender 0)?
    pub rpc: Option<RpcConfig>,
    /// Number of parallel RPC client connections (sample-rate knob; the
    /// paper's netperf uses 1 — more clients gather tail samples faster
    /// without materially changing load).
    pub rpc_clients: usize,
    /// MApp congestion degree at the receiver.
    pub mapp_degree: f64,
    /// Start MApp at this time instead of t = 0 (abrupt-onset studies).
    pub mapp_start: Nanos,
    /// Stop all greedy (NetApp-T) flows at this time (None = never):
    /// exercises how host resources are returned when network demand
    /// vanishes — where the target-bandwidth *policy* matters (§3.2).
    pub net_stop: Option<Nanos>,
    /// MApp congestion degree at sender 0 (sender-side host congestion:
    /// TX DMA reads starve; paper Fig 5's sender-side response exercises
    /// this). 0 disables the sender host model entirely.
    pub sender_mapp_degree: f64,
    /// Run a sender-side hostCC response (only meaningful with
    /// `sender_mapp_degree > 0`): keeps network TX from being starved by
    /// backpressuring the sender's host-local traffic.
    pub sender_hostcc: bool,
    /// Receiver host model.
    pub host: HostConfig,
    /// hostCC controller (None = vanilla network CC).
    pub hostcc: Option<HostCcConfig>,
    /// Congestion control protocol.
    pub cc: CcKind,
    /// Pin the receiver's MBA to a fixed response level for the whole run
    /// (the Fig 9 actuator-efficacy sweep). Only meaningful without hostCC,
    /// which would otherwise steer the level away — `validate` rejects the
    /// combination.
    pub forced_mba_level: Option<u8>,
    /// Switch egress port toward the receiver.
    pub switch: SwitchPortConfig,
    /// One-way per-link propagation (incl. per-hop stack overheads).
    pub link_prop: Nanos,
    /// Receive-side stack delay from DMA completion to transport.
    pub rx_stack_delay: Nanos,
    /// Fixed reverse-path delay for ACKs (uncongested direction).
    pub ack_delay: Nanos,
    /// Per-flow receive socket buffer.
    pub rcv_buf: u64,
    /// Warm-up before measurement starts.
    pub warmup: Nanos,
    /// Measurement window.
    pub measure: Nanos,
    /// Record signal/level time series during measurement (Fig 8/18/19).
    pub record: bool,
    /// Fabric fault injection (robustness tests; off for paper figures).
    pub fault: FaultConfig,
    /// Chaos timeline: a preset name or compact spec string resolved by
    /// `hostcc_chaos::ChaosTimeline::resolve` (None = no injected faults).
    /// Kept as the raw string so grid cell keys — and hence per-cell RNG
    /// seeds — stay purely textual.
    pub chaos: Option<String>,
    /// Multi-switch fabric (None = the legacy single-switch-port path,
    /// which stays bit-identical to pre-topology builds). With a
    /// topology, `senders` must equal the spec's sender count and every
    /// flow is forwarded hop by hop through per-link `SwitchPort`s.
    pub topology: Option<TopologySpec>,
    /// How greedy flows map onto hosts (incast fan-in vs ring collective;
    /// only [`TrafficPattern::Incast`] is valid without a topology).
    pub pattern: TrafficPattern,
}

impl Scenario {
    /// The paper's baseline setup (§2.2/§5.1): one sender, 4 greedy DCTCP
    /// flows at 4 KiB MTU into one receiver, no RPC client, MApp degree 0,
    /// DDIO off, no hostCC.
    pub fn paper_baseline() -> Self {
        Scenario {
            seed: 1,
            mtu: 4096,
            senders: 1,
            flows_per_sender: vec![4],
            rpc: None,
            rpc_clients: 1,
            mapp_degree: 0.0,
            mapp_start: Nanos::ZERO,
            net_stop: None,
            sender_mapp_degree: 0.0,
            sender_hostcc: false,
            host: HostConfig::paper_default(),
            hostcc: None,
            cc: CcKind::Dctcp,
            forced_mba_level: None,
            switch: SwitchPortConfig::paper_default(),
            link_prop: Nanos::from_micros(8),
            rx_stack_delay: Nanos::from_nanos(1500),
            ack_delay: Nanos::from_micros(17),
            rcv_buf: 1 << 20,
            warmup: Nanos::from_millis(3),
            measure: Nanos::from_millis(10),
            record: false,
            fault: FaultConfig::none(),
            chaos: None,
            topology: None,
            pattern: TrafficPattern::Incast,
        }
    }

    /// Baseline at an MApp congestion degree.
    pub fn with_congestion(degree: f64) -> Self {
        Scenario {
            mapp_degree: degree,
            ..Self::paper_baseline()
        }
    }

    /// Enable hostCC with the paper's defaults (matched to the host's DDIO
    /// setting: `I_T` = 70 DDIO-off / 50 DDIO-on).
    pub fn enable_hostcc(mut self) -> Self {
        self.hostcc = Some(if self.host.ddio_enabled {
            HostCcConfig::paper_ddio()
        } else {
            HostCcConfig::paper_default()
        });
        self
    }

    /// Enable DDIO on the receiver host.
    pub fn enable_ddio(mut self) -> Self {
        self.host = HostConfig {
            ddio_enabled: true,
            ..self.host
        };
        // If hostCC was already configured, retune its threshold.
        if self.hostcc.is_some() {
            self.hostcc = Some(HostCcConfig::paper_ddio());
        }
        self
    }

    /// The Fig 13 incast setup: `total_flows` split over two senders.
    pub fn incast(total_flows: u32, mapp_degree: f64) -> Self {
        let spec = hostcc_workloads::IncastSpec {
            senders: 2,
            total_flows,
        };
        Scenario {
            senders: 2,
            flows_per_sender: (0..2).map(|i| spec.flows_for_sender(i)).collect(),
            mapp_degree,
            ..Self::paper_baseline()
        }
    }

    /// Balanced split of `total` flows over `n` senders.
    fn balanced_split(total: u32, n: u32) -> Vec<u32> {
        let spec = hostcc_workloads::IncastSpec {
            senders: n,
            total_flows: total,
        };
        (0..n).map(|i| spec.flows_for_sender(i)).collect()
    }

    /// Run on a multi-switch fabric: `senders` becomes the topology's
    /// sender-host count and the current greedy-flow total is
    /// redistributed over them (ring pattern: one flow per sender).
    pub fn with_topology(mut self, spec: TopologySpec) -> Self {
        let n = spec.sender_count();
        self.topology = Some(spec);
        let total = match self.pattern {
            TrafficPattern::Incast => self.total_greedy_flows(),
            TrafficPattern::RingAllReduce => n,
        };
        self.senders = n as usize;
        self.flows_per_sender = Self::balanced_split(total, n);
        self
    }

    /// Select the collective traffic pattern (ring resets to one flow per
    /// sender — each host streams one chunk to its ring successor).
    pub fn with_pattern(mut self, pattern: TrafficPattern) -> Self {
        self.pattern = pattern;
        if pattern == TrafficPattern::RingAllReduce {
            self.flows_per_sender = vec![1; self.senders];
        }
        self
    }

    /// Incast across a leaf–spine fabric: `total_flows` spread over all
    /// `racks × hosts_per_rack − 1` sender hosts, converging on the focus
    /// receiver in the last rack (3 switch hops from any other rack).
    pub fn leaf_spine_incast(
        racks: u32,
        hosts_per_rack: u32,
        total_flows: u32,
        mapp_degree: f64,
    ) -> Self {
        let mut s = Self::with_congestion(mapp_degree);
        s.flows_per_sender = vec![total_flows];
        s.with_topology(TopologySpec::leaf_spine(racks, hosts_per_rack))
    }

    /// Incast across a k-ary fat tree: one flow from each of the
    /// `k³/4 − 1` sender hosts into the focus receiver (k = 4 → 15
    /// senders, 16 hosts, up to 5 switch hops).
    pub fn fat_tree_incast(k: u32, mapp_degree: f64) -> Self {
        let spec = TopologySpec::fat_tree(k);
        let mut s = Self::with_congestion(mapp_degree);
        s.flows_per_sender = vec![spec.sender_count()];
        s.with_topology(spec)
    }

    /// A ring-all-reduce rotation on a leaf–spine fabric: every host
    /// streams one chunk to its ring successor.
    pub fn ring_all_reduce(racks: u32, hosts_per_rack: u32) -> Self {
        Self::paper_baseline()
            .with_pattern(TrafficPattern::RingAllReduce)
            .with_topology(TopologySpec::leaf_spine(racks, hosts_per_rack))
    }

    /// Enable the IOMMU with a DMA working set of `footprint_pages` I/O
    /// pages (§6: IOMMU-induced host congestion — invisible to the IIO
    /// occupancy signal because it throttles DMA *before* the IIO).
    pub fn with_iommu(mut self, footprint_pages: u64) -> Self {
        self.host.iommu = hostcc_host::IommuConfig::with_footprint(footprint_pages);
        self
    }

    /// Add sender-side host congestion (TX DMA contention at sender 0),
    /// optionally with the sender-side hostCC response.
    pub fn with_sender_congestion(mut self, degree: f64, hostcc: bool) -> Self {
        self.sender_mapp_degree = degree;
        self.sender_hostcc = hostcc;
        self
    }

    /// Attach a chaos timeline (a preset name or a compact spec string —
    /// see `hostcc_chaos::ChaosTimeline::resolve`).
    pub fn with_chaos(mut self, spec: &str) -> Self {
        self.chaos = Some(spec.to_string());
        self
    }

    /// Attach the NetApp-L RPC workload (Fig 4/12/15).
    pub fn with_rpc(mut self, clients: usize) -> Self {
        self.rpc = Some(RpcConfig::default());
        self.rpc_clients = clients;
        self
    }

    /// Total greedy flows.
    pub fn total_greedy_flows(&self) -> u32 {
        self.flows_per_sender.iter().sum()
    }

    /// Maximum segment size for this MTU.
    pub fn mss(&self) -> u64 {
        self.mtu - u64::from(hostcc_fabric::HEADER_BYTES)
    }

    /// Sanity-check the configuration.
    pub fn validate(&self) {
        assert_eq!(self.senders, self.flows_per_sender.len());
        assert!(self.mtu > u64::from(hostcc_fabric::HEADER_BYTES) + 64);
        assert!(self.measure > Nanos::ZERO);
        assert!(self.rpc_clients >= 1);
        assert!(
            self.forced_mba_level.is_none() || self.hostcc.is_none(),
            "a forced MBA level conflicts with an active hostCC controller"
        );
        if let Some(topo) = &self.topology {
            if let Err(e) = topo.validate() {
                panic!("invalid topology: {e}");
            }
            assert_eq!(
                self.senders,
                topo.sender_count() as usize,
                "senders must match the topology's sender-host count \
                 (use Scenario::with_topology)"
            );
        } else {
            assert_eq!(
                self.pattern,
                TrafficPattern::Incast,
                "the {} pattern needs a topology",
                self.pattern.name()
            );
        }
        if let Err(e) = self.check_chaos() {
            panic!("{e}");
        }
        self.host.validate();
    }

    /// Check the chaos spec (syntax plus link-target resolution against
    /// this scenario's topology), reporting failures as values — the
    /// graceful surface `GridSpec::expand` and the CLI use, so a bad
    /// `@link:` target lists the valid names instead of panicking deep in a
    /// sweep worker.
    pub fn check_chaos(&self) -> Result<(), String> {
        let Some(spec) = &self.chaos else {
            return Ok(());
        };
        let t = hostcc_chaos::ChaosTimeline::resolve(spec)
            .map_err(|e| format!("invalid chaos spec: {e}"))?;
        // With a topology, link faults must address one of its links.
        let built = self.topology.as_ref().map(TopologySpec::build);
        let names = built.as_ref().map(|t| t.link_names()).unwrap_or_default();
        t.validate_targets(&names)
            .map_err(|e| format!("invalid chaos spec: {e}"))
    }

    /// Approximate base RTT of the scenario (diagnostics).
    pub fn base_rtt(&self) -> Nanos {
        // data: ser ×2 + prop ×2 + host + stack; ack: fixed.
        let ser = Rate::gbps(100.0).time_for_bytes(self.mtu) * 2;
        ser + self.link_prop * 2 + Nanos::from_micros(1) + self.rx_stack_delay + self.ack_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        Scenario::paper_baseline().validate();
        Scenario::with_congestion(3.0).validate();
        Scenario::with_congestion(3.0).enable_hostcc().validate();
        Scenario::incast(10, 3.0).validate();
        Scenario::paper_baseline().with_rpc(4).validate();
        Scenario::paper_baseline()
            .enable_ddio()
            .enable_hostcc()
            .validate();
    }

    #[test]
    fn topology_presets_validate() {
        Scenario::leaf_spine_incast(3, 2, 8, 3.0).validate();
        Scenario::fat_tree_incast(4, 0.0).validate();
        Scenario::ring_all_reduce(3, 2).validate();

        let s = Scenario::fat_tree_incast(4, 0.0);
        assert_eq!(s.senders, 15, "k=4 fat tree has 15 sender hosts");
        assert_eq!(s.total_greedy_flows(), 15, "one flow per sender");

        let s = Scenario::leaf_spine_incast(3, 2, 8, 3.0);
        assert_eq!(s.senders, 5);
        assert_eq!(s.total_greedy_flows(), 8);

        let s = Scenario::ring_all_reduce(3, 2);
        assert_eq!(s.pattern, TrafficPattern::RingAllReduce);
        assert_eq!(s.flows_per_sender, vec![1; 5]);
    }

    #[test]
    #[should_panic(expected = "needs a topology")]
    fn ring_without_topology_rejected() {
        Scenario::paper_baseline()
            .with_pattern(TrafficPattern::RingAllReduce)
            .validate();
    }

    #[test]
    #[should_panic(expected = "ambiguous link fault")]
    fn untargeted_link_fault_on_topology_rejected() {
        Scenario::leaf_spine_incast(3, 2, 8, 0.0)
            .with_chaos("flap@4500us+400us")
            .validate();
    }

    #[test]
    fn targeted_link_fault_on_topology_validates() {
        Scenario::leaf_spine_incast(3, 2, 8, 0.0)
            .with_chaos("flap@link:leaf0-spine0@4500us+400us")
            .validate();
        Scenario::leaf_spine_incast(3, 2, 8, 0.0)
            .with_chaos("degrade@link:h0-leaf0@4500us:50%:1ms")
            .validate();
    }

    #[test]
    fn chaos_specs_validate() {
        Scenario::with_congestion(3.0).with_chaos("flap").validate();
        Scenario::with_congestion(3.0)
            .with_chaos("degrade@5ms:50%:1ms")
            .validate();
    }

    #[test]
    #[should_panic(expected = "invalid chaos spec")]
    fn bad_chaos_spec_rejected() {
        Scenario::with_congestion(3.0)
            .with_chaos("zap@2ms")
            .validate();
    }

    #[test]
    fn base_rtt_near_paper() {
        // The paper's RTT is ~44 µs (MBA write = 22 µs = RTT/2).
        let rtt = Scenario::paper_baseline().base_rtt();
        assert!(
            (Nanos::from_micros(30)..Nanos::from_micros(50)).contains(&rtt),
            "base RTT = {rtt}"
        );
    }

    #[test]
    fn hostcc_threshold_follows_ddio() {
        let s = Scenario::paper_baseline().enable_hostcc();
        assert_eq!(s.hostcc.as_ref().unwrap().it, 70.0);
        let s = Scenario::paper_baseline().enable_ddio().enable_hostcc();
        assert_eq!(s.hostcc.as_ref().unwrap().it, 50.0);
        // Order-independent.
        let s = Scenario::paper_baseline().enable_hostcc().enable_ddio();
        assert_eq!(s.hostcc.as_ref().unwrap().it, 50.0);
    }

    #[test]
    fn incast_splits_flows() {
        let s = Scenario::incast(10, 3.0);
        assert_eq!(s.flows_per_sender, vec![5, 5]);
        let s = Scenario::incast(7, 0.0);
        assert_eq!(s.total_greedy_flows(), 7);
    }

    #[test]
    fn mss_accounts_headers() {
        assert_eq!(Scenario::paper_baseline().mss(), 4096 - 66);
    }
}
