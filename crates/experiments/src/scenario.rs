//! End-to-end scenario configuration: one struct that pins every knob of
//! an experiment, with presets for the paper's setups.

use hostcc_core::HostCcConfig;
use hostcc_fabric::{FaultConfig, SwitchPortConfig, TopologySpec};
use hostcc_host::HostConfig;
use hostcc_sim::{Nanos, Rate};
use hostcc_workloads::{RpcConfig, TrafficPattern};

/// Which congestion-control protocol the flows run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcKind {
    /// Linux DCTCP (the paper's protocol).
    Dctcp,
    /// TCP NewReno.
    Reno,
    /// CUBIC.
    Cubic,
    /// Swift-style delay-based CC (paper §6 extension).
    Swift,
    /// TIMELY-style RTT-gradient CC (paper reference \[31\]).
    Timely,
    /// DCQCN: CNP-driven rate-based AIMD (RoCEv2's scheme).
    Dcqcn,
    /// BBR-class bandwidth-probe CC (ignores ECN entirely).
    BbrLite,
}

impl CcKind {
    /// Every protocol, in the order used by grid axes and CLI listings.
    pub const ALL: [CcKind; 7] = [
        CcKind::Dctcp,
        CcKind::Reno,
        CcKind::Cubic,
        CcKind::Swift,
        CcKind::Timely,
        CcKind::Dcqcn,
        CcKind::BbrLite,
    ];

    /// Stable lower-case name (grid keys, CLI, manifests).
    pub fn name(self) -> &'static str {
        match self {
            CcKind::Dctcp => "dctcp",
            CcKind::Reno => "reno",
            CcKind::Cubic => "cubic",
            CcKind::Swift => "swift",
            CcKind::Timely => "timely",
            CcKind::Dcqcn => "dcqcn",
            CcKind::BbrLite => "bbr-lite",
        }
    }

    /// Parse a protocol name as printed by [`CcKind::name`].
    pub fn parse(s: &str) -> Option<CcKind> {
        CcKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// All protocol names joined for error messages — the single source
    /// of truth every "unknown protocol" diagnostic quotes, so a new
    /// [`CcKind`] shows up everywhere at once.
    pub fn known_names() -> String {
        let names: Vec<_> = CcKind::ALL.iter().map(|k| k.name()).collect();
        names.join(", ")
    }
}

/// A heterogeneous per-flow congestion-control assignment: ordered groups
/// of `(kind, flow_count)`, written `dctcp:4+cubic:4`.
///
/// Greedy flows are assigned to groups in flow-index order — the first
/// `n₀` flows run `kind₀`, the next `n₁` run `kind₁`, and so on; indices
/// past the declared total wrap around, so a mix stays valid when the
/// `flows` axis is swept independently. The canonical [`CcMix::label`] is
/// the grid-cell key text, which keeps per-cell seed derivation purely
/// textual.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CcMix {
    groups: Vec<(CcKind, u32)>,
}

impl CcMix {
    /// A mix from explicit groups. Rejects empty mixes and zero counts.
    pub fn new(groups: Vec<(CcKind, u32)>) -> Result<CcMix, String> {
        if groups.is_empty() {
            return Err("empty CC mix".to_string());
        }
        if groups.iter().any(|&(_, n)| n == 0) {
            return Err("CC mix group with zero flows".to_string());
        }
        Ok(CcMix { groups })
    }

    /// Parse `name:count+name:count+…` (e.g. `dctcp:4+cubic:4`).
    pub fn parse(s: &str) -> Result<CcMix, String> {
        let mut groups = Vec::new();
        for part in s.split('+') {
            let (name, count) = part
                .split_once(':')
                .ok_or_else(|| format!("bad CC mix group {part:?} (want name:count)"))?;
            let kind = CcKind::parse(name).ok_or_else(|| {
                format!(
                    "unknown protocol {name:?} in CC mix (known: {})",
                    CcKind::known_names()
                )
            })?;
            let n: u32 = count
                .parse()
                .map_err(|_| format!("bad flow count {count:?} in CC mix group {part:?}"))?;
            groups.push((kind, n));
        }
        CcMix::new(groups)
    }

    /// The ordered `(kind, flow_count)` groups.
    pub fn groups(&self) -> &[(CcKind, u32)] {
        &self.groups
    }

    /// Total flows the mix declares.
    pub fn total_flows(&self) -> u32 {
        self.groups.iter().map(|&(_, n)| n).sum()
    }

    /// The canonical `name:count+name:count` label (grid keys, reports).
    pub fn label(&self) -> String {
        let parts: Vec<_> = self
            .groups
            .iter()
            .map(|&(k, n)| format!("{}:{n}", k.name()))
            .collect();
        parts.join("+")
    }

    /// The CC kind for greedy flow `idx` (flow-index order, wrapping past
    /// the declared total).
    pub fn kind_for_flow(&self, idx: u32) -> CcKind {
        let mut i = idx % self.total_flows();
        for &(kind, n) in &self.groups {
            if i < n {
                return kind;
            }
            i -= n;
        }
        unreachable!("idx reduced modulo total_flows")
    }
}

/// One value of a grid's `cc` axis: a single protocol for every flow, or
/// a heterogeneous per-flow [`CcMix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcSel {
    /// Every flow runs one protocol.
    Kind(CcKind),
    /// A heterogeneous per-flow mix (e.g. `dctcp:4+cubic:4`).
    Mix(CcMix),
}

impl From<CcKind> for CcSel {
    fn from(k: CcKind) -> Self {
        CcSel::Kind(k)
    }
}

impl CcSel {
    /// Parse an axis value: a bare protocol name, or `name:count+…` for a
    /// mix.
    pub fn parse(s: &str) -> Result<CcSel, String> {
        if s.contains(':') {
            CcMix::parse(s).map(CcSel::Mix)
        } else {
            CcKind::parse(s)
                .map(CcSel::Kind)
                .ok_or_else(|| format!("unknown protocol (known: {})", CcKind::known_names()))
        }
    }

    /// The canonical cell-key label.
    pub fn label(&self) -> String {
        match self {
            CcSel::Kind(k) => k.name().to_string(),
            CcSel::Mix(m) => m.label(),
        }
    }

    /// Apply this selection to a scenario (mixes also resize the flow set
    /// via [`Scenario::with_cc_mix`]).
    pub fn apply(&self, s: &mut Scenario) {
        match self {
            CcSel::Kind(k) => {
                s.cc = *k;
                s.cc_mix = None;
            }
            CcSel::Mix(m) => *s = s.clone().with_cc_mix(m.clone()),
        }
    }
}

/// A complete experiment scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// RNG seed: every run is exactly repeatable from this.
    pub seed: u64,
    /// MTU in bytes (paper default 4096, Fig 3/11 sweep {1500, 4000, 9000}).
    pub mtu: u64,
    /// Number of sender hosts (1; 2 for the Fig 13 incast).
    pub senders: usize,
    /// Greedy (NetApp-T) flows per sender.
    pub flows_per_sender: Vec<u32>,
    /// Attach a NetApp-L RPC client (flows on sender 0)?
    pub rpc: Option<RpcConfig>,
    /// Number of parallel RPC client connections (sample-rate knob; the
    /// paper's netperf uses 1 — more clients gather tail samples faster
    /// without materially changing load).
    pub rpc_clients: usize,
    /// MApp congestion degree at the receiver.
    pub mapp_degree: f64,
    /// Start MApp at this time instead of t = 0 (abrupt-onset studies).
    pub mapp_start: Nanos,
    /// Stop all greedy (NetApp-T) flows at this time (None = never):
    /// exercises how host resources are returned when network demand
    /// vanishes — where the target-bandwidth *policy* matters (§3.2).
    pub net_stop: Option<Nanos>,
    /// MApp congestion degree at sender 0 (sender-side host congestion:
    /// TX DMA reads starve; paper Fig 5's sender-side response exercises
    /// this). 0 disables the sender host model entirely.
    pub sender_mapp_degree: f64,
    /// Run a sender-side hostCC response (only meaningful with
    /// `sender_mapp_degree > 0`): keeps network TX from being starved by
    /// backpressuring the sender's host-local traffic.
    pub sender_hostcc: bool,
    /// Receiver host model.
    pub host: HostConfig,
    /// hostCC controller (None = vanilla network CC).
    pub hostcc: Option<HostCcConfig>,
    /// Congestion control protocol (all flows, unless `cc_mix` is set —
    /// then this is the base kind RPC flows keep).
    pub cc: CcKind,
    /// Heterogeneous per-flow CC mix for the greedy flows (None = every
    /// flow runs `cc`). See [`CcMix`] for assignment order.
    pub cc_mix: Option<CcMix>,
    /// Pin the receiver's MBA to a fixed response level for the whole run
    /// (the Fig 9 actuator-efficacy sweep). Only meaningful without hostCC,
    /// which would otherwise steer the level away — `validate` rejects the
    /// combination.
    pub forced_mba_level: Option<u8>,
    /// Switch egress port toward the receiver.
    pub switch: SwitchPortConfig,
    /// One-way per-link propagation (incl. per-hop stack overheads).
    pub link_prop: Nanos,
    /// Receive-side stack delay from DMA completion to transport.
    pub rx_stack_delay: Nanos,
    /// Fixed reverse-path delay for ACKs (uncongested direction).
    pub ack_delay: Nanos,
    /// Per-flow receive socket buffer.
    pub rcv_buf: u64,
    /// Warm-up before measurement starts.
    pub warmup: Nanos,
    /// Measurement window.
    pub measure: Nanos,
    /// Record signal/level time series during measurement (Fig 8/18/19).
    pub record: bool,
    /// Fabric fault injection (robustness tests; off for paper figures).
    pub fault: FaultConfig,
    /// Chaos timeline: a preset name or compact spec string resolved by
    /// `hostcc_chaos::ChaosTimeline::resolve` (None = no injected faults).
    /// Kept as the raw string so grid cell keys — and hence per-cell RNG
    /// seeds — stay purely textual.
    pub chaos: Option<String>,
    /// Multi-switch fabric (None = the legacy single-switch-port path,
    /// which stays bit-identical to pre-topology builds). With a
    /// topology, `senders` must equal the spec's sender count and every
    /// flow is forwarded hop by hop through per-link `SwitchPort`s.
    pub topology: Option<TopologySpec>,
    /// How greedy flows map onto hosts (incast fan-in vs ring collective;
    /// only [`TrafficPattern::Incast`] is valid without a topology).
    pub pattern: TrafficPattern,
}

impl Scenario {
    /// The paper's baseline setup (§2.2/§5.1): one sender, 4 greedy DCTCP
    /// flows at 4 KiB MTU into one receiver, no RPC client, MApp degree 0,
    /// DDIO off, no hostCC.
    pub fn paper_baseline() -> Self {
        Scenario {
            seed: 1,
            mtu: 4096,
            senders: 1,
            flows_per_sender: vec![4],
            rpc: None,
            rpc_clients: 1,
            mapp_degree: 0.0,
            mapp_start: Nanos::ZERO,
            net_stop: None,
            sender_mapp_degree: 0.0,
            sender_hostcc: false,
            host: HostConfig::paper_default(),
            hostcc: None,
            cc: CcKind::Dctcp,
            cc_mix: None,
            forced_mba_level: None,
            switch: SwitchPortConfig::paper_default(),
            link_prop: Nanos::from_micros(8),
            rx_stack_delay: Nanos::from_nanos(1500),
            ack_delay: Nanos::from_micros(17),
            rcv_buf: 1 << 20,
            warmup: Nanos::from_millis(3),
            measure: Nanos::from_millis(10),
            record: false,
            fault: FaultConfig::none(),
            chaos: None,
            topology: None,
            pattern: TrafficPattern::Incast,
        }
    }

    /// Baseline at an MApp congestion degree.
    pub fn with_congestion(degree: f64) -> Self {
        Scenario {
            mapp_degree: degree,
            ..Self::paper_baseline()
        }
    }

    /// Enable hostCC with the paper's defaults (matched to the host's DDIO
    /// setting: `I_T` = 70 DDIO-off / 50 DDIO-on).
    pub fn enable_hostcc(mut self) -> Self {
        self.hostcc = Some(if self.host.ddio_enabled {
            HostCcConfig::paper_ddio()
        } else {
            HostCcConfig::paper_default()
        });
        self
    }

    /// Enable DDIO on the receiver host.
    pub fn enable_ddio(mut self) -> Self {
        self.host = HostConfig {
            ddio_enabled: true,
            ..self.host
        };
        // If hostCC was already configured, retune its threshold.
        if self.hostcc.is_some() {
            self.hostcc = Some(HostCcConfig::paper_ddio());
        }
        self
    }

    /// The Fig 13 incast setup: `total_flows` split over two senders.
    pub fn incast(total_flows: u32, mapp_degree: f64) -> Self {
        let spec = hostcc_workloads::IncastSpec {
            senders: 2,
            total_flows,
        };
        Scenario {
            senders: 2,
            flows_per_sender: (0..2).map(|i| spec.flows_for_sender(i)).collect(),
            mapp_degree,
            ..Self::paper_baseline()
        }
    }

    /// Balanced split of `total` flows over `n` senders.
    fn balanced_split(total: u32, n: u32) -> Vec<u32> {
        let spec = hostcc_workloads::IncastSpec {
            senders: n,
            total_flows: total,
        };
        (0..n).map(|i| spec.flows_for_sender(i)).collect()
    }

    /// Run on a multi-switch fabric: `senders` becomes the topology's
    /// sender-host count and the current greedy-flow total is
    /// redistributed over them (ring pattern: one flow per sender).
    pub fn with_topology(mut self, spec: TopologySpec) -> Self {
        let n = spec.sender_count();
        self.topology = Some(spec);
        let total = match self.pattern {
            TrafficPattern::Incast => self.total_greedy_flows(),
            TrafficPattern::RingAllReduce => n,
        };
        self.senders = n as usize;
        self.flows_per_sender = Self::balanced_split(total, n);
        self
    }

    /// Select the collective traffic pattern (ring resets to one flow per
    /// sender — each host streams one chunk to its ring successor).
    pub fn with_pattern(mut self, pattern: TrafficPattern) -> Self {
        self.pattern = pattern;
        if pattern == TrafficPattern::RingAllReduce {
            self.flows_per_sender = vec![1; self.senders];
        }
        self
    }

    /// Incast across a leaf–spine fabric: `total_flows` spread over all
    /// `racks × hosts_per_rack − 1` sender hosts, converging on the focus
    /// receiver in the last rack (3 switch hops from any other rack).
    pub fn leaf_spine_incast(
        racks: u32,
        hosts_per_rack: u32,
        total_flows: u32,
        mapp_degree: f64,
    ) -> Self {
        let mut s = Self::with_congestion(mapp_degree);
        s.flows_per_sender = vec![total_flows];
        s.with_topology(TopologySpec::leaf_spine(racks, hosts_per_rack))
    }

    /// Incast across a k-ary fat tree: one flow from each of the
    /// `k³/4 − 1` sender hosts into the focus receiver (k = 4 → 15
    /// senders, 16 hosts, up to 5 switch hops).
    pub fn fat_tree_incast(k: u32, mapp_degree: f64) -> Self {
        let spec = TopologySpec::fat_tree(k);
        let mut s = Self::with_congestion(mapp_degree);
        s.flows_per_sender = vec![spec.sender_count()];
        s.with_topology(spec)
    }

    /// A ring-all-reduce rotation on a leaf–spine fabric: every host
    /// streams one chunk to its ring successor.
    pub fn ring_all_reduce(racks: u32, hosts_per_rack: u32) -> Self {
        Self::paper_baseline()
            .with_pattern(TrafficPattern::RingAllReduce)
            .with_topology(TopologySpec::leaf_spine(racks, hosts_per_rack))
    }

    /// Enable the IOMMU with a DMA working set of `footprint_pages` I/O
    /// pages (§6: IOMMU-induced host congestion — invisible to the IIO
    /// occupancy signal because it throttles DMA *before* the IIO).
    pub fn with_iommu(mut self, footprint_pages: u64) -> Self {
        self.host.iommu = hostcc_host::IommuConfig::with_footprint(footprint_pages);
        self
    }

    /// Add sender-side host congestion (TX DMA contention at sender 0),
    /// optionally with the sender-side hostCC response.
    pub fn with_sender_congestion(mut self, degree: f64, hostcc: bool) -> Self {
        self.sender_mapp_degree = degree;
        self.sender_hostcc = hostcc;
        self
    }

    /// Attach a chaos timeline (a preset name or a compact spec string —
    /// see `hostcc_chaos::ChaosTimeline::resolve`).
    pub fn with_chaos(mut self, spec: &str) -> Self {
        self.chaos = Some(spec.to_string());
        self
    }

    /// Attach the NetApp-L RPC workload (Fig 4/12/15).
    pub fn with_rpc(mut self, clients: usize) -> Self {
        self.rpc = Some(RpcConfig::default());
        self.rpc_clients = clients;
        self
    }

    /// Run a heterogeneous per-flow CC mix on the greedy flows. Resizes
    /// the flow count to the mix's declared total (on one sender when no
    /// topology redistributes them) and sets the base `cc` to the mix's
    /// first kind, which RPC flows keep.
    pub fn with_cc_mix(mut self, mix: CcMix) -> Self {
        self.cc = mix.groups()[0].0;
        if self.topology.is_none() && self.senders == 1 {
            self.flows_per_sender = vec![mix.total_flows()];
        }
        self.cc_mix = Some(mix);
        self
    }

    /// The CC label for grid keys and reports: the mix label when a mix
    /// is set, the plain protocol name otherwise.
    pub fn cc_label(&self) -> String {
        match &self.cc_mix {
            Some(mix) => mix.label(),
            None => self.cc.name().to_string(),
        }
    }

    /// The CC kind greedy flow `idx` runs (global flow-index order across
    /// senders).
    pub fn cc_for_greedy_flow(&self, idx: u32) -> CcKind {
        match &self.cc_mix {
            Some(mix) => mix.kind_for_flow(idx),
            None => self.cc,
        }
    }

    /// Total greedy flows.
    pub fn total_greedy_flows(&self) -> u32 {
        self.flows_per_sender.iter().sum()
    }

    /// Maximum segment size for this MTU.
    pub fn mss(&self) -> u64 {
        self.mtu - u64::from(hostcc_fabric::HEADER_BYTES)
    }

    /// Sanity-check the configuration.
    pub fn validate(&self) {
        assert_eq!(self.senders, self.flows_per_sender.len());
        assert!(self.mtu > u64::from(hostcc_fabric::HEADER_BYTES) + 64);
        assert!(self.measure > Nanos::ZERO);
        assert!(self.rpc_clients >= 1);
        assert!(
            self.forced_mba_level.is_none() || self.hostcc.is_none(),
            "a forced MBA level conflicts with an active hostCC controller"
        );
        if let Some(topo) = &self.topology {
            if let Err(e) = topo.validate() {
                panic!("invalid topology: {e}");
            }
            assert_eq!(
                self.senders,
                topo.sender_count() as usize,
                "senders must match the topology's sender-host count \
                 (use Scenario::with_topology)"
            );
        } else {
            assert_eq!(
                self.pattern,
                TrafficPattern::Incast,
                "the {} pattern needs a topology",
                self.pattern.name()
            );
        }
        if let Err(e) = self.check_chaos() {
            panic!("{e}");
        }
        self.host.validate();
    }

    /// Check the chaos spec (syntax plus link-target resolution against
    /// this scenario's topology), reporting failures as values — the
    /// graceful surface `GridSpec::expand` and the CLI use, so a bad
    /// `@link:` target lists the valid names instead of panicking deep in a
    /// sweep worker.
    pub fn check_chaos(&self) -> Result<(), String> {
        let Some(spec) = &self.chaos else {
            return Ok(());
        };
        let t = hostcc_chaos::ChaosTimeline::resolve(spec)
            .map_err(|e| format!("invalid chaos spec: {e}"))?;
        // With a topology, link faults must address one of its links.
        let built = self.topology.as_ref().map(TopologySpec::build);
        let names = built.as_ref().map(|t| t.link_names()).unwrap_or_default();
        t.validate_targets(&names)
            .map_err(|e| format!("invalid chaos spec: {e}"))
    }

    /// Approximate base RTT of the scenario (diagnostics).
    pub fn base_rtt(&self) -> Nanos {
        // data: ser ×2 + prop ×2 + host + stack; ack: fixed.
        let ser = Rate::gbps(100.0).time_for_bytes(self.mtu) * 2;
        ser + self.link_prop * 2 + Nanos::from_micros(1) + self.rx_stack_delay + self.ack_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        Scenario::paper_baseline().validate();
        Scenario::with_congestion(3.0).validate();
        Scenario::with_congestion(3.0).enable_hostcc().validate();
        Scenario::incast(10, 3.0).validate();
        Scenario::paper_baseline().with_rpc(4).validate();
        Scenario::paper_baseline()
            .enable_ddio()
            .enable_hostcc()
            .validate();
    }

    #[test]
    fn topology_presets_validate() {
        Scenario::leaf_spine_incast(3, 2, 8, 3.0).validate();
        Scenario::fat_tree_incast(4, 0.0).validate();
        Scenario::ring_all_reduce(3, 2).validate();

        let s = Scenario::fat_tree_incast(4, 0.0);
        assert_eq!(s.senders, 15, "k=4 fat tree has 15 sender hosts");
        assert_eq!(s.total_greedy_flows(), 15, "one flow per sender");

        let s = Scenario::leaf_spine_incast(3, 2, 8, 3.0);
        assert_eq!(s.senders, 5);
        assert_eq!(s.total_greedy_flows(), 8);

        let s = Scenario::ring_all_reduce(3, 2);
        assert_eq!(s.pattern, TrafficPattern::RingAllReduce);
        assert_eq!(s.flows_per_sender, vec![1; 5]);
    }

    #[test]
    #[should_panic(expected = "needs a topology")]
    fn ring_without_topology_rejected() {
        Scenario::paper_baseline()
            .with_pattern(TrafficPattern::RingAllReduce)
            .validate();
    }

    #[test]
    #[should_panic(expected = "ambiguous link fault")]
    fn untargeted_link_fault_on_topology_rejected() {
        Scenario::leaf_spine_incast(3, 2, 8, 0.0)
            .with_chaos("flap@4500us+400us")
            .validate();
    }

    #[test]
    fn targeted_link_fault_on_topology_validates() {
        Scenario::leaf_spine_incast(3, 2, 8, 0.0)
            .with_chaos("flap@link:leaf0-spine0@4500us+400us")
            .validate();
        Scenario::leaf_spine_incast(3, 2, 8, 0.0)
            .with_chaos("degrade@link:h0-leaf0@4500us:50%:1ms")
            .validate();
    }

    #[test]
    fn chaos_specs_validate() {
        Scenario::with_congestion(3.0).with_chaos("flap").validate();
        Scenario::with_congestion(3.0)
            .with_chaos("degrade@5ms:50%:1ms")
            .validate();
    }

    #[test]
    #[should_panic(expected = "invalid chaos spec")]
    fn bad_chaos_spec_rejected() {
        Scenario::with_congestion(3.0)
            .with_chaos("zap@2ms")
            .validate();
    }

    #[test]
    fn base_rtt_near_paper() {
        // The paper's RTT is ~44 µs (MBA write = 22 µs = RTT/2).
        let rtt = Scenario::paper_baseline().base_rtt();
        assert!(
            (Nanos::from_micros(30)..Nanos::from_micros(50)).contains(&rtt),
            "base RTT = {rtt}"
        );
    }

    #[test]
    fn hostcc_threshold_follows_ddio() {
        let s = Scenario::paper_baseline().enable_hostcc();
        assert_eq!(s.hostcc.as_ref().unwrap().it, 70.0);
        let s = Scenario::paper_baseline().enable_ddio().enable_hostcc();
        assert_eq!(s.hostcc.as_ref().unwrap().it, 50.0);
        // Order-independent.
        let s = Scenario::paper_baseline().enable_hostcc().enable_ddio();
        assert_eq!(s.hostcc.as_ref().unwrap().it, 50.0);
    }

    #[test]
    fn incast_splits_flows() {
        let s = Scenario::incast(10, 3.0);
        assert_eq!(s.flows_per_sender, vec![5, 5]);
        let s = Scenario::incast(7, 0.0);
        assert_eq!(s.total_greedy_flows(), 7);
    }

    #[test]
    fn mss_accounts_headers() {
        assert_eq!(Scenario::paper_baseline().mss(), 4096 - 66);
    }

    #[test]
    fn cc_names_round_trip() {
        for k in CcKind::ALL {
            assert_eq!(CcKind::parse(k.name()), Some(k));
        }
        assert_eq!(CcKind::parse("quic"), None);
        for k in CcKind::ALL {
            assert!(CcKind::known_names().contains(k.name()));
        }
    }

    #[test]
    fn cc_mix_parses_and_labels_canonically() {
        let mix = CcMix::parse("dctcp:4+cubic:4").unwrap();
        assert_eq!(mix.label(), "dctcp:4+cubic:4");
        assert_eq!(mix.total_flows(), 8);
        assert_eq!(mix.kind_for_flow(0), CcKind::Dctcp);
        assert_eq!(mix.kind_for_flow(3), CcKind::Dctcp);
        assert_eq!(mix.kind_for_flow(4), CcKind::Cubic);
        assert_eq!(mix.kind_for_flow(7), CcKind::Cubic);
        // Wraps past the declared total.
        assert_eq!(mix.kind_for_flow(8), CcKind::Dctcp);
        assert_eq!(mix.kind_for_flow(12), CcKind::Cubic);
    }

    #[test]
    fn cc_mix_rejects_garbage() {
        assert!(CcMix::parse("dctcp").is_err(), "bare name is not a mix");
        assert!(CcMix::parse("dctcp:0").is_err(), "zero-count group");
        assert!(CcMix::parse("dctcp:x").is_err(), "non-numeric count");
        let err = CcMix::parse("quic:4").unwrap_err();
        assert!(
            err.contains("bbr-lite") && err.contains("dcqcn"),
            "error lists the full CC vocabulary: {err}"
        );
    }

    #[test]
    fn with_cc_mix_sizes_flows_and_base_cc() {
        let s = Scenario::with_congestion(2.0).with_cc_mix(CcMix::parse("swift:3+reno:5").unwrap());
        s.validate();
        assert_eq!(s.total_greedy_flows(), 8);
        assert_eq!(s.cc, CcKind::Swift);
        assert_eq!(s.cc_label(), "swift:3+reno:5");
        assert_eq!(s.cc_for_greedy_flow(2), CcKind::Swift);
        assert_eq!(s.cc_for_greedy_flow(3), CcKind::Reno);
        // Homogeneous scenarios label with the plain name.
        assert_eq!(Scenario::paper_baseline().cc_label(), "dctcp");
    }
}
