//! Declarative experiment grids: the cartesian product of scenario axes.
//!
//! The paper's evaluation (§4–§5) is a *grid* of runs — MApp intensities ×
//! flow counts × MTUs × DDIO × hostCC on/off — yet a [`Scenario`] describes
//! exactly one point. A [`GridSpec`] names a base scenario plus the axes to
//! sweep; [`GridSpec::expand`] takes the cartesian product and yields one
//! self-contained [`Cell`] per combination, each with a deterministically
//! derived RNG seed (see [`derive_cell_seed`]). Cells are what the parallel
//! sweep engine in [`crate::sweep`] executes.
//!
//! Axes are applied to the base scenario in a fixed canonical order (DDIO
//! before hostCC, so `enable_hostcc` picks the DDIO-matched `I_T`
//! threshold; `B_T`/`I_T` after hostCC, so they have a controller to tune),
//! and cells enumerate in that same order with the first-listed axis
//! varying slowest — exactly the row order of the paper's tables.

use hostcc_fabric::{TopologyKind, TopologySpec};
use hostcc_sim::Rate;
use hostcc_workloads::{IncastSpec, TrafficPattern};

use crate::scenario::{CcSel, Scenario};

/// Hard cap on the number of cells one grid may expand to — a typo guard
/// (`seed=1..`), not a capacity limit.
pub const MAX_CELLS: usize = 65_536;

/// Every grid axis name, in canonical order — the single source of truth
/// quoted by the unknown-axis error here and by the CLI usage text.
pub const AXIS_NAMES: &str = "ddio hostcc bt it level cc degree flows incast topology racks \
hosts_per_rack mtu ecn_kb drop chaos seed";

/// Derive the RNG seed of one grid cell from the sweep's base seed and the
/// cell's canonical parameter key (e.g. `"ddio=off hostcc=on degree=3"`).
///
/// The key is hashed with FNV-1a and mixed into the base seed through two
/// SplitMix64 finalizer rounds, so:
///
/// * every cell gets an independent, well-mixed seed — replicas of the same
///   parameters differ only via the base seed;
/// * the seed depends on the cell's *parameter assignment*, not its index:
///   adding values to an axis or reordering a preset never changes the
///   seeds of pre-existing cells (activating a brand-new axis does, since
///   every key gains a component);
/// * serial and parallel execution trivially agree, because the seed is a
///   pure function of the spec.
///
/// The empty key is the identity: a one-cell grid with no axes runs the
/// base scenario with its own seed, bit-identical to a plain single run.
pub fn derive_cell_seed(base_seed: u64, cell_key: &str) -> u64 {
    if cell_key.is_empty() {
        return base_seed;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in cell_key.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = base_seed ^ h;
    for _ in 0..2 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// One expanded grid point: a fully-resolved scenario plus the parameter
/// assignment that produced it.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Position in the expansion order (row-major over the axes).
    pub index: usize,
    /// Canonical `name=value` key, axes in canonical order — the input to
    /// [`derive_cell_seed`] and the row label in sweep outputs.
    pub key: String,
    /// The individual `(axis, value)` pairs of [`Cell::key`].
    pub params: Vec<(&'static str, String)>,
    /// The ready-to-run scenario (seed already derived).
    pub scenario: Scenario,
}

impl Cell {
    /// The value this cell has on `axis`, if that axis is part of the grid.
    pub fn get(&self, axis: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(n, _)| *n == axis)
            .map(|(_, v)| v.as_str())
    }
}

/// A declarative sweep: a base [`Scenario`] and the axes to vary.
///
/// An empty axis means "inherit the base value"; a non-empty axis
/// contributes one factor to the cartesian product. See the module docs
/// for the canonical axis order.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Sweep name (manifest header, output file naming).
    pub name: String,
    /// The template every cell starts from (including warm-up/measure
    /// windows and the base RNG seed).
    pub base: Scenario,
    /// Receiver DDIO on/off.
    pub ddio: Vec<bool>,
    /// hostCC controller on/off (`on` applies the DDIO-matched paper
    /// config, `off` removes any controller the base had).
    pub hostcc: Vec<bool>,
    /// hostCC target network bandwidth `B_T` in Gbps (requires hostCC on
    /// in every cell).
    pub bt_gbps: Vec<f64>,
    /// hostCC IIO occupancy threshold `I_T` (requires hostCC on in every
    /// cell).
    pub it: Vec<f64>,
    /// Fixed MBA response level 0–4 (conflicts with hostCC, which would
    /// steer the level away).
    pub mba_level: Vec<u8>,
    /// Congestion-control selection per cell: a single protocol or a
    /// heterogeneous per-flow mix (`dctcp:4+cubic:4`).
    pub cc: Vec<CcSel>,
    /// MApp congestion degree at the receiver (the paper's 0–3×).
    pub degree: Vec<f64>,
    /// Greedy flows on a single sender (resets the base to one sender).
    pub flows: Vec<u32>,
    /// Total greedy flows split over two incast senders.
    pub incast: Vec<u32>,
    /// Fabric topology per cell: `off` (the legacy single switch port) or
    /// a kind name from [`hostcc_fabric::TopologyKind`] (`dumbbell`,
    /// `leaf-spine`, `fat-tree`). Attaching a topology reshapes the sender
    /// set, so this axis conflicts with `flows`/`incast`.
    pub topology: Vec<String>,
    /// Rack (leaf) count for leaf–spine cells, `k` for fat-tree cells
    /// (needs a topology, from this grid's axis or the base scenario).
    pub racks: Vec<u32>,
    /// Hosts per rack for leaf–spine/dumbbell cells (needs a topology).
    pub hosts_per_rack: Vec<u32>,
    /// MTU in bytes.
    pub mtu: Vec<u64>,
    /// Switch ECN marking threshold in KiB (the DCTCP `K` knob).
    pub ecn_kb: Vec<u64>,
    /// Fault-injection drop probability on the sender→switch link.
    pub drop_chance: Vec<f64>,
    /// Chaos timeline per cell: a preset name or spec string from
    /// [`hostcc_chaos::ChaosTimeline`], or `off` for no chaos.
    pub chaos: Vec<String>,
    /// Base RNG seeds (replicates; each is mixed per-cell, see
    /// [`derive_cell_seed`]).
    pub seed: Vec<u64>,
}

/// A labeled scenario mutation: one concrete value of one axis.
type Setter = (String, Box<dyn Fn(&mut Scenario)>);

/// An axis resolved to concrete `(label, setter)` values.
struct Axis {
    name: &'static str,
    values: Vec<Setter>,
}

fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

fn on_off(b: bool) -> String {
    (if b { "on" } else { "off" }).to_string()
}

impl GridSpec {
    /// An axis-less grid over `base` (expands to exactly one cell that is
    /// bit-identical to running `base` directly).
    pub fn new(name: impl Into<String>, base: Scenario) -> Self {
        GridSpec {
            name: name.into(),
            base,
            ddio: Vec::new(),
            hostcc: Vec::new(),
            bt_gbps: Vec::new(),
            it: Vec::new(),
            mba_level: Vec::new(),
            cc: Vec::new(),
            degree: Vec::new(),
            flows: Vec::new(),
            incast: Vec::new(),
            topology: Vec::new(),
            racks: Vec::new(),
            hosts_per_rack: Vec::new(),
            mtu: Vec::new(),
            ecn_kb: Vec::new(),
            drop_chance: Vec::new(),
            chaos: Vec::new(),
            seed: Vec::new(),
        }
    }

    /// The preset families of [`GridSpec::presets`], in listing order.
    /// `repro sweep --list` groups its catalog by these names; the
    /// matchup presets (`repro matchup`) form their own family on top.
    pub const PRESET_FAMILIES: &'static [&'static str] =
        &["scenario", "figure", "fault", "chaos", "topology"];

    /// The named grid presets: `(family, name, description)`, in listing
    /// order. Every scenario target and throughput figure of the paper's
    /// evaluation appears here; `GridSpec::preset` resolves each name and
    /// every family is one of [`GridSpec::PRESET_FAMILIES`].
    pub fn presets() -> &'static [(&'static str, &'static str, &'static str)] {
        &[
            (
                "scenario",
                "baseline",
                "1 cell: the paper's uncongested baseline",
            ),
            (
                "scenario",
                "congested",
                "1 cell: 3x MApp congestion, no hostCC",
            ),
            ("scenario", "hostcc", "1 cell: 3x MApp congestion + hostCC"),
            (
                "scenario",
                "incast",
                "1 cell: 8-flow incast + 3x congestion + hostCC",
            ),
            (
                "figure",
                "fig2",
                "8 cells: ddio x degree, vanilla DCTCP (Fig 2)",
            ),
            (
                "figure",
                "fig3-mtu",
                "6 cells: ddio x MTU at 3x (Fig 3 left)",
            ),
            (
                "figure",
                "fig3-flows",
                "6 cells: ddio x flows at 3x (Fig 3 right)",
            ),
            (
                "figure",
                "fig9",
                "10 cells: ddio x fixed MBA level 0-4 (Fig 9)",
            ),
            (
                "figure",
                "fig10",
                "8 cells: hostcc x degree, DDIO off (Fig 10)",
            ),
            (
                "figure",
                "fig11-mtu",
                "6 cells: hostcc x MTU at 3x (Fig 11 left)",
            ),
            (
                "figure",
                "fig11-flows",
                "6 cells: hostcc x flows at 3x (Fig 11 right)",
            ),
            (
                "figure",
                "fig13a",
                "8 cells: hostcc x incast, no host congestion (Fig 13a)",
            ),
            (
                "figure",
                "fig13b",
                "8 cells: hostcc x incast at 3x (Fig 13b)",
            ),
            (
                "figure",
                "fig14",
                "8 cells: hostcc x degree, DDIO on (Fig 14)",
            ),
            (
                "figure",
                "fig16",
                "10 cells: B_T 10-100 Gbps at 3x + hostCC (Fig 16)",
            ),
            (
                "figure",
                "fig17",
                "5 cells: I_T 70-90 at 3x + hostCC (Fig 17)",
            ),
            (
                "figure",
                "figure-grid",
                "16 cells: ddio x hostcc x degree (Fig 2+10+14 superset)",
            ),
            (
                "fault",
                "faults",
                "8 cells: hostcc x link drop probability at 3x",
            ),
            (
                "chaos",
                "chaos",
                "8 cells: hostcc x chaos timeline (off/flap/brownout/burst-loss) at 3x",
            ),
            (
                "topology",
                "leaf-spine",
                "4 cells: hostcc x racks on a leaf-spine incast at 3x",
            ),
            (
                "topology",
                "fat-tree-incast",
                "2 cells: hostcc on/off on a k=4 fat-tree 15:1 incast at 3x",
            ),
        ]
    }

    /// Resolve a preset name from [`GridSpec::presets`].
    pub fn preset(name: &str) -> Option<GridSpec> {
        let base3 = Scenario::with_congestion(3.0);
        let mut g = match name {
            "baseline" => GridSpec::new(name, Scenario::paper_baseline()),
            "congested" => GridSpec::new(name, base3),
            "hostcc" => GridSpec::new(name, base3.enable_hostcc()),
            "incast" => GridSpec::new(name, Scenario::incast(8, 3.0).enable_hostcc()),
            "fig2" => {
                let mut g = GridSpec::new(name, Scenario::paper_baseline());
                g.ddio = vec![false, true];
                g.degree = vec![0.0, 1.0, 2.0, 3.0];
                g
            }
            "fig3-mtu" => {
                let mut g = GridSpec::new(name, base3);
                g.ddio = vec![false, true];
                g.mtu = vec![1500, 4000, 9000];
                g
            }
            "fig3-flows" => {
                let mut g = GridSpec::new(name, base3);
                g.ddio = vec![false, true];
                g.flows = vec![4, 8, 16];
                g
            }
            "fig9" => {
                let mut g = GridSpec::new(name, base3);
                g.ddio = vec![false, true];
                g.mba_level = vec![0, 1, 2, 3, 4];
                g
            }
            "fig10" => {
                let mut g = GridSpec::new(name, Scenario::paper_baseline());
                g.hostcc = vec![false, true];
                g.degree = vec![0.0, 1.0, 2.0, 3.0];
                g
            }
            "fig11-mtu" => {
                let mut g = GridSpec::new(name, base3);
                g.hostcc = vec![false, true];
                g.mtu = vec![1500, 4000, 9000];
                g
            }
            "fig11-flows" => {
                let mut g = GridSpec::new(name, base3);
                g.hostcc = vec![false, true];
                g.flows = vec![4, 8, 16];
                g
            }
            "fig13a" => {
                let mut g = GridSpec::new(name, Scenario::paper_baseline());
                g.hostcc = vec![false, true];
                g.incast = vec![4, 6, 8, 10];
                g
            }
            "fig13b" => {
                let mut g = GridSpec::new(name, base3);
                g.hostcc = vec![false, true];
                g.incast = vec![4, 6, 8, 10];
                g
            }
            "fig14" => {
                let mut g = GridSpec::new(name, Scenario::paper_baseline().enable_ddio());
                g.hostcc = vec![false, true];
                g.degree = vec![0.0, 1.0, 2.0, 3.0];
                g
            }
            "fig16" => {
                let mut g = GridSpec::new(name, base3.enable_hostcc());
                g.bt_gbps = (1..=10).map(|i| 10.0 * i as f64).collect();
                g
            }
            "fig17" => {
                let mut g = GridSpec::new(name, base3.enable_hostcc());
                g.it = vec![70.0, 75.0, 80.0, 85.0, 90.0];
                g
            }
            "figure-grid" => {
                let mut g = GridSpec::new(name, Scenario::paper_baseline());
                g.ddio = vec![false, true];
                g.hostcc = vec![false, true];
                g.degree = vec![0.0, 1.0, 2.0, 3.0];
                g
            }
            "faults" => {
                let mut g = GridSpec::new(name, base3);
                g.hostcc = vec![false, true];
                g.drop_chance = vec![0.0, 1e-5, 1e-4, 1e-3];
                g
            }
            "chaos" => {
                let mut g = GridSpec::new(name, base3);
                g.hostcc = vec![false, true];
                g.chaos = ["off", "flap", "brownout", "burst-loss"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                g
            }
            "leaf-spine" => {
                let mut g = GridSpec::new(name, Scenario::leaf_spine_incast(3, 2, 8, 3.0));
                g.hostcc = vec![false, true];
                g.racks = vec![2, 3];
                g
            }
            "fat-tree-incast" => {
                let mut g = GridSpec::new(name, Scenario::fat_tree_incast(4, 3.0));
                g.hostcc = vec![false, true];
                g
            }
            _ => return None,
        };
        g.name = name.to_string();
        Some(g)
    }

    /// Set one axis from CLI syntax: `set_axis("degree", "0,1,2,3")`.
    /// Values are comma-separated; booleans accept `on/off/true/false`.
    pub fn set_axis(&mut self, axis: &str, values: &str) -> Result<(), String> {
        fn split<T, E: std::fmt::Display>(
            raw: &str,
            parse: impl Fn(&str) -> Result<T, E>,
        ) -> Result<Vec<T>, String> {
            let out: Vec<T> = raw
                .split(',')
                .map(str::trim)
                .filter(|v| !v.is_empty())
                .map(|v| parse(v).map_err(|e| format!("bad value '{v}': {e}")))
                .collect::<Result<_, _>>()?;
            if out.is_empty() {
                return Err("expected at least one value".into());
            }
            Ok(out)
        }
        fn bools(raw: &str) -> Result<Vec<bool>, String> {
            split(raw, |v| match v {
                "on" | "true" | "1" => Ok(true),
                "off" | "false" | "0" => Ok(false),
                _ => Err("expected on/off"),
            })
        }
        let result = match axis {
            "ddio" => bools(values).map(|v| self.ddio = v),
            "hostcc" => bools(values).map(|v| self.hostcc = v),
            "bt" => split(values, str::parse::<f64>).map(|v| self.bt_gbps = v),
            "it" => split(values, str::parse::<f64>).map(|v| self.it = v),
            "level" => split(values, str::parse::<u8>).map(|v| self.mba_level = v),
            "cc" => split(values, CcSel::parse).map(|v| self.cc = v),
            "degree" => split(values, str::parse::<f64>).map(|v| self.degree = v),
            "flows" => split(values, str::parse::<u32>).map(|v| self.flows = v),
            "incast" => split(values, str::parse::<u32>).map(|v| self.incast = v),
            "topology" => split(values, |v: &str| {
                if v == "off" || TopologyKind::parse(v).is_some() {
                    Ok(v.to_string())
                } else {
                    let all: Vec<_> = TopologyKind::ALL.iter().map(|k| k.name()).collect();
                    Err(format!("unknown topology (known: off, {})", all.join(", ")))
                }
            })
            .map(|v| self.topology = v),
            "racks" => split(values, str::parse::<u32>).map(|v| self.racks = v),
            "hosts_per_rack" => split(values, str::parse::<u32>).map(|v| self.hosts_per_rack = v),
            "mtu" => split(values, str::parse::<u64>).map(|v| self.mtu = v),
            "ecn_kb" => split(values, str::parse::<u64>).map(|v| self.ecn_kb = v),
            "drop" => split(values, str::parse::<f64>).map(|v| self.drop_chance = v),
            "chaos" => split(values, |v: &str| {
                if v == "off" {
                    return Ok(v.to_string());
                }
                hostcc_chaos::ChaosTimeline::resolve(v)
                    .map(|_| v.to_string())
                    .map_err(|e| format!("{e} (or use 'off')"))
            })
            .map(|v| self.chaos = v),
            "seed" => split(values, str::parse::<u64>).map(|v| self.seed = v),
            _ => return Err(format!("unknown axis '{axis}' (known: {AXIS_NAMES})")),
        };
        result.map_err(|e| format!("axis '{axis}': {e}"))
    }

    /// Number of cells [`GridSpec::expand`] will produce.
    pub fn cell_count(&self) -> usize {
        self.axes().iter().map(|a| a.values.len().max(1)).product()
    }

    /// The active axes in canonical order, each resolved to labeled
    /// scenario mutations.
    fn axes(&self) -> Vec<Axis> {
        let mut axes: Vec<Axis> = Vec::new();
        let mut push = |name: &'static str, values: Vec<Setter>| {
            if !values.is_empty() {
                axes.push(Axis { name, values });
            }
        };
        push(
            "ddio",
            self.ddio
                .iter()
                .map(|&b| {
                    let f: Box<dyn Fn(&mut Scenario)> = Box::new(move |s: &mut Scenario| {
                        if b {
                            *s = s.clone().enable_ddio();
                        } else {
                            s.host.ddio_enabled = false;
                        }
                    });
                    (on_off(b), f)
                })
                .collect(),
        );
        push(
            "hostcc",
            self.hostcc
                .iter()
                .map(|&b| {
                    let f: Box<dyn Fn(&mut Scenario)> = Box::new(move |s: &mut Scenario| {
                        if b {
                            *s = s.clone().enable_hostcc();
                        } else {
                            s.hostcc = None;
                        }
                    });
                    (on_off(b), f)
                })
                .collect(),
        );
        push(
            "bt",
            self.bt_gbps
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(&mut Scenario)> = Box::new(move |s: &mut Scenario| {
                        if let Some(hc) = &mut s.hostcc {
                            hc.bt = Rate::gbps(v);
                        }
                    });
                    (fmt_f64(v), f)
                })
                .collect(),
        );
        push(
            "it",
            self.it
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(&mut Scenario)> = Box::new(move |s: &mut Scenario| {
                        if let Some(hc) = &mut s.hostcc {
                            hc.it = v;
                        }
                    });
                    (fmt_f64(v), f)
                })
                .collect(),
        );
        push(
            "level",
            self.mba_level
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(&mut Scenario)> =
                        Box::new(move |s: &mut Scenario| s.forced_mba_level = Some(v));
                    (v.to_string(), f)
                })
                .collect(),
        );
        push(
            "cc",
            self.cc
                .iter()
                .map(|sel| {
                    let sel = sel.clone();
                    let label = sel.label();
                    let f: Box<dyn Fn(&mut Scenario)> =
                        Box::new(move |s: &mut Scenario| sel.apply(s));
                    (label, f)
                })
                .collect(),
        );
        push(
            "degree",
            self.degree
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(&mut Scenario)> =
                        Box::new(move |s: &mut Scenario| s.mapp_degree = v);
                    (fmt_f64(v), f)
                })
                .collect(),
        );
        push(
            "flows",
            self.flows
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(&mut Scenario)> = Box::new(move |s: &mut Scenario| {
                        s.senders = 1;
                        s.flows_per_sender = vec![v];
                    });
                    (v.to_string(), f)
                })
                .collect(),
        );
        push(
            "incast",
            self.incast
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(&mut Scenario)> = Box::new(move |s: &mut Scenario| {
                        let spec = IncastSpec {
                            senders: 2,
                            total_flows: v,
                        };
                        s.senders = 2;
                        s.flows_per_sender = (0..2).map(|i| spec.flows_for_sender(i)).collect();
                    });
                    (v.to_string(), f)
                })
                .collect(),
        );
        push(
            "topology",
            self.topology
                .iter()
                .map(|v| {
                    let v = v.clone();
                    let label = v.clone();
                    let f: Box<dyn Fn(&mut Scenario)> = Box::new(move |s: &mut Scenario| {
                        if v == "off" {
                            s.topology = None;
                            s.pattern = TrafficPattern::Incast;
                            return;
                        }
                        let kind = TopologyKind::parse(&v).expect("set_axis validated the kind");
                        let spec = match kind {
                            TopologyKind::Dumbbell => TopologySpec::dumbbell(s.senders as u32),
                            TopologyKind::LeafSpine => TopologySpec::leaf_spine(2, 2),
                            TopologyKind::FatTree => TopologySpec::fat_tree(4),
                        };
                        *s = s.clone().with_topology(spec);
                    });
                    (label, f)
                })
                .collect(),
        );
        push(
            "racks",
            self.racks
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(&mut Scenario)> = Box::new(move |s: &mut Scenario| {
                        if let Some(mut spec) = s.topology {
                            spec.racks = v;
                            *s = s.clone().with_topology(spec);
                        }
                    });
                    (v.to_string(), f)
                })
                .collect(),
        );
        push(
            "hosts_per_rack",
            self.hosts_per_rack
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(&mut Scenario)> = Box::new(move |s: &mut Scenario| {
                        if let Some(mut spec) = s.topology {
                            spec.hosts_per_rack = v;
                            *s = s.clone().with_topology(spec);
                        }
                    });
                    (v.to_string(), f)
                })
                .collect(),
        );
        push(
            "mtu",
            self.mtu
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(&mut Scenario)> = Box::new(move |s: &mut Scenario| s.mtu = v);
                    (v.to_string(), f)
                })
                .collect(),
        );
        push(
            "ecn_kb",
            self.ecn_kb
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(&mut Scenario)> = Box::new(move |s: &mut Scenario| {
                        s.switch.ecn_threshold_bytes = v * 1024;
                    });
                    (v.to_string(), f)
                })
                .collect(),
        );
        push(
            "drop",
            self.drop_chance
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(&mut Scenario)> =
                        Box::new(move |s: &mut Scenario| s.fault.drop_chance = v);
                    (fmt_f64(v), f)
                })
                .collect(),
        );
        push(
            "chaos",
            self.chaos
                .iter()
                .map(|v| {
                    let v = v.clone();
                    let label = v.clone();
                    let f: Box<dyn Fn(&mut Scenario)> = Box::new(move |s: &mut Scenario| {
                        s.chaos = (v != "off").then(|| v.clone());
                    });
                    (label, f)
                })
                .collect(),
        );
        push(
            "seed",
            self.seed
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(&mut Scenario)> =
                        Box::new(move |s: &mut Scenario| s.seed = v);
                    (v.to_string(), f)
                })
                .collect(),
        );
        axes
    }

    /// Structural checks that would otherwise surface as panics deep in
    /// `Scenario::validate` or as silently-inert axes.
    fn check(&self) -> Result<(), String> {
        if !self.flows.is_empty() && !self.incast.is_empty() {
            return Err("the flows and incast axes are mutually exclusive".into());
        }
        if !self.topology.is_empty() && (!self.flows.is_empty() || !self.incast.is_empty()) {
            return Err("the topology axis conflicts with the flows/incast axes \
                 (both reshape the sender set)"
                .into());
        }
        if (!self.racks.is_empty() || !self.hosts_per_rack.is_empty())
            && self.topology.is_empty()
            && self.base.topology.is_none()
        {
            return Err(
                "the racks/hosts_per_rack axes need a topology (axis or base scenario)".into(),
            );
        }
        let hostcc_possible = self.base.hostcc.is_some() && !self.hostcc.contains(&false)
            || self.hostcc.contains(&true);
        if !self.mba_level.is_empty() && hostcc_possible {
            return Err("the level axis (fixed MBA) conflicts with hostCC-enabled cells".into());
        }
        let hostcc_everywhere = (self.base.hostcc.is_some() && self.hostcc.is_empty())
            || (!self.hostcc.is_empty() && self.hostcc.iter().all(|&b| b));
        if (!self.bt_gbps.is_empty() || !self.it.is_empty()) && !hostcc_everywhere {
            return Err("the bt/it axes need hostCC enabled in every cell".into());
        }
        let cells = self.cell_count();
        if cells > MAX_CELLS {
            return Err(format!("grid has {cells} cells (cap {MAX_CELLS})"));
        }
        Ok(())
    }

    /// Expand the cartesian product into runnable cells, row-major with the
    /// first canonical axis varying slowest. Each cell's seed is derived
    /// from the (possibly seed-axis-overridden) base seed and the cell key.
    pub fn expand(&self) -> Result<Vec<Cell>, String> {
        self.check()?;
        let axes = self.axes();
        let total = self.cell_count();
        let mut cells = Vec::with_capacity(total);
        let mut odometer = vec![0usize; axes.len()];
        for index in 0..total {
            let mut scenario = self.base.clone();
            let mut params = Vec::with_capacity(axes.len());
            for (axis, &digit) in axes.iter().zip(&odometer) {
                let (label, setter) = &axis.values[digit];
                setter(&mut scenario);
                params.push((axis.name, label.clone()));
            }
            let key = params
                .iter()
                .map(|(n, v)| format!("{n}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            // Per-cell structural validation that depends on the resolved
            // parameter combination — reported as a value (the CLI's
            // non-zero-exit path), not a panic deep inside a sweep worker.
            if let Some(t) = &scenario.topology {
                t.validate()
                    .map_err(|e| format!("cell '{key}': invalid topology: {e}"))?;
            }
            scenario
                .check_chaos()
                .map_err(|e| format!("cell '{key}': {e}"))?;
            scenario.seed = derive_cell_seed(scenario.seed, &key);
            cells.push(Cell {
                index,
                key,
                params,
                scenario,
            });
            // Advance the odometer: last axis spins fastest.
            for pos in (0..axes.len()).rev() {
                odometer[pos] += 1;
                if odometer[pos] < axes[pos].values.len() {
                    break;
                }
                odometer[pos] = 0;
            }
        }
        Ok(cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_all_resolve_and_expand() {
        for &(_, name, _) in GridSpec::presets() {
            let spec = GridSpec::preset(name).unwrap_or_else(|| panic!("preset {name}"));
            let cells = spec.expand().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(cells.len(), spec.cell_count(), "{name}");
            for c in &cells {
                c.scenario.validate();
            }
        }
        assert!(GridSpec::preset("nope").is_none());
    }

    #[test]
    fn preset_family_vocabulary_is_pinned() {
        // `repro sweep --list` groups by these families; renaming or adding
        // one must update the pinned vocabulary (and the docs) on purpose.
        assert_eq!(
            GridSpec::PRESET_FAMILIES,
            ["scenario", "figure", "fault", "chaos", "topology"]
        );
        for &(family, name, _) in GridSpec::presets() {
            assert!(
                GridSpec::PRESET_FAMILIES.contains(&family),
                "preset '{name}' has unlisted family '{family}'"
            );
        }
        // Every family owns at least one preset, in listing order.
        let mut seen: Vec<&str> = Vec::new();
        for &(family, _, _) in GridSpec::presets() {
            if seen.last() != Some(&family) {
                seen.push(family);
            }
        }
        assert_eq!(seen, GridSpec::PRESET_FAMILIES, "listing order per family");
    }

    #[test]
    fn preset_cell_counts_match_paper_grids() {
        let count = |n: &str| GridSpec::preset(n).unwrap().cell_count();
        assert_eq!(count("baseline"), 1);
        assert_eq!(count("fig2"), 8);
        assert_eq!(count("fig3-mtu"), 6);
        assert_eq!(count("fig9"), 10);
        assert_eq!(count("fig13a"), 8);
        assert_eq!(count("fig16"), 10);
        assert_eq!(count("figure-grid"), 16);
    }

    #[test]
    fn expansion_is_row_major_in_canonical_order() {
        let cells = GridSpec::preset("fig2").unwrap().expand().unwrap();
        // ddio is the slow axis, degree the fast one.
        assert_eq!(cells[0].key, "ddio=off degree=0");
        assert_eq!(cells[3].key, "ddio=off degree=3");
        assert_eq!(cells[4].key, "ddio=on degree=0");
        assert_eq!(cells[7].key, "ddio=on degree=3");
        assert!(!cells[0].scenario.host.ddio_enabled);
        assert!(cells[4].scenario.host.ddio_enabled);
        assert_eq!(cells[3].scenario.mapp_degree, 3.0);
    }

    #[test]
    fn hostcc_axis_applies_after_ddio() {
        let cells = GridSpec::preset("figure-grid").unwrap().expand().unwrap();
        for c in &cells {
            let hostcc_on = c.get("hostcc") == Some("on");
            assert_eq!(c.scenario.hostcc.is_some(), hostcc_on, "{}", c.key);
            if hostcc_on {
                // enable_hostcc must have seen the cell's DDIO setting.
                let expect_it = if c.scenario.host.ddio_enabled {
                    50.0
                } else {
                    70.0
                };
                assert_eq!(
                    c.scenario.hostcc.as_ref().unwrap().it,
                    expect_it,
                    "{}",
                    c.key
                );
            }
        }
    }

    #[test]
    fn seeds_are_distinct_and_stable() {
        let spec = GridSpec::preset("figure-grid").unwrap();
        let cells = spec.expand().unwrap();
        let mut seeds: Vec<u64> = cells.iter().map(|c| c.scenario.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), cells.len(), "per-cell seeds must be unique");

        // Stability: the seed is a function of (base seed, key) only.
        for c in &cells {
            assert_eq!(c.scenario.seed, derive_cell_seed(spec.base.seed, &c.key));
        }

        // Adding values to an existing axis preserves prior cells' seeds.
        let mut wider = spec.clone();
        wider.degree.push(4.0);
        let wider_cells = wider.expand().unwrap();
        for c in &cells {
            let same = wider_cells.iter().find(|w| w.key == c.key).unwrap();
            assert_eq!(same.scenario.seed, c.scenario.seed);
        }
    }

    #[test]
    fn axis_free_grid_keeps_base_seed() {
        let cells = GridSpec::preset("baseline").unwrap().expand().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].key, "");
        assert_eq!(cells[0].scenario.seed, Scenario::paper_baseline().seed);
    }

    #[test]
    fn set_axis_parses_and_rejects() {
        let mut g = GridSpec::new("cli", Scenario::paper_baseline());
        g.set_axis("degree", "0, 1.5 ,3").unwrap();
        assert_eq!(g.degree, vec![0.0, 1.5, 3.0]);
        g.set_axis("hostcc", "off,on").unwrap();
        assert_eq!(g.hostcc, vec![false, true]);
        g.set_axis("cc", "dctcp,swift").unwrap();
        assert_eq!(
            g.cc,
            vec![
                CcSel::Kind(crate::scenario::CcKind::Dctcp),
                CcSel::Kind(crate::scenario::CcKind::Swift)
            ]
        );
        assert!(g.set_axis("bogus", "1").is_err());
        assert!(g.set_axis("mtu", "abc").is_err());
        let err = g.set_axis("cc", "quic").unwrap_err();
        assert!(err.contains("dcqcn"), "{err}");
        assert!(err.contains("bbr-lite"), "{err}");
        // An empty value list must not silently drop the axis.
        assert!(g.set_axis("degree", "").unwrap_err().contains("degree"));
        assert!(g.set_axis("hostcc", " , ").is_err());
        assert_eq!(g.cell_count(), 3 * 2 * 2);
    }

    #[test]
    fn structural_conflicts_are_rejected() {
        let mut g = GridSpec::new("bad", Scenario::paper_baseline());
        g.flows = vec![4];
        g.incast = vec![8];
        assert!(g.expand().is_err());

        let mut g = GridSpec::new("bad", Scenario::paper_baseline());
        g.hostcc = vec![true];
        g.mba_level = vec![2];
        assert!(g.expand().is_err());

        let mut g = GridSpec::new("bad", Scenario::paper_baseline());
        g.bt_gbps = vec![50.0];
        assert!(g.expand().is_err(), "bt without hostCC");

        let mut g = GridSpec::new("big", Scenario::paper_baseline());
        g.seed = (0..70_000).collect();
        assert!(g.expand().is_err(), "cell cap");
    }

    #[test]
    fn cc_mix_axis_reaches_the_scenario() {
        let mut g = GridSpec::new("mix", Scenario::paper_baseline());
        g.set_axis("cc", "dctcp,dctcp:4+cubic:4").unwrap();
        let cells = g.expand().unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].key, "cc=dctcp");
        assert!(cells[0].scenario.cc_mix.is_none());
        assert_eq!(cells[1].key, "cc=dctcp:4+cubic:4");
        let mix = cells[1].scenario.cc_mix.as_ref().expect("mix applied");
        assert_eq!(mix.total_flows(), 8);
        assert_eq!(cells[1].scenario.flows_per_sender, vec![8]);
        // Mix labels are part of the cell key, so they feed the per-cell
        // seed derivation like any other axis value.
        assert_ne!(cells[0].scenario.seed, cells[1].scenario.seed);
    }

    #[test]
    fn chaos_axis_reaches_the_scenario() {
        let mut g = GridSpec::new("c", Scenario::paper_baseline());
        g.set_axis("chaos", "off,flap,degrade@5ms:50%:1ms").unwrap();
        let cells = g.expand().unwrap();
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[0].scenario.chaos, None);
        assert_eq!(cells[1].scenario.chaos.as_deref(), Some("flap"));
        assert_eq!(
            cells[2].scenario.chaos.as_deref(),
            Some("degrade@5ms:50%:1ms")
        );
        assert_eq!(cells[1].key, "chaos=flap");
        // Bad specs are rejected at axis-parse time, not deep in a worker.
        let err = g.set_axis("chaos", "zap@2ms").unwrap_err();
        assert!(err.contains("off"), "{err}");
    }

    #[test]
    fn chaos_event_seeds_share_the_cell_seed_derivation() {
        // The chaos crate pins its per-event stream derivation to the same
        // FNV-1a + SplitMix64 scheme as the sweep's per-cell seeds; if one
        // side changes, replayability claims break silently. Lock them
        // together here, at the only crate that sees both.
        for (seed, key) in [
            (0u64, "chaos[0]:flap@4500000+400000"),
            (42, "ddio=off hostcc=on degree=3"),
            (0xdead_beef, ""),
        ] {
            assert_eq!(
                hostcc_chaos::derive_event_seed(seed, key),
                derive_cell_seed(seed, key),
                "seed derivations diverged for {key:?}"
            );
        }
    }

    #[test]
    fn ecmp_path_seeds_share_the_cell_seed_derivation() {
        // The fabric crate pins its ECMP path-choice derivation to the
        // same FNV-1a + SplitMix64 scheme as the sweep's per-cell seeds;
        // lock them together here, at the only crate that sees both.
        for (seed, key) in [
            (0u64, "ecmp:fat-tree-4:h0->h15:flow7"),
            (42, "ddio=off hostcc=on degree=3"),
            (0xdead_beef, ""),
        ] {
            assert_eq!(
                hostcc_fabric::derive_path_seed(seed, key),
                derive_cell_seed(seed, key),
                "seed derivations diverged for {key:?}"
            );
        }
    }

    #[test]
    fn topology_axes_reach_the_scenario() {
        let mut g = GridSpec::new("t", Scenario::with_congestion(3.0));
        g.set_axis("topology", "off,leaf-spine").unwrap();
        g.set_axis("racks", "2,3").unwrap();
        let cells = g.expand().unwrap();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].scenario.topology, None);
        let c = &cells[3];
        assert_eq!(c.key, "topology=leaf-spine racks=3");
        let spec = c.scenario.topology.expect("topology attached");
        assert_eq!(spec.racks, 3);
        // with_topology reshaped the sender set to match.
        assert_eq!(c.scenario.senders, spec.sender_count() as usize);
        // Unknown kinds and misplaced size axes are rejected up front.
        assert!(g.set_axis("topology", "torus").is_err());
        let mut lone = GridSpec::new("bad", Scenario::paper_baseline());
        lone.racks = vec![2];
        assert!(lone.expand().is_err(), "racks without a topology");
        let mut both = GridSpec::new("bad", Scenario::paper_baseline());
        both.topology = vec!["fat-tree".into()];
        both.incast = vec![8];
        assert!(both.expand().is_err(), "topology conflicts with incast");
    }

    #[test]
    fn chaos_link_targets_are_validated_per_cell() {
        // An untargeted link fault is ambiguous on a multi-link topology;
        // expand() must reject it as a value listing the valid targets —
        // mirroring the CLI's --telemetry-filter zero-match rejection —
        // instead of panicking inside a sweep worker.
        let mut g = GridSpec::new("t", Scenario::fat_tree_incast(4, 0.0));
        g.set_axis("chaos", "flap").unwrap();
        let err = g.expand().unwrap_err();
        assert!(err.contains("ambiguous link fault"), "{err}");
        assert!(err.contains("valid targets"), "{err}");

        g.set_axis("chaos", "flap@link:nope-nope@4500us+400us")
            .unwrap();
        let err = g.expand().unwrap_err();
        assert!(err.contains("matches no link"), "{err}");

        g.set_axis("chaos", "flap@link:p0e0-p0a0@4500us+400us")
            .unwrap();
        g.expand().expect("a resolvable target expands fine");
    }

    #[test]
    fn topology_presets_expand_to_multi_switch_cells() {
        let cells = GridSpec::preset("fat-tree-incast")
            .unwrap()
            .expand()
            .unwrap();
        assert_eq!(cells.len(), 2);
        for c in &cells {
            let spec = c.scenario.topology.expect("fat-tree preset");
            assert_eq!(spec.build().host_count(), 16, "k=4 fat tree");
            assert_eq!(c.scenario.senders, 15);
        }
        let cells = GridSpec::preset("leaf-spine").unwrap().expand().unwrap();
        assert_eq!(cells.len(), 4);
    }

    #[test]
    fn fault_and_ecn_axes_reach_the_scenario() {
        let mut g = GridSpec::new("f", Scenario::paper_baseline());
        g.drop_chance = vec![0.0, 1e-4];
        g.ecn_kb = vec![40, 80];
        let cells = g.expand().unwrap();
        assert_eq!(cells.len(), 4);
        // ecn_kb is the slow axis (canonical order), drop the fast one.
        assert_eq!(cells[1].scenario.fault.drop_chance, 1e-4);
        assert_eq!(cells[2].scenario.switch.ecn_threshold_bytes, 80 * 1024);
        assert_eq!(cells[2].key, "ecn_kb=80 drop=0");
    }
}
