//! Parallel, deterministic execution of experiment grids.
//!
//! Takes the [`Cell`]s of an expanded [`GridSpec`] and runs each one as an
//! independent simulation across an owned pool of worker threads with a
//! work-stealing queue. Determinism is structural, not scheduled: a cell's
//! RNG seed is derived from its parameter key (see
//! [`crate::grid::derive_cell_seed`]), every simulation is built *inside*
//! the worker that runs it, and nothing flows between cells — so per-cell
//! results are bit-identical no matter how many workers run the sweep or
//! which worker picks up which cell. Tests assert `--workers 1` equals
//! `--workers N` field for field.
//!
//! Each worker gives its simulation a counting-only tracer
//! ([`hostcc_trace::Tracer::counting`]) and a sim-rate profiler; at join
//! time the per-cell [`TraceCounts`] and signal read-latency CDFs are
//! merged (both merges are commutative) into a [`SweepManifest`] that also
//! carries the wall-clock totals and the parallel speedup. Only the
//! wall-clock numbers and worker assignments vary run to run; they are
//! excluded from the CSV export and the fingerprints.
//!
//! ```
//! use hostcc_experiments::grid::GridSpec;
//! use hostcc_experiments::sweep::{run_sweep, SweepOptions};
//! use hostcc_sim::Nanos;
//!
//! let mut spec = GridSpec::preset("fig2").unwrap();
//! spec.base.warmup = Nanos::from_micros(300);
//! spec.base.measure = Nanos::from_millis(1);
//! let manifest = run_sweep(&spec, &SweepOptions::default()).unwrap();
//! assert_eq!(manifest.cells.len(), 8);
//! println!("{}", manifest.summary_table().render());
//! ```

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use hostcc_flowscope::{FlowScope, FlowscopeHandle, FlowscopeResult, FlowscopeSummary};
use hostcc_metrics::{f2, pct, Cdf, Table};
use hostcc_perf::{PerfHandle, PerfProfiler, PerfReport};
use hostcc_telemetry::{Telemetry, TelemetryConfig, TelemetryHandle, TelemetrySummary};
use hostcc_trace::{SimRateProfiler, SimRateReport, TraceCounts, TraceFilter, TraceHandle, Tracer};

use crate::grid::{Cell, GridSpec};
use crate::{RunResult, Simulation};

/// How a sweep is executed (never *what* it computes — per-cell results
/// are identical for every option combination except `trace`, which adds
/// the deterministic trace counts).
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads; 0 means one per available CPU. Capped at the cell
    /// count.
    pub workers: usize,
    /// Give every cell a counting-only tracer and report per-kind event
    /// totals.
    pub trace: bool,
    /// Which event kinds the counting tracer records.
    pub trace_filter: TraceFilter,
    /// Attach a telemetry pipeline (gauge sampler + invariant watchdog) to
    /// every cell and merge the per-cell summaries into the manifest.
    pub telemetry: bool,
    /// Fail the sweep with the first watchdog diagnostic if any cell
    /// violates an invariant (implies `telemetry`).
    pub strict_invariants: bool,
    /// Give every cell a wall-clock attribution profiler
    /// ([`hostcc_perf::PerfProfiler`]) and merge the per-cell reports into
    /// the manifest. Wall-clock only: the profiled runs stay bit-identical
    /// and the merged report never enters the fingerprint or the CSV.
    pub perf: bool,
    /// Attach a flow-ledger recorder ([`hostcc_flowscope::FlowScope`]) to
    /// every cell: per-cell flow tables and stage-residency summaries land
    /// on the runs and a commutatively merged [`FlowscopeSummary`] on the
    /// manifest. Like telemetry, the per-cell fingerprints fold into the
    /// manifest fingerprint only when this is on — flows-off sweeps keep
    /// their original fingerprints.
    pub flows: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            workers: 0,
            trace: true,
            trace_filter: TraceFilter::all(),
            telemetry: false,
            strict_invariants: false,
            perf: false,
            flows: false,
        }
    }
}

/// Per-size RPC latency summary of one cell (flattened from the run's
/// histograms; sizes ascending).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcSummary {
    /// RPC payload size in bytes.
    pub size: u64,
    /// Completed RPCs of this size.
    pub count: u64,
    /// {P50, P90, P99, P99.9, P99.99} latency in nanoseconds (zeros if
    /// nothing completed).
    pub whiskers_ns: [u64; 5],
}

/// The deterministic measurements of one cell — every field is a pure
/// function of the cell's scenario (seed included), so serial and parallel
/// sweeps produce equal values. Wall-clock data lives on [`CellRun`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    /// Greedy-flow goodput in Gbps.
    pub goodput_gbps: f64,
    /// All-flow goodput (incl. RPC bytes) in Gbps.
    pub goodput_all_gbps: f64,
    /// Packet drop percentage.
    pub drop_rate_pct: f64,
    /// Drops at the receiver NIC.
    pub nic_drops: u64,
    /// Drops at the switch egress.
    pub switch_drops: u64,
    /// Data packets transmitted (incl. retransmissions).
    pub data_packets: u64,
    /// Peak NIC buffer occupancy in bytes.
    pub nic_peak_bytes: u64,
    /// Network-attributed memory-bandwidth utilisation.
    pub net_mem_util: f64,
    /// MApp memory-bandwidth utilisation.
    pub mapp_mem_util: f64,
    /// MApp application-level throughput in Gbps.
    pub mapp_app_gbps: f64,
    /// Retransmitted packets.
    pub retransmits: u64,
    /// RTO events.
    pub timeouts: u64,
    /// TLP probes.
    pub tlp_probes: u64,
    /// Packets CE-marked by hostCC's receiver echo.
    pub host_marks: u64,
    /// Packets CE-marked by the switch.
    pub fabric_marks: u64,
    /// Mean smoothed IIO occupancy `I_S`.
    pub mean_is: f64,
    /// Mean PCIe bandwidth in Gbps.
    pub mean_bs_gbps: f64,
    /// Mean effective MBA level.
    pub mean_level: f64,
    /// MBA MSR writes issued.
    pub mba_writes: u64,
    /// Per-size RPC latency summaries (empty without an RPC workload).
    pub rpc: Vec<RpcSummary>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a(h: &mut u64, word: u64) {
    for b in word.to_le_bytes() {
        *h = (*h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
}

impl CellMetrics {
    /// Flatten a [`RunResult`] to its deterministic scalars.
    pub fn from_result(r: &RunResult) -> Self {
        let mut sizes: Vec<u64> = r.rpc.keys().copied().collect();
        sizes.sort_unstable();
        let rpc = sizes
            .into_iter()
            .map(|size| RpcSummary {
                size,
                count: r.rpc[&size].count,
                whiskers_ns: r
                    .rpc_whiskers(size)
                    .map(|w| w.map(|n| n.as_nanos()))
                    .unwrap_or([0; 5]),
            })
            .collect();
        CellMetrics {
            goodput_gbps: r.goodput.as_gbps(),
            goodput_all_gbps: r.goodput_all.as_gbps(),
            drop_rate_pct: r.drop_rate_pct,
            nic_drops: r.nic_drops,
            switch_drops: r.switch_drops,
            data_packets: r.data_packets,
            nic_peak_bytes: r.nic_peak_bytes,
            net_mem_util: r.net_mem_util,
            mapp_mem_util: r.mapp_mem_util,
            mapp_app_gbps: r.mapp_app_gbps,
            retransmits: r.retransmits,
            timeouts: r.timeouts,
            tlp_probes: r.tlp_probes,
            host_marks: r.host_marks,
            fabric_marks: r.fabric_marks,
            mean_is: r.mean_is,
            mean_bs_gbps: r.mean_bs.as_gbps(),
            mean_level: r.mean_level,
            mba_writes: r.mba_writes,
            rpc,
        }
    }

    /// FNV-1a hash over every field (f64s via their bit patterns) — equal
    /// metrics hash equal, so serial/parallel identity can be asserted on
    /// one number per cell.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for v in [
            self.goodput_gbps,
            self.goodput_all_gbps,
            self.drop_rate_pct,
            self.net_mem_util,
            self.mapp_mem_util,
            self.mapp_app_gbps,
            self.mean_is,
            self.mean_bs_gbps,
            self.mean_level,
        ] {
            fnv1a(&mut h, v.to_bits());
        }
        for v in [
            self.nic_drops,
            self.switch_drops,
            self.data_packets,
            self.nic_peak_bytes,
            self.retransmits,
            self.timeouts,
            self.tlp_probes,
            self.host_marks,
            self.fabric_marks,
            self.mba_writes,
        ] {
            fnv1a(&mut h, v);
        }
        for r in &self.rpc {
            fnv1a(&mut h, r.size);
            fnv1a(&mut h, r.count);
            for w in r.whiskers_ns {
                fnv1a(&mut h, w);
            }
        }
        h
    }
}

/// One executed cell: the deterministic measurements plus the (run-varying)
/// execution record — which worker ran it and how long it took.
#[derive(Debug, Clone)]
pub struct CellRun {
    /// Position in the grid's expansion order.
    pub index: usize,
    /// The cell's canonical parameter key.
    pub key: String,
    /// The individual `(axis, value)` pairs.
    pub params: Vec<(&'static str, String)>,
    /// The derived per-cell RNG seed that was run.
    pub seed: u64,
    /// Deterministic measurements.
    pub metrics: CellMetrics,
    /// Deterministic per-kind trace-event totals (zeros when tracing was
    /// off).
    pub trace: TraceCounts,
    /// The cell's telemetry summary (None when telemetry was off). Its
    /// fingerprint is deterministic: equal at any worker count.
    pub telemetry: Option<TelemetrySummary>,
    /// First watchdog diagnostic, if any invariant was violated.
    pub telemetry_diagnostic: Option<String>,
    /// The cell's flow ledger and stage-residency breakdown (None when
    /// `SweepOptions::flows` was off). Deterministic: equal at any worker
    /// count.
    pub flowscope: Option<FlowscopeResult>,
    /// Simulation events processed (deterministic).
    pub events: u64,
    /// Simulated nanoseconds covered (deterministic).
    pub sim_ns: u64,
    /// Wall-clock seconds this cell took (varies run to run).
    pub wall_secs: f64,
    /// Worker thread that ran the cell (varies run to run).
    pub worker: usize,
    /// Per-scope wall-clock attribution (None when `SweepOptions::perf`
    /// was off; varies run to run).
    pub perf: Option<PerfReport>,
}

impl CellRun {
    /// The value this cell has on `axis`, if that axis is part of the grid.
    pub fn get(&self, axis: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(n, _)| *n == axis)
            .map(|(_, v)| v.as_str())
    }
}

/// What one worker hands back at join time.
struct WorkerOut {
    runs: Vec<CellRun>,
    read_is: Cdf,
    read_bs: Cdf,
}

fn resolve_workers(requested: usize, jobs: usize) -> usize {
    let n = if requested == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        requested
    };
    n.clamp(1, jobs.max(1))
}

fn next_job(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    if let Some(i) = queues[me].lock().unwrap().pop_front() {
        return Some(i);
    }
    // Steal from the back of the other workers' queues.
    let n = queues.len();
    for d in 1..n {
        if let Some(i) = queues[(me + d) % n].lock().unwrap().pop_back() {
            return Some(i);
        }
    }
    None
}

fn run_one(cell: &Cell, opts: &SweepOptions, worker: usize) -> (CellRun, Cdf, Cdf) {
    let mut sim = Simulation::new(cell.scenario.clone());
    if opts.trace {
        sim.set_trace(TraceHandle::new(Tracer::counting(opts.trace_filter)));
    }
    if opts.telemetry || opts.strict_invariants {
        sim.set_telemetry(TelemetryHandle::new(Telemetry::new(TelemetryConfig {
            strict: opts.strict_invariants,
            ..Default::default()
        })));
    }
    if opts.perf {
        sim.set_perf(PerfHandle::new(PerfProfiler::new()));
    }
    if opts.flows {
        sim.set_flowscope(FlowscopeHandle::new(FlowScope::new()));
    }
    let profiler = SimRateProfiler::start(sim.events_processed(), sim.now());
    let result = sim.run();
    let report = profiler.finish(sim.events_processed(), sim.now());
    let perf = sim.perf().report();
    let run = CellRun {
        index: cell.index,
        key: cell.key.clone(),
        params: cell.params.clone(),
        seed: cell.scenario.seed,
        metrics: CellMetrics::from_result(&result),
        trace: result.trace.unwrap_or_default(),
        telemetry: result.telemetry.as_ref().map(|t| t.summary.clone()),
        telemetry_diagnostic: result.telemetry.as_ref().and_then(|t| t.diagnostic.clone()),
        flowscope: result.flowscope,
        events: report.events,
        sim_ns: report.sim_ns,
        wall_secs: report.wall_secs,
        worker,
        perf,
    };
    (run, result.read_is_cdf, result.read_bs_cdf)
}

/// Run `cells` across `workers` threads; returns `(runs sorted by cell
/// index, merged R_OCC read-latency CDF, merged R_INS read-latency CDF)`.
fn run_cells_full(cells: &[Cell], opts: &SweepOptions, workers: usize) -> (Vec<CellRun>, Cdf, Cdf) {
    // Round-robin initial distribution; idle workers steal from the back.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..cells.len()).step_by(workers).collect()))
        .collect();
    let outs: Vec<WorkerOut> = std::thread::scope(|scope| {
        let queues = &queues;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut out = WorkerOut {
                        runs: Vec::new(),
                        read_is: Cdf::new(),
                        read_bs: Cdf::new(),
                    };
                    while let Some(i) = next_job(queues, w) {
                        let (run, is, bs) = run_one(&cells[i], opts, w);
                        out.runs.push(run);
                        out.read_is.merge(&is);
                        out.read_bs.merge(&bs);
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    let mut runs = Vec::with_capacity(cells.len());
    let mut read_is = Cdf::new();
    let mut read_bs = Cdf::new();
    for out in outs {
        runs.extend(out.runs);
        read_is.merge(&out.read_is);
        read_bs.merge(&out.read_bs);
    }
    runs.sort_by_key(|r| r.index);
    (runs, read_is, read_bs)
}

/// Execute expanded cells and return the per-cell runs in grid order.
///
/// This is the raw engine entry point; [`run_sweep`] wraps it with
/// aggregation into a [`SweepManifest`]. Everything but `wall_secs` and
/// `worker` on the returned runs is bit-identical for any worker count.
pub fn run_cells(cells: &[Cell], opts: &SweepOptions) -> Vec<CellRun> {
    let workers = resolve_workers(opts.workers, cells.len());
    run_cells_full(cells, opts, workers).0
}

/// Expand a grid and run it, aggregating everything into a manifest.
pub fn run_sweep(spec: &GridSpec, opts: &SweepOptions) -> Result<SweepManifest, String> {
    let cells = spec.expand()?;
    let workers = resolve_workers(opts.workers, cells.len());
    let start = Instant::now();
    let (runs, mut read_is, mut read_bs) = run_cells_full(&cells, opts, workers);
    let wall_secs = start.elapsed().as_secs_f64();

    let mut trace_totals = TraceCounts::default();
    let mut telemetry_totals: Option<TelemetrySummary> = None;
    let mut flowscope_totals: Option<FlowscopeSummary> = None;
    let mut perf_totals: Option<PerfReport> = None;
    let mut cell_wall_secs = 0.0;
    let mut events = 0u64;
    let mut sim_ns = 0u64;
    let mut fingerprint = FNV_OFFSET;
    // Runs are sorted by cell index, so every merge and fingerprint fold
    // below happens in grid order regardless of worker count. Wall-clock
    // data (cell_wall_secs, perf reports) is merged but NEVER folded into
    // the fingerprint.
    for r in &runs {
        trace_totals.merge(&r.trace);
        cell_wall_secs += r.wall_secs;
        events += r.events;
        sim_ns += r.sim_ns;
        fnv1a(&mut fingerprint, r.index as u64);
        fnv1a(&mut fingerprint, r.seed);
        fnv1a(&mut fingerprint, r.metrics.fingerprint());
        if let Some(s) = &r.telemetry {
            fnv1a(&mut fingerprint, s.fingerprint());
            telemetry_totals
                .get_or_insert_with(TelemetrySummary::default)
                .merge(s);
        }
        if let Some(f) = &r.flowscope {
            fnv1a(&mut fingerprint, f.fingerprint());
            flowscope_totals
                .get_or_insert_with(FlowscopeSummary::default)
                .merge(&f.summary);
        }
        if let Some(p) = &r.perf {
            perf_totals.get_or_insert_with(PerfReport::default).merge(p);
        }
    }
    if opts.strict_invariants {
        for r in &runs {
            let violations = r.telemetry.as_ref().map_or(0, |s| s.total_violations());
            if violations > 0 {
                let label = if r.key.is_empty() { "(base)" } else { &r.key };
                return Err(format!(
                    "strict invariants: cell {} {label}: {}",
                    r.index,
                    r.telemetry_diagnostic
                        .clone()
                        .unwrap_or_else(|| "invariant violated".to_string())
                ));
            }
        }
    }
    let q = |cdf: &mut Cdf, q: f64| cdf.quantile(q).map(|n| n.as_nanos());
    Ok(SweepManifest {
        name: spec.name.clone(),
        workers,
        read_is_p50_ns: q(&mut read_is, 0.50),
        read_is_p99_ns: q(&mut read_is, 0.99),
        read_bs_p50_ns: q(&mut read_bs, 0.50),
        read_bs_p99_ns: q(&mut read_bs, 0.99),
        cells: runs,
        trace_totals,
        telemetry: telemetry_totals,
        flowscope: flowscope_totals,
        perf: perf_totals,
        wall_secs,
        cell_wall_secs,
        events,
        sim_ns,
        fingerprint,
    })
}

/// Aggregated outcome of one sweep: every cell's run plus sweep-wide
/// totals. Exported as JSON ([`SweepManifest::to_json`]) and CSV
/// ([`SweepManifest::to_csv`]); the CSV carries only deterministic columns
/// so serial and parallel exports are byte-identical.
#[derive(Debug, Clone)]
pub struct SweepManifest {
    /// Grid name.
    pub name: String,
    /// Worker threads actually used.
    pub workers: usize,
    /// Per-cell runs, in grid expansion order.
    pub cells: Vec<CellRun>,
    /// Trace-event totals summed over all cells (zeros if tracing off).
    pub trace_totals: TraceCounts,
    /// Telemetry summaries merged over all cells, in grid order (None when
    /// telemetry was off).
    pub telemetry: Option<TelemetrySummary>,
    /// Flow-ledger summaries merged over all cells, in grid order (None
    /// when `SweepOptions::flows` was off). The merge is commutative, so
    /// the value is equal at any worker count.
    pub flowscope: Option<FlowscopeSummary>,
    /// Wall-clock attribution merged over all cells (None when
    /// `SweepOptions::perf` was off). Non-deterministic, and — like every
    /// wall-clock field — excluded from the fingerprint and the CSV.
    pub perf: Option<PerfReport>,
    /// Whole-sweep elapsed wall-clock seconds.
    pub wall_secs: f64,
    /// Sum of per-cell wall-clock seconds (the serial-equivalent cost).
    pub cell_wall_secs: f64,
    /// Simulation events processed across all cells (deterministic).
    pub events: u64,
    /// Simulated nanoseconds covered across all cells (deterministic).
    pub sim_ns: u64,
    /// Median `R_OCC` signal read latency in ns (None if unsampled).
    pub read_is_p50_ns: Option<u64>,
    /// P99 `R_OCC` signal read latency in ns.
    pub read_is_p99_ns: Option<u64>,
    /// Median `R_INS` signal read latency in ns.
    pub read_bs_p50_ns: Option<u64>,
    /// P99 `R_INS` signal read latency in ns.
    pub read_bs_p99_ns: Option<u64>,
    /// FNV-1a over `(index, seed, metrics fingerprint)` of every cell —
    /// one number that pins the whole sweep's deterministic output.
    pub fingerprint: u64,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn json_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

/// RFC 4180 field quoting: wrap in double quotes (doubling embedded
/// quotes) only when the field contains a comma, quote, CR or LF. Plain
/// fields pass through untouched, so exports of today's grids — whose
/// parameter values never need quoting — stay byte-identical.
pub fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\r', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Split one single-line CSV record into its fields, undoing
/// [`csv_escape`]: quoted fields may contain commas and doubled quotes.
/// The inverse of joining escaped fields with `,` — see the round-trip
/// test.
pub fn csv_parse_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' if cur.is_empty() => quoted = true,
            ',' if !quoted => fields.push(std::mem::take(&mut cur)),
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

impl SweepManifest {
    /// Parallel speedup: serial-equivalent cost over elapsed wall time.
    pub fn speedup(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            0.0
        } else {
            self.cell_wall_secs / self.wall_secs
        }
    }

    /// The sweep-wide sim-rate view: total events and simulated time over
    /// the elapsed wall time. Wall-clock data — non-deterministic, never
    /// fingerprinted; the JSON export surfaces it as the `sim_rate`
    /// sidecar block.
    pub fn sim_rate(&self) -> SimRateReport {
        SimRateReport {
            wall_secs: self.wall_secs,
            events: self.events,
            sim_ns: self.sim_ns,
        }
    }

    /// Sweep-wide simulation rate in events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.sim_rate().events_per_sec()
    }

    /// The manifest as a JSON document (hand-rolled: the repo carries no
    /// serialization dependency). Wall-clock fields are included here —
    /// diff the CSV, not the JSON, when checking determinism.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096 + self.cells.len() * 512);
        s.push_str("{\n");
        s.push_str(&format!("  \"name\": \"{}\",\n", json_escape(&self.name)));
        s.push_str(&format!("  \"workers\": {},\n", self.workers));
        s.push_str(&format!("  \"cell_count\": {},\n", self.cells.len()));
        s.push_str(&format!("  \"wall_secs\": {},\n", json_f64(self.wall_secs)));
        s.push_str(&format!(
            "  \"cell_wall_secs\": {},\n",
            json_f64(self.cell_wall_secs)
        ));
        s.push_str(&format!("  \"speedup\": {},\n", json_f64(self.speedup())));
        s.push_str(&format!("  \"events\": {},\n", self.events));
        s.push_str(&format!("  \"sim_ns\": {},\n", self.sim_ns));
        // Sim-rate sidecar: aggregate events/sec and friends, emitted by
        // the one shared SimRateReport::to_json. Wall-clock derived, so
        // non-deterministic — compare the CSV, not this block.
        s.push_str(&format!("  \"sim_rate\": {},\n", self.sim_rate().to_json()));
        if let Some(p) = &self.perf {
            s.push_str(&format!("  \"perf\": {},\n", p.to_json()));
        }
        s.push_str(&format!(
            "  \"fingerprint\": \"{:#018x}\",\n",
            self.fingerprint
        ));
        s.push_str(&format!(
            "  \"read_latency_ns\": {{\"is_p50\": {}, \"is_p99\": {}, \"bs_p50\": {}, \"bs_p99\": {}}},\n",
            json_opt(self.read_is_p50_ns),
            json_opt(self.read_is_p99_ns),
            json_opt(self.read_bs_p50_ns),
            json_opt(self.read_bs_p99_ns),
        ));
        if let Some(t) = &self.telemetry {
            s.push_str(&format!(
                "  \"telemetry\": {{\"samples\": {}, \"checks\": {}, \
                 \"watchdog_violations\": {}, \"fingerprint\": \"{:#018x}\"}},\n",
                t.samples,
                t.checks,
                t.total_violations(),
                t.fingerprint()
            ));
        }
        if let Some(f) = &self.flowscope {
            s.push_str(&format!(
                "  \"flowscope\": {{\"completed\": {}, \"dropped\": {}, \
                 \"conservation_failures\": {}, \"stage_total_ns\": {}, \
                 \"e2e_total_ns\": {}, \"fingerprint\": \"{:#018x}\"}},\n",
                f.completed,
                f.dropped,
                f.conservation_failures,
                f.stage_grand_total_ns(),
                f.e2e_total_ns,
                f.fingerprint()
            ));
        }
        s.push_str("  \"trace_totals\": {");
        let mut first = true;
        for (kind, count) in self.trace_totals.iter() {
            if !first {
                s.push_str(", ");
            }
            first = false;
            s.push_str(&format!("\"{}\": {}", kind.name(), count));
        }
        s.push_str("},\n");
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!("\"index\": {}, ", c.index));
            s.push_str(&format!("\"key\": \"{}\", ", json_escape(&c.key)));
            s.push_str("\"params\": {");
            for (j, (name, value)) in c.params.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{name}\": \"{}\"", json_escape(value)));
            }
            s.push_str("}, ");
            s.push_str(&format!("\"seed\": {}, ", c.seed));
            s.push_str(&format!("\"worker\": {}, ", c.worker));
            s.push_str(&format!("\"wall_secs\": {}, ", json_f64(c.wall_secs)));
            s.push_str(&format!("\"events\": {}, ", c.events));
            s.push_str(&format!("\"sim_ns\": {}, ", c.sim_ns));
            s.push_str(&format!("\"trace_total\": {}, ", c.trace.total()));
            if let Some(ts) = &c.telemetry {
                s.push_str(&format!(
                    "\"telemetry_fingerprint\": \"{:#018x}\", \"watchdog_violations\": {}, ",
                    ts.fingerprint(),
                    ts.total_violations()
                ));
            }
            if let Some(fs) = &c.flowscope {
                s.push_str(&format!(
                    "\"flowscope_fingerprint\": \"{:#018x}\", \"flowscope_jain\": {}, \
                     \"flowscope_conservation_failures\": {}, ",
                    fs.fingerprint(),
                    json_f64(fs.jain),
                    fs.summary.conservation_failures
                ));
            }
            s.push_str(&format!(
                "\"fingerprint\": \"{:#018x}\", ",
                c.metrics.fingerprint()
            ));
            let m = &c.metrics;
            s.push_str("\"metrics\": {");
            let fields: [(&str, String); 19] = [
                ("goodput_gbps", json_f64(m.goodput_gbps)),
                ("goodput_all_gbps", json_f64(m.goodput_all_gbps)),
                ("drop_rate_pct", json_f64(m.drop_rate_pct)),
                ("nic_drops", m.nic_drops.to_string()),
                ("switch_drops", m.switch_drops.to_string()),
                ("data_packets", m.data_packets.to_string()),
                ("nic_peak_bytes", m.nic_peak_bytes.to_string()),
                ("net_mem_util", json_f64(m.net_mem_util)),
                ("mapp_mem_util", json_f64(m.mapp_mem_util)),
                ("mapp_app_gbps", json_f64(m.mapp_app_gbps)),
                ("retransmits", m.retransmits.to_string()),
                ("timeouts", m.timeouts.to_string()),
                ("tlp_probes", m.tlp_probes.to_string()),
                ("host_marks", m.host_marks.to_string()),
                ("fabric_marks", m.fabric_marks.to_string()),
                ("mean_is", json_f64(m.mean_is)),
                ("mean_bs_gbps", json_f64(m.mean_bs_gbps)),
                ("mean_level", json_f64(m.mean_level)),
                ("mba_writes", m.mba_writes.to_string()),
            ];
            for (j, (name, value)) in fields.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{name}\": {value}"));
            }
            s.push_str("}, ");
            s.push_str("\"rpc\": [");
            for (j, r) in m.rpc.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "{{\"size\": {}, \"count\": {}, \"whiskers_ns\": [{}, {}, {}, {}, {}]}}",
                    r.size,
                    r.count,
                    r.whiskers_ns[0],
                    r.whiskers_ns[1],
                    r.whiskers_ns[2],
                    r.whiskers_ns[3],
                    r.whiskers_ns[4],
                ));
            }
            s.push_str("]}");
            if i + 1 < self.cells.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Per-cell results as CSV: one parameter column per grid axis, then
    /// the metrics. Only deterministic columns — `diff` of a serial and a
    /// parallel export of the same grid is empty.
    pub fn to_csv(&self) -> String {
        let axes: Vec<&'static str> = self
            .cells
            .first()
            .map(|c| c.params.iter().map(|(n, _)| *n).collect())
            .unwrap_or_default();
        let mut s = String::new();
        s.push_str("index,seed");
        for a in &axes {
            s.push_str(&format!(",{a}"));
        }
        s.push_str(
            ",goodput_gbps,goodput_all_gbps,drop_rate_pct,nic_drops,switch_drops,\
             data_packets,nic_peak_bytes,net_mem_util,mapp_mem_util,mapp_app_gbps,\
             retransmits,timeouts,tlp_probes,host_marks,fabric_marks,mean_is,\
             mean_bs_gbps,mean_level,mba_writes,trace_total,events,sim_ns,fingerprint\n",
        );
        for c in &self.cells {
            let m = &c.metrics;
            s.push_str(&format!("{},{}", c.index, c.seed));
            for (_, value) in &c.params {
                s.push_str(&format!(",{}", csv_escape(value)));
            }
            s.push_str(&format!(
                ",{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:#018x}\n",
                json_f64(m.goodput_gbps),
                json_f64(m.goodput_all_gbps),
                json_f64(m.drop_rate_pct),
                m.nic_drops,
                m.switch_drops,
                m.data_packets,
                m.nic_peak_bytes,
                json_f64(m.net_mem_util),
                json_f64(m.mapp_mem_util),
                json_f64(m.mapp_app_gbps),
                m.retransmits,
                m.timeouts,
                m.tlp_probes,
                m.host_marks,
                m.fabric_marks,
                json_f64(m.mean_is),
                json_f64(m.mean_bs_gbps),
                json_f64(m.mean_level),
                m.mba_writes,
                c.trace.total(),
                c.events,
                c.sim_ns,
                m.fingerprint(),
            ));
        }
        s
    }

    /// A compact per-cell table for terminal output.
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new([
            "cell", "goodput", "drop%", "mean I_S", "level", "retx", "events",
        ]);
        for c in &self.cells {
            let label = if c.key.is_empty() { "(base)" } else { &c.key };
            t.row([
                label.to_string(),
                f2(c.metrics.goodput_gbps),
                pct(c.metrics.drop_rate_pct),
                f2(c.metrics.mean_is),
                f2(c.metrics.mean_level),
                c.metrics.retransmits.to_string(),
                c.events.to_string(),
            ]);
        }
        t
    }

    /// One-line execution summary (wall clock, speedup, sim rate).
    pub fn render_stats(&self) -> String {
        format!(
            "{}: {} cells on {} workers in {:.2} s wall ({:.2} s serial-equivalent, {:.2}x speedup, {:.0} ev/s)",
            self.name,
            self.cells.len(),
            self.workers,
            self.wall_secs,
            self.cell_wall_secs,
            self.speedup(),
            self.events_per_sec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;
    use hostcc_sim::Nanos;

    fn tiny(mut s: Scenario) -> Scenario {
        s.warmup = Nanos::from_micros(200);
        s.measure = Nanos::from_micros(600);
        s
    }

    fn tiny_grid() -> GridSpec {
        let mut g = GridSpec::new("tiny", tiny(Scenario::paper_baseline()));
        g.hostcc = vec![false, true];
        g.degree = vec![0.0, 3.0];
        g
    }

    #[test]
    fn serial_and_parallel_runs_are_bit_identical() {
        let cells = tiny_grid().expand().unwrap();
        let serial = run_cells(
            &cells,
            &SweepOptions {
                workers: 1,
                ..SweepOptions::default()
            },
        );
        let parallel = run_cells(
            &cells,
            &SweepOptions {
                workers: 4,
                ..SweepOptions::default()
            },
        );
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.key, b.key);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.metrics, b.metrics, "cell {}", a.key);
            assert_eq!(a.trace, b.trace, "cell {}", a.key);
            assert_eq!(a.events, b.events);
            assert_eq!(a.sim_ns, b.sim_ns);
            assert_eq!(a.metrics.fingerprint(), b.metrics.fingerprint());
        }
    }

    #[test]
    fn manifest_aggregates_and_exports() {
        let spec = tiny_grid();
        let m = run_sweep(
            &spec,
            &SweepOptions {
                workers: 2,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(m.cells.len(), 4);
        assert_eq!(m.workers, 2);
        assert!(m.events > 0);
        assert_eq!(m.sim_ns, m.cells.iter().map(|c| c.sim_ns).sum::<u64>());
        assert!(m.trace_totals.total() > 0, "counting tracer was on");
        assert!(m.read_is_p50_ns.is_some());
        assert!(m.wall_secs > 0.0 && m.cell_wall_secs > 0.0);

        let json = m.to_json();
        assert!(json.contains("\"name\": \"tiny\""));
        assert!(json.contains("\"cell_count\": 4"));
        assert!(json.ends_with("}\n"));

        let csv = m.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5, "header + one row per cell");
        assert!(lines[0].starts_with("index,seed,hostcc,degree,goodput_gbps"));

        assert_eq!(m.summary_table().len(), 4);
        assert!(m.render_stats().contains("4 cells on 2 workers"));
    }

    #[test]
    fn csv_is_identical_across_worker_counts() {
        let spec = tiny_grid();
        let serial = run_sweep(
            &spec,
            &SweepOptions {
                workers: 1,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        let parallel = run_sweep(
            &spec,
            &SweepOptions {
                workers: 3,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(serial.fingerprint, parallel.fingerprint);
    }

    #[test]
    fn tracing_off_leaves_counts_empty_and_metrics_unchanged() {
        let cells = tiny_grid().expand().unwrap();
        let with = run_cells(
            &cells,
            &SweepOptions {
                workers: 2,
                ..SweepOptions::default()
            },
        );
        let without = run_cells(
            &cells,
            &SweepOptions {
                workers: 2,
                trace: false,
                ..SweepOptions::default()
            },
        );
        for (a, b) in with.iter().zip(&without) {
            assert_eq!(a.metrics, b.metrics, "tracing must not perturb results");
            assert_eq!(b.trace.total(), 0);
        }
        assert!(with.iter().any(|r| r.trace.total() > 0));
    }

    #[test]
    fn csv_quoting_round_trips() {
        let fields = [
            "plain",
            "with,comma",
            "with \"quotes\"",
            "both,\"of\",them",
            "",
            "4096",
        ];
        let line = fields
            .iter()
            .map(|f| csv_escape(f))
            .collect::<Vec<_>>()
            .join(",");
        assert_eq!(csv_parse_record(&line), fields);
        assert_eq!(csv_escape("plain"), "plain", "clean fields stay unquoted");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn existing_csv_rows_parse_to_their_fields() {
        let spec = tiny_grid();
        let m = run_sweep(&spec, &SweepOptions::default()).unwrap();
        let csv = m.to_csv();
        let header = csv_parse_record(csv.lines().next().unwrap());
        for line in csv.lines().skip(1) {
            assert_eq!(csv_parse_record(line).len(), header.len());
        }
    }

    #[test]
    fn telemetry_summaries_are_deterministic_and_merged() {
        let spec = tiny_grid();
        let opts = |workers| SweepOptions {
            workers,
            telemetry: true,
            strict_invariants: true,
            ..SweepOptions::default()
        };
        let serial = run_sweep(&spec, &opts(1)).unwrap();
        let parallel = run_sweep(&spec, &opts(4)).unwrap();
        assert_eq!(serial.fingerprint, parallel.fingerprint);
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            let sa = a.telemetry.as_ref().expect("telemetry was on");
            let sb = b.telemetry.as_ref().expect("telemetry was on");
            assert_eq!(sa.fingerprint(), sb.fingerprint(), "cell {}", a.key);
            assert_eq!(sa.total_violations(), 0, "{:?}", a.telemetry_diagnostic);
        }
        let total = serial.telemetry.as_ref().expect("merged summary present");
        assert_eq!(
            total.samples,
            serial
                .cells
                .iter()
                .map(|c| c.telemetry.as_ref().unwrap().samples)
                .sum::<u64>()
        );
        let json = serial.to_json();
        assert!(json.contains("\"watchdog_violations\": 0"), "{json}");
        assert!(json.contains("\"telemetry_fingerprint\""));

        // Telemetry folds into the manifest fingerprint; a telemetry-off
        // sweep of the same grid keeps its original fingerprint.
        let without = run_sweep(
            &spec,
            &SweepOptions {
                workers: 1,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert!(without.telemetry.is_none());
        assert_ne!(without.fingerprint, serial.fingerprint);
        assert!(!without.to_json().contains("telemetry_fingerprint"));
    }

    #[test]
    fn flowscope_summaries_are_deterministic_and_merged() {
        let spec = tiny_grid();
        let opts = |workers| SweepOptions {
            workers,
            flows: true,
            ..SweepOptions::default()
        };
        let serial = run_sweep(&spec, &opts(1)).unwrap();
        let parallel = run_sweep(&spec, &opts(4)).unwrap();
        assert_eq!(serial.fingerprint, parallel.fingerprint);
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            let fa = a.flowscope.as_ref().expect("flows was on");
            let fb = b.flowscope.as_ref().expect("flows was on");
            assert_eq!(fa.fingerprint(), fb.fingerprint(), "cell {}", a.key);
            assert!(fa.conservation_holds(), "cell {}", a.key);
        }
        let total = serial.flowscope.as_ref().expect("merged summary present");
        assert_eq!(
            total.completed,
            serial
                .cells
                .iter()
                .map(|c| c.flowscope.as_ref().unwrap().summary.completed)
                .sum::<u64>()
        );
        assert_eq!(total.stage_grand_total_ns(), total.e2e_total_ns);
        let json = serial.to_json();
        assert!(json.contains("\"flowscope_fingerprint\""), "{json}");
        assert!(json.contains("\"flowscope\": {\"completed\": "), "{json}");

        // Flows-off sweeps keep their original fingerprints and CSV: the
        // recorder never perturbs the cells, and its fingerprints only
        // fold in when the option is on.
        let without = run_sweep(
            &spec,
            &SweepOptions {
                workers: 1,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert!(without.flowscope.is_none());
        assert_ne!(without.fingerprint, serial.fingerprint);
        assert_eq!(without.to_csv(), serial.to_csv());
        for (a, b) in without.cells.iter().zip(&serial.cells) {
            assert_eq!(a.metrics, b.metrics, "recorder must not perturb cells");
        }
        assert!(!without.to_json().contains("flowscope_fingerprint"));
    }

    #[test]
    fn perf_option_keeps_fingerprints_and_surfaces_sim_rate_sidecar() {
        let spec = tiny_grid();
        let plain = run_sweep(
            &spec,
            &SweepOptions {
                workers: 1,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        let profiled = run_sweep(
            &spec,
            &SweepOptions {
                workers: 1,
                perf: true,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        // Profiling is wall-clock only: the deterministic outputs are
        // bit-identical with it on.
        assert_eq!(plain.fingerprint, profiled.fingerprint);
        assert_eq!(plain.to_csv(), profiled.to_csv());
        assert!(plain.perf.is_none());
        let perf = profiled.perf.as_ref().expect("merged perf report");
        assert!(perf.total_ns > 0);
        assert!(perf.attributed_frac() >= 0.95);
        // The sim_rate sidecar block comes from SimRateReport::to_json
        // and appears regardless of the perf option; the perf block only
        // when profiling was on.
        for json in [plain.to_json(), profiled.to_json()] {
            assert!(json.contains("\"sim_rate\": {\"wall_secs\": "), "{json}");
            assert!(json.contains("\"events_per_sec\": "), "{json}");
        }
        assert!(!plain.to_json().contains("\"perf\": "));
        assert!(profiled.to_json().contains("\"perf\": {\"total_ns\": "));
        let rate = profiled.sim_rate();
        assert_eq!(rate.events, profiled.events);
        assert_eq!(rate.sim_ns, profiled.sim_ns);
    }

    #[test]
    fn chaos_sweeps_are_bit_identical_across_worker_counts() {
        // Chaos injections draw from per-event RNG streams derived purely
        // from (cell seed, event content); nothing may depend on which
        // worker runs the cell. Warmup/measure must cover the preset fault
        // windows (4.2–5.7 ms) so the injections actually fire.
        let mut g = GridSpec::new("chaos-tiny", Scenario::with_congestion(2.0));
        g.base.warmup = Nanos::from_millis(2);
        g.base.measure = Nanos::from_millis(4);
        g.hostcc = vec![false, true];
        g.set_axis("chaos", "off,flap,burst-loss").unwrap();
        let opts = |workers| SweepOptions {
            workers,
            telemetry: true,
            strict_invariants: true,
            ..SweepOptions::default()
        };
        let serial = run_sweep(&g, &opts(1)).unwrap();
        let parallel = run_sweep(&g, &opts(4)).unwrap();
        assert_eq!(serial.cells.len(), 6);
        assert_eq!(serial.fingerprint, parallel.fingerprint);
        assert_eq!(serial.to_csv(), parallel.to_csv());
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(a.metrics, b.metrics, "cell {}", a.key);
            let sa = a.telemetry.as_ref().expect("telemetry was on");
            let sb = b.telemetry.as_ref().expect("telemetry was on");
            assert_eq!(sa.fingerprint(), sb.fingerprint(), "cell {}", a.key);
            if a.get("chaos") != Some("off") {
                assert!(
                    sa.counters["chaos.injections"] >= 2,
                    "chaos must fire in cell {}",
                    a.key
                );
            }
        }
    }

    #[test]
    fn fat_tree_sweeps_are_bit_identical_across_worker_counts() {
        // The ISSUE's acceptance gate: the fat-tree incast preset (k=4,
        // 16 hosts, 15:1 fan-in over ECMP-routed multi-hop paths) must
        // produce byte-identical manifests at any worker count, conserve
        // flowscope latency exactly on every cell, and run clean of
        // watchdog violations.
        let mut g = GridSpec::preset("fat-tree-incast").unwrap();
        g.base.warmup = Nanos::from_millis(2);
        g.base.measure = Nanos::from_millis(4);
        let opts = |workers| SweepOptions {
            workers,
            telemetry: true,
            strict_invariants: true,
            flows: true,
            ..SweepOptions::default()
        };
        let serial = run_sweep(&g, &opts(1)).unwrap();
        let parallel = run_sweep(&g, &opts(4)).unwrap();
        assert_eq!(serial.cells.len(), 2);
        assert_eq!(serial.fingerprint, parallel.fingerprint);
        assert_eq!(serial.to_csv(), parallel.to_csv());
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(a.metrics, b.metrics, "cell {}", a.key);
            let fa = a.flowscope.as_ref().expect("flows was on");
            assert_eq!(
                fa.fingerprint(),
                b.flowscope.as_ref().unwrap().fingerprint(),
                "cell {}",
                a.key
            );
            assert!(fa.conservation_holds(), "cell {}", a.key);
            assert_eq!(fa.orphan_stamps, 0, "cell {}", a.key);
            let t = a.telemetry.as_ref().expect("telemetry was on");
            assert_eq!(
                t.total_violations(),
                0,
                "cell {}: {:?}",
                a.key,
                a.telemetry_diagnostic
            );
        }
    }

    #[test]
    fn worker_resolution() {
        assert_eq!(resolve_workers(1, 10), 1);
        assert_eq!(resolve_workers(8, 3), 3, "capped at job count");
        assert_eq!(resolve_workers(8, 0), 1, "empty grids still get a worker");
        assert!(resolve_workers(0, 100) >= 1, "auto detects at least one");
    }
}
