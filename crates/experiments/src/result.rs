//! Results of one simulation run.

use std::collections::HashMap;

use hostcc_flowscope::FlowscopeResult;
use hostcc_metrics::{Cdf, Histogram, TimeSeries};
use hostcc_sim::{Nanos, Rate};
use hostcc_telemetry::TelemetryResult;
use hostcc_trace::TraceCounts;

/// Per-RPC-size latency summary.
#[derive(Debug, Clone)]
pub struct RpcResult {
    /// Full latency histogram.
    pub histogram: Histogram,
    /// Completed RPCs of this size.
    pub count: u64,
}

/// The measured outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Measurement window length.
    pub window: Nanos,
    /// Application goodput of the greedy (NetApp-T) flows.
    pub goodput: Rate,
    /// Application goodput of all flows (incl. RPC bytes).
    pub goodput_all: Rate,
    /// Packet drop percentage: (NIC + switch + injected) / data packets
    /// sent.
    pub drop_rate_pct: f64,
    /// Drops at the receiver NIC.
    pub nic_drops: u64,
    /// Drops at the switch egress.
    pub switch_drops: u64,
    /// Data packets transmitted by all senders (incl. retransmissions).
    pub data_packets: u64,
    /// Peak NIC buffer occupancy.
    pub nic_peak_bytes: u64,
    /// Network-attributed memory bandwidth (DMA + copy) / theoretical peak.
    pub net_mem_util: f64,
    /// MApp memory bandwidth / theoretical peak.
    pub mapp_mem_util: f64,
    /// MApp application-level throughput in Gbps (the Fig 9 right axis).
    pub mapp_app_gbps: f64,
    /// Retransmitted packets.
    pub retransmits: u64,
    /// RTO events.
    pub timeouts: u64,
    /// TLP probes.
    pub tlp_probes: u64,
    /// Packets CE-marked by hostCC's receiver echo.
    pub host_marks: u64,
    /// Packets CE-marked by the switch.
    pub fabric_marks: u64,
    /// Mean smoothed `I_S` over the window (monitor sampler).
    pub mean_is: f64,
    /// Mean PCIe bandwidth over the window.
    pub mean_bs: Rate,
    /// Mean effective MBA level over the window.
    pub mean_level: f64,
    /// MBA MSR writes issued.
    pub mba_writes: u64,
    /// Per-size RPC latency results (empty if no RPC workload).
    pub rpc: HashMap<u64, RpcResult>,
    /// Signal read-latency CDFs (occupancy read, insertion read).
    pub read_is_cdf: Cdf,
    /// CDF of the `R_INS` read latency.
    pub read_bs_cdf: Cdf,
    /// The run's telemetry (recorded series, registry, mergeable summary)
    /// when a telemetry pipeline was attached — via `Scenario::record` or
    /// [`Simulation::set_telemetry`](crate::Simulation::set_telemetry).
    pub telemetry: Option<TelemetryResult>,
    /// Deterministic per-kind traced-event totals (when tracing was
    /// enabled via [`Simulation::set_trace`](crate::Simulation::set_trace)).
    /// `None` on un-traced runs, so results stay comparable to the
    /// tracing-free baseline.
    pub trace: Option<TraceCounts>,
    /// The per-flow ledger and stage-residency breakdown (when a recorder
    /// was attached via
    /// [`Simulation::set_flowscope`](crate::Simulation::set_flowscope)).
    /// `None` on recorder-free runs, so results stay comparable to the
    /// flowscope-free baseline.
    pub flowscope: Option<FlowscopeResult>,
}

impl RunResult {
    /// Goodput in Gbps (convenience for tables).
    pub fn goodput_gbps(&self) -> f64 {
        self.goodput.as_gbps()
    }

    /// Latency whiskers {P50, P90, P99, P99.9, P99.99} for one RPC size.
    pub fn rpc_whiskers(&self, size: u64) -> Option<[Nanos; 5]> {
        self.rpc.get(&size).and_then(|r| r.histogram.whiskers())
    }

    /// Total drops across all loss points.
    pub fn total_drops(&self) -> u64 {
        self.nic_drops + self.switch_drops
    }

    /// A recorded telemetry series by metric name (e.g.
    /// `"host.pcie.bw_gbps"`), when telemetry was enabled and the series
    /// has at least one point.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.telemetry.as_ref().and_then(|t| t.series.get(name))
    }
}
