//! Results of one simulation run.

use std::collections::HashMap;

use hostcc_metrics::{Cdf, Histogram, TimeSeries};
use hostcc_sim::{Nanos, Rate};
use hostcc_trace::TraceCounts;

/// Time-series recording of the hostCC-relevant microscopic state
/// (Fig 8, 18, 19), sampled at signal-sampler granularity (~1 µs).
#[derive(Debug, Clone, Default)]
pub struct Recording {
    /// Raw per-interval IIO occupancy (cachelines).
    pub is_raw: TimeSeries,
    /// Smoothed `I_S`.
    pub is_ewma: TimeSeries,
    /// Raw per-interval PCIe bandwidth (Gbps).
    pub bs_gbps: TimeSeries,
    /// Effective MBA response level.
    pub level: TimeSeries,
    /// NIC buffer backlog (bytes).
    pub nic_backlog: TimeSeries,
}

impl Recording {
    /// Empty recording with named series.
    pub fn new() -> Self {
        Recording {
            is_raw: TimeSeries::new("iio_occupancy"),
            is_ewma: TimeSeries::new("iio_occupancy_ewma"),
            bs_gbps: TimeSeries::new("pcie_bw_gbps"),
            level: TimeSeries::new("response_level"),
            nic_backlog: TimeSeries::new("nic_backlog_bytes"),
        }
    }
}

/// Per-RPC-size latency summary.
#[derive(Debug, Clone)]
pub struct RpcResult {
    /// Full latency histogram.
    pub histogram: Histogram,
    /// Completed RPCs of this size.
    pub count: u64,
}

/// The measured outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Measurement window length.
    pub window: Nanos,
    /// Application goodput of the greedy (NetApp-T) flows.
    pub goodput: Rate,
    /// Application goodput of all flows (incl. RPC bytes).
    pub goodput_all: Rate,
    /// Packet drop percentage: (NIC + switch + injected) / data packets
    /// sent.
    pub drop_rate_pct: f64,
    /// Drops at the receiver NIC.
    pub nic_drops: u64,
    /// Drops at the switch egress.
    pub switch_drops: u64,
    /// Data packets transmitted by all senders (incl. retransmissions).
    pub data_packets: u64,
    /// Peak NIC buffer occupancy.
    pub nic_peak_bytes: u64,
    /// Network-attributed memory bandwidth (DMA + copy) / theoretical peak.
    pub net_mem_util: f64,
    /// MApp memory bandwidth / theoretical peak.
    pub mapp_mem_util: f64,
    /// MApp application-level throughput in Gbps (the Fig 9 right axis).
    pub mapp_app_gbps: f64,
    /// Retransmitted packets.
    pub retransmits: u64,
    /// RTO events.
    pub timeouts: u64,
    /// TLP probes.
    pub tlp_probes: u64,
    /// Packets CE-marked by hostCC's receiver echo.
    pub host_marks: u64,
    /// Packets CE-marked by the switch.
    pub fabric_marks: u64,
    /// Mean smoothed `I_S` over the window (monitor sampler).
    pub mean_is: f64,
    /// Mean PCIe bandwidth over the window.
    pub mean_bs: Rate,
    /// Mean effective MBA level over the window.
    pub mean_level: f64,
    /// MBA MSR writes issued.
    pub mba_writes: u64,
    /// Per-size RPC latency results (empty if no RPC workload).
    pub rpc: HashMap<u64, RpcResult>,
    /// Signal read-latency CDFs (occupancy read, insertion read).
    pub read_is_cdf: Cdf,
    /// CDF of the `R_INS` read latency.
    pub read_bs_cdf: Cdf,
    /// Microscopic time series (when `Scenario::record` was set).
    pub recording: Option<Recording>,
    /// Deterministic per-kind traced-event totals (when tracing was
    /// enabled via [`Simulation::set_trace`](crate::Simulation::set_trace)).
    /// `None` on un-traced runs, so results stay comparable to the
    /// tracing-free baseline.
    pub trace: Option<TraceCounts>,
}

impl RunResult {
    /// Goodput in Gbps (convenience for tables).
    pub fn goodput_gbps(&self) -> f64 {
        self.goodput.as_gbps()
    }

    /// Latency whiskers {P50, P90, P99, P99.9, P99.99} for one RPC size.
    pub fn rpc_whiskers(&self, size: u64) -> Option<[Nanos; 5]> {
        self.rpc.get(&size).and_then(|r| r.histogram.whiskers())
    }

    /// Total drops across all loss points.
    pub fn total_drops(&self) -> u64 {
        self.nic_drops + self.switch_drops
    }
}
