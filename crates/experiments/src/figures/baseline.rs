//! Figures 2–4: the host-congestion phenomenon with vanilla DCTCP (§2.2).

use hostcc_metrics::{f2, pct, Table};
use hostcc_workloads::PAPER_RPC_SIZES;

use super::{run, sweep_preset, us, Budget, FigureReport};
use crate::Scenario;

/// Figure 2: throughput, drop rate, and memory-bandwidth split vs the
/// degree of host congestion, with DDIO on and off.
pub fn fig2(budget: &Budget) -> FigureReport {
    let mut left = Table::new(["degree", "ddio", "tput_gbps", "drop_pct"]);
    let mut right = Table::new(["degree", "ddio", "netapp_mem_util", "mapp_mem_util"]);
    for c in sweep_preset("fig2", budget) {
        let d = format!("{}x", c.get("degree").unwrap());
        let dd = c.get("ddio").unwrap().to_string();
        let m = &c.metrics;
        left.row([
            d.clone(),
            dd.clone(),
            f2(m.goodput_gbps),
            pct(m.drop_rate_pct),
        ]);
        right.row([d, dd, f2(m.net_mem_util), f2(m.mapp_mem_util)]);
    }
    FigureReport {
        id: "Figure 2",
        title: "Host congestion degrades DCTCP throughput and drops packets at the host",
        panels: vec![
            ("left: network throughput / packet drop rate".into(), left),
            ("right: memory bandwidth utilization split".into(), right),
        ],
        notes: vec![
            "paper anchors (DDIO off): ≈98/80/55/43 Gbps at 0–3x; ≈0.3% drops at 3x".into(),
        ],
    }
}

/// Figure 3: the impact of host congestion worsens with MTU size and the
/// number of active flows (3× congestion).
pub fn fig3(budget: &Budget) -> FigureReport {
    let mut mtu_panel = Table::new(["mtu", "ddio", "tput_gbps", "drop_pct"]);
    for c in sweep_preset("fig3-mtu", budget) {
        mtu_panel.row([
            format!("{}B", c.get("mtu").unwrap()),
            c.get("ddio").unwrap().to_string(),
            f2(c.metrics.goodput_gbps),
            pct(c.metrics.drop_rate_pct),
        ]);
    }
    let mut flows_panel = Table::new(["flows", "ddio", "tput_gbps", "drop_pct"]);
    for c in sweep_preset("fig3-flows", budget) {
        flows_panel.row([
            c.get("flows").unwrap().to_string(),
            c.get("ddio").unwrap().to_string(),
            f2(c.metrics.goodput_gbps),
            pct(c.metrics.drop_rate_pct),
        ]);
    }
    FigureReport {
        id: "Figure 3",
        title: "Impact worsens with larger MTU and more flows (3x congestion)",
        panels: vec![
            ("left: MTU sweep".into(), mtu_panel),
            ("right: flow-count sweep".into(), flows_panel),
        ],
        notes: vec![
            "paper: drop rates rise with MTU and flows; DDIO-on suffers more at 9000B/16 flows"
                .into(),
        ],
    }
}

/// Shared body for the latency figures (4, 12, 15): run NetApp-T +
/// NetApp-L + MApp and tabulate the P50–P99.99 whiskers per RPC size.
pub(crate) fn latency_figure(
    budget: &Budget,
    variants: Vec<(&'static str, Scenario)>,
    id: &'static str,
    title: &'static str,
) -> FigureReport {
    let mut t = Table::new([
        "config",
        "rpc_size",
        "p50_us",
        "p90_us",
        "p99_us",
        "p99.9_us",
        "p99.99_us",
        "samples",
    ]);
    let mut notes = Vec::new();
    for (name, s) in variants {
        let r = run(budget.apply_latency(s));
        for size in PAPER_RPC_SIZES {
            match r.rpc_whiskers(size) {
                Some([p50, p90, p99, p999, p9999]) => {
                    let count = r.rpc.get(&size).map(|x| x.count).unwrap_or(0);
                    t.row([
                        name.to_string(),
                        format!("{size}B"),
                        us(p50),
                        us(p90),
                        us(p99),
                        us(p999),
                        us(p9999),
                        count.to_string(),
                    ]);
                }
                None => notes.push(format!("{name}: no completed {size}B RPCs in budget")),
            }
        }
        notes.push(format!(
            "{name}: timeouts={} tlp_probes={} drop={}%",
            r.timeouts,
            r.tlp_probes,
            pct(r.drop_rate_pct)
        ));
    }
    FigureReport {
        id,
        title,
        panels: vec![("latency whiskers per RPC size".into(), t)],
        notes,
    }
}

/// Figure 4: orders-of-magnitude tail-latency inflation for NetApp-L under
/// host congestion (DDIO off, no hostCC).
pub fn fig4(budget: &Budget) -> FigureReport {
    let no_cong = Scenario::paper_baseline().with_rpc(budget.rpc_clients);
    let cong = Scenario::with_congestion(3.0).with_rpc(budget.rpc_clients);
    latency_figure(
        budget,
        vec![
            ("dctcp/no-congestion", no_cong),
            ("dctcp/3x-congestion", cong),
        ],
        "Figure 4",
        "Host congestion inflates tail latency (P99 ≈ NIC queueing; P99.9 ≈ 200 ms RTO)",
    )
}
