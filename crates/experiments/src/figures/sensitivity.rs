//! Figures 16–17: sensitivity to hostCC's two parameters, `B_T` and `I_T`.

use hostcc_metrics::{f2, pct, Table};

use super::{sweep_preset, Budget, FigureReport};

/// Figure 16: sweep the target network bandwidth `B_T` from 10 to
/// 100 Gbps at 3× host congestion.
pub fn fig16(budget: &Budget) -> FigureReport {
    let mut left = Table::new(["bt_gbps", "tput_gbps", "drop_pct"]);
    let mut right = Table::new(["bt_gbps", "netapp_mem_util", "mapp_mem_util"]);
    for c in sweep_preset("fig16", budget) {
        let bt = f2(c.get("bt").unwrap().parse().unwrap());
        let m = &c.metrics;
        left.row([bt.clone(), f2(m.goodput_gbps), pct(m.drop_rate_pct)]);
        right.row([bt, f2(m.net_mem_util), f2(m.mapp_mem_util)]);
    }
    FigureReport {
        id: "Figure 16",
        title: "hostCC tracks any target bandwidth B_T with minimal drops",
        panels: vec![
            ("left: throughput / drops vs B_T".into(), left),
            ("right: memory split vs B_T".into(), right),
        ],
        notes: vec![
            "paper: throughput ≈ min(B_T, achievable); drops lowest at small and large B_T".into(),
        ],
    }
}

/// Figure 17: sweep the IIO occupancy threshold `I_T` from 70 to 90 at 3×
/// host congestion.
pub fn fig17(budget: &Budget) -> FigureReport {
    let mut left = Table::new(["it", "tput_gbps", "drop_pct"]);
    let mut right = Table::new(["it", "netapp_mem_util", "mapp_mem_util"]);
    for c in sweep_preset("fig17", budget) {
        let it = f2(c.get("it").unwrap().parse().unwrap());
        let m = &c.metrics;
        left.row([it.clone(), f2(m.goodput_gbps), pct(m.drop_rate_pct)]);
        right.row([it, f2(m.net_mem_util), f2(m.mapp_mem_util)]);
    }
    FigureReport {
        id: "Figure 17",
        title: "Higher I_T delays the reaction to congestion: more drops, more MApp bandwidth",
        panels: vec![
            ("left: throughput / drops vs I_T".into(), left),
            ("right: memory split vs I_T".into(), right),
        ],
        notes: vec![],
    }
}
