//! Figures 16–17: sensitivity to hostCC's two parameters, `B_T` and `I_T`.

use hostcc_metrics::{f2, pct, Table};
use hostcc_sim::Rate;

use super::{run, Budget, FigureReport};
use crate::Scenario;

/// Figure 16: sweep the target network bandwidth `B_T` from 10 to
/// 100 Gbps at 3× host congestion.
pub fn fig16(budget: &Budget) -> FigureReport {
    let mut left = Table::new(["bt_gbps", "tput_gbps", "drop_pct"]);
    let mut right = Table::new(["bt_gbps", "netapp_mem_util", "mapp_mem_util"]);
    for bt in (1..=10).map(|i| 10.0 * i as f64) {
        let mut s = budget.apply(Scenario::with_congestion(3.0)).enable_hostcc();
        if let Some(hc) = &mut s.hostcc {
            hc.bt = Rate::gbps(bt);
        }
        let r = run(s);
        left.row([f2(bt), f2(r.goodput_gbps()), pct(r.drop_rate_pct)]);
        right.row([f2(bt), f2(r.net_mem_util), f2(r.mapp_mem_util)]);
    }
    FigureReport {
        id: "Figure 16",
        title: "hostCC tracks any target bandwidth B_T with minimal drops",
        panels: vec![
            ("left: throughput / drops vs B_T".into(), left),
            ("right: memory split vs B_T".into(), right),
        ],
        notes: vec![
            "paper: throughput ≈ min(B_T, achievable); drops lowest at small and large B_T".into(),
        ],
    }
}

/// Figure 17: sweep the IIO occupancy threshold `I_T` from 70 to 90 at 3×
/// host congestion.
pub fn fig17(budget: &Budget) -> FigureReport {
    let mut left = Table::new(["it", "tput_gbps", "drop_pct"]);
    let mut right = Table::new(["it", "netapp_mem_util", "mapp_mem_util"]);
    for it in [70.0, 75.0, 80.0, 85.0, 90.0] {
        let mut s = budget.apply(Scenario::with_congestion(3.0)).enable_hostcc();
        if let Some(hc) = &mut s.hostcc {
            hc.it = it;
        }
        let r = run(s);
        left.row([f2(it), f2(r.goodput_gbps()), pct(r.drop_rate_pct)]);
        right.row([f2(it), f2(r.net_mem_util), f2(r.mapp_mem_util)]);
    }
    FigureReport {
        id: "Figure 17",
        title: "Higher I_T delays the reaction to congestion: more drops, more MApp bandwidth",
        panels: vec![
            ("left: throughput / drops vs I_T".into(), left),
            ("right: memory split vs I_T".into(), right),
        ],
        notes: vec![],
    }
}
