//! Figures 7–8: the host congestion signals themselves.

use hostcc_metrics::{f2, Table};
use hostcc_sim::Nanos;

use super::{run, us, Budget, FigureReport};
use crate::Scenario;

/// Figure 7: CDFs of the `I_S` and `B_S` read latency, with and without
/// host congestion — demonstrating that signal collection is off the
/// NIC→memory datapath and therefore unaffected by the congestion it
/// measures.
pub fn fig7(budget: &Budget) -> FigureReport {
    let mut t = Table::new([
        "signal",
        "congestion",
        "p1_us",
        "p50_us",
        "p99_us",
        "samples",
    ]);
    for (label, degree) in [("none", 0.0), ("3x", 3.0)] {
        let r = run(budget.apply(Scenario::with_congestion(degree)));
        let mut is_cdf = r.read_is_cdf;
        let mut bs_cdf = r.read_bs_cdf;
        for (name, cdf) in [("I_S read", &mut is_cdf), ("B_S read", &mut bs_cdf)] {
            t.row([
                name.to_string(),
                label.to_string(),
                us(cdf.quantile(0.01).unwrap_or(Nanos::ZERO)),
                us(cdf.quantile(0.50).unwrap_or(Nanos::ZERO)),
                us(cdf.quantile(0.99).unwrap_or(Nanos::ZERO)),
                cdf.count().to_string(),
            ]);
        }
    }
    FigureReport {
        id: "Figure 7",
        title: "Signal read latency is sub-µs and independent of host congestion",
        panels: vec![("read-latency CDF summary".into(), t)],
        notes: vec!["paper: each MSR read < ~600 ns; CDFs with/without congestion overlap".into()],
    }
}

/// Figure 8: `I_S` and `B_S` time series over a 1 ms window, without (a)
/// and with (b) 3× host congestion.
pub fn fig8(budget: &Budget) -> FigureReport {
    let mut panels = Vec::new();
    let mut notes = Vec::new();
    for (label, degree) in [
        ("(a) no host congestion", 0.0),
        ("(b) 3x host congestion", 3.0),
    ] {
        let mut s = budget.apply(Scenario::with_congestion(degree));
        s.record = true;
        let r = run(s);
        let bs_series = r.series("host.pcie.bw_gbps").expect("telemetry enabled");
        let is_series = r.series("core.signals.is_raw").expect("telemetry enabled");
        // Take a 1 ms slice mid-window, as the paper plots.
        let start = s_start(bs_series);
        let end = start + Nanos::from_millis(1);
        let bs = bs_series.window(start, end).downsample(25);
        let is = is_series.window(start, end).downsample(25);
        let mut t = Table::new(["time_us", "pcie_bw_gbps", "iio_occupancy"]);
        for ((tb, vb), (_, vi)) in bs.iter().zip(is.iter()) {
            t.row([
                format!("{:.1}", (tb - start).as_micros_f64()),
                f2(vb),
                f2(vi),
            ]);
        }
        notes.push(format!(
            "{label}: B_S mean={:.1} Gbps, I_S mean={:.1}, I_S max={:.1}  {}",
            bs_series.mean().unwrap_or(0.0),
            is_series.mean().unwrap_or(0.0),
            is_series.max().unwrap_or(0.0),
            is_series.sparkline(60),
        ));
        panels.push((label.to_string(), t));
    }
    FigureReport {
        id: "Figure 8",
        title: "I_S and B_S over time: ≈65/103 Gbps uncongested; I_S pegs at ≈93 congested",
        panels,
        notes,
    }
}

fn s_start(series: &hostcc_metrics::TimeSeries) -> Nanos {
    series.iter().next().map(|(t, _)| t).unwrap_or(Nanos::ZERO)
}
