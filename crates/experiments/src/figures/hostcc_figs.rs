//! Figures 9–15: hostCC's benefits (§5.1–§5.2) and the MBA actuator sweep.

use hostcc_metrics::{f2, pct, Table};

use super::baseline::latency_figure;
use super::{run, Budget, FigureReport};
use crate::{Scenario, Simulation};

/// Figure 9: MBA efficacy — NetApp-T and MApp throughput at hard-coded
/// host-local response levels 0–4, DDIO on/off, 3× congestion.
pub fn fig9(budget: &Budget) -> FigureReport {
    let mut left = Table::new(["level", "ddio", "netapp_tput_gbps", "mapp_tput_gbps"]);
    let mut right = Table::new(["level", "ddio", "netapp_mem_util", "mapp_mem_util"]);
    for ddio in [false, true] {
        for level in 0..=4u8 {
            let mut s = budget.apply(Scenario::with_congestion(3.0));
            if ddio {
                s = s.enable_ddio();
            }
            let mut sim = Simulation::new(s);
            sim.force_mba_level(level);
            let r = sim.run();
            let dd = if ddio { "on" } else { "off" };
            left.row([
                level.to_string(),
                dd.into(),
                f2(r.goodput_gbps()),
                f2(r.mapp_app_gbps),
            ]);
            right.row([
                level.to_string(),
                dd.into(),
                f2(r.net_mem_util),
                f2(r.mapp_mem_util),
            ]);
        }
    }
    FigureReport {
        id: "Figure 9",
        title: "MBA efficacy: higher response levels shift bandwidth from MApp to NetApp-T",
        panels: vec![
            ("left/middle: application throughputs".into(), left),
            ("right: memory bandwidth split".into(), right),
        ],
        notes: vec![
            "paper (DDIO off): NetApp-T ≈ 43→55→70→77→100 Gbps across levels 0–4".into(),
            "paper: DDIO-on reaches line rate at a lower level (≈3) than DDIO-off (4)".into(),
        ],
    }
}

/// Shared body for Figures 10/14: DCTCP vs DCTCP+hostCC across congestion
/// degrees.
fn hostcc_benefit_figure(
    budget: &Budget,
    ddio: bool,
    id: &'static str,
    title: &'static str,
) -> FigureReport {
    let mut left = Table::new(["degree", "cc", "tput_gbps", "drop_pct"]);
    let mut right = Table::new(["degree", "cc", "netapp_mem_util", "mapp_mem_util"]);
    for hostcc in [false, true] {
        for degree in [0.0, 1.0, 2.0, 3.0] {
            let mut s = budget.apply(Scenario::with_congestion(degree));
            if ddio {
                s = s.enable_ddio();
            }
            if hostcc {
                s = s.enable_hostcc();
            }
            let r = run(s);
            let name = if hostcc { "dctcp+hostcc" } else { "dctcp" };
            left.row([
                format!("{degree}x"),
                name.into(),
                f2(r.goodput_gbps()),
                pct(r.drop_rate_pct),
            ]);
            right.row([
                format!("{degree}x"),
                name.into(),
                f2(r.net_mem_util),
                f2(r.mapp_mem_util),
            ]);
        }
    }
    FigureReport {
        id,
        title,
        panels: vec![
            ("left: throughput / drop rate".into(), left),
            ("right: memory bandwidth split".into(), right),
        ],
        notes: vec![
            "paper: hostCC holds ≈ B_T = 80 Gbps at 2–3x and cuts drops by orders of magnitude"
                .into(),
        ],
    }
}

/// Figure 10: hostCC benefits with DDIO disabled.
pub fn fig10(budget: &Budget) -> FigureReport {
    hostcc_benefit_figure(
        budget,
        false,
        "Figure 10",
        "hostCC maintains target bandwidth and near-zero drops under host congestion",
    )
}

/// Figure 11: hostCC benefits across MTU sizes and flow counts (3×).
pub fn fig11(budget: &Budget) -> FigureReport {
    let mut mtu_panel = Table::new(["mtu", "cc", "tput_gbps", "drop_pct"]);
    let mut flows_panel = Table::new(["flows", "cc", "tput_gbps", "drop_pct"]);
    for hostcc in [false, true] {
        let name = if hostcc { "dctcp+hostcc" } else { "dctcp" };
        for mtu in [1500u64, 4000, 9000] {
            let mut s = budget.apply(Scenario::with_congestion(3.0));
            s.mtu = mtu;
            if hostcc {
                s = s.enable_hostcc();
            }
            let r = run(s);
            mtu_panel.row([
                format!("{mtu}B"),
                name.into(),
                f2(r.goodput_gbps()),
                pct(r.drop_rate_pct),
            ]);
        }
        for flows in [4u32, 8, 16] {
            let mut s = budget.apply(Scenario::with_congestion(3.0));
            s.flows_per_sender = vec![flows];
            if hostcc {
                s = s.enable_hostcc();
            }
            let r = run(s);
            flows_panel.row([
                flows.to_string(),
                name.into(),
                f2(r.goodput_gbps()),
                pct(r.drop_rate_pct),
            ]);
        }
    }
    FigureReport {
        id: "Figure 11",
        title: "hostCC's benefits persist across MTU sizes and flow counts",
        panels: vec![
            ("left: MTU sweep".into(), mtu_panel),
            ("right: flow-count sweep".into(), flows_panel),
        ],
        notes: vec![],
    }
}

/// Figure 12: hostCC's tail-latency benefits (DDIO off).
pub fn fig12(budget: &Budget) -> FigureReport {
    let no_cong = Scenario::paper_baseline().with_rpc(budget.rpc_clients);
    let cong = Scenario::with_congestion(3.0).with_rpc(budget.rpc_clients);
    let hcc = Scenario::with_congestion(3.0)
        .with_rpc(budget.rpc_clients)
        .enable_hostcc();
    latency_figure(
        budget,
        vec![
            ("dctcp/no-congestion", no_cong),
            ("dctcp/3x-congestion", cong),
            ("dctcp+hostcc/3x-congestion", hcc),
        ],
        "Figure 12",
        "hostCC keeps tail latency near the uncongested baseline (no timeouts at P99.9)",
    )
}

/// Figure 13: incast — network congestion with and without host congestion.
pub fn fig13(budget: &Budget) -> FigureReport {
    let mut a = Table::new([
        "incast",
        "cc",
        "tput_gbps",
        "drop_pct",
        "switch_drops",
        "nic_drops",
    ]);
    let mut b = Table::new([
        "incast",
        "cc",
        "tput_gbps",
        "drop_pct",
        "switch_drops",
        "nic_drops",
    ]);
    for (panel, mapp) in [(&mut a, 0.0), (&mut b, 3.0)] {
        for hostcc in [false, true] {
            let name = if hostcc { "dctcp+hostcc" } else { "dctcp" };
            for degree in [1.0f64, 1.5, 2.0, 2.5] {
                let flows = (4.0 * degree).round() as u32;
                let mut s = budget.apply(Scenario::incast(flows, mapp));
                if hostcc {
                    s = s.enable_hostcc();
                }
                let r = run(s);
                panel.row([
                    format!("{degree}x"),
                    name.into(),
                    f2(r.goodput_gbps()),
                    pct(r.drop_rate_pct),
                    r.switch_drops.to_string(),
                    r.nic_drops.to_string(),
                ]);
            }
        }
    }
    FigureReport {
        id: "Figure 13",
        title: "Incast: hostCC ≈ network CC without host congestion; large wins with it",
        panels: vec![
            ("(a) network congestion only".into(), a),
            ("(b) host + network congestion".into(), b),
        ],
        notes: vec![
            "paper: without host congestion the two curves coincide (minimal overhead)".into(),
        ],
    }
}

/// Figure 14: hostCC benefits with DDIO enabled (I_T = 50).
pub fn fig14(budget: &Budget) -> FigureReport {
    hostcc_benefit_figure(
        budget,
        true,
        "Figure 14",
        "hostCC with DDIO enabled: same benefits as the DDIO-disabled case",
    )
}

/// Figure 15: hostCC tail latency with DDIO enabled.
pub fn fig15(budget: &Budget) -> FigureReport {
    let no_cong = Scenario::paper_baseline()
        .enable_ddio()
        .with_rpc(budget.rpc_clients);
    let cong = Scenario::with_congestion(3.0)
        .enable_ddio()
        .with_rpc(budget.rpc_clients);
    let hcc = Scenario::with_congestion(3.0)
        .enable_ddio()
        .with_rpc(budget.rpc_clients)
        .enable_hostcc();
    latency_figure(
        budget,
        vec![
            ("dctcp/no-congestion", no_cong),
            ("dctcp/3x-congestion", cong),
            ("dctcp+hostcc/3x-congestion", hcc),
        ],
        "Figure 15",
        "DDIO enabled: latency improvements identical to the DDIO-disabled case",
    )
}
