//! Figures 9–15: hostCC's benefits (§5.1–§5.2) and the MBA actuator sweep.

use hostcc_metrics::{f2, pct, Table};

use super::baseline::latency_figure;
use super::{sweep_preset, Budget, FigureReport};
use crate::Scenario;

/// Figure 9: MBA efficacy — NetApp-T and MApp throughput at hard-coded
/// host-local response levels 0–4, DDIO on/off, 3× congestion.
pub fn fig9(budget: &Budget) -> FigureReport {
    let mut left = Table::new(["level", "ddio", "netapp_tput_gbps", "mapp_tput_gbps"]);
    let mut right = Table::new(["level", "ddio", "netapp_mem_util", "mapp_mem_util"]);
    for c in sweep_preset("fig9", budget) {
        let level = c.get("level").unwrap().to_string();
        let dd = c.get("ddio").unwrap().to_string();
        let m = &c.metrics;
        left.row([
            level.clone(),
            dd.clone(),
            f2(m.goodput_gbps),
            f2(m.mapp_app_gbps),
        ]);
        right.row([level, dd, f2(m.net_mem_util), f2(m.mapp_mem_util)]);
    }
    FigureReport {
        id: "Figure 9",
        title: "MBA efficacy: higher response levels shift bandwidth from MApp to NetApp-T",
        panels: vec![
            ("left/middle: application throughputs".into(), left),
            ("right: memory bandwidth split".into(), right),
        ],
        notes: vec![
            "paper (DDIO off): NetApp-T ≈ 43→55→70→77→100 Gbps across levels 0–4".into(),
            "paper: DDIO-on reaches line rate at a lower level (≈3) than DDIO-off (4)".into(),
        ],
    }
}

/// Shared body for Figures 10/14: DCTCP vs DCTCP+hostCC across congestion
/// degrees.
fn hostcc_benefit_figure(
    budget: &Budget,
    preset: &'static str,
    id: &'static str,
    title: &'static str,
) -> FigureReport {
    let mut left = Table::new(["degree", "cc", "tput_gbps", "drop_pct"]);
    let mut right = Table::new(["degree", "cc", "netapp_mem_util", "mapp_mem_util"]);
    for c in sweep_preset(preset, budget) {
        let name = if c.get("hostcc") == Some("on") {
            "dctcp+hostcc"
        } else {
            "dctcp"
        };
        let d = format!("{}x", c.get("degree").unwrap());
        let m = &c.metrics;
        left.row([
            d.clone(),
            name.into(),
            f2(m.goodput_gbps),
            pct(m.drop_rate_pct),
        ]);
        right.row([d, name.into(), f2(m.net_mem_util), f2(m.mapp_mem_util)]);
    }
    FigureReport {
        id,
        title,
        panels: vec![
            ("left: throughput / drop rate".into(), left),
            ("right: memory bandwidth split".into(), right),
        ],
        notes: vec![
            "paper: hostCC holds ≈ B_T = 80 Gbps at 2–3x and cuts drops by orders of magnitude"
                .into(),
        ],
    }
}

/// Figure 10: hostCC benefits with DDIO disabled.
pub fn fig10(budget: &Budget) -> FigureReport {
    hostcc_benefit_figure(
        budget,
        "fig10",
        "Figure 10",
        "hostCC maintains target bandwidth and near-zero drops under host congestion",
    )
}

/// Figure 11: hostCC benefits across MTU sizes and flow counts (3×).
pub fn fig11(budget: &Budget) -> FigureReport {
    let mut mtu_panel = Table::new(["mtu", "cc", "tput_gbps", "drop_pct"]);
    let mut flows_panel = Table::new(["flows", "cc", "tput_gbps", "drop_pct"]);
    let cc_name = |c: &crate::sweep::CellRun| {
        if c.get("hostcc") == Some("on") {
            "dctcp+hostcc"
        } else {
            "dctcp"
        }
    };
    for c in sweep_preset("fig11-mtu", budget) {
        mtu_panel.row([
            format!("{}B", c.get("mtu").unwrap()),
            cc_name(&c).into(),
            f2(c.metrics.goodput_gbps),
            pct(c.metrics.drop_rate_pct),
        ]);
    }
    for c in sweep_preset("fig11-flows", budget) {
        flows_panel.row([
            c.get("flows").unwrap().to_string(),
            cc_name(&c).into(),
            f2(c.metrics.goodput_gbps),
            pct(c.metrics.drop_rate_pct),
        ]);
    }
    FigureReport {
        id: "Figure 11",
        title: "hostCC's benefits persist across MTU sizes and flow counts",
        panels: vec![
            ("left: MTU sweep".into(), mtu_panel),
            ("right: flow-count sweep".into(), flows_panel),
        ],
        notes: vec![],
    }
}

/// Figure 12: hostCC's tail-latency benefits (DDIO off).
pub fn fig12(budget: &Budget) -> FigureReport {
    let no_cong = Scenario::paper_baseline().with_rpc(budget.rpc_clients);
    let cong = Scenario::with_congestion(3.0).with_rpc(budget.rpc_clients);
    let hcc = Scenario::with_congestion(3.0)
        .with_rpc(budget.rpc_clients)
        .enable_hostcc();
    latency_figure(
        budget,
        vec![
            ("dctcp/no-congestion", no_cong),
            ("dctcp/3x-congestion", cong),
            ("dctcp+hostcc/3x-congestion", hcc),
        ],
        "Figure 12",
        "hostCC keeps tail latency near the uncongested baseline (no timeouts at P99.9)",
    )
}

/// Figure 13: incast — network congestion with and without host congestion.
pub fn fig13(budget: &Budget) -> FigureReport {
    let mut a = Table::new([
        "incast",
        "cc",
        "tput_gbps",
        "drop_pct",
        "switch_drops",
        "nic_drops",
    ]);
    let mut b = Table::new([
        "incast",
        "cc",
        "tput_gbps",
        "drop_pct",
        "switch_drops",
        "nic_drops",
    ]);
    for (panel, preset) in [(&mut a, "fig13a"), (&mut b, "fig13b")] {
        for c in sweep_preset(preset, budget) {
            let name = if c.get("hostcc") == Some("on") {
                "dctcp+hostcc"
            } else {
                "dctcp"
            };
            // The incast axis carries total flows; the paper labels rows by
            // the incast *degree* (flows / the 4-flow baseline).
            let flows: f64 = c.get("incast").unwrap().parse().unwrap();
            let m = &c.metrics;
            panel.row([
                format!("{}x", flows / 4.0),
                name.into(),
                f2(m.goodput_gbps),
                pct(m.drop_rate_pct),
                m.switch_drops.to_string(),
                m.nic_drops.to_string(),
            ]);
        }
    }
    FigureReport {
        id: "Figure 13",
        title: "Incast: hostCC ≈ network CC without host congestion; large wins with it",
        panels: vec![
            ("(a) network congestion only".into(), a),
            ("(b) host + network congestion".into(), b),
        ],
        notes: vec![
            "paper: without host congestion the two curves coincide (minimal overhead)".into(),
        ],
    }
}

/// Figure 14: hostCC benefits with DDIO enabled (I_T = 50).
pub fn fig14(budget: &Budget) -> FigureReport {
    hostcc_benefit_figure(
        budget,
        "fig14",
        "Figure 14",
        "hostCC with DDIO enabled: same benefits as the DDIO-disabled case",
    )
}

/// Figure 15: hostCC tail latency with DDIO enabled.
pub fn fig15(budget: &Budget) -> FigureReport {
    let no_cong = Scenario::paper_baseline()
        .enable_ddio()
        .with_rpc(budget.rpc_clients);
    let cong = Scenario::with_congestion(3.0)
        .enable_ddio()
        .with_rpc(budget.rpc_clients);
    let hcc = Scenario::with_congestion(3.0)
        .enable_ddio()
        .with_rpc(budget.rpc_clients)
        .enable_hostcc();
    latency_figure(
        budget,
        vec![
            ("dctcp/no-congestion", no_cong),
            ("dctcp/3x-congestion", cong),
            ("dctcp+hostcc/3x-congestion", hcc),
        ],
        "Figure 15",
        "DDIO enabled: latency improvements identical to the DDIO-disabled case",
    )
}
