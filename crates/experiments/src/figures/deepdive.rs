//! Figures 18–19: deep dive into hostCC's mechanisms (§5.4).

use hostcc_metrics::{f2, pct, Table};
use hostcc_sim::Nanos;

use super::{run, Budget, FigureReport};
use crate::Scenario;

/// Figure 18: ablation — echo-only vs host-local-response-only vs both, at
/// 3× host congestion, with the corresponding `I_S`/`B_S` traces.
pub fn fig18(budget: &Budget) -> FigureReport {
    let mut summary = Table::new(["variant", "tput_gbps", "drop_pct", "mean_is", "mean_level"]);
    let mut panels = Vec::new();
    let mut notes = Vec::new();
    let variants: [(&str, bool, bool); 3] = [
        ("echo-only", false, true),
        ("local-only", true, false),
        ("echo+local (hostCC)", true, true),
    ];
    for (name, local, echo) in variants {
        let mut s = budget.apply(Scenario::with_congestion(3.0)).enable_hostcc();
        if let Some(hc) = &mut s.hostcc {
            hc.local_response = local;
            hc.echo = echo;
        }
        s.record = true;
        let r = run(s);
        summary.row([
            name.to_string(),
            f2(r.goodput_gbps()),
            pct(r.drop_rate_pct),
            f2(r.mean_is),
            f2(r.mean_level),
        ]);
        if let (Some(bs), Some(is)) = (
            r.series("host.pcie.bw_gbps"),
            r.series("core.signals.is_raw"),
        ) {
            notes.push(format!(
                "{name}: B_S {}  I_S {}",
                bs.sparkline(50),
                is.sparkline(50)
            ));
        }
    }
    panels.push(("(a) throughput and drop rate per variant".into(), summary));
    FigureReport {
        id: "Figure 18",
        title:
            "Both hostCC mechanisms are necessary: echo alone loses throughput, local alone drops",
        panels,
        notes,
    }
}

/// Figure 19: a 250 µs steady-state snapshot of hostCC at 3× congestion —
/// PCIe bandwidth, host-local response level, and IIO occupancy.
pub fn fig19(budget: &Budget) -> FigureReport {
    let mut s = budget.apply(Scenario::with_congestion(3.0)).enable_hostcc();
    s.record = true;
    let r = run(s);
    let bs_series = r.series("host.pcie.bw_gbps").expect("telemetry enabled");
    let lvl_series = r.series("host.mba.level").expect("telemetry enabled");
    let is_series = r.series("core.signals.is_ewma").expect("telemetry enabled");
    // Slice the last millisecond of the measurement window: by then the
    // MBA level, DCTCP and the signals have settled into their limit
    // cycle, and 1 ms always spans several full oscillations (the paper
    // plots 250 µs; a fixed 250 µs slice can land inside one phase).
    let end = bs_series
        .iter()
        .last()
        .map(|(t, _)| t)
        .unwrap_or(Nanos::ZERO);
    let start = end.saturating_sub(Nanos::from_millis(1));
    let bs = bs_series.window(start, end).downsample(40);
    let lvl = lvl_series.window(start, end).downsample(40);
    let is = is_series.window(start, end).downsample(40);
    let mut t = Table::new([
        "time_us",
        "pcie_bw_gbps",
        "response_level",
        "iio_occupancy_ewma",
    ]);
    for (((tb, vb), (_, vl)), (_, vi)) in bs.iter().zip(lvl.iter()).zip(is.iter()) {
        t.row([
            format!("{:.1}", (tb - start).as_micros_f64()),
            f2(vb),
            f2(vl),
            f2(vi),
        ]);
    }
    let bt = 80.0;
    FigureReport {
        id: "Figure 19",
        title: "Steady state: PCIe bandwidth hugs B_T while the response level oscillates",
        panels: vec![("steady-state snapshot (last 1 ms)".into(), t)],
        notes: vec![
            format!(
                "B_T = {bt} Gbps; window means: B_S = {:.1} Gbps, level = {:.2}, I_S = {:.1}",
                bs_series.window(start, end).mean().unwrap_or(0.0),
                lvl_series.window(start, end).mean().unwrap_or(0.0),
                is_series.window(start, end).mean().unwrap_or(0.0),
            ),
            format!(
                "level trace: {}   (paper: oscillates between levels 3 and 4)",
                lvl_series.window(start, end).sparkline(60)
            ),
            format!("mba writes during run: {}", r.mba_writes),
        ],
    }
}
