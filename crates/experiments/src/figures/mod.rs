//! Per-figure reproduction harnesses.
//!
//! One function per figure of the paper's evaluation; each assembles the
//! scenario(s), runs them, and returns a [`FigureReport`] whose tables
//! mirror the figure's panels. The `repro` CLI prints these; `repro bench`
//! times the harness end to end (see `hostcc-experiments::bench`).

mod baseline;
mod deepdive;
mod hostcc_figs;
mod sensitivity;
mod signals;

pub use baseline::{fig2, fig3, fig4};
pub use deepdive::{fig18, fig19};
pub use hostcc_figs::{fig10, fig11, fig12, fig13, fig14, fig15, fig9};
pub use sensitivity::{fig16, fig17};
pub use signals::{fig7, fig8};

use hostcc_metrics::Table;
use hostcc_sim::Nanos;

use crate::{RunResult, Scenario, Simulation};

/// Simulation-time budget for a figure run.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Warm-up before measurement.
    pub warmup: Nanos,
    /// Measurement window for throughput/drop experiments.
    pub measure: Nanos,
    /// Measurement window for tail-latency experiments (needs enough
    /// closed-loop RPCs to resolve P99.9 against 200 ms timeouts).
    pub latency_measure: Nanos,
    /// Parallel RPC client connections (sample-rate knob).
    pub rpc_clients: usize,
}

impl Budget {
    /// The full-fidelity budget used for EXPERIMENTS.md numbers.
    pub fn standard() -> Self {
        Budget {
            warmup: Nanos::from_millis(3),
            measure: Nanos::from_millis(20),
            // Long enough that closed-loop clients stalled by 200 ms RTOs
            // still contribute several hundred samples per size under
            // congestion (the paper's netperf runs for minutes).
            latency_measure: Nanos::from_millis(2500),
            rpc_clients: 12,
        }
    }

    /// A fast budget for benches and smoke tests (coarser tails, same
    /// qualitative shapes).
    pub fn quick() -> Self {
        Budget {
            warmup: Nanos::from_millis(2),
            measure: Nanos::from_millis(5),
            latency_measure: Nanos::from_millis(60),
            rpc_clients: 6,
        }
    }

    /// Apply the throughput windows to a scenario.
    pub fn apply(&self, mut s: Scenario) -> Scenario {
        s.warmup = self.warmup;
        s.measure = self.measure;
        s
    }

    /// Apply the latency windows to a scenario.
    pub fn apply_latency(&self, mut s: Scenario) -> Scenario {
        s.warmup = self.warmup;
        s.measure = self.latency_measure;
        s.rpc_clients = self.rpc_clients;
        s
    }
}

/// A rendered reproduction of one figure.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Figure identifier, e.g. "Figure 10".
    pub id: &'static str,
    /// What the figure shows.
    pub title: &'static str,
    /// One table per panel, with a panel caption.
    pub panels: Vec<(String, Table)>,
    /// Free-form observations (paper-vs-measured commentary).
    pub notes: Vec<String>,
}

impl FigureReport {
    /// Render the whole report as text.
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        for (caption, table) in &self.panels {
            out.push_str(&format!("\n-- {caption} --\n"));
            out.push_str(&table.render());
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("note: {n}\n"));
            }
        }
        out
    }
}

/// Run one scenario to completion.
pub(crate) fn run(s: Scenario) -> RunResult {
    Simulation::new(s).run()
}

/// Expand a named grid preset with the budget's throughput windows and run
/// it through the parallel sweep engine. Rows come back in grid-expansion
/// order — which matches the row order of the paper's panels, because the
/// canonical axis order was chosen to mirror the figures' loop nesting.
///
/// Figures built this way inherit the sweep's determinism guarantee, so
/// running them under a parallel sweep or via the direct harness yields
/// the same numbers for the same grid.
pub(crate) fn sweep_preset(name: &str, budget: &Budget) -> Vec<crate::sweep::CellRun> {
    let mut spec = crate::grid::GridSpec::preset(name)
        .unwrap_or_else(|| panic!("unknown grid preset '{name}'"));
    spec.base = budget.apply(spec.base);
    let cells = spec.expand().expect("figure presets expand cleanly");
    let opts = crate::sweep::SweepOptions {
        trace: false,
        ..Default::default()
    };
    crate::sweep::run_cells(&cells, &opts)
}

/// Format a latency in microseconds for tables.
pub(crate) fn us(n: Nanos) -> String {
    format!("{:.1}", n.as_micros_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_are_sane() {
        let s = Budget::standard();
        let q = Budget::quick();
        assert!(s.measure > q.measure);
        assert!(s.latency_measure > q.latency_measure);
        let sc = q.apply(Scenario::paper_baseline());
        assert_eq!(sc.measure, q.measure);
        let sl = q.apply_latency(Scenario::paper_baseline().with_rpc(1));
        assert_eq!(sl.measure, q.latency_measure);
        assert_eq!(sl.rpc_clients, q.rpc_clients);
    }

    #[test]
    fn report_renders() {
        let mut t = Table::new(["a"]);
        t.row(["1"]);
        let r = FigureReport {
            id: "Figure 0",
            title: "smoke",
            panels: vec![("panel".into(), t)],
            notes: vec!["hello".into()],
        };
        let s = r.render();
        assert!(s.contains("Figure 0"));
        assert!(s.contains("panel"));
        assert!(s.contains("note: hello"));
    }
}

#[cfg(test)]
mod smoke {
    //! Shape smoke tests for the cheapest figure harnesses (the rest run
    //! via the integration suite and criterion benches).
    use super::*;

    fn tiny() -> Budget {
        Budget {
            warmup: Nanos::from_millis(1),
            measure: Nanos::from_millis(2),
            latency_measure: Nanos::from_millis(2),
            rpc_clients: 2,
        }
    }

    #[test]
    fn fig7_has_four_cdf_rows() {
        let r = fig7(&tiny());
        assert_eq!(r.panels.len(), 1);
        assert_eq!(r.panels[0].1.len(), 4); // 2 signals × 2 congestion states
    }

    #[test]
    fn fig8_has_two_panels_with_series() {
        let r = fig8(&tiny());
        assert_eq!(r.panels.len(), 2);
        assert!(!r.panels[0].1.is_empty());
        assert!(!r.panels[1].1.is_empty());
    }

    #[test]
    fn fig19_snapshot_is_nonempty() {
        let r = fig19(&tiny());
        assert_eq!(r.panels.len(), 1);
        assert!(r.panels[0].1.len() >= 10);
        assert!(r.notes.iter().any(|n| n.contains("B_T")));
    }
}
