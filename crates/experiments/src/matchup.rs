//! The CC zoo head-to-head driver: grids in, [`MatchupReport`] out.
//!
//! [`run_matchup`] expands one deterministic sweep grid per evaluation
//! context — every CC kind (and, in the `mix` preset, heterogeneous
//! per-flow mixes) crossed with hostCC off/on — runs the cells on the
//! existing work-stealing sweep engine with the flow ledger attached, and
//! flattens each [`crate::sweep::CellRun`] into a
//! [`hostcc_matchup::CellScore`]:
//!
//! * goodput / drop rate / retransmits / timeouts from the cell metrics,
//! * Jain's fairness index, convergence time (dwell detector) and the
//!   per-CC-group ledger splits from the flowscope result,
//! * the worst P99 across the RPC size histograms as the tail-latency
//!   score.
//!
//! The report types, ranking rule and `hostcc-matchup/v1` JSON all live in
//! `hostcc-matchup` (the same split as `hostcc-chaos` owning
//! `ResilienceReport` while `resilience.rs` drives it), so downstream
//! tooling can consume matchup reports without linking the simulator.

use hostcc_matchup::{CellScore, GroupOutcome, MatchupReport};

use crate::figures::Budget;
use crate::grid::GridSpec;
use crate::scenario::{CcKind, CcSel, Scenario};
use crate::sweep::{run_cells, CellRun, SweepOptions};

/// The matchup presets: `(name, description)` in listing order.
pub fn presets() -> &'static [(&'static str, &'static str)] {
    &[
        (
            "standard",
            "every CC x hostcc off/on x {incast-8 dumbbell, k=4 fat tree, chaos flap} (42 cells)",
        ),
        (
            "smoke",
            "every CC x hostcc off/on on the incast-8 dumbbell (14 cells)",
        ),
        (
            "mix",
            "dctcp, cubic and the dctcp:4+cubic:4 mix x hostcc off/on on the congested dumbbell (6 cells)",
        ),
    ]
}

/// The evaluation contexts of one preset: `(label, grid)` pairs. Every
/// grid crosses its CC selector axis with hostcc off/on on a congested
/// receiver (degree 3), carrying the RPC workload so cells have a tail
/// to score.
fn contexts(preset: &str, budget: &Budget) -> Option<Vec<(&'static str, GridSpec)>> {
    let zoo: Vec<CcSel> = CcKind::ALL.iter().map(|&k| CcSel::Kind(k)).collect();
    let grid = |label: &'static str, base: Scenario, cc: Vec<CcSel>| {
        let mut g = GridSpec::new(label, budget.apply(base.with_rpc(budget.rpc_clients)));
        g.hostcc = vec![false, true];
        g.cc = cc;
        (label, g)
    };
    match preset {
        "standard" => Some(vec![
            grid("incast", Scenario::incast(8, 3.0), zoo.clone()),
            grid("fat-tree", Scenario::fat_tree_incast(4, 3.0), zoo.clone()),
            grid(
                "chaos:flap",
                Scenario::with_congestion(3.0).with_chaos("flap"),
                zoo,
            ),
        ]),
        "smoke" => Some(vec![grid("incast", Scenario::incast(8, 3.0), zoo)]),
        "mix" => {
            let mix = CcSel::parse("dctcp:4+cubic:4").expect("pinned mix label parses");
            Some(vec![grid(
                "mix",
                Scenario::with_congestion(3.0),
                vec![CcSel::Kind(CcKind::Dctcp), CcSel::Kind(CcKind::Cubic), mix],
            )])
        }
        _ => None,
    }
}

/// Flatten one executed sweep cell into its matchup score.
fn score_cell(context: &str, run: &CellRun) -> Result<CellScore, String> {
    let fs = run
        .flowscope
        .as_ref()
        .ok_or_else(|| format!("matchup cell '{}' ran without a flow ledger", run.key))?;
    let min_flow_gbps = fs
        .flows
        .iter()
        .filter(|f| f.greedy)
        .map(|f| f.goodput_gbps)
        .fold(f64::INFINITY, f64::min);
    Ok(CellScore {
        cc: run.get("cc").unwrap_or("?").to_string(),
        hostcc: run.get("hostcc") == Some("on"),
        context: context.to_string(),
        key: run.key.clone(),
        seed: run.seed,
        goodput_gbps: run.metrics.goodput_gbps,
        min_flow_gbps: if min_flow_gbps.is_finite() {
            min_flow_gbps
        } else {
            0.0
        },
        jain: fs.jain,
        convergence_ns: fs.convergence_ns,
        retransmits: run.metrics.retransmits,
        timeouts: run.metrics.timeouts,
        drop_rate_pct: run.metrics.drop_rate_pct,
        // Worst tail across the RPC size classes: one number a leaderboard
        // can take a max over.
        rpc_p99_ns: run.metrics.rpc.iter().map(|r| r.whiskers_ns[2]).max(),
        groups: fs
            .groups
            .iter()
            .map(|g| GroupOutcome {
                group: g.group.clone(),
                flows: g.flows,
                goodput_gbps: g.goodput_gbps,
                jain: g.jain,
                retransmits: g.retransmits,
            })
            .collect(),
    })
}

/// Run a matchup preset under `budget` across `workers` threads
/// (`budget_label` is recorded in the report: `standard` or `quick`).
/// Cell order, scores and every export are bit-identical at any worker
/// count — the cells run on the same deterministic sweep engine as
/// `repro sweep`.
pub fn run_matchup(
    preset: &str,
    budget: &Budget,
    budget_label: &str,
    workers: usize,
) -> Result<MatchupReport, String> {
    let contexts = contexts(preset, budget).ok_or_else(|| {
        format!(
            "unknown matchup preset '{preset}' (known: {})",
            presets()
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(", ")
        )
    })?;
    let opts = SweepOptions {
        workers,
        trace: false,
        flows: true,
        ..SweepOptions::default()
    };
    let mut scored = Vec::new();
    for (label, grid) in &contexts {
        let cells = grid.expand()?;
        for run in run_cells(&cells, &opts) {
            scored.push(score_cell(label, &run)?);
        }
    }
    Ok(MatchupReport {
        preset: preset.to_string(),
        budget: budget_label.to_string(),
        cells: scored,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostcc_sim::Nanos;

    /// Shrunk measurement windows for test runs (same shape as the sweep
    /// tests' `tiny`, long enough for the dwell detector to fire).
    fn tiny() -> Budget {
        Budget {
            warmup: Nanos::from_millis(2),
            measure: Nanos::from_millis(4),
            latency_measure: Nanos::from_millis(4),
            rpc_clients: 4,
        }
    }

    /// Every CC kind, alone on the paper dumbbell, must bring its flows to
    /// within 90 % of fair share (min flow >= 0.9 x mean flow over the
    /// window) and trip the flowscope dwell detector before this deadline.
    const CONVERGENCE_DEADLINE: Nanos = Nanos::from_millis(5);

    #[test]
    fn every_cc_converges_alone_on_the_dumbbell() {
        let mut g = GridSpec::new("conv", Scenario::paper_baseline());
        g.base.warmup = Nanos::from_millis(2);
        g.base.measure = Nanos::from_millis(4);
        g.cc = CcKind::ALL.iter().map(|&k| CcSel::Kind(k)).collect();
        let cells = g.expand().unwrap();
        let opts = |workers| SweepOptions {
            workers,
            flows: true,
            ..SweepOptions::default()
        };
        let serial = run_cells(&cells, &opts(1));
        let parallel = run_cells(&cells, &opts(4));
        assert_eq!(serial.len(), CcKind::ALL.len());
        for (a, b) in serial.iter().zip(&parallel) {
            let fa = a.flowscope.as_ref().unwrap();
            let fb = b.flowscope.as_ref().unwrap();
            assert_eq!(fa.fingerprint(), fb.fingerprint(), "cell {}", a.key);
            let conv = fa
                .convergence_ns
                .unwrap_or_else(|| panic!("cell {} never converged", a.key));
            assert!(
                conv <= CONVERGENCE_DEADLINE.as_nanos(),
                "cell {} converged too late: {conv} ns",
                a.key
            );
            let per_flow: Vec<f64> = fa
                .flows
                .iter()
                .filter(|f| f.greedy)
                .map(|f| f.goodput_gbps)
                .collect();
            assert_eq!(per_flow.len(), 4, "cell {}", a.key);
            let mean = per_flow.iter().sum::<f64>() / per_flow.len() as f64;
            let min = per_flow.iter().fold(f64::INFINITY, |m, &v| m.min(v));
            assert!(
                min >= 0.9 * mean,
                "cell {}: worst flow {min:.3} Gbps under 90 % of mean {mean:.3}",
                a.key
            );
        }
    }

    #[test]
    fn heterogeneous_mix_cells_are_deterministic() {
        let mut g = GridSpec::new("mix-det", Scenario::with_congestion(3.0));
        g.base.warmup = Nanos::from_millis(2);
        g.base.measure = Nanos::from_millis(4);
        g.hostcc = vec![false, true];
        g.set_axis("cc", "dctcp:4+cubic:4").unwrap();
        let cells = g.expand().unwrap();
        let opts = |workers| SweepOptions {
            workers,
            flows: true,
            ..SweepOptions::default()
        };
        let serial = run_cells(&cells, &opts(1));
        let parallel = run_cells(&cells, &opts(4));
        assert_eq!(serial.len(), 2);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.metrics, b.metrics, "cell {}", a.key);
            let fa = a.flowscope.as_ref().unwrap();
            assert_eq!(
                fa.fingerprint(),
                b.flowscope.as_ref().unwrap().fingerprint(),
                "cell {}",
                a.key
            );
            assert!(a.key.contains("cc=dctcp:4+cubic:4"), "{}", a.key);
            let labels: Vec<&str> = fa.groups.iter().map(|g| g.group.as_str()).collect();
            assert_eq!(labels, ["cubic", "dctcp"], "cell {}", a.key);
            assert_eq!(fa.groups.iter().map(|g| g.flows).sum::<u64>(), 8);
        }
    }

    #[test]
    fn smoke_preset_runs_the_whole_zoo_deterministically() {
        let b = tiny();
        let serial = run_matchup("smoke", &b, "quick", 1).unwrap();
        let parallel = run_matchup("smoke", &b, "quick", 4).unwrap();
        assert_eq!(serial.cells.len(), 2 * CcKind::ALL.len());
        assert_eq!(serial.fingerprint(), parallel.fingerprint());
        assert_eq!(serial.to_json(), parallel.to_json());
        assert_eq!(serial.leaderboard_csv(), parallel.leaderboard_csv());
        // Every protocol name appears in both arms.
        for k in CcKind::ALL {
            for hostcc in [false, true] {
                assert!(
                    serial
                        .cells
                        .iter()
                        .any(|c| c.cc == k.name() && c.hostcc == hostcc),
                    "missing {} hostcc={hostcc}",
                    k.name()
                );
            }
        }
        // The leaderboard covers all 14 arms and the cells carry tails.
        assert_eq!(serial.leaderboard().len(), 2 * CcKind::ALL.len());
        assert!(serial.cells.iter().all(|c| c.rpc_p99_ns.is_some()));
    }

    #[test]
    fn unknown_preset_is_rejected_with_the_vocabulary() {
        let err = run_matchup("bogus", &tiny(), "quick", 1).unwrap_err();
        assert!(err.contains("standard"), "{err}");
        assert!(err.contains("mix"), "{err}");
    }

    #[test]
    fn preset_vocabulary_is_pinned() {
        let names: Vec<&str> = presets().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["standard", "smoke", "mix"]);
        for (name, _) in presets() {
            assert!(
                contexts(name, &tiny()).is_some(),
                "listed preset '{name}' must resolve"
            );
        }
    }

    #[test]
    fn hostcc_rescues_the_mix_victim_class() {
        // The acceptance gate: in the dctcp:4+cubic:4 mix under host
        // congestion, the loss-based cubic class is the victim — random
        // host-level NIC drops scramble its intra-class fairness while
        // ECN-driven dctcp stays orderly. hostCC removes the host drops,
        // so the victim class's Jain index must measurably improve in
        // the hostcc-on arm of the identical cell.
        let report = run_matchup("mix", &tiny(), "quick", 2).unwrap();
        let mix_cell = |hostcc: bool| {
            report
                .cells
                .iter()
                .find(|c| c.cc == "dctcp:4+cubic:4" && c.hostcc == hostcc)
                .expect("mix cell present")
        };
        let (off, on) = (mix_cell(false), mix_cell(true));
        // The victim class is the one with the worse intra-class Jain
        // when hostCC is off; pin that it is cubic in this scenario.
        let victim = off
            .groups
            .iter()
            .min_by(|a, b| a.jain.total_cmp(&b.jain))
            .expect("mix cell carries group splits");
        assert_eq!(victim.group, "cubic", "victim class");
        let victim_on = on.group(&victim.group).expect("cubic split present");
        assert!(
            victim_on.jain > victim.jain + 0.02,
            "hostCC must measurably improve the victim class's fairness: \
             off {} vs on {}",
            victim.jain,
            victim_on.jain
        );
    }
}
