//! The end-to-end simulation: senders → switch → receiver host, with
//! transport, hostCC, workloads and metrics wired together.
//!
//! Architecture: packet motion is event-driven (the [`Ev`] enum); the
//! receiver host integrates on a fixed 100 ns tick. The main loop drains
//! all events up to the next tick boundary, then advances the host model,
//! the hostCC controller, the flows' timers and the workload generators.
//!
//! ```text
//! Flow.poll_send → FqLink(sender NIC) → prop → SwitchPort(ECN/drop) →
//!   prop → RxHost(NIC buffer → PCIe → IIO → memory) → stack delay →
//!   Receiver.on_data → [hostCC echo already applied] → ACK (fixed
//!   reverse delay) → Flow.on_ack
//! ```

use hostcc_chaos::{ChaosDriver, ChaosKind, ChaosPhase, ChaosTimeline};
use hostcc_core::{EcnEcho, HostCc, Sample, SignalConfig, SignalSampler, TargetPolicy};
use hostcc_fabric::{
    Arena, ArenaRef, Departure, EnqueueOutcome, FaultInjector, FaultOutcome, FlowId, FqLink, Node,
    Packet, PacketArena, PacketRef, SwitchPort, Topology,
};
use hostcc_flowscope::{FlowscopeHandle, Stage};
use hostcc_host::{MsrReadModel, RxHost, TickOutput, TxHost, MBA_LEVELS};
use hostcc_metrics::Cdf;
use hostcc_perf::{PerfHandle, PerfScope};
use hostcc_sim::{EventQueue, Nanos, Rate, Rng};
use hostcc_telemetry::{Telemetry, TelemetryHandle, WatchdogInput};
use hostcc_trace::{DropLocus, TraceCounts, TraceEvent, TraceHandle};
use hostcc_transport::{
    BbrLite, Cubic, Dcqcn, Dctcp, Flow, FlowConfig, FlowStats, Receiver, Reno, Swift, Timely,
};
use hostcc_workloads::{RingAllReduceSpec, RpcClient, TrafficPattern};

use crate::result::{RpcResult, RunResult};
use crate::scenario::{CcKind, Scenario};

/// Simulation events.
///
/// Kept to 16 bytes: packets and ACK payloads live in arenas
/// ([`Simulation::arena`] / [`Simulation::acks`]) and events carry 8-byte
/// handles. The timing wheel copies every element it cascades, so event
/// size is a direct hot-path cost (the old by-value variant was 88 bytes).
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A packet's last bit left sender `sender`'s NIC.
    Depart { sender: u32, pkt: PacketRef },
    /// A packet's last bit arrived at a switch ingress. `hop` indexes the
    /// packet's route (always 0 on the legacy single-switch path).
    ArriveSwitch { pkt: PacketRef, hop: u32 },
    /// A packet's last bit arrived at the receiver NIC.
    ArriveRxNic { pkt: PacketRef },
    /// A DMA-completed packet cleared the receive stack.
    DeliverStack { pkt: PacketRef },
    /// An ACK reached the sender.
    AckArrive { flow: u32, ack: ArenaRef<AckMsg> },
    /// A chaos-timeline injection fires (index into the driver's schedule).
    Chaos { inj: u32 },
}

/// The payload of an in-flight [`Ev::AckArrive`], interned in
/// [`Simulation::acks`] between the schedule and the arrival.
#[derive(Debug, Clone, Copy)]
struct AckMsg {
    cum: u64,
    ece: bool,
    rwnd: u64,
    sack: [Option<(u64, u64)>; 3],
}

/// What a link-fault chaos window acts on, resolved once at assembly from
/// the event's `@link:<name>` target against the scenario's topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChaosTarget {
    /// Untargeted fault: every sender NIC link (the legacy shape, and the
    /// only valid one on the single implicit link of a no-topology run).
    AllSenders,
    /// A named host uplink: that one sender's NIC link.
    Sender(u32),
    /// A named switch-sourced link: that egress port of the topology.
    FabricLink(u32),
}

/// Runtime state of a compiled chaos timeline: the driver plus per-event
/// saved values so every fault window restores exactly what it perturbed.
/// Overlapping windows of the same kind compose (open-window lists,
/// magnitude products, per-event save slots) rather than clobbering each
/// other.
struct ChaosRt {
    driver: ChaosDriver,
    /// Per-event resolved link target (meaningful for link-fault kinds).
    targets: Vec<ChaosTarget>,
    /// Open link-down windows (flap and pause pulses may overlap):
    /// (event index, target).
    down_windows: Vec<(usize, ChaosTarget)>,
    /// Open degrade windows: (event index, target, magnitude); each link's
    /// rate is nominal × the product of the magnitudes covering it.
    degrades: Vec<(usize, ChaosTarget, f64)>,
    /// Open loss bursts: (event index, dedicated RNG stream, drop chance,
    /// target).
    bursts: Vec<(usize, Rng, f64, ChaosTarget)>,
    /// Saved MBA write latency per mbastall event.
    saved_mba: Vec<Option<Nanos>>,
    /// Saved (monitor jitter, hostCC jitter) per msrjitter event.
    saved_jitter: Vec<Option<(Nanos, Option<Nanos>)>>,
    /// Saved DDIO enable per ddio event.
    saved_ddio: Vec<Option<bool>>,
    /// Extra MApp degree currently injected by open aggressor windows.
    aggressor_boost: f64,
    /// Open echo-outage windows (receiver ECN echo suppressed while > 0).
    echo_outage: u32,
    /// Fault windows currently open (telemetry gauge).
    open: u32,
    /// Injections fired so far (telemetry counter).
    fired: u64,
    /// Packets dropped by burst-loss windows (telemetry counter).
    drops: u64,
}

impl ChaosRt {
    fn new(driver: ChaosDriver, targets: Vec<ChaosTarget>) -> Self {
        let n = driver.timeline().events.len();
        assert_eq!(targets.len(), n);
        ChaosRt {
            driver,
            targets,
            down_windows: Vec::new(),
            degrades: Vec::new(),
            bursts: Vec::new(),
            saved_mba: vec![None; n],
            saved_jitter: vec![None; n],
            saved_ddio: vec![None; n],
            aggressor_boost: 0.0,
            echo_outage: 0,
            open: 0,
            fired: 0,
            drops: 0,
        }
    }

    /// Is sender `s`'s NIC link inside an open down window?
    fn sender_down(&self, s: usize) -> bool {
        self.down_windows.iter().any(|&(_, t)| match t {
            ChaosTarget::AllSenders => true,
            ChaosTarget::Sender(x) => x as usize == s,
            ChaosTarget::FabricLink(_) => false,
        })
    }

    /// Is topology link `link` inside an open down window?
    fn fabric_link_down(&self, link: u32) -> bool {
        self.down_windows
            .iter()
            .any(|&(_, t)| t == ChaosTarget::FabricLink(link))
    }

    /// Rate multiplier for sender `s`'s NIC link (product of the open
    /// degrade windows covering it).
    fn sender_rate_scale(&self, s: usize) -> f64 {
        self.degrades
            .iter()
            .filter(|&&(_, t, _)| match t {
                ChaosTarget::AllSenders => true,
                ChaosTarget::Sender(x) => x as usize == s,
                ChaosTarget::FabricLink(_) => false,
            })
            .map(|&(_, _, m)| m)
            .product()
    }

    /// Rate multiplier for topology link `link`.
    fn fabric_rate_scale(&self, link: u32) -> f64 {
        self.degrades
            .iter()
            .filter(|&&(_, t, _)| t == ChaosTarget::FabricLink(link))
            .map(|&(_, _, m)| m)
            .product()
    }
}

/// Runtime state of an attached multi-switch topology: the graph, one
/// egress [`SwitchPort`] per switch-sourced link, and every flow's frozen
/// ECMP route (host uplinks carry no port — the sender's [`FqLink`] *is*
/// that link).
struct TopoRt {
    topo: Topology,
    /// Per-link egress port, indexed by link id (`None` on host uplinks).
    ports: Vec<Option<SwitchPort>>,
    /// Per-flow forwarding path: the switch-sourced links of its route, in
    /// traversal order (`Ev::ArriveSwitch::hop` indexes this).
    routes: Vec<Vec<u32>>,
    /// Per-flow: does the path end at the focus receiver host (full host
    /// model) rather than a modeled-as-a-sink peer?
    dst_is_focus: Vec<bool>,
}

/// The assembled simulation.
pub struct Simulation {
    cfg: Scenario,
    q: EventQueue<Ev>,
    /// In-flight packets (events and fq queues hold handles into this).
    /// Steady state: the arena grows to the peak in-flight population
    /// during warm-up and never allocates again.
    arena: PacketArena,
    /// In-flight ACK payloads, same lifetime discipline.
    acks: Arena<AckMsg>,
    /// Reused host tick output (cleared and refilled by `tick_into`).
    tick_out: TickOutput,
    /// Reused pump-flow burst buffer for `FqLink::enqueue_burst`
    /// (handle, wire bytes, packet id).
    burst: Vec<(PacketRef, u64, u64)>,
    /// Reused TX-DMA release buffer for `TxHost::tick_into`.
    tx_release: Vec<Packet>,
    senders: Vec<FqLink>,
    /// Sender-side host model at sender 0 (None unless
    /// `sender_mapp_degree > 0`).
    tx_host: Option<TxHost>,
    /// Sender-side hostCC controller (drives the TX host's MBA).
    tx_hostcc: Option<HostCc>,
    switch: SwitchPort,
    /// Multi-switch fabric, when the scenario attaches a topology. The
    /// legacy `switch` port is bypassed entirely in that case.
    topo: Option<TopoRt>,
    rx: RxHost,
    hostcc: Option<HostCc>,
    echo: EcnEcho,
    /// Monitoring sampler: independent of hostCC so vanilla-DCTCP runs
    /// still observe the signals (Fig 2, 8).
    monitor: SignalSampler,
    flows: Vec<Flow>,
    recvs: Vec<Receiver>,
    sender_of_flow: Vec<usize>,
    /// Per-flow reverse-path delay: the base `ack_delay` with a small
    /// deterministic per-flow offset (±10 %), desynchronizing the greedy
    /// flows' AIMD sawtooths the way real per-flow path jitter does.
    ack_delay_of_flow: Vec<Nanos>,
    /// Indices of greedy (NetApp-T) flows.
    greedy: Vec<usize>,
    /// RPC clients and their flow indices.
    rpcs: Vec<(usize, RpcClient)>,
    fault: FaultInjector,
    corrupt_drops: u64,
    /// Compiled chaos timeline, if the scenario carries one.
    chaos: Option<ChaosRt>,

    // Window accounting.
    flow_goodput: Vec<u64>,
    copied_carry: f64,
    last_advertised_rwnd: Vec<u64>,
    stats_base: Vec<FlowStats>,
    switch_base: (u64, u64, u64), // drops, marks, forwarded
    level_sum: f64,
    level_ticks: u64,
    is_sum: f64,
    is_count: u64,
    bs_sum: f64,
    read_is_cdf: Cdf,
    read_bs_cdf: Cdf,
    /// Shared telemetry pipeline: registry gauges, the periodic sampler
    /// and the invariant watchdog. Disabled by default; `Scenario::record`
    /// attaches a default pipeline, `set_telemetry` a configured one.
    telemetry: TelemetryHandle,
    /// Latest monitoring-sampler observation, held so the telemetry
    /// sampler sees the signals between (jittered) monitor samples.
    last_signal: Option<Sample>,
    mapp_started: bool,
    net_stopped: bool,
    /// Optional dynamic target-bandwidth policy driving `hostcc.set_bt`
    /// (None = the paper's fixed B_T).
    policy: Option<Box<dyn TargetPolicy>>,
    next_tick: Nanos,
    /// Shared tracer handle; disabled by default. Clones of this handle
    /// live inside the RX host, the controllers and every flow; the copy
    /// here covers the fabric-level emissions (switch drops/marks, fault
    /// drops, host echo marks, signal samples), which happen in the
    /// simulation loop because the fabric types don't know flow identity.
    trace: TraceHandle,
    /// Wall-clock attribution handle; disabled by default. The event loop
    /// opens an `Engine` scope and nests per-event-kind and per-tick-phase
    /// scopes inside it. Profiling only reads the wall clock — never any
    /// simulation state — so a profiled run is bit-identical to an
    /// unprofiled one (pinned by test below).
    perf: PerfHandle,
    /// Per-flow ledger and packet-lifecycle recorder; disabled by default.
    /// Clones live in every fq link, the RX host, every flow and the ECN
    /// echo; the copy here stamps the boundaries owned by the event loop
    /// (send, switch residency, drops, final stack delivery) because the
    /// fabric types there don't hold packet identity.
    flowscope: FlowscopeHandle,
}

fn make_cc(kind: CcKind, base_rtt: Nanos) -> Box<dyn hostcc_transport::CongestionControl> {
    match kind {
        CcKind::Dctcp => Box::new(Dctcp::new()),
        CcKind::Reno => Box::new(Reno::new()),
        CcKind::Cubic => Box::new(Cubic::new()),
        // Swift target: 25% headroom over the base RTT.
        CcKind::Swift => Box::new(Swift::new(base_rtt.scale(1.25))),
        CcKind::Timely => Box::new(Timely::new(base_rtt)),
        CcKind::Dcqcn => Box::new(Dcqcn::new()),
        CcKind::BbrLite => Box::new(BbrLite::new()),
    }
}

impl Simulation {
    /// Assemble a scenario.
    pub fn new(cfg: Scenario) -> Self {
        cfg.validate();
        let mut rng = Rng::new(cfg.seed);
        let mut flows = Vec::new();
        let mut recvs = Vec::new();
        let mut sender_of_flow = Vec::new();
        let mut greedy = Vec::new();
        let flow_cfg = FlowConfig::for_mtu(cfg.mtu);
        let base_rtt = cfg.base_rtt();

        for (s, &n) in cfg.flows_per_sender.iter().enumerate() {
            for _ in 0..n {
                let id = FlowId(flows.len() as u32);
                // Heterogeneous mixes assign kinds in global flow-index
                // order (first group first); homogeneous runs get cfg.cc.
                let kind = cfg.cc_for_greedy_flow(greedy.len() as u32);
                let mut f = Flow::new(id, flow_cfg.clone(), make_cc(kind, base_rtt));
                f.set_greedy();
                greedy.push(flows.len());
                flows.push(f);
                recvs.push(Receiver::new(id, cfg.rcv_buf));
                sender_of_flow.push(s);
            }
        }
        let mut rpcs = Vec::new();
        if let Some(rpc_cfg) = &cfg.rpc {
            for _ in 0..cfg.rpc_clients {
                let id = FlowId(flows.len() as u32);
                let f = Flow::new(id, flow_cfg.clone(), make_cc(cfg.cc, base_rtt));
                let idx = flows.len();
                flows.push(f);
                recvs.push(Receiver::new(id, cfg.rcv_buf));
                sender_of_flow.push(0);
                rpcs.push((
                    idx,
                    RpcClient::new(rpc_cfg.clone(), rng.fork(100 + idx as u64)),
                ));
            }
        }

        // MApp may start later (abrupt-onset experiments).
        let initial_degree = if cfg.mapp_start == Nanos::ZERO {
            cfg.mapp_degree
        } else {
            0.0
        };
        let rx = RxHost::new(cfg.host.clone(), initial_degree);

        // DDIO pollution grows with MTU and flow count (Fig 3's DDIO
        // trends); phenomenological scaling documented in DESIGN.md.
        let mut rx = rx;
        if cfg.host.ddio_enabled {
            let pollution = (cfg.mtu as f64 / 4096.0).sqrt()
                * (cfg.total_greedy_flows().max(1) as f64 / 4.0).sqrt();
            rx.ddio_mut().set_pollution_factor(pollution.max(1.0));
        }

        let read_model = MsrReadModel::new(cfg.host.msr_read_mean, cfg.host.msr_read_jitter);
        let hostcc = cfg.hostcc.clone().map(|hc_cfg| {
            HostCc::new(
                hc_cfg,
                MsrReadModel::new(cfg.host.msr_read_mean, cfg.host.msr_read_jitter),
                cfg.host.f_iio_ghz,
                rng.fork(7),
            )
        });
        let monitor = SignalSampler::new(
            SignalConfig::default(),
            read_model,
            cfg.host.f_iio_ghz,
            rng.fork(8),
        );
        let fault = FaultInjector::new(cfg.fault, rng.fork(9));

        let tx_host = (cfg.sender_mapp_degree > 0.0)
            .then(|| TxHost::new(cfg.host.clone(), cfg.sender_mapp_degree));
        let tx_hostcc = (tx_host.is_some() && cfg.sender_hostcc).then(|| {
            // The sender response defends the TX rate: echo is meaningless
            // on the sender side (there is nothing to mark), so only the
            // local response runs.
            let mut hc_cfg = cfg.hostcc.clone().unwrap_or_else(|| {
                if cfg.host.ddio_enabled {
                    hostcc_core::HostCcConfig::paper_ddio()
                } else {
                    hostcc_core::HostCcConfig::paper_default()
                }
            });
            hc_cfg.echo = false;
            HostCc::new(
                hc_cfg,
                MsrReadModel::new(cfg.host.msr_read_mean, cfg.host.msr_read_jitter),
                cfg.host.f_iio_ghz,
                rng.fork(12),
            )
        });

        if let Some(level) = cfg.forced_mba_level {
            rx.mba_mut().force_level(level);
        }

        let n_flows = flows.len();
        let mut jitter_rng = rng.fork(11);
        let ack_delay_of_flow = (0..n_flows)
            .map(|_| cfg.ack_delay.scale(jitter_rng.jitter(1.0, 0.10)))
            .collect();
        let senders = (0..cfg.senders)
            .map(|_| FqLink::new(Rate::gbps(100.0)))
            .collect();
        let switch = SwitchPort::new(cfg.switch);
        let telemetry = if cfg.record {
            TelemetryHandle::new(Telemetry::default())
        } else {
            TelemetryHandle::disabled()
        };
        let tick = cfg.host.tick;

        // Freeze the topology runtime: one egress port per switch-sourced
        // link, and every flow's ECMP route drawn once from the pinned
        // path-seed scheme — routes depend only on (topology, flow, seed),
        // so multi-hop runs are bit-identical at any sweep worker count.
        let topo = cfg.topology.map(|spec| {
            let topo = spec.build();
            let ports = (0..topo.links().len() as u32)
                .map(|l| {
                    topo.is_switch_sourced(l)
                        .then(|| SwitchPort::new(cfg.switch))
                })
                .collect();
            let receiver = topo.receiver();
            let mut routes = Vec::with_capacity(n_flows);
            let mut dst_is_focus = Vec::with_capacity(n_flows);
            for (i, &s) in sender_of_flow.iter().enumerate() {
                let src = s as u32;
                let dst = match cfg.pattern {
                    TrafficPattern::Incast => receiver,
                    TrafficPattern::RingAllReduce => RingAllReduceSpec {
                        hosts: topo.host_count(),
                    }
                    .dst_of(src),
                };
                let path = topo.route(src, dst, i as u32, cfg.seed);
                routes.push(
                    path.into_iter()
                        .filter(|&l| topo.is_switch_sourced(l))
                        .collect(),
                );
                dst_is_focus.push(dst == receiver);
            }
            TopoRt {
                topo,
                ports,
                routes,
                dst_is_focus,
            }
        });

        // Compile the chaos timeline and schedule every injection up front:
        // the schedule depends only on the scenario (spec text + seed), so
        // chaos runs are bit-identical at any sweep worker count.
        let chaos = cfg.chaos.as_ref().map(|spec| {
            let tl = ChaosTimeline::resolve(spec).expect("scenario validated the chaos spec");
            // Resolve `@link:` targets against the topology: a host uplink
            // is that sender's NIC link, anything switch-sourced is a
            // fabric port. (Scenario::validate rejected unknown names.)
            let targets = tl
                .events
                .iter()
                .map(|e| match &e.target {
                    None => ChaosTarget::AllSenders,
                    Some(name) => {
                        let t = &topo
                            .as_ref()
                            .expect("scenario validated link targets against a topology")
                            .topo;
                        let l = t.find_link(name).expect("scenario validated the target");
                        match t.link(l).from {
                            Node::Host(h) if (h as usize) < cfg.senders => ChaosTarget::Sender(h),
                            _ => ChaosTarget::FabricLink(l),
                        }
                    }
                })
                .collect();
            ChaosRt::new(ChaosDriver::new(tl, cfg.seed), targets)
        });
        let mut q = EventQueue::new();
        if let Some(c) = &chaos {
            for (i, inj) in c.driver.injections().iter().enumerate() {
                q.schedule(inj.at, Ev::Chaos { inj: i as u32 });
            }
        }

        Simulation {
            q,
            arena: PacketArena::new(),
            acks: Arena::new(),
            tick_out: TickOutput::default(),
            burst: Vec::new(),
            tx_release: Vec::new(),
            senders,
            tx_host,
            tx_hostcc,
            switch,
            topo,
            rx,
            hostcc,
            echo: EcnEcho::new(),
            monitor,
            flows,
            recvs,
            sender_of_flow,
            ack_delay_of_flow,
            greedy,
            rpcs,
            fault,
            corrupt_drops: 0,
            chaos,
            flow_goodput: vec![0; n_flows],
            copied_carry: 0.0,
            last_advertised_rwnd: vec![u64::MAX; n_flows],
            stats_base: vec![FlowStats::default(); n_flows],
            switch_base: (0, 0, 0),
            level_sum: 0.0,
            level_ticks: 0,
            is_sum: 0.0,
            is_count: 0,
            bs_sum: 0.0,
            read_is_cdf: Cdf::new(),
            read_bs_cdf: Cdf::new(),
            telemetry,
            last_signal: None,
            mapp_started: cfg.mapp_start == Nanos::ZERO,
            net_stopped: false,
            policy: None,
            next_tick: tick,
            trace: TraceHandle::disabled(),
            perf: PerfHandle::disabled(),
            flowscope: FlowscopeHandle::disabled(),
            cfg,
        }
    }

    /// Enable tracing: clones of `trace` are pushed into every instrumented
    /// component (RX host incl. its MBA, both hostCC controllers, every
    /// flow). Call before `run`; the handle can be inspected afterwards.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.rx.set_trace(trace.clone());
        if let Some(hc) = &mut self.hostcc {
            hc.set_trace(trace.clone());
        }
        if let Some(hc) = &mut self.tx_hostcc {
            hc.set_trace(trace.clone());
        }
        for f in &mut self.flows {
            f.set_trace(trace.clone());
        }
        self.trace = trace;
    }

    /// Attach a flow-ledger recorder: clones are pushed into every fq link,
    /// the RX host, every flow and the ECN echo, and every flow is
    /// registered up front (greedy = NetApp-T bulk flow, so RPC flows are
    /// excluded from fairness/convergence scoring). Call before `run`;
    /// [`RunResult::flowscope`](crate::RunResult::flowscope) carries the
    /// frozen result.
    pub fn set_flowscope(&mut self, flowscope: FlowscopeHandle) {
        for i in 0..self.flows.len() {
            // Registering with the flow's protocol name gives the frozen
            // result per-CC-group ledger splits — how heterogeneous mixes
            // are scored (victim vs aggressor class).
            flowscope.register_flow_grouped(
                i as u32,
                self.greedy.contains(&i),
                self.flows[i].cc_name(),
            );
        }
        for l in &mut self.senders {
            l.set_flowscope(flowscope.clone());
        }
        self.rx.set_flowscope(flowscope.clone());
        self.echo.set_flowscope(flowscope.clone());
        for f in &mut self.flows {
            f.set_flowscope(flowscope.clone());
        }
        self.flowscope = flowscope;
    }

    /// The shared flowscope handle (disabled unless
    /// [`Simulation::set_flowscope`] enabled it).
    pub fn flowscope(&self) -> &FlowscopeHandle {
        &self.flowscope
    }

    /// Attach a telemetry pipeline (replacing the default one
    /// `Scenario::record` installs, or the disabled handle otherwise).
    /// Call before `run`; the handle can be inspected afterwards, and
    /// [`RunResult::telemetry`](crate::RunResult::telemetry) carries the
    /// frozen result.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
    }

    /// The shared telemetry handle (disabled unless `Scenario::record` or
    /// [`Simulation::set_telemetry`] enabled it).
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    /// Attach a wall-clock attribution profiler. Call before `run`; read
    /// the report back through [`Simulation::perf`] afterwards.
    pub fn set_perf(&mut self, perf: PerfHandle) {
        self.perf = perf;
    }

    /// The shared perf handle (disabled unless [`Simulation::set_perf`]
    /// enabled it).
    pub fn perf(&self) -> &PerfHandle {
        &self.perf
    }

    /// Total simulation events popped from the queue so far (sim-rate
    /// profiling; monotone across warm-up and measurement).
    pub fn events_processed(&self) -> u64 {
        self.q.popped()
    }

    /// Deterministic per-kind trace counts, if tracing is enabled.
    pub fn trace_counts(&self) -> Option<TraceCounts> {
        self.trace.counts()
    }

    /// The shared trace handle (for export).
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// Install a dynamic target-bandwidth policy (replaces the fixed B_T;
    /// requires hostCC to be enabled).
    pub fn set_target_policy(&mut self, policy: Box<dyn TargetPolicy>) {
        assert!(
            self.hostcc.is_some(),
            "a target policy needs an active hostCC controller"
        );
        self.policy = Some(policy);
    }

    /// Current simulation time.
    pub fn now(&self) -> Nanos {
        self.q.now()
    }

    /// The receiver host (inspection).
    pub fn rx(&self) -> &RxHost {
        &self.rx
    }

    /// The hostCC controller, if enabled.
    pub fn hostcc(&self) -> Option<&HostCc> {
        self.hostcc.as_ref()
    }

    /// Pin the MBA to a fixed response level for the whole run (the Fig 9
    /// fixed-level sweep). Only meaningful without hostCC, which would
    /// otherwise steer the level away.
    pub fn force_mba_level(&mut self, level: u8) {
        assert!(
            self.hostcc.is_none(),
            "force_mba_level conflicts with an active hostCC controller"
        );
        self.rx.mba_mut().force_level(level);
    }

    /// Run warm-up + measurement; returns the measured result.
    pub fn run(&mut self) -> RunResult {
        let warm_end = self.cfg.warmup;
        self.advance_to(warm_end);
        self.perf.enter(PerfScope::Engine);
        self.reset_window();
        self.perf.exit();
        let end = warm_end + self.cfg.measure;
        self.advance_to(end);
        self.collect(self.cfg.measure)
    }

    /// Advance the simulation to `t_end`.
    ///
    /// The whole loop runs inside a perf `Engine` scope; per-event and
    /// per-tick-phase scopes nest inside it, so when profiling is on the
    /// attributed time covers essentially the full wall time of the call
    /// (`Engine` self-time is the queue/loop overhead).
    pub fn advance_to(&mut self, t_end: Nanos) {
        self.perf.enter(PerfScope::Engine);
        while self.next_tick <= t_end {
            let tick_at = self.next_tick;
            while let Some((t, ev)) = self.q.pop_before(tick_at) {
                self.perf.enter(Self::ev_scope(&ev));
                self.handle(t, ev);
                self.perf.exit();
            }
            self.q.advance_to(tick_at);
            self.tick(tick_at);
            self.next_tick = tick_at + self.cfg.host.tick;
        }
        self.perf.exit();
    }

    /// The attribution bucket for an event dispatch.
    fn ev_scope(ev: &Ev) -> PerfScope {
        match ev {
            Ev::Depart { .. } => PerfScope::EvDepart,
            Ev::ArriveSwitch { .. } => PerfScope::EvArriveSwitch,
            Ev::ArriveRxNic { .. } => PerfScope::EvArriveRxNic,
            Ev::DeliverStack { .. } => PerfScope::EvDeliverStack,
            Ev::AckArrive { .. } => PerfScope::EvAckArrive,
            Ev::Chaos { .. } => PerfScope::EvChaos,
        }
    }

    fn handle(&mut self, now: Nanos, ev: Ev) {
        match ev {
            Ev::Depart { sender, pkt } => {
                self.q
                    .schedule(now + self.cfg.link_prop, Ev::ArriveSwitch { pkt, hop: 0 });
                if let Some(Departure { at, pkt }) = self.senders[sender as usize].on_depart(now) {
                    self.q.schedule(at, Ev::Depart { sender, pkt });
                }
            }
            Ev::ArriveSwitch { pkt, hop } => {
                // Every drop path below must free the arena slot — an
                // interned packet has exactly one owner, and on a drop the
                // owner is this handler.
                let (flow, id) = {
                    let p = self.arena.get(pkt);
                    (p.flow.0, p.id)
                };
                // Edge effects fire once per packet, at fabric entry.
                if hop == 0 {
                    // Burst-loss chaos windows: every open burst draws for
                    // every packet (streams stay aligned however the other
                    // bursts land); any hit whose target covers this
                    // packet's path drops it before the switch.
                    if let Some(c) = &mut self.chaos {
                        let mut hit = false;
                        let sender = self.sender_of_flow[flow as usize] as u32;
                        for (_, rng, p, target) in &mut c.bursts {
                            let draw = rng.chance(*p);
                            let applies = match *target {
                                ChaosTarget::AllSenders => true,
                                ChaosTarget::Sender(s) => s == sender,
                                ChaosTarget::FabricLink(l) => self
                                    .topo
                                    .as_ref()
                                    .is_some_and(|rt| rt.routes[flow as usize].contains(&l)),
                            };
                            if draw && applies {
                                hit = true;
                            }
                        }
                        if hit {
                            c.drops += 1;
                            self.arena.remove(pkt);
                            self.flowscope.packet_dropped(id, now);
                            self.trace.emit(now, || TraceEvent::PacketDrop {
                                flow,
                                locus: DropLocus::Fault,
                            });
                            return;
                        }
                    }
                    match self.fault.apply() {
                        FaultOutcome::Drop => {
                            self.arena.remove(pkt);
                            self.flowscope.packet_dropped(id, now);
                            self.trace.emit(now, || TraceEvent::PacketDrop {
                                flow,
                                locus: DropLocus::Fault,
                            });
                            return;
                        }
                        FaultOutcome::Corrupt => {
                            // Corrupted packets are dropped by the receiver's
                            // checksum; they still traverse the switch, but we
                            // short-circuit the host datapath for simplicity.
                            self.corrupt_drops += 1;
                            self.arena.remove(pkt);
                            self.flowscope.packet_dropped(id, now);
                            self.trace.emit(now, || TraceEvent::PacketDrop {
                                flow,
                                locus: DropLocus::Fault,
                            });
                            return;
                        }
                        FaultOutcome::Pass => {}
                    }
                }
                let wire_bytes = self.arena.get(pkt).wire_bytes();
                if self.topo.is_some() {
                    self.forward_hop(now, pkt, flow, id, wire_bytes, hop);
                    return;
                }
                match self.switch.enqueue(now, wire_bytes) {
                    EnqueueOutcome::Dropped => {
                        self.arena.remove(pkt);
                        self.flowscope.packet_dropped(id, now);
                        self.trace.emit(now, || TraceEvent::PacketDrop {
                            flow,
                            locus: DropLocus::Switch,
                        });
                    }
                    EnqueueOutcome::Enqueued { departs, marked } => {
                        // Propagation closes now; switch residency closes at
                        // the (future) departure instant — safe to stamp
                        // early, any later stamp is later still.
                        self.flowscope.boundary(id, Stage::PropToSwitch, now);
                        self.flowscope.boundary(id, Stage::SwitchQueue, departs);
                        if marked {
                            self.arena.get_mut(pkt).mark_ce();
                            self.trace
                                .emit(now, || TraceEvent::EcnMark { flow, host: false });
                        }
                        self.q
                            .schedule(departs + self.cfg.link_prop, Ev::ArriveRxNic { pkt });
                    }
                }
            }
            Ev::ArriveRxNic { pkt } => {
                // NIC buffer admission; drops are counted inside the host.
                // The packet leaves the arena here: the host datapath moves
                // it by value and phase 3 of `tick` re-interns survivors.
                let pkt = self.arena.remove(pkt);
                let _ = self.rx.on_wire_arrival(pkt, now);
            }
            Ev::DeliverStack { pkt } => {
                let pkt = self.arena.remove(pkt);
                self.flowscope.delivered(pkt.id, pkt.payload_bytes(), now);
                let idx = pkt.flow.0 as usize;
                let mut ack = self.recvs[idx].on_data(&pkt, now);
                // A non-focus destination has no modeled host: its
                // application consumes at line rate, so drain the socket
                // right away and advertise the reopened window.
                if self.topo.as_ref().is_some_and(|rt| !rt.dst_is_focus[idx]) {
                    let unconsumed = self.recvs[idx].unconsumed();
                    self.flow_goodput[idx] += self.recvs[idx].app_read(unconsumed);
                    ack.rwnd = self.recvs[idx].rwnd();
                }
                self.last_advertised_rwnd[idx] = ack.rwnd;
                for c in self.recvs[idx].take_completed() {
                    for (fi, rpc) in &mut self.rpcs {
                        if *fi == idx {
                            rpc.on_completion(c.end_offset, c.completed_at);
                        }
                    }
                }
                let msg = self.acks.insert(AckMsg {
                    cum: ack.cum_ack,
                    ece: ack.ece,
                    rwnd: ack.rwnd,
                    sack: ack.sack,
                });
                self.q.schedule(
                    now + self.ack_delay_of_flow[idx],
                    Ev::AckArrive {
                        flow: pkt.flow.0,
                        ack: msg,
                    },
                );
            }
            Ev::AckArrive { flow, ack } => {
                let m = self.acks.remove(ack);
                let idx = flow as usize;
                self.flows[idx].on_ack_sack(now, m.cum, m.ece, m.rwnd, &m.sack);
                self.pump_flow(idx, now);
            }
            Ev::Chaos { inj } => self.handle_chaos(now, inj as usize),
        }
    }

    /// Forward a packet across hop `hop` of its route on the attached
    /// topology: enqueue into that link's egress port, stamp the per-hop
    /// flowscope boundaries (accumulating stamps keep the exact stage-sum =
    /// e2e conservation identity over any hop count), and schedule the next
    /// hop — or the delivery, once the path is exhausted.
    fn forward_hop(
        &mut self,
        now: Nanos,
        pkt: PacketRef,
        flow: u32,
        id: u64,
        wire_bytes: u64,
        hop: u32,
    ) {
        let rt = self.topo.as_mut().expect("forward_hop needs a topology");
        let route = &rt.routes[flow as usize];
        let link = route[hop as usize];
        let last = hop as usize + 1 == route.len();
        // An open link-down window kills the link: arrivals at its ingress
        // are lost (packets already queued in the port still depart).
        if self
            .chaos
            .as_ref()
            .is_some_and(|c| c.fabric_link_down(link))
        {
            self.chaos.as_mut().expect("checked above").drops += 1;
            self.arena.remove(pkt);
            self.flowscope.packet_dropped(id, now);
            self.trace.emit(now, || TraceEvent::PacketDrop {
                flow,
                locus: DropLocus::Fault,
            });
            return;
        }
        let port = rt.ports[link as usize]
            .as_mut()
            .expect("route links are switch-sourced");
        match port.enqueue(now, wire_bytes) {
            EnqueueOutcome::Dropped => {
                self.arena.remove(pkt);
                self.flowscope.packet_dropped(id, now);
                self.trace.emit(now, || TraceEvent::PacketDrop {
                    flow,
                    locus: DropLocus::Switch,
                });
            }
            EnqueueOutcome::Enqueued { departs, marked } => {
                self.flowscope.boundary(id, Stage::PropToSwitch, now);
                self.flowscope.boundary(id, Stage::SwitchQueue, departs);
                if marked {
                    self.arena.get_mut(pkt).mark_ce();
                    self.trace
                        .emit(now, || TraceEvent::EcnMark { flow, host: false });
                }
                if !last {
                    self.q.schedule(
                        departs + self.cfg.link_prop,
                        Ev::ArriveSwitch { pkt, hop: hop + 1 },
                    );
                } else if rt.dst_is_focus[flow as usize] {
                    self.q
                        .schedule(departs + self.cfg.link_prop, Ev::ArriveRxNic { pkt });
                } else {
                    // Non-focus destinations skip the focus host model:
                    // deliver after a fixed stack delay. The remaining
                    // prop + stack time folds into the Stack stage at
                    // delivery (sparse stamping conserves exactly).
                    self.q.schedule(
                        departs + self.cfg.link_prop + self.cfg.rx_stack_delay,
                        Ev::DeliverStack { pkt },
                    );
                }
            }
        }
    }

    /// Apply one chaos injection (a fault window opening or closing).
    fn handle_chaos(&mut self, now: Nanos, idx: usize) {
        let Some(mut c) = self.chaos.take() else {
            return;
        };
        let inj = c.driver.injections()[idx];
        let (kind, magnitude) = {
            let e = c.driver.event(inj.event);
            (e.kind, e.magnitude)
        };
        let target = c.targets[inj.event];
        let start = matches!(inj.phase, ChaosPhase::Start);
        self.trace.emit(now, || TraceEvent::ChaosInject {
            index: inj.event as u32,
            start,
        });
        c.fired += 1;
        if start {
            c.open += 1;
        } else {
            c.open -= 1;
        }
        match kind {
            // Flaps and pause pulses take their targeted link down (every
            // sender link when untargeted); the in-flight packet departs
            // normally, arrivals queue behind — or, on a fabric link, are
            // lost at the dead ingress.
            ChaosKind::LinkFlap | ChaosKind::PauseStorm => {
                let n = self.senders.len();
                let was: Vec<bool> = (0..n).map(|s| c.sender_down(s)).collect();
                if start {
                    c.down_windows.push((inj.event, target));
                } else if let Some(p) = c.down_windows.iter().position(|&(e, _)| e == inj.event) {
                    c.down_windows.remove(p);
                }
                // Sender links transition on the effective edge only, so
                // overlapping windows compose; fabric links need no edge
                // work (downness is checked at forwarding time).
                for (s, &was_down) in was.iter().enumerate() {
                    let is_down = c.sender_down(s);
                    if is_down && !was_down {
                        self.senders[s].set_down();
                    } else if !is_down && was_down {
                        if let Some(Departure { at, pkt }) = self.senders[s].kick(now) {
                            self.q.schedule(
                                at,
                                Ev::Depart {
                                    sender: s as u32,
                                    pkt,
                                },
                            );
                        }
                    }
                }
            }
            ChaosKind::LinkDegrade => {
                if start {
                    c.degrades.push((inj.event, target, magnitude));
                } else if let Some(p) = c.degrades.iter().position(|&(e, _, _)| e == inj.event) {
                    c.degrades.remove(p);
                }
                for s in 0..self.senders.len() {
                    let rate = Rate::gbps(100.0 * c.sender_rate_scale(s));
                    self.senders[s].set_rate(rate);
                }
                if let Some(rt) = &mut self.topo {
                    let nominal = self.cfg.switch.rate.as_gbps();
                    for (l, port) in rt.ports.iter_mut().enumerate() {
                        if let Some(port) = port {
                            let scale = c.fabric_rate_scale(l as u32);
                            port.set_rate(Rate::gbps(nominal * scale));
                        }
                    }
                }
            }
            ChaosKind::BurstLoss => {
                if start {
                    let rng = Rng::new(c.driver.event_seed(inj.event));
                    c.bursts.push((inj.event, rng, magnitude, target));
                } else {
                    c.bursts.retain(|(e, _, _, _)| *e != inj.event);
                }
            }
            ChaosKind::MbaActuationStall => {
                let mba = self.rx.mba_mut();
                if start {
                    let saved = mba.write_latency();
                    c.saved_mba[inj.event] = Some(saved);
                    let stalled = saved.scale(magnitude);
                    mba.set_write_latency(stalled);
                    mba.defer_pending(stalled.saturating_sub(saved));
                } else if let Some(saved) = c.saved_mba[inj.event].take() {
                    mba.set_write_latency(saved);
                }
            }
            ChaosKind::MsrReadJitter => {
                if start {
                    let mon = self.monitor.read_model_mut();
                    let saved_mon = mon.jitter();
                    let mean = mon.mean();
                    mon.set_jitter(mean.scale(magnitude));
                    let saved_hc = self.hostcc.as_mut().map(|hc| {
                        let m = hc.read_model_mut();
                        let saved = m.jitter();
                        let mean = m.mean();
                        m.set_jitter(mean.scale(magnitude));
                        saved
                    });
                    c.saved_jitter[inj.event] = Some((saved_mon, saved_hc));
                } else if let Some((mon_j, hc_j)) = c.saved_jitter[inj.event].take() {
                    self.monitor.read_model_mut().set_jitter(mon_j);
                    if let (Some(hc), Some(j)) = (self.hostcc.as_mut(), hc_j) {
                        hc.read_model_mut().set_jitter(j);
                    }
                }
            }
            ChaosKind::DdioToggle => {
                if start {
                    let cur = self.rx.ddio_enabled();
                    c.saved_ddio[inj.event] = Some(cur);
                    self.rx.set_ddio_enabled(!cur);
                } else if let Some(saved) = c.saved_ddio[inj.event].take() {
                    self.rx.set_ddio_enabled(saved);
                }
            }
            ChaosKind::AggressorBurst => {
                if start {
                    c.aggressor_boost += magnitude;
                    if self.mapp_started {
                        let d = self.rx.mapp().degree();
                        self.rx.mapp_mut().set_degree(d + magnitude);
                    }
                } else {
                    c.aggressor_boost -= magnitude;
                    if self.mapp_started {
                        let d = self.rx.mapp().degree();
                        self.rx.mapp_mut().set_degree((d - magnitude).max(0.0));
                    }
                }
            }
            ChaosKind::EcnEchoOutage => {
                if start {
                    c.echo_outage += 1;
                } else {
                    c.echo_outage -= 1;
                }
            }
        }
        self.chaos = Some(c);
    }

    fn pump_flow(&mut self, idx: usize, now: Nanos) {
        let sender = self.sender_of_flow[idx];
        // Sender 0 may route through the sender host model (TX DMA).
        if sender == 0 {
            if let Some(tx) = &mut self.tx_host {
                while let Some(pkt) = self.flows[idx].poll_send(now) {
                    self.flowscope.packet_sent(pkt.id, pkt.flow.0, now);
                    tx.enqueue(pkt);
                }
                return;
            }
        }
        // Intern the whole send burst, then hand it to the fq link in one
        // call. Bit-identical to per-packet enqueue: every packet lands in
        // the same per-flow FIFO, and the one possible departure (link was
        // idle) is the first packet's either way.
        debug_assert!(self.burst.is_empty());
        let mut flow = FlowId(idx as u32);
        while let Some(pkt) = self.flows[idx].poll_send(now) {
            flow = pkt.flow;
            let bytes = pkt.wire_bytes();
            let id = pkt.id;
            self.flowscope.packet_sent(id, flow.0, now);
            self.burst.push((self.arena.insert(pkt), bytes, id));
        }
        let mut burst = std::mem::take(&mut self.burst);
        if let Some(Departure { at, pkt }) =
            self.senders[sender].enqueue_burst(now, flow, &mut burst)
        {
            self.q.schedule(
                at,
                Ev::Depart {
                    sender: sender as u32,
                    pkt,
                },
            );
        }
        self.burst = burst;
    }

    fn tick(&mut self, now: Nanos) {
        // Host phase: onset control plus the sender/receiver host
        // datapath integration (phases 0 and 1 below).
        self.perf.enter(PerfScope::TickHost);
        // MApp onset (plus whatever aggressor chaos windows are open).
        if !self.mapp_started && now >= self.cfg.mapp_start {
            let boost = self.chaos.as_ref().map_or(0.0, |c| c.aggressor_boost);
            self.rx.mapp_mut().set_degree(self.cfg.mapp_degree + boost);
            self.mapp_started = true;
        }
        // Network demand ending (policy-layer studies).
        if let Some(stop) = self.cfg.net_stop {
            if !self.net_stopped && now >= stop {
                for &i in &self.greedy {
                    self.flows[i].stop_app();
                }
                self.net_stopped = true;
            }
        }

        // 0. Sender host datapath: TX DMA releases packets to the NIC.
        if self.tx_host.is_some() {
            let mut released = std::mem::take(&mut self.tx_release);
            released.clear();
            if let Some(tx) = &mut self.tx_host {
                tx.tick_into(now, &mut released);
            }
            for pkt in released.drain(..) {
                let flow = pkt.flow;
                let bytes = pkt.wire_bytes();
                let id = pkt.id;
                let r = self.arena.insert(pkt);
                if let Some(Departure { at, pkt }) =
                    self.senders[0].enqueue(now, flow, bytes, id, r)
                {
                    self.q.schedule(at, Ev::Depart { sender: 0, pkt });
                }
            }
            self.tx_release = released;
            if let (Some(tx), Some(hc)) = (&mut self.tx_host, &mut self.tx_hostcc) {
                let (msr, mba) = tx.msr_and_mba();
                hc.on_tick(now, msr, mba);
            }
        }

        // 1. Host datapath (into the reused tick-output buffer).
        let mut out = std::mem::take(&mut self.tick_out);
        self.rx.tick_into(now, &mut out);
        self.perf.exit();

        // 2. hostCC control loop.
        self.perf.enter(PerfScope::TickCore);
        let mark = if let Some(hc) = &mut self.hostcc {
            if let Some(policy) = &mut self.policy {
                let bt = policy.target(now, hc.bs());
                hc.set_bt(bt);
            }
            let nic_backlog = self.rx.nic_backlog_bytes();
            let (msr, mba) = self.rx.msr_and_mba();
            hc.on_tick_with_nic(now, msr, nic_backlog, mba);
            hc.should_mark()
        } else {
            false
        };
        // An echo-outage chaos window silences the receiver-side marking
        // path (the controller keeps running; only the echo is lost).
        let mark = mark && self.chaos.as_ref().is_none_or(|c| c.echo_outage == 0);
        self.perf.exit();

        // Transport phase: deliveries, application reads and window
        // reopening (phases 3–5 below).
        self.perf.enter(PerfScope::TickTransport);
        // 3. Deliveries: receiver-side ECN echo, then up the stack (the
        //    packet re-enters the arena for its stack-delay flight).
        for d in out.delivered.drain(..) {
            let mut pkt = d.pkt;
            let was_ce = pkt.ecn.is_ce();
            self.echo.process(&mut pkt, mark);
            if !was_ce && pkt.ecn.is_ce() {
                self.trace.emit(now, || TraceEvent::EcnMark {
                    flow: pkt.flow.0,
                    host: true,
                });
            }
            self.q.schedule(
                now + self.cfg.rx_stack_delay,
                Ev::DeliverStack {
                    pkt: self.arena.insert(pkt),
                },
            );
        }

        // 4. Copy engine drain → per-flow application reads → goodput and
        //    receive-window reopening.
        self.copied_carry += out.copied_app_bytes;
        self.tick_out = out;
        if self.copied_carry >= 1.0 {
            let total_unconsumed: u64 = self.recvs.iter().map(|r| r.unconsumed()).sum();
            if total_unconsumed > 0 {
                let drainable = (self.copied_carry as u64).min(total_unconsumed);
                let mut remaining = drainable;
                let n = self.recvs.len();
                for i in 0..n {
                    if remaining == 0 {
                        break;
                    }
                    let share = ((drainable as u128 * self.recvs[i].unconsumed() as u128)
                        / total_unconsumed as u128) as u64;
                    let take = self.recvs[i].app_read(share.min(remaining));
                    self.flow_goodput[i] += take;
                    remaining -= take;
                }
                // Round-off leftovers: first-come, first-served.
                for i in 0..n {
                    if remaining == 0 {
                        break;
                    }
                    let take = self.recvs[i].app_read(remaining);
                    self.flow_goodput[i] += take;
                    remaining -= take;
                }
                self.copied_carry -= (drainable - remaining) as f64;
            }
        }

        // 5. Receive-window reopening: if a flow's advertised window was
        //    closed below one MSS and the application has since drained the
        //    socket, send a window update (Linux does the same).
        let mss = self.cfg.mss();
        for i in 0..self.recvs.len() {
            let rwnd = self.recvs[i].rwnd();
            if self.last_advertised_rwnd[i] < mss && rwnd >= mss {
                self.last_advertised_rwnd[i] = rwnd;
                let msg = self.acks.insert(AckMsg {
                    cum: self.recvs[i].cum_ack(),
                    ece: false,
                    rwnd,
                    sack: [None; 3],
                });
                self.q.schedule(
                    now + self.ack_delay_of_flow[i],
                    Ev::AckArrive {
                        flow: i as u32,
                        ack: msg,
                    },
                );
            }
        }
        self.perf.exit();

        // 6. Monitoring sampler (independent of hostCC).
        self.perf.enter(PerfScope::TickCore);
        if let Some(sample) = self.monitor.maybe_sample(now, self.rx.msr()) {
            self.trace.emit(now, || TraceEvent::SignalSample {
                is: sample.is,
                bs_gbps: sample.bs.as_gbps(),
                read_ns: sample.read_latency().as_nanos(),
            });
            self.is_sum += sample.is;
            self.bs_sum += sample.bs.as_bytes_per_ns();
            self.is_count += 1;
            self.read_is_cdf.record(sample.read_is);
            self.read_bs_cdf.record(sample.read_bs);
            self.telemetry.with_mut(|t| {
                t.registry_mut().histogram_record(
                    "core.signals.read_latency_ns",
                    sample.read_latency().as_nanos() as f64,
                )
            });
            self.last_signal = Some(sample);
        }
        let eff_level = f64::from(self.rx.mba_mut().effective_level(now));
        self.level_sum += eff_level;
        self.level_ticks += 1;
        self.perf.exit();

        self.perf.enter(PerfScope::TickTelemetry);
        self.sample_telemetry(now, eff_level);
        self.perf.exit();

        // 7. Workloads and flow timers.
        self.perf.enter(PerfScope::TickWorkload);
        for k in 0..self.rpcs.len() {
            let (idx, _) = self.rpcs[k];
            let (_, rpc) = &mut self.rpcs[k];
            let flow = &mut self.flows[idx];
            rpc.maybe_send(now, flow);
        }
        self.perf.exit();
        self.perf.enter(PerfScope::TickTransport);
        for i in 0..self.flows.len() {
            self.flows[i].on_tick(now);
            self.pump_flow(i, now);
        }
        self.perf.exit();
    }

    /// Cumulative (drops, marks, forwarded) across the active fabric: the
    /// topology's egress ports when one is attached, the single legacy
    /// switch port otherwise.
    fn fabric_totals(&self) -> (u64, u64, u64) {
        match &self.topo {
            Some(rt) => rt.ports.iter().flatten().fold((0, 0, 0), |(d, m, f), p| {
                (d + p.drops(), m + p.marks(), f + p.forwarded())
            }),
            None => (
                self.switch.drops(),
                self.switch.marks(),
                self.switch.forwarded(),
            ),
        }
    }

    /// Update registry gauges from the host probe and the latest signal
    /// sample, run the invariant watchdog, and snapshot a telemetry sample
    /// — when a pipeline is attached and a sample is due. Every value is a
    /// plain read of existing model state, so the instrumented run is
    /// bit-identical to an uninstrumented one.
    fn sample_telemetry(&mut self, now: Nanos, eff_level: f64) {
        if self.telemetry.with(|t| t.due(now)) != Some(true) {
            return;
        }
        let probe = self.rx.probe();
        let requested_level = self
            .hostcc
            .as_ref()
            .map(|_| f64::from(self.rx.mba().requested_level()))
            .unwrap_or(0.0);
        let signal = self.last_signal;
        let ecn_marks = self.echo.host_marks + self.fabric_totals().1;
        let fault_counts = (
            self.fault.drops(),
            self.fault.corruptions(),
            self.fault.passed(),
        );
        let chaos_counts = self
            .chaos
            .as_ref()
            .map(|c| (c.fired, c.drops, c.open as f64));
        // The first few fabric ports are interesting individually (hotspot
        // visibility on multi-switch runs); beyond that, totals suffice.
        let port_stats: Vec<(String, f64, u64, u64)> = match &mut self.topo {
            Some(rt) => {
                let topo = &rt.topo;
                rt.ports
                    .iter_mut()
                    .enumerate()
                    .filter_map(|(l, p)| {
                        let p = p.as_mut()?;
                        Some((
                            topo.link(l as u32).name.clone(),
                            p.backlog_bytes(now) as f64,
                            p.marks(),
                            p.drops(),
                        ))
                    })
                    .take(8)
                    .collect()
            }
            None => Vec::new(),
        };
        // The first few flows are interesting individually (Fig 8's
        // convergence view); beyond that per-flow series are noise.
        let flow_rates: Vec<(usize, f64)> = self
            .flows
            .iter()
            .take(8)
            .enumerate()
            .filter_map(|(i, f)| {
                let srtt = f.srtt()?;
                if srtt == Nanos::ZERO {
                    return None;
                }
                Some((i, f.cwnd() as f64 * 8.0 / srtt.as_nanos() as f64))
            })
            .collect();
        let input = WatchdogInput {
            // The probe's arrivals count accepted packets only; the
            // conservation identity wants everything that ever hit the NIC.
            nic_arrivals: probe.nic_arrivals_total + probe.nic_drops_total,
            nic_drops: probe.nic_drops_total,
            nic_queued: probe.nic_queued,
            iio_pending: probe.iio_pending,
            delivered: probe.delivered_total,
            pcie_inflight_bytes: probe.pcie_inflight_bytes,
            iio_waiting_bytes: probe.iio_waiting_bytes,
            pcie_credit_limit_bytes: probe.pcie_credit_limit_bytes,
            iio_inserted_bytes: probe.iio_inserted_bytes,
            iio_admitted_bytes: probe.iio_admitted_bytes,
            mba_requested: probe.mba_requested,
            mba_effective: eff_level as u8,
            mba_levels: MBA_LEVELS,
        };
        self.telemetry.with_mut(|t| {
            let reg = t.registry_mut();
            if let Some(s) = signal {
                reg.gauge_set("core.signals.is_raw", s.is_raw);
                reg.gauge_set("core.signals.is_ewma", s.is);
                reg.gauge_set("host.pcie.bw_gbps", s.bs_raw.as_gbps());
            }
            reg.gauge_set("host.mba.level", requested_level);
            reg.gauge_set("host.mba.level_effective", eff_level);
            reg.gauge_set("host.nic.backlog_bytes", probe.nic_backlog_bytes as f64);
            reg.gauge_set("host.iio.occupancy_bytes", probe.iio_waiting_bytes);
            reg.gauge_set("host.pcie.inflight_bytes", probe.pcie_inflight_bytes);
            reg.gauge_set("host.pcie.credits_avail", probe.pcie_credits_avail_bytes);
            reg.gauge_set("host.memctrl.utilization", probe.mc_utilization);
            reg.gauge_set("host.ddio.eviction_fraction", probe.ddio_eviction_fraction);
            reg.gauge_set("host.copy.backlog_bytes", probe.copy_backlog_app_bytes);
            for &(i, gbps) in &flow_rates {
                reg.gauge_set(&format!("transport.flow.{i}.rate_gbps"), gbps);
            }
            reg.counter_set("host.nic.arrivals", probe.nic_arrivals_total);
            reg.counter_set("host.nic.drops", probe.nic_drops_total);
            reg.counter_set("core.echo.ecn_marks", ecn_marks);
            reg.counter_set("fabric.fault.drops", fault_counts.0);
            reg.counter_set("fabric.fault.corruptions", fault_counts.1);
            reg.counter_set("fabric.fault.passed", fault_counts.2);
            for (name, backlog, marks, drops) in &port_stats {
                reg.gauge_set(&format!("fabric.port.{name}.backlog_bytes"), *backlog);
                reg.counter_set(&format!("fabric.port.{name}.marks"), *marks);
                reg.counter_set(&format!("fabric.port.{name}.drops"), *drops);
            }
            if let Some((fired, drops, open)) = chaos_counts {
                reg.counter_set("chaos.injections", fired);
                reg.counter_set("chaos.drops", drops);
                reg.gauge_set("chaos.active_windows", open);
            }
            t.check_and_sample(now, &input);
        });
    }

    /// Reset all measurement windows (end of warm-up).
    fn reset_window(&mut self) {
        self.rx.reset_window();
        if let Some(tx) = &mut self.tx_host {
            tx.reset_window();
        }
        self.echo.reset_window();
        for (i, f) in self.flows.iter().enumerate() {
            self.stats_base[i] = f.stats;
        }
        self.switch_base = self.fabric_totals();
        self.flow_goodput.fill(0);
        self.level_sum = 0.0;
        self.level_ticks = 0;
        self.is_sum = 0.0;
        self.is_count = 0;
        self.bs_sum = 0.0;
        self.read_is_cdf = Cdf::new();
        self.read_bs_cdf = Cdf::new();
        self.corrupt_drops = 0;
        for (_, rpc) in &mut self.rpcs {
            rpc.reset_window();
        }
        self.telemetry.with_mut(|t| t.reset_window());
        let now = self.q.now();
        self.flowscope.with_mut(|f| f.reset_window(now));
    }

    fn collect(&mut self, window: Nanos) -> RunResult {
        let wns = window.as_nanos() as f64;
        let greedy_bytes: u64 = self.greedy.iter().map(|&i| self.flow_goodput[i]).sum();
        let all_bytes: u64 = self.flow_goodput.iter().sum();
        let data_packets: u64 = self
            .flows
            .iter()
            .enumerate()
            .map(|(i, f)| f.stats.sent - self.stats_base[i].sent)
            .sum();
        let retransmits: u64 = self
            .flows
            .iter()
            .enumerate()
            .map(|(i, f)| f.stats.retransmits - self.stats_base[i].retransmits)
            .sum();
        let timeouts: u64 = self
            .flows
            .iter()
            .enumerate()
            .map(|(i, f)| f.stats.timeouts - self.stats_base[i].timeouts)
            .sum();
        let tlp_probes: u64 = self
            .flows
            .iter()
            .enumerate()
            .map(|(i, f)| f.stats.tlp_probes - self.stats_base[i].tlp_probes)
            .sum();
        let nic_drops = self.rx.nic_drops();
        let (fab_drops, fab_marks, _) = self.fabric_totals();
        let switch_drops = fab_drops - self.switch_base.0;
        let fabric_marks = fab_marks - self.switch_base.1;
        let total_drops = nic_drops + switch_drops + self.corrupt_drops;
        let drop_rate_pct = if data_packets == 0 {
            0.0
        } else {
            100.0 * total_drops as f64 / data_packets as f64
        };
        let mem_peak = self.cfg.host.mem_peak;
        let net_mem_util = self.rx.net_mem_rate(window) / mem_peak;
        let mapp_mem_util = self.rx.mapp_mem_rate(window) / mem_peak;
        let mapp_app_gbps = self.rx.mapp_app_rate(window).as_gbps();

        let rpc = self
            .rpcs
            .iter()
            .flat_map(|(_, c)| c.histograms.iter())
            .fold(
                std::collections::HashMap::<u64, RpcResult>::new(),
                |mut acc, (&size, h)| {
                    let e = acc.entry(size).or_insert_with(|| RpcResult {
                        histogram: hostcc_metrics::Histogram::new(),
                        count: 0,
                    });
                    e.histogram.merge(h);
                    e.count += h.count();
                    acc
                },
            );

        RunResult {
            window,
            goodput: Rate::bytes_per_ns(greedy_bytes as f64 / wns),
            goodput_all: Rate::bytes_per_ns(all_bytes as f64 / wns),
            drop_rate_pct,
            nic_drops,
            switch_drops,
            data_packets,
            nic_peak_bytes: self.rx.nic_peak_bytes(),
            net_mem_util,
            mapp_mem_util,
            mapp_app_gbps,
            retransmits,
            timeouts,
            tlp_probes,
            host_marks: self.echo.host_marks,
            fabric_marks,
            mean_is: if self.is_count > 0 {
                self.is_sum / self.is_count as f64
            } else {
                0.0
            },
            mean_bs: Rate::bytes_per_ns(if self.is_count > 0 {
                self.bs_sum / self.is_count as f64
            } else {
                0.0
            }),
            mean_level: if self.level_ticks > 0 {
                self.level_sum / self.level_ticks as f64
            } else {
                0.0
            },
            mba_writes: self.rx.mba().writes(),
            rpc,
            read_is_cdf: std::mem::take(&mut self.read_is_cdf),
            read_bs_cdf: std::mem::take(&mut self.read_bs_cdf),
            telemetry: self.telemetry.result(),
            trace: self.trace.counts(),
            flowscope: self.flowscope.result(self.q.now()),
        }
    }
}

/// Every metric the simulation (and its telemetry pipeline) can register,
/// as dotted-name *families*: a concrete metric belongs to a family when it
/// equals the family name or extends it by whole dotted components
/// (`transport.flow` covers `transport.flow.3.rate_gbps`,
/// `watchdog.violations` covers `watchdog.violations.pcie_credits`). This
/// is the vocabulary `repro` validates `--telemetry-filter` prefixes
/// against; `sim::tests` pins it to what a recorded run actually registers.
pub fn known_metrics() -> &'static [&'static str] {
    &[
        "chaos.active_windows",
        "chaos.drops",
        "chaos.injections",
        "core.echo.ecn_marks",
        "core.signals.is_ewma",
        "core.signals.is_raw",
        "core.signals.read_latency_ns",
        "fabric.fault.corruptions",
        "fabric.fault.drops",
        "fabric.fault.passed",
        "fabric.port",
        "host.copy.backlog_bytes",
        "host.ddio.eviction_fraction",
        "host.iio.occupancy_bytes",
        "host.mba.level",
        "host.mba.level_effective",
        "host.memctrl.utilization",
        "host.nic.arrivals",
        "host.nic.backlog_bytes",
        "host.nic.drops",
        "host.pcie.bw_gbps",
        "host.pcie.credits_avail",
        "host.pcie.inflight_bytes",
        "transport.flow",
        "watchdog.checks",
        "watchdog.violations",
        "watchdog.violations_running",
    ]
}

/// `short` names `long` or a dotted ancestor of it.
fn component_prefix(short: &str, long: &str) -> bool {
    long == short
        || (long.len() > short.len()
            && long.starts_with(short)
            && long.as_bytes()[short.len()] == b'.')
}

/// The filter prefixes that select no metric in [`known_metrics`] — either
/// side of the match may be the componentwise ancestor, so both `host`
/// (covers several families) and `transport.flow.3.rate_gbps` (inside the
/// `transport.flow` family) are fine, while `host.gpu` is flagged. Empty
/// for a match-everything filter.
pub fn unknown_telemetry_prefixes(filter: &hostcc_telemetry::TelemetryFilter) -> Vec<String> {
    filter
        .prefixes()
        .map(|prefixes| {
            prefixes
                .iter()
                .filter(|p| {
                    !known_metrics()
                        .iter()
                        .any(|m| component_prefix(p, m) || component_prefix(m, p))
                })
                .cloned()
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mut s: Scenario) -> RunResult {
        s.warmup = Nanos::from_millis(2);
        s.measure = Nanos::from_millis(4);
        Simulation::new(s).run()
    }

    #[test]
    fn uncongested_baseline_saturates_link() {
        let r = quick(Scenario::paper_baseline());
        assert!(
            r.goodput_gbps() > 90.0,
            "uncongested DCTCP ≈ line rate, got {:.1} Gbps",
            r.goodput_gbps()
        );
        assert!(r.drop_rate_pct < 0.01, "drops = {}", r.drop_rate_pct);
        // Uncongested I_S anchor ≈ 65.
        assert!(
            (55.0..75.0).contains(&r.mean_is),
            "mean I_S = {}",
            r.mean_is
        );
    }

    #[test]
    fn severe_congestion_degrades_throughput_and_drops() {
        let r = quick(Scenario::with_congestion(3.0));
        assert!(
            (30.0..60.0).contains(&r.goodput_gbps()),
            "3x congestion: got {:.1} Gbps, paper ≈ 43",
            r.goodput_gbps()
        );
        assert!(
            r.drop_rate_pct > 0.05,
            "3x congestion must drop packets: {}",
            r.drop_rate_pct
        );
        assert!(r.nic_drops > 0);
        assert_eq!(r.switch_drops, 0, "no fabric congestion in this setup");
    }

    #[test]
    fn hostcc_restores_target_bandwidth_and_reduces_drops() {
        let base = quick(Scenario::with_congestion(3.0));
        let hcc = quick(Scenario::with_congestion(3.0).enable_hostcc());
        assert!(
            hcc.goodput_gbps() > 70.0,
            "hostCC must approach B_T = 80: got {:.1}",
            hcc.goodput_gbps()
        );
        assert!(
            hcc.drop_rate_pct < base.drop_rate_pct / 5.0,
            "hostCC drops {} vs baseline {}",
            hcc.drop_rate_pct,
            base.drop_rate_pct
        );
        assert!(hcc.host_marks > 0, "echo must mark packets");
        assert!(hcc.mba_writes > 0, "local response must actuate");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick(Scenario::with_congestion(2.0));
        let b = quick(Scenario::with_congestion(2.0));
        assert_eq!(a.goodput.as_gbps(), b.goodput.as_gbps());
        assert_eq!(a.nic_drops, b.nic_drops);
        assert_eq!(a.data_packets, b.data_packets);
    }

    fn quick_traced(mut s: Scenario) -> RunResult {
        use hostcc_trace::{TraceFilter, Tracer};
        s.warmup = Nanos::from_millis(2);
        s.measure = Nanos::from_millis(4);
        let mut sim = Simulation::new(s);
        sim.set_trace(TraceHandle::new(Tracer::new(1 << 20, TraceFilter::all())));
        let r = sim.run();
        assert!(sim.events_processed() > 0);
        r
    }

    #[test]
    fn tracing_does_not_perturb_the_run() {
        let plain = quick(Scenario::with_congestion(3.0).enable_hostcc());
        let traced = quick_traced(Scenario::with_congestion(3.0).enable_hostcc());
        assert_eq!(plain.goodput.as_gbps(), traced.goodput.as_gbps());
        assert_eq!(plain.nic_drops, traced.nic_drops);
        assert_eq!(plain.data_packets, traced.data_packets);
        assert_eq!(plain.host_marks, traced.host_marks);
        assert_eq!(plain.mba_writes, traced.mba_writes);
        assert!(plain.trace.is_none());
        assert!(traced.trace.is_some());
    }

    #[test]
    fn telemetry_does_not_perturb_the_run() {
        use hostcc_telemetry::{Telemetry, TelemetryConfig, TelemetryHandle};
        let plain = quick(Scenario::with_congestion(3.0).enable_hostcc());
        let mut s = Scenario::with_congestion(3.0).enable_hostcc();
        s.warmup = Nanos::from_millis(2);
        s.measure = Nanos::from_millis(4);
        let mut sim = Simulation::new(s);
        sim.set_telemetry(TelemetryHandle::new(Telemetry::new(TelemetryConfig {
            strict: true,
            ..Default::default()
        })));
        let instrumented = sim.run();
        assert_eq!(plain.goodput.as_gbps(), instrumented.goodput.as_gbps());
        assert_eq!(plain.nic_drops, instrumented.nic_drops);
        assert_eq!(plain.data_packets, instrumented.data_packets);
        assert_eq!(plain.host_marks, instrumented.host_marks);
        assert_eq!(plain.mba_writes, instrumented.mba_writes);
        assert!(plain.telemetry.is_none());
        let t = instrumented.telemetry.expect("telemetry was attached");
        assert!(t.summary.samples > 0, "sampler must have fired");
        assert_eq!(t.summary.total_violations(), 0, "{:?}", t.diagnostic);
        t.strict_verdict().expect("no invariant may trip");
        assert!(
            t.series.contains_key("host.iio.occupancy_bytes"),
            "series: {:?}",
            t.series.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn profiling_does_not_perturb_the_run() {
        use crate::sweep::CellMetrics;
        use hostcc_perf::PerfProfiler;
        let mut s = Scenario::with_congestion(3.0).enable_hostcc();
        s.record = true; // telemetry on in both runs, so fingerprints cover it
        let plain = quick(s.clone());
        s.warmup = Nanos::from_millis(2);
        s.measure = Nanos::from_millis(4);
        let mut sim = Simulation::new(s);
        sim.set_perf(PerfHandle::new(PerfProfiler::new()));
        let profiled = sim.run();
        // Bit-identical RunResult: exact equality on every deterministic
        // scalar, plus the sweep-layer FNV fingerprint over all of them.
        assert_eq!(plain.goodput.as_gbps(), profiled.goodput.as_gbps());
        assert_eq!(plain.nic_drops, profiled.nic_drops);
        assert_eq!(plain.data_packets, profiled.data_packets);
        assert_eq!(plain.host_marks, profiled.host_marks);
        assert_eq!(plain.mba_writes, profiled.mba_writes);
        assert_eq!(
            CellMetrics::from_result(&plain).fingerprint(),
            CellMetrics::from_result(&profiled).fingerprint()
        );
        // Telemetry is equally untouched by profiling.
        let (pt, it) = (plain.telemetry.unwrap(), profiled.telemetry.unwrap());
        assert_eq!(pt.summary.samples, it.summary.samples);
        assert_eq!(pt.summary.total_violations(), it.summary.total_violations());
    }

    #[test]
    fn flowscope_does_not_perturb_the_run() {
        use crate::sweep::CellMetrics;
        use hostcc_flowscope::FlowScope;
        let mut s = Scenario::with_congestion(3.0).enable_hostcc();
        s.record = true; // telemetry on in both runs, so fingerprints cover it
        let plain = quick(s.clone());
        s.warmup = Nanos::from_millis(2);
        s.measure = Nanos::from_millis(4);
        let mut sim = Simulation::new(s);
        sim.set_flowscope(FlowscopeHandle::new(FlowScope::new()));
        let scoped = sim.run();
        // Bit-identical RunResult: the recorder only reads model state.
        assert_eq!(plain.goodput.as_gbps(), scoped.goodput.as_gbps());
        assert_eq!(plain.nic_drops, scoped.nic_drops);
        assert_eq!(plain.data_packets, scoped.data_packets);
        assert_eq!(plain.host_marks, scoped.host_marks);
        assert_eq!(plain.mba_writes, scoped.mba_writes);
        assert_eq!(
            CellMetrics::from_result(&plain).fingerprint(),
            CellMetrics::from_result(&scoped).fingerprint()
        );
        let (pt, it) = (plain.telemetry.unwrap(), scoped.telemetry.unwrap());
        assert_eq!(pt.summary.fingerprint(), it.summary.fingerprint());
        assert!(plain.flowscope.is_none());
        assert!(scoped.flowscope.is_some());
    }

    #[test]
    fn flowscope_conserves_latency_and_scores_fairness() {
        use hostcc_flowscope::FlowScope;
        let mut s = Scenario::with_congestion(3.0).enable_hostcc();
        s.warmup = Nanos::from_millis(2);
        s.measure = Nanos::from_millis(4);
        let mut sim = Simulation::new(s);
        sim.set_flowscope(FlowscopeHandle::new(FlowScope::new()));
        let r = sim.run();
        let fs = r.flowscope.expect("recorder was attached");
        assert!(fs.summary.completed > 0, "packets must complete");
        assert!(
            fs.conservation_holds(),
            "stage sums must equal e2e exactly: stage={} e2e={} failures={} orphans={}",
            fs.summary.stage_grand_total_ns(),
            fs.summary.e2e_total_ns,
            fs.summary.conservation_failures,
            fs.orphan_stamps,
        );
        assert!((0.0..=1.0).contains(&fs.jain), "jain = {}", fs.jain);
        // Greedy flows all carry traffic, so every ledger row has bytes.
        assert!(fs.flows.iter().any(|f| f.delivered_bytes > 0));
    }

    #[test]
    fn profiling_attributes_nearly_all_wall_time() {
        use hostcc_perf::{PerfProfiler, Subsystem};
        let mut s = Scenario::with_congestion(3.0).enable_hostcc();
        s.warmup = Nanos::from_millis(2);
        s.measure = Nanos::from_millis(4);
        let mut sim = Simulation::new(s);
        sim.set_perf(PerfHandle::new(PerfProfiler::new()));
        sim.run();
        let r = sim.perf().report().expect("profiler attached");
        assert!(r.total_ns > 0);
        // Scopes nest under `Engine`; the only unattributed wall time is
        // the handful of instructions between `advance_to` calls.
        assert!(
            r.attributed_frac() >= 0.95,
            "attributed {:.1}% of {} ns",
            100.0 * r.attributed_frac(),
            r.total_ns
        );
        let by_subsystem = r.subsystem_ns();
        assert!(by_subsystem[Subsystem::Host as usize] > 0);
        assert!(by_subsystem[Subsystem::Transport as usize] > 0);
        assert!(by_subsystem[Subsystem::Fabric as usize] > 0);
        // Every event kind this scenario exercises got dispatch counts.
        for scope in [
            PerfScope::EvDepart,
            PerfScope::EvArriveSwitch,
            PerfScope::EvAckArrive,
            PerfScope::TickHost,
        ] {
            assert!(r.scope_enters[scope as usize] > 0, "{}", scope.name());
        }
    }

    #[test]
    fn record_flag_attaches_a_default_pipeline() {
        let mut s = Scenario::with_congestion(2.0);
        s.record = true;
        let r = quick(s);
        let t = r.telemetry.expect("record=true implies telemetry");
        assert!(t.summary.samples > 0);
        assert!(t.series.contains_key("core.signals.is_ewma"));
        assert!(t.series.contains_key("host.pcie.bw_gbps"));
        assert!(t.series.contains_key("host.mba.level"));
        assert_eq!(t.summary.total_violations(), 0, "{:?}", t.diagnostic);
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let a = quick(Scenario::with_congestion(2.0).with_chaos("burst-loss"));
        let b = quick(Scenario::with_congestion(2.0).with_chaos("burst-loss"));
        assert_eq!(a.goodput.as_gbps(), b.goodput.as_gbps());
        assert_eq!(a.data_packets, b.data_packets);
        assert_eq!(a.drop_rate_pct, b.drop_rate_pct);
    }

    #[test]
    fn chaos_flap_dips_goodput_without_breaking_invariants() {
        let base = quick(Scenario::with_congestion(2.0));
        let mut s = Scenario::with_congestion(2.0).with_chaos("flap");
        s.record = true;
        let r = quick(s);
        // 400 µs of dead link inside a 4 ms window costs ≈ 10 % goodput.
        assert!(
            r.goodput_gbps() < base.goodput_gbps() - 1.0,
            "flap: {:.1} vs base {:.1} Gbps",
            r.goodput_gbps(),
            base.goodput_gbps()
        );
        let t = r.telemetry.expect("record=true");
        assert_eq!(t.summary.total_violations(), 0, "{:?}", t.diagnostic);
        assert_eq!(t.summary.counters["chaos.injections"], 2);
    }

    #[test]
    fn chaos_injections_are_traced() {
        use hostcc_trace::TraceKind;
        let r = quick_traced(Scenario::with_congestion(2.0).with_chaos("double-flap"));
        let counts = r.trace.expect("tracing was enabled");
        // Two flaps × (start + end).
        assert_eq!(counts.of(TraceKind::ChaosInject), 4);
    }

    #[test]
    fn every_preset_runs_clean_of_unannotated_violations() {
        use hostcc_chaos::ChaosTimeline;
        for (name, _, _) in ChaosTimeline::presets() {
            let mut s = Scenario::with_congestion(2.0)
                .enable_hostcc()
                .with_chaos(name);
            s.record = true;
            s.warmup = Nanos::from_millis(2);
            s.measure = Nanos::from_millis(4);
            let r = Simulation::new(s).run();
            let t = r.telemetry.expect("record=true");
            assert_eq!(
                t.summary.total_violations(),
                0,
                "preset {name}: {:?}",
                t.diagnostic
            );
            assert!(
                t.summary.counters["chaos.injections"] >= 2,
                "preset {name} must fire"
            );
        }
    }

    #[test]
    fn known_metrics_cover_everything_a_recorded_run_registers() {
        use hostcc_telemetry::TelemetryFilter;
        // A chaos + fault + RPC run touches every metric family there is.
        let mut s = Scenario::with_congestion(2.0)
            .enable_hostcc()
            .with_rpc(2)
            .with_chaos("flap");
        s.fault.drop_chance = 1e-4;
        s.record = true;
        let r = quick(s);
        let reg = &r.telemetry.expect("record=true").registry;
        let registered = reg
            .counters()
            .map(|(n, _)| n.to_string())
            .chain(reg.gauges().map(|(n, _)| n.to_string()))
            .chain(reg.histograms().map(|(n, _)| n.to_string()));
        for name in registered {
            assert!(
                known_metrics()
                    .iter()
                    .any(|m| super::component_prefix(m, &name)),
                "metric '{name}' missing from known_metrics()"
            );
        }
        // Validation flags useless prefixes and accepts useful ones.
        let good = TelemetryFilter::parse("host, transport.flow.3.rate_gbps").unwrap();
        assert!(unknown_telemetry_prefixes(&good).is_empty());
        let bad = TelemetryFilter::parse("host.gpu,chaos").unwrap();
        assert_eq!(unknown_telemetry_prefixes(&bad), ["host.gpu"]);
        assert!(unknown_telemetry_prefixes(&TelemetryFilter::all()).is_empty());
    }

    #[test]
    fn fat_tree_incast_saturates_the_receiver_downlink() {
        let r = quick(Scenario::fat_tree_incast(4, 0.0));
        // 15 senders share the one 100 Gbps downlink into the receiver;
        // DCTCP should hold most of it while marking in the fabric.
        assert!(
            r.goodput_gbps() > 40.0,
            "fat-tree incast: {:.1} Gbps",
            r.goodput_gbps()
        );
        assert!(
            r.fabric_marks > 0,
            "core/edge ports must ECN-mark under a 15:1 incast"
        );
    }

    #[test]
    fn topology_runs_are_deterministic() {
        let a = quick(Scenario::fat_tree_incast(4, 0.0));
        let b = quick(Scenario::fat_tree_incast(4, 0.0));
        assert_eq!(a.goodput.as_gbps(), b.goodput.as_gbps());
        assert_eq!(a.data_packets, b.data_packets);
        assert_eq!(a.switch_drops, b.switch_drops);
        assert_eq!(a.fabric_marks, b.fabric_marks);
    }

    #[test]
    fn leaf_spine_flowscope_conservation_is_exact_over_three_hops() {
        use hostcc_flowscope::FlowScope;
        // Cross-rack paths traverse three switch ports (leaf → spine →
        // leaf), so PropToSwitch / SwitchQueue are stamped three times per
        // packet; the accumulating boundaries must still satisfy the exact
        // stage-sum = e2e identity.
        let mut s = Scenario::leaf_spine_incast(3, 2, 8, 0.0);
        s.warmup = Nanos::from_millis(2);
        s.measure = Nanos::from_millis(4);
        let mut sim = Simulation::new(s);
        sim.set_flowscope(FlowscopeHandle::new(FlowScope::new()));
        let r = sim.run();
        let fs = r.flowscope.expect("recorder was attached");
        assert!(fs.summary.completed > 0, "packets must complete");
        assert!(
            fs.conservation_holds(),
            "multi-hop stage sums must equal e2e exactly: stage={} e2e={} failures={} orphans={}",
            fs.summary.stage_grand_total_ns(),
            fs.summary.e2e_total_ns,
            fs.summary.conservation_failures,
            fs.orphan_stamps,
        );
        assert_eq!(fs.orphan_stamps, 0);
    }

    #[test]
    fn ring_all_reduce_moves_bytes_on_every_flow() {
        use hostcc_flowscope::FlowScope;
        let mut s = Scenario::ring_all_reduce(3, 2);
        s.warmup = Nanos::from_millis(2);
        s.measure = Nanos::from_millis(4);
        let mut sim = Simulation::new(s);
        sim.set_flowscope(FlowscopeHandle::new(FlowScope::new()));
        let r = sim.run();
        assert!(
            r.goodput_gbps() > 10.0,
            "ring: {:.1} Gbps",
            r.goodput_gbps()
        );
        let fs = r.flowscope.expect("recorder was attached");
        // Non-focus destinations are delivered through the sink path; the
        // ledger must still show every ring member carrying traffic, and
        // the sparse stamping must conserve exactly.
        assert!(fs.flows.iter().all(|f| f.delivered_bytes > 0));
        assert!(
            fs.conservation_holds(),
            "failures={} orphans={}",
            fs.summary.conservation_failures,
            fs.orphan_stamps
        );
    }

    #[test]
    fn targeted_fabric_link_flap_drops_at_the_dead_ingress() {
        // Flap the receiver's edge downlink: every incast packet crosses
        // it, so the 400 µs window must cost in-flight packets (counted as
        // chaos drops) and goodput.
        let base = quick(Scenario::fat_tree_incast(4, 0.0));
        let mut s = Scenario::fat_tree_incast(4, 0.0).with_chaos("flap@link:p3e1-h15@4500us+400us");
        s.record = true;
        let r = quick(s);
        assert!(
            r.goodput_gbps() < base.goodput_gbps(),
            "flap: {:.1} vs base {:.1} Gbps",
            r.goodput_gbps(),
            base.goodput_gbps()
        );
        let t = r.telemetry.expect("record=true");
        assert_eq!(t.summary.counters["chaos.injections"], 2);
        assert!(
            t.summary.counters["chaos.drops"] > 0,
            "a dead fabric ingress must lose arrivals"
        );
        assert_eq!(t.summary.total_violations(), 0, "{:?}", t.diagnostic);
        // Per-port telemetry appears under the fabric.port family.
        assert!(
            t.registry
                .gauges()
                .any(|(n, _)| n.starts_with("fabric.port.")),
            "per-port gauges must be registered"
        );
    }

    #[test]
    fn congested_hostcc_trace_covers_the_whole_stack() {
        let r = quick_traced(Scenario::incast(8, 3.0).enable_hostcc());
        let counts = r.trace.expect("tracing was enabled");
        let cats = counts.nonempty_categories();
        for want in ["pcie", "iio", "mba", "ecn", "cc"] {
            assert!(
                cats.contains(&want),
                "expected traced events in category {want:?}, got {cats:?}"
            );
        }
        assert!(
            cats.len() >= 5,
            "a congested hostCC run must light up ≥5 tracks: {cats:?}"
        );
    }
}
