//! The differential chaos harness: one timeline, two arms.
//!
//! [`run_chaos`] runs the same chaos timeline against a paired pair of
//! scenarios — hostCC off and hostCC on, otherwise identical — and scores
//! how each arm rode out every fault window: throughput-dip depth,
//! time-to-recover, RPC tail latency, and whether the invariant watchdog
//! stayed clean outside annotated windows. The scores are assembled into a
//! [`ResilienceReport`] whose JSON export is wall-clock-free, so two runs
//! of the same experiment (at any worker count) are byte-identical.
//!
//! Scoring reads the recorded telemetry series:
//!
//! * `host.pcie.bw_gbps` — delivered bandwidth over time. The pre-fault
//!   mean (samples before the earliest window) is the baseline; the dip is
//!   `1 − mean(in-window)/baseline` and recovery is the first post-window
//!   sample back above 90% of baseline.
//! * `watchdog.violations_running` — the cumulative violation count over
//!   time, differenced across each window to attribute violations to (or
//!   outside) fault windows.

use hostcc_chaos::{ArmReport, ChaosTimeline, EventScore, ResilienceReport};
use hostcc_flowscope::{FlowScope, FlowscopeHandle};
use hostcc_metrics::Histogram;
use hostcc_sim::Nanos;

use crate::figures::Budget;
use crate::{RunResult, Scenario, Simulation};

/// Fraction of the pre-fault mean bandwidth that counts as "recovered".
const RECOVERY_FRACTION: f64 = 0.9;

/// Run the paired differential experiment for `spec` (a preset name or an
/// inline timeline spec) under `budget`. With `workers >= 2` the two arms
/// run on separate threads; results are bit-identical either way, because
/// each arm is an independent simulation built from its own scenario.
pub fn run_chaos(spec: &str, budget: &Budget, workers: usize) -> Result<ResilienceReport, String> {
    let timeline = ChaosTimeline::resolve(spec)?;
    let window_end = budget.warmup + budget.measure;
    if timeline.end() > window_end {
        return Err(format!(
            "chaos timeline extends to {} ns but the run ends at {} ns — \
             widen the budget or move the events earlier",
            timeline.end().as_nanos(),
            window_end.as_nanos()
        ));
    }

    let mut base = budget.apply(Scenario::with_congestion(3.0).with_rpc(budget.rpc_clients));
    base.record = true;
    base.chaos = Some(spec.to_string());
    let off = base.clone();
    let on = base.clone().enable_hostcc();

    // Both arms carry a flow ledger so the report can score per-flow
    // fairness alongside the aggregate dips (a fault that starves a subset
    // of flows is invisible in aggregate goodput).
    let run_arm = |s: Scenario| {
        let mut sim = Simulation::new(s);
        sim.set_flowscope(FlowscopeHandle::new(FlowScope::new()));
        sim.run()
    };
    let (off_result, on_result) = if workers >= 2 {
        std::thread::scope(|scope| {
            let off_handle = scope.spawn(|| run_arm(off));
            let on_handle = scope.spawn(|| run_arm(on));
            (
                off_handle.join().expect("chaos off-arm panicked"),
                on_handle.join().expect("chaos on-arm panicked"),
            )
        })
    } else {
        (run_arm(off), run_arm(on))
    };

    Ok(ResilienceReport {
        preset: timeline.name.clone(),
        spec: timeline.canonical(),
        off: score_arm(false, &timeline, &off_result, window_end)?,
        on: score_arm(true, &timeline, &on_result, window_end)?,
    })
}

/// Last recorded value of a sampled step series at or before `t` (0 before
/// the first sample).
fn value_at(points: &[(Nanos, f64)], t: Nanos) -> f64 {
    points
        .iter()
        .take_while(|(ts, _)| *ts <= t)
        .last()
        .map_or(0.0, |(_, v)| *v)
}

fn score_arm(
    hostcc: bool,
    timeline: &ChaosTimeline,
    result: &RunResult,
    window_end: Nanos,
) -> Result<ArmReport, String> {
    let telemetry = result
        .telemetry
        .as_ref()
        .ok_or("chaos arm ran without telemetry")?;
    let summary = &telemetry.summary;
    let flowscope = result
        .flowscope
        .as_ref()
        .ok_or("chaos arm ran without a flow ledger")?;
    let bw: Vec<(Nanos, f64)> = result
        .series("host.pcie.bw_gbps")
        .map(|s| s.iter().collect())
        .unwrap_or_default();
    let running: Vec<(Nanos, f64)> = result
        .series("watchdog.violations_running")
        .map(|s| s.iter().collect())
        .unwrap_or_default();

    let first_start = timeline
        .events
        .iter()
        .map(|e| e.start)
        .min()
        .unwrap_or(Nanos::ZERO);
    let pre: Vec<f64> = bw
        .iter()
        .filter(|(t, _)| *t < first_start)
        .map(|(_, v)| *v)
        .collect();
    let pre_mean_gbps = if pre.is_empty() {
        // Degenerate timeline starting inside warmup: fall back to the
        // whole-run mean so dips still have a denominator.
        let all: Vec<f64> = bw.iter().map(|(_, v)| *v).collect();
        all.iter().sum::<f64>() / all.len().max(1) as f64
    } else {
        pre.iter().sum::<f64>() / pre.len() as f64
    };

    // Invariant names that actually tripped in this run; a window's
    // violations are annotated only when every tripped invariant is one
    // its fault kind may legitimately bend.
    let tripped: Vec<&str> = summary.violations.keys().map(String::as_str).collect();

    let mut events = Vec::with_capacity(timeline.events.len());
    let mut annotated_violations = 0u64;
    for (index, ev) in timeline.events.iter().enumerate() {
        let (start, end) = (ev.start, ev.end());
        // Mean, not min: the bandwidth gauge is instantaneous and samples
        // zero between back-to-back packets, so the window minimum is a
        // degenerate 100% for almost any fault.
        let in_window: Vec<f64> = bw
            .iter()
            .filter(|(t, _)| *t >= start && *t <= end)
            .map(|(_, v)| *v)
            .collect();
        let dip_frac = if pre_mean_gbps > 0.0 && !in_window.is_empty() {
            let mean_in = in_window.iter().sum::<f64>() / in_window.len() as f64;
            (1.0 - mean_in / pre_mean_gbps).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let recovery = bw
            .iter()
            .find(|(t, v)| *t >= end && *v >= RECOVERY_FRACTION * pre_mean_gbps)
            .map(|(t, _)| t.saturating_sub(end));
        let (recover_ns, recovered) = match recovery {
            Some(d) => (d.as_nanos(), true),
            None => (window_end.saturating_sub(end).as_nanos(), false),
        };
        let before = value_at(&running, start.saturating_sub(Nanos::from_nanos(1)));
        let after = value_at(&running, end);
        let violations = (after - before).max(0.0) as u64;
        let annotated = violations > 0
            && !tripped.is_empty()
            && tripped.iter().all(|t| ev.kind.may_violate().contains(t));
        if annotated {
            annotated_violations += violations;
        }
        events.push(EventScore {
            index,
            kind: ev.kind,
            start,
            end,
            dip_frac,
            recover_ns,
            recovered,
            violations,
            annotated,
        });
    }

    let mut rpc_all = Histogram::new();
    for r in result.rpc.values() {
        rpc_all.merge(&r.histogram);
    }
    let p99_rpc_ns = rpc_all.whiskers().map(|w| w[2].as_nanos());

    Ok(ArmReport {
        hostcc,
        goodput_gbps: result.goodput_gbps(),
        drop_rate_pct: result.drop_rate_pct,
        p99_rpc_ns,
        pre_mean_gbps,
        fairness_jain: flowscope.jain,
        events,
        watchdog_checks: summary.checks,
        violations: summary.total_violations(),
        annotated_violations,
        telemetry_fingerprint: summary.fingerprint(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_chaos(spec: &str, workers: usize) -> ResilienceReport {
        run_chaos(spec, &Budget::quick(), workers).unwrap()
    }

    #[test]
    fn flap_report_scores_both_arms() {
        let r = quick_chaos("flap", 1);
        assert_eq!(r.preset, "flap");
        assert!(!r.off.hostcc && r.on.hostcc);
        assert_eq!(r.off.events.len(), 1);
        // A full link blackout must show up as a deep dip in both arms.
        assert!(
            r.off.events[0].dip_frac > 0.5,
            "off dip {}",
            r.off.events[0].dip_frac
        );
        assert!(
            r.on.events[0].dip_frac > 0.5,
            "on dip {}",
            r.on.events[0].dip_frac
        );
        // The off arm runs congested at 3x, so ~40 Gbps is the norm.
        assert!(r.off.pre_mean_gbps > 20.0, "{}", r.off.pre_mean_gbps);
        assert!(r.off.watchdog_checks > 0);
        assert!(r.verdict().is_ok(), "{:?}", r.verdict());
        assert!(r.off.p99_rpc_ns.is_some(), "RPC workload was attached");
        // Both arms score fairness from the flow ledger.
        for arm in [&r.off, &r.on] {
            assert!(
                (0.0..=1.0).contains(&arm.fairness_jain) && arm.fairness_jain > 0.0,
                "jain = {}",
                arm.fairness_jain
            );
        }
    }

    #[test]
    fn paired_arms_are_deterministic_across_worker_counts() {
        let serial = quick_chaos("burst-loss", 1);
        let parallel = quick_chaos("burst-loss", 4);
        assert_eq!(serial.fingerprint(), parallel.fingerprint());
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn timelines_past_the_run_end_are_rejected() {
        let err = run_chaos("flap@40ms+1ms", &Budget::quick(), 1).unwrap_err();
        assert!(err.contains("widen the budget"), "{err}");
    }

    #[test]
    fn value_at_steps_through_samples() {
        let pts = [(Nanos::from_nanos(10), 1.0), (Nanos::from_nanos(20), 3.0)];
        assert_eq!(value_at(&pts, Nanos::from_nanos(5)), 0.0);
        assert_eq!(value_at(&pts, Nanos::from_nanos(10)), 1.0);
        assert_eq!(value_at(&pts, Nanos::from_nanos(19)), 1.0);
        assert_eq!(value_at(&pts, Nanos::from_nanos(99)), 3.0);
    }
}
