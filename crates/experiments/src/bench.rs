//! The `repro bench` harness: named suites of representative workloads,
//! measured N warmup + M timed iterations each, emitted as a
//! `BENCH_<git-short-sha>.json` trajectory file (see
//! [`hostcc_perf::BenchReport`]).
//!
//! Workloads come in three shapes, mirroring the CLI's own subcommands:
//! single scenarios, sweep grids (single-worker, so events/sec measures
//! engine speed, not parallelism), and a paired-chaos run (hostCC off/on
//! under the same fault timeline). Every workload runs with a
//! [`PerfProfiler`] attached, so the emitted file carries the
//! per-subsystem attribution breakdown alongside throughput.
//!
//! Iteration wall times vary; everything else is deterministic — the
//! runner *errors* if a workload's event count or simulated time differs
//! between iterations, since that would mean the simulation itself is
//! non-deterministic.

use std::time::Instant;

use hostcc_perf::{
    alloc_stats, reset_alloc_peak, BenchReport, BenchWorkload, HostMeta, PerfHandle, PerfProfiler,
    PerfReport,
};

use crate::figures::Budget;
use crate::grid::GridSpec;
use crate::sweep::{run_sweep, SweepOptions};
use crate::{Scenario, Simulation};

/// How many iterations a suite runs per workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchOptions {
    /// Unmeasured warmup iterations (page in code and allocator arenas).
    pub warmup: u32,
    /// Measured iterations (p50/p95 spread is computed over these).
    pub iters: u32,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            warmup: 1,
            iters: 3,
        }
    }
}

/// The suite catalog: `(name, description)`.
pub fn suites() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "smoke",
            "4 small workloads (~seconds): 2 quick scenarios, a 4-cell sweep, chaos:flap",
        ),
        (
            "standard",
            "6 workloads: the 4 figure scenarios at standard budget, the 16-cell \
             figure-grid sweep, chaos:flap",
        ),
    ]
}

/// One benchmarkable unit of work.
enum Workload {
    /// A single scenario run ([`Simulation::run`]).
    Scenario {
        name: &'static str,
        make: fn() -> Scenario,
        budget: Budget,
    },
    /// A sweep grid run with one worker (engine speed, not parallelism).
    Sweep {
        name: &'static str,
        make: fn() -> Result<GridSpec, String>,
        budget: Budget,
    },
    /// The differential-resilience shape: hostCC off and on under the
    /// same chaos timeline, run serially as one measured unit.
    Chaos {
        name: &'static str,
        preset: &'static str,
        budget: Budget,
    },
}

/// One measured iteration: wall time plus the deterministic counters.
struct IterOut {
    wall_secs: f64,
    events: u64,
    sim_ns: u64,
    perf: Option<PerfReport>,
}

impl Workload {
    fn name(&self) -> &'static str {
        match self {
            Workload::Scenario { name, .. }
            | Workload::Sweep { name, .. }
            | Workload::Chaos { name, .. } => name,
        }
    }

    fn run_once(&self) -> Result<IterOut, String> {
        match self {
            Workload::Scenario { make, budget, .. } => {
                let s = budget.apply(make());
                Ok(run_profiled_sim(s))
            }
            Workload::Sweep { make, budget, .. } => {
                let mut spec = make()?;
                spec.base = budget.apply(spec.base);
                let opts = SweepOptions {
                    workers: 1,
                    trace: false,
                    telemetry: false,
                    perf: true,
                    ..SweepOptions::default()
                };
                let manifest = run_sweep(&spec, &opts)?;
                let rate = manifest.sim_rate();
                Ok(IterOut {
                    wall_secs: rate.wall_secs,
                    events: rate.events,
                    sim_ns: rate.sim_ns,
                    perf: manifest.perf,
                })
            }
            Workload::Chaos { preset, budget, .. } => {
                // The paired off/on arms run serially under one wall
                // measurement; their perf reports merge commutatively.
                let started = Instant::now();
                let mut events = 0u64;
                let mut sim_ns = 0u64;
                let mut perf = PerfReport::default();
                for hostcc in [false, true] {
                    let mut s = Scenario::with_congestion(3.0).with_chaos(preset);
                    if hostcc {
                        s = s.enable_hostcc();
                    }
                    let out = run_profiled_sim(budget.apply(s));
                    events += out.events;
                    sim_ns += out.sim_ns;
                    perf.merge(&out.perf.expect("profiler attached"));
                }
                Ok(IterOut {
                    wall_secs: started.elapsed().as_secs_f64(),
                    events,
                    sim_ns,
                    perf: Some(perf),
                })
            }
        }
    }
}

/// Build, profile and run one simulation; the wall measurement covers
/// construction too (it is part of what a user pays per run).
fn run_profiled_sim(s: Scenario) -> IterOut {
    let started = Instant::now();
    let mut sim = Simulation::new(s);
    sim.set_perf(PerfHandle::new(PerfProfiler::new()));
    let events_before = sim.events_processed();
    let sim_before = sim.now();
    sim.run();
    IterOut {
        wall_secs: started.elapsed().as_secs_f64(),
        events: sim.events_processed() - events_before,
        sim_ns: sim.now().as_nanos() - sim_before.as_nanos(),
        perf: sim.perf().report(),
    }
}

fn suite_workloads(suite: &str) -> Result<Vec<Workload>, String> {
    let small_grid = || -> Result<GridSpec, String> {
        let mut g = GridSpec::new("bench-small", Scenario::paper_baseline());
        g.set_axis("hostcc", "off,on")?;
        g.set_axis("degree", "0,3")?;
        Ok(g)
    };
    let figure_grid =
        || GridSpec::preset("figure-grid").ok_or_else(|| "figure-grid preset missing".to_string());
    match suite {
        "smoke" => Ok(vec![
            Workload::Scenario {
                name: "scenario:baseline",
                make: Scenario::paper_baseline,
                budget: Budget::quick(),
            },
            Workload::Scenario {
                name: "scenario:hostcc",
                make: || Scenario::with_congestion(3.0).enable_hostcc(),
                budget: Budget::quick(),
            },
            Workload::Sweep {
                name: "sweep:small",
                make: small_grid,
                budget: Budget::quick(),
            },
            Workload::Chaos {
                name: "chaos:flap",
                preset: "flap",
                budget: Budget::quick(),
            },
        ]),
        "standard" => Ok(vec![
            Workload::Scenario {
                name: "scenario:baseline",
                make: Scenario::paper_baseline,
                budget: Budget::standard(),
            },
            Workload::Scenario {
                name: "scenario:congested",
                make: || Scenario::with_congestion(3.0),
                budget: Budget::standard(),
            },
            Workload::Scenario {
                name: "scenario:hostcc",
                make: || Scenario::with_congestion(3.0).enable_hostcc(),
                budget: Budget::standard(),
            },
            Workload::Scenario {
                name: "scenario:incast",
                make: || Scenario::incast(8, 3.0).enable_hostcc(),
                budget: Budget::standard(),
            },
            Workload::Sweep {
                name: "sweep:figure-grid",
                make: figure_grid,
                budget: Budget::quick(),
            },
            Workload::Chaos {
                name: "chaos:flap",
                preset: "flap",
                budget: Budget::quick(),
            },
        ]),
        other => Err(format!(
            "unknown suite '{other}'\nsuites: {}",
            suites()
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(" ")
        )),
    }
}

/// Nearest-rank quantile over the measured wall times.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn run_workload(w: &Workload, opts: &BenchOptions) -> Result<BenchWorkload, String> {
    for _ in 0..opts.warmup {
        w.run_once()?;
    }
    let alloc_before = alloc_stats();
    reset_alloc_peak();
    let mut walls = Vec::with_capacity(opts.iters as usize);
    let mut events = 0u64;
    let mut sim_ns = 0u64;
    let mut perf: Option<PerfReport> = None;
    for i in 0..opts.iters {
        let out = w.run_once()?;
        if i == 0 {
            events = out.events;
            sim_ns = out.sim_ns;
        } else if out.events != events || out.sim_ns != sim_ns {
            // The sim is deterministic; a drift here is a real bug, not
            // measurement noise.
            return Err(format!(
                "bench '{}': iteration {} processed {} events / {} sim-ns, \
                 expected {events} / {sim_ns} — the simulation is not deterministic",
                w.name(),
                i,
                out.events,
                out.sim_ns
            ));
        }
        walls.push(out.wall_secs);
        if let Some(p) = out.perf {
            perf.get_or_insert_with(PerfReport::default).merge(&p);
        }
    }
    let alloc = match (alloc_before, alloc_stats()) {
        (Some(before), Some(after)) => Some(after.since(&before)),
        _ => None,
    };
    let mut sorted = walls.clone();
    sorted.sort_by(f64::total_cmp);
    Ok(BenchWorkload {
        name: w.name().to_string(),
        wall_secs_p50: quantile(&sorted, 0.50),
        wall_secs_p95: quantile(&sorted, 0.95),
        wall_secs_iters: walls,
        events,
        sim_ns,
        perf,
        alloc,
    })
}

/// `git rev-parse --short HEAD`, or "unknown" outside a checkout.
pub fn git_short_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn host_meta() -> HostMeta {
    let rustc = std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_default();
    HostMeta {
        cpus: std::thread::available_parallelism()
            .map(|p| p.get() as u64)
            .unwrap_or(0),
        rustc,
        os: std::env::consts::OS.to_string(),
        arch: std::env::consts::ARCH.to_string(),
        timestamp_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    }
}

/// Run a named suite end to end and assemble the trajectory report.
pub fn run_suite(suite: &str, opts: &BenchOptions) -> Result<BenchReport, String> {
    if opts.iters == 0 {
        return Err("bench: --iters must be at least 1".to_string());
    }
    let workloads = suite_workloads(suite)?;
    let mut measured = Vec::with_capacity(workloads.len());
    for w in &workloads {
        eprintln!("[bench] {} ...", w.name());
        measured.push(run_workload(w, opts)?);
    }
    Ok(BenchReport {
        git_sha: git_short_sha(),
        suite: suite.to_string(),
        warmup: opts.warmup,
        iters: opts.iters,
        workloads: measured,
        host: host_meta(),
    })
}

/// Human summary table of a bench report.
pub fn render_report(r: &BenchReport) -> String {
    let mut out = format!(
        "bench suite '{}' @ {} ({} warmup + {} iters)\n{:<22} {:>12} {:>16} {:>10} {:>10} {:>6}\n",
        r.suite,
        r.git_sha,
        r.warmup,
        r.iters,
        "workload",
        "events/s",
        "sim-ns/wall-s",
        "p50 ms",
        "p95 ms",
        "attr%",
    );
    for w in &r.workloads {
        let attr = w
            .perf
            .as_ref()
            .map(|p| format!("{:.1}", 100.0 * p.attributed_frac()))
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "{:<22} {:>12.0} {:>16.2e} {:>10.2} {:>10.2} {:>6}\n",
            w.name,
            w.events_per_sec(),
            w.sim_ns_per_wall_sec(),
            w.wall_secs_p50 * 1e3,
            w.wall_secs_p95 * 1e3,
            attr,
        ));
    }
    if let Some(w) = r.workloads.iter().find(|w| w.alloc.is_some()) {
        let a = w.alloc.as_ref().unwrap();
        out.push_str(&format!(
            "alloc ({}): {} allocs, {} bytes, peak live {} bytes\n",
            w.name, a.allocs, a.bytes, a.peak_live_bytes
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_use_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.50), 2.0);
        assert_eq!(quantile(&v, 0.95), 4.0);
        assert_eq!(quantile(&[7.0], 0.50), 7.0);
        assert_eq!(quantile(&[], 0.50), 0.0);
    }

    #[test]
    fn unknown_suite_is_an_error_and_catalog_names_resolve() {
        assert!(run_suite("nope", &BenchOptions::default())
            .unwrap_err()
            .contains("unknown suite"));
        for (name, _) in suites() {
            assert!(suite_workloads(name).is_ok(), "{name}");
        }
        assert!(
            run_suite(
                "smoke",
                &BenchOptions {
                    warmup: 0,
                    iters: 0
                }
            )
            .is_err(),
            "zero iterations must be rejected"
        );
    }

    #[test]
    fn smoke_suite_emits_a_round_trippable_report() {
        // One tiny measured pass over the real smoke suite: this is the
        // same path `repro bench --suite smoke` takes, minus file IO.
        let report = run_suite(
            "smoke",
            &BenchOptions {
                warmup: 0,
                iters: 1,
            },
        )
        .unwrap();
        assert_eq!(report.workloads.len(), 4);
        for w in &report.workloads {
            assert!(w.events > 0, "{}", w.name);
            assert!(w.sim_ns > 0, "{}", w.name);
            assert!(w.wall_secs_p50 > 0.0, "{}", w.name);
            let perf = w.perf.as_ref().expect("all bench workloads profile");
            assert!(
                perf.attributed_frac() >= 0.95,
                "{}: attributed only {:.1}%",
                w.name,
                100.0 * perf.attributed_frac()
            );
        }
        let json = report.to_json();
        let back = BenchReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        // Self-compare: zero deltas, no regressions at any threshold.
        let cmp = hostcc_perf::compare(&back, &report, 0.0);
        assert!(cmp.regressions().is_empty());
        assert!(render_report(&report).contains("scenario:baseline"));
    }
}
