//! Experiment harness: assembles the full hostCC simulation and provides
//! one reproduction function per figure of the paper.
//!
//! * [`Scenario`] — every knob of an experiment, with paper presets.
//! * [`Simulation`] — the assembled event loop.
//! * [`RunResult`] — everything a figure needs: throughput, drop rates,
//!   memory split, latency histograms, signal CDFs, time series.
//! * [`figures`] — `fig2()` … `fig19()`, each returning printable tables
//!   that mirror the paper's panels.
//!
//! ```
//! use hostcc_experiments::{Scenario, Simulation};
//! use hostcc_sim::Nanos;
//!
//! // The paper's headline comparison in four lines.
//! let mut scenario = Scenario::with_congestion(3.0).enable_hostcc();
//! scenario.warmup = Nanos::from_millis(1);
//! scenario.measure = Nanos::from_millis(2);
//! let result = Simulation::new(scenario).run();
//! assert!(result.goodput_gbps() > 50.0);
//! assert_eq!(result.nic_drops, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
mod result;
mod scenario;
mod sim;

pub use result::{Recording, RpcResult, RunResult};
pub use scenario::{CcKind, Scenario};
pub use sim::Simulation;
