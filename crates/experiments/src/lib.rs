//! Experiment harness: assembles the full hostCC simulation and provides
//! one reproduction function per figure of the paper.
//!
//! * [`Scenario`] — every knob of an experiment, with paper presets.
//! * [`Simulation`] — the assembled event loop.
//! * [`RunResult`] — everything a figure needs: throughput, drop rates,
//!   memory split, latency histograms, signal CDFs, time series.
//! * [`grid`] — declarative experiment grids: a base scenario plus axes
//!   to sweep, expanded into cells with derived per-cell RNG seeds.
//! * [`sweep`] — the parallel, deterministic sweep engine: runs grid
//!   cells across a work-stealing worker pool with bit-identical results
//!   at any worker count, aggregated into a JSON/CSV manifest.
//! * [`resilience`] — the differential chaos harness: one fault timeline,
//!   paired hostCC-off/on arms, scored into a `ResilienceReport`.
//! * [`matchup`] — the CC zoo head-to-head: every congestion-control
//!   kind (and heterogeneous per-flow mixes) crossed with hostCC off/on
//!   across evaluation contexts, scored into a `MatchupReport`
//!   leaderboard.
//! * [`figures`] — `fig2()` … `fig19()`, each returning printable tables
//!   that mirror the paper's panels (the throughput figures run on the
//!   sweep engine).
//!
//! ```
//! use hostcc_experiments::{Scenario, Simulation};
//! use hostcc_sim::Nanos;
//!
//! // The paper's headline comparison in four lines.
//! let mut scenario = Scenario::with_congestion(3.0).enable_hostcc();
//! scenario.warmup = Nanos::from_millis(1);
//! scenario.measure = Nanos::from_millis(2);
//! let result = Simulation::new(scenario).run();
//! assert!(result.goodput_gbps() > 50.0);
//! assert_eq!(result.nic_drops, 0);
//! ```
//!
//! The same comparison as a 2-cell sweep (scales to the full §5 grids):
//!
//! ```
//! use hostcc_experiments::grid::GridSpec;
//! use hostcc_experiments::sweep::{run_sweep, SweepOptions};
//! use hostcc_experiments::Scenario;
//! use hostcc_sim::Nanos;
//!
//! let mut spec = GridSpec::new("demo", Scenario::with_congestion(3.0));
//! spec.base.warmup = Nanos::from_millis(1);
//! spec.base.measure = Nanos::from_millis(2);
//! spec.hostcc = vec![false, true];
//! let manifest = run_sweep(&spec, &SweepOptions::default()).unwrap();
//! let [vanilla, hostcc] = &manifest.cells[..] else { unreachable!() };
//! assert!(hostcc.metrics.goodput_gbps > vanilla.metrics.goodput_gbps);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod figures;
pub mod grid;
pub mod matchup;
pub mod resilience;
mod result;
mod scenario;
mod sim;
pub mod sweep;

pub use result::{RpcResult, RunResult};
pub use scenario::{CcKind, CcMix, CcSel, Scenario};
pub use sim::{known_metrics, unknown_telemetry_prefixes, Simulation};
