//! `repro` — regenerate any figure of the hostCC paper, or run a single
//! scenario with structured tracing.
//!
//! ```text
//! repro [--quick] [--csv DIR] <fig2|fig3|...|fig19|all>
//! repro [--quick] [--trace PATH] [--trace-filter CATS] <baseline|congested|hostcc|incast>
//! ```
//!
//! Every run is deterministic; `--quick` uses short measurement windows
//! (coarser tails, same qualitative shapes); `--csv DIR` additionally
//! writes every panel as a CSV file for plotting.
//!
//! Scenario targets run one simulation and print its result summary plus a
//! sim-rate profile. With `--trace PATH` the traced events are exported as
//! Chrome trace-event JSON (load the file in Perfetto / `chrome://tracing`),
//! or as compact JSONL when `PATH` ends in `.jsonl`. `--trace-filter` limits
//! collection to a comma-separated category list (e.g. `pcie,mba,drop`).

use std::io::Write;
use std::process::ExitCode;

use hostcc_experiments::figures::{self, Budget, FigureReport};
use hostcc_experiments::{Scenario, Simulation};
use hostcc_trace::{
    write_chrome_trace, write_jsonl, SimRateProfiler, TraceFilter, TraceHandle, Tracer,
    DEFAULT_TRACE_CAPACITY,
};

type FigFn = fn(&Budget) -> FigureReport;

const FIGS: &[(&str, FigFn)] = &[
    ("fig2", figures::fig2),
    ("fig3", figures::fig3),
    ("fig4", figures::fig4),
    ("fig7", figures::fig7),
    ("fig8", figures::fig8),
    ("fig9", figures::fig9),
    ("fig10", figures::fig10),
    ("fig11", figures::fig11),
    ("fig12", figures::fig12),
    ("fig13", figures::fig13),
    ("fig14", figures::fig14),
    ("fig15", figures::fig15),
    ("fig16", figures::fig16),
    ("fig17", figures::fig17),
    ("fig18", figures::fig18),
    ("fig19", figures::fig19),
];

type ScenarioFn = fn() -> Scenario;

/// Standalone scenario targets (traceable single runs).
const SCENARIOS: &[(&str, ScenarioFn)] = &[
    ("baseline", || Scenario::paper_baseline()),
    ("congested", || Scenario::with_congestion(3.0)),
    ("hostcc", || Scenario::with_congestion(3.0).enable_hostcc()),
    ("incast", || Scenario::incast(8, 3.0).enable_hostcc()),
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--quick] [--csv DIR] [--trace PATH] [--trace-filter CATS] <target>..."
    );
    eprintln!(
        "figures: all {}",
        FIGS.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(" ")
    );
    eprintln!(
        "scenarios: {}",
        SCENARIOS
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join(" ")
    );
    eprintln!(
        "trace categories: all {}",
        hostcc_trace::TraceKind::categories().join(" ")
    );
    ExitCode::FAILURE
}

fn sanitize(caption: &str) -> String {
    caption
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect::<String>()
        .trim_matches('_')
        .to_string()
}

/// Run one scenario target, optionally tracing it, and print the summary.
fn run_scenario(
    name: &str,
    make: ScenarioFn,
    budget: &Budget,
    trace_path: Option<&str>,
    filter: TraceFilter,
) -> Result<(), String> {
    let mut s = make();
    s.warmup = budget.warmup;
    s.measure = budget.measure;
    let mut sim = Simulation::new(s);
    if trace_path.is_some() {
        sim.set_trace(TraceHandle::new(Tracer::new(
            DEFAULT_TRACE_CAPACITY,
            filter,
        )));
    }

    let profiler = SimRateProfiler::start(sim.events_processed(), sim.now());
    let r = sim.run();
    let report = profiler.finish(sim.events_processed(), sim.now());

    println!("== scenario {name} ==");
    println!(
        "goodput {:.1} Gbps (all flows {:.1}), drop rate {:.3} % ({} NIC + {} switch of {} packets)",
        r.goodput_gbps(),
        r.goodput_all.as_gbps(),
        r.drop_rate_pct,
        r.nic_drops,
        r.switch_drops,
        r.data_packets,
    );
    println!(
        "marks: {} host + {} fabric; retransmits {}, timeouts {}",
        r.host_marks, r.fabric_marks, r.retransmits, r.timeouts,
    );
    println!(
        "signals: mean I_S {:.1}, mean B_S {:.1} Gbps, mean MBA level {:.2} ({} MSR writes)",
        r.mean_is,
        r.mean_bs.as_gbps(),
        r.mean_level,
        r.mba_writes,
    );
    if let Some(counts) = &r.trace {
        let per_kind: Vec<String> = counts
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(k, n)| format!("{} {}", k.name(), n))
            .collect();
        println!(
            "traced {} events ({} evicted from the ring): {}",
            counts.total(),
            counts.overflowed,
            per_kind.join(", "),
        );
    }
    println!("{}", report.render());

    if let Some(path) = trace_path {
        let export = sim.trace().with(|t| {
            let mut buf = Vec::new();
            if path.ends_with(".jsonl") {
                write_jsonl(t, &mut buf).map(|()| buf)
            } else {
                write_chrome_trace(t, &mut buf).map(|()| buf)
            }
        });
        match export {
            Some(Ok(buf)) => {
                let mut file = std::fs::File::create(path)
                    .map_err(|e| format!("cannot create {path}: {e}"))?;
                file.write_all(&buf)
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("[wrote {path}: {} bytes]", buf.len());
            }
            Some(Err(e)) => return Err(format!("trace export failed: {e}")),
            None => unreachable!("tracing was enabled above"),
        }
    }
    println!();
    Ok(())
}

fn main() -> ExitCode {
    let mut budget = Budget::standard();
    let mut targets: Vec<String> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut filter = TraceFilter::all();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => budget = Budget::quick(),
            "--csv" => match args.next() {
                Some(dir) => csv_dir = Some(dir),
                None => return usage(),
            },
            "--trace" => match args.next() {
                Some(path) => trace_path = Some(path),
                None => return usage(),
            },
            "--trace-filter" => match args.next() {
                Some(spec) => match TraceFilter::parse(&spec) {
                    Ok(f) => filter = f,
                    Err(e) => {
                        eprintln!("bad --trace-filter: {e}");
                        return usage();
                    }
                },
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            name => targets.push(name.to_string()),
        }
    }
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if targets.is_empty() {
        return usage();
    }
    if targets.iter().any(|t| t == "all") {
        let scenarios = targets
            .iter()
            .filter(|t| SCENARIOS.iter().any(|(n, _)| *n == t.as_str()))
            .cloned();
        targets = scenarios
            .chain(FIGS.iter().map(|(n, _)| n.to_string()))
            .collect();
    }
    if trace_path.is_some() {
        let traceable = targets
            .iter()
            .filter(|t| SCENARIOS.iter().any(|(n, _)| *n == t.as_str()))
            .count();
        if traceable != 1 {
            eprintln!("--trace needs exactly one scenario target (one output file)");
            return usage();
        }
    }
    for t in &targets {
        if let Some((name, make)) = SCENARIOS.iter().find(|(n, _)| n == t) {
            if let Err(e) = run_scenario(name, *make, &budget, trace_path.as_deref(), filter) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
            continue;
        }
        let Some((_, f)) = FIGS.iter().find(|(n, _)| n == t) else {
            eprintln!("unknown target: {t}");
            return usage();
        };
        let started = std::time::Instant::now();
        let report = f(&budget);
        println!("{}", report.render());
        if let Some(dir) = &csv_dir {
            for (i, (caption, table)) in report.panels.iter().enumerate() {
                let path = format!("{dir}/{t}_{i}_{}.csv", sanitize(caption));
                if let Err(e) = std::fs::write(&path, table.to_csv()) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("[wrote {path}]");
            }
        }
        println!("[{} regenerated in {:.1?}]\n", t, started.elapsed());
    }
    ExitCode::SUCCESS
}
