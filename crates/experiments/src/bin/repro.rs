//! `repro` — regenerate any figure of the hostCC paper.
//!
//! ```text
//! repro [--quick] [--csv DIR] <fig2|fig3|fig4|fig7|fig8|fig9|...|fig19|all>
//! ```
//!
//! Every run is deterministic; `--quick` uses short measurement windows
//! (coarser tails, same qualitative shapes); `--csv DIR` additionally
//! writes every panel as a CSV file for plotting.

use std::process::ExitCode;

use hostcc_experiments::figures::{self, Budget, FigureReport};

type FigFn = fn(&Budget) -> FigureReport;

const FIGS: &[(&str, FigFn)] = &[
    ("fig2", figures::fig2),
    ("fig3", figures::fig3),
    ("fig4", figures::fig4),
    ("fig7", figures::fig7),
    ("fig8", figures::fig8),
    ("fig9", figures::fig9),
    ("fig10", figures::fig10),
    ("fig11", figures::fig11),
    ("fig12", figures::fig12),
    ("fig13", figures::fig13),
    ("fig14", figures::fig14),
    ("fig15", figures::fig15),
    ("fig16", figures::fig16),
    ("fig17", figures::fig17),
    ("fig18", figures::fig18),
    ("fig19", figures::fig19),
];

fn usage() -> ExitCode {
    eprintln!("usage: repro [--quick] [--csv DIR] <figure>...");
    eprintln!("figures: all {}", FIGS.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(" "));
    ExitCode::FAILURE
}

fn sanitize(caption: &str) -> String {
    caption
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect::<String>()
        .trim_matches('_')
        .to_string()
}

fn main() -> ExitCode {
    let mut budget = Budget::standard();
    let mut targets: Vec<String> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => budget = Budget::quick(),
            "--csv" => match args.next() {
                Some(dir) => csv_dir = Some(dir),
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            name => targets.push(name.to_string()),
        }
    }
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if targets.is_empty() {
        return usage();
    }
    if targets.iter().any(|t| t == "all") {
        targets = FIGS.iter().map(|(n, _)| n.to_string()).collect();
    }
    for t in &targets {
        let Some((_, f)) = FIGS.iter().find(|(n, _)| n == t) else {
            eprintln!("unknown figure: {t}");
            return usage();
        };
        let started = std::time::Instant::now();
        let report = f(&budget);
        println!("{}", report.render());
        if let Some(dir) = &csv_dir {
            for (i, (caption, table)) in report.panels.iter().enumerate() {
                let path = format!("{dir}/{t}_{i}_{}.csv", sanitize(caption));
                if let Err(e) = std::fs::write(&path, table.to_csv()) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("[wrote {path}]");
            }
        }
        println!("[{} regenerated in {:.1?}]\n", t, started.elapsed());
    }
    ExitCode::SUCCESS
}
