//! `repro` — regenerate any figure of the hostCC paper, run a parameter
//! sweep, or run a single scenario with structured tracing and telemetry.
//!
//! ```text
//! repro [--quick] [--csv DIR] <fig2|fig3|...|fig19|all>
//! repro [--quick] [--trace PATH] [--trace-filter CATS]
//!       [--telemetry] [--telemetry-interval NS] [--telemetry-filter PREFIXES]
//!       [--telemetry-out DIR] [--strict-invariants]
//!       <baseline|congested|hostcc|incast>
//! repro flows [--quick] [--scenario NAME] [--out DIR]
//! repro sweep [--quick] [--workers N] [--out DIR] [--telemetry]
//!       [--strict-invariants] [--flows] <preset | axis=v1,v2 ...>
//! repro sweep --list
//! repro chaos [--quick] [--workers N] [--strict-invariants] [--out DIR]
//!       [--preset NAME | NAME|SPEC ...]
//! repro chaos --list
//! repro matchup [--quick] [--workers N] [--out DIR] [--preset NAME]
//! repro matchup --list
//! repro bench [--suite NAME] [--warmup N] [--iters N] [--out PATH]
//!       [--compare BASELINE.json] [--current PATH] [--threshold PCT]
//!       [--alloc-threshold PCT]
//! repro bench --list
//! ```
//!
//! Every run is deterministic; `--quick` uses short measurement windows
//! (coarser tails, same qualitative shapes); `--csv DIR` additionally
//! writes every panel as a CSV file for plotting.
//!
//! Scenario targets run one simulation and print its result summary plus a
//! sim-rate profile. With `--trace PATH` the traced events are exported as
//! Chrome trace-event JSON (load the file in Perfetto / `chrome://tracing`),
//! or as compact JSONL when `PATH` ends in `.jsonl`. `--trace-filter` limits
//! collection to a comma-separated category list (e.g. `pcie,mba,drop`).
//!
//! `--telemetry` attaches the gauge sampler and invariant watchdog
//! (hostcc-telemetry): the run prints a summary line, `--telemetry-out DIR`
//! writes `telemetry.csv` (wide CSV, one column per gauge), `telemetry.jsonl`,
//! `telemetry.prom` (Prometheus text) and `summary.json`.
//! `--telemetry-interval` sets the sampling cadence in simulated
//! nanoseconds (default 700), `--telemetry-filter` keeps only metrics under
//! the given dot-separated prefixes (e.g. `host.iio,core.signals`), and
//! `--strict-invariants` (implies `--telemetry`) exits nonzero with the
//! watchdog's diagnostic if any conservation invariant is violated.
//!
//! `repro flows` runs one scenario with the flow-ledger recorder
//! (hostcc-flowscope) attached and prints the packet-lifecycle
//! stage-residency breakdown — whose per-stage sums are
//! conservation-checked, exactly in integer nanoseconds, against the
//! measured end-to-end latency — plus the per-flow table (FCT, goodput,
//! ECN marks, retransmits, cwnd) with Jain's fairness index and the
//! convergence time. `--out DIR` writes `flows.json` and `flows.csv`;
//! the exit code is nonzero if conservation fails.
//!
//! `repro sweep` expands a declarative grid — a named preset
//! (`repro sweep --list`) or ad-hoc axes (`repro sweep hostcc=off,on
//! degree=0,1,2,3`) — and runs every cell across a worker pool
//! (`--workers 0` = one per core). Per-cell results are bit-identical for
//! any worker count; `--out DIR` writes `manifest.json` and `results.csv`.
//! With `--telemetry` each cell also carries a telemetry fingerprint in the
//! manifest, and `--strict-invariants` fails the whole sweep on the first
//! violating cell.
//!
//! `repro chaos` runs a fault timeline (a preset from `repro chaos --list`
//! or an inline spec like `flap@4500us+400us`) through the differential
//! resilience harness: paired hostCC-off/on runs under the identical
//! timeline, scored into a per-preset report (throughput dip, recovery
//! time, tail latency, watchdog attribution). `--out DIR` writes one
//! `<preset>.report.json` per timeline — deterministic JSON, byte-identical
//! at any `--workers` count. The exit code is nonzero when any arm saw a
//! watchdog violation outside an annotated fault window (with
//! `--strict-invariants`, any violation at all).
//!
//! `repro matchup` runs the CC zoo head-to-head: a preset catalog of
//! evaluation contexts (incast dumbbell, fat-tree incast, chaos flap)
//! crossed with every congestion-control kind — including DCQCN,
//! bbr-lite and heterogeneous per-flow mixes — and hostCC off/on, on
//! the deterministic sweep engine. Each cell is scored with aggregate
//! and worst-flow goodput, Jain's fairness index, convergence time,
//! retransmits and the worst RPC P99; the arms are ranked into a
//! leaderboard by fairness-weighted goodput (mean Jain x mean goodput).
//! `--out DIR` writes `matchup.json` (`hostcc-matchup/v1`, FNV
//! fingerprint, byte-identical at any `--workers` count),
//! `leaderboard.md` and `leaderboard.csv`.
//!
//! `repro bench` runs a named workload suite (`repro bench --list`) with
//! per-subsystem wall-clock attribution and writes the trajectory file
//! `BENCH_<git-short-sha>.json` to the current directory (or `--out PATH`).
//! `repro bench --compare BASELINE.json` diffs a prior file against the
//! current one (`--current PATH`, else the file for the current git sha,
//! else the newest `BENCH_*.json`; when `--suite` is also given, against a
//! fresh run) and exits nonzero if any workload regressed by more than
//! `--threshold` percent (default 5), or — with `--alloc-threshold PCT` —
//! if any workload's allocation count grew by more than that (alloc
//! counts are deterministic, so this gate stays tight even when the
//! baseline file came from a different machine). Build with
//! `--features alloc-profile` to add allocator counts to the report.
//! Scenario targets additionally accept `--profile` to print the same
//! attribution table after a single run.

use std::io::Write;
use std::process::ExitCode;

use hostcc_chaos::ChaosTimeline;
use hostcc_experiments::bench::{self, BenchOptions};
use hostcc_experiments::figures::{self, Budget, FigureReport};
use hostcc_experiments::grid::{self, GridSpec};
use hostcc_experiments::matchup::{self, run_matchup};
use hostcc_experiments::resilience::run_chaos;
use hostcc_experiments::sweep::{run_sweep, SweepOptions};
use hostcc_experiments::{known_metrics, unknown_telemetry_prefixes, Scenario, Simulation};
use hostcc_flowscope::{FlowScope, FlowscopeHandle};
use hostcc_perf::{compare_gated, BenchReport, PerfHandle, PerfProfiler};
use hostcc_sim::Nanos;
use hostcc_telemetry::{
    prometheus_text, summary_json, to_jsonl, wide_csv, Telemetry, TelemetryConfig, TelemetryFilter,
    TelemetryHandle,
};
use hostcc_trace::{
    write_chrome_trace, write_jsonl, SimRateProfiler, TraceFilter, TraceHandle, Tracer,
    DEFAULT_TRACE_CAPACITY,
};

/// With `--features alloc-profile`, every allocation in the process is
/// counted (relaxed atomics over the system allocator) and `repro bench`
/// reports per-workload allocator deltas. Default builds register nothing.
#[cfg(feature = "alloc-profile")]
#[global_allocator]
static ALLOC: hostcc_perf::CountingAllocator = hostcc_perf::CountingAllocator;

type FigFn = fn(&Budget) -> FigureReport;

const FIGS: &[(&str, FigFn)] = &[
    ("fig2", figures::fig2),
    ("fig3", figures::fig3),
    ("fig4", figures::fig4),
    ("fig7", figures::fig7),
    ("fig8", figures::fig8),
    ("fig9", figures::fig9),
    ("fig10", figures::fig10),
    ("fig11", figures::fig11),
    ("fig12", figures::fig12),
    ("fig13", figures::fig13),
    ("fig14", figures::fig14),
    ("fig15", figures::fig15),
    ("fig16", figures::fig16),
    ("fig17", figures::fig17),
    ("fig18", figures::fig18),
    ("fig19", figures::fig19),
];

type ScenarioFn = fn() -> Scenario;

/// Standalone scenario targets (traceable single runs).
const SCENARIOS: &[(&str, ScenarioFn)] = &[
    ("baseline", || Scenario::paper_baseline()),
    ("congested", || Scenario::with_congestion(3.0)),
    ("hostcc", || Scenario::with_congestion(3.0).enable_hostcc()),
    ("incast", || Scenario::incast(8, 3.0).enable_hostcc()),
    ("fat-tree", || {
        Scenario::fat_tree_incast(4, 3.0).enable_hostcc()
    }),
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--quick] [--csv DIR] [--trace PATH] [--trace-filter CATS] \
         [--telemetry] [--telemetry-interval NS] [--telemetry-filter PREFIXES] \
         [--telemetry-out DIR] [--strict-invariants] [--profile] <target>..."
    );
    eprintln!("       repro flows [--quick] [--scenario NAME] [--out DIR]");
    eprintln!("       repro sweep [--quick] [--workers N] [--out DIR] <preset | axis=v1,v2 ...>");
    eprintln!("       repro chaos [--quick] [--workers N] [--out DIR] [--preset NAME | SPEC ...]");
    eprintln!("       repro matchup [--quick] [--workers N] [--out DIR] [--preset NAME]");
    eprintln!(
        "       repro bench [--suite NAME] [--warmup N] [--iters N] [--out PATH] \
         [--compare BASELINE.json] [--current PATH] [--threshold PCT] \
         [--alloc-threshold PCT]"
    );
    eprintln!("figures: all {}", valid_figures().join(" "));
    eprintln!("scenarios: {}", valid_scenarios().join(" "));
    eprintln!(
        "trace categories: all {}",
        hostcc_trace::TraceKind::categories().join(" ")
    );
    ExitCode::FAILURE
}

fn valid_figures() -> Vec<&'static str> {
    FIGS.iter().map(|(n, _)| *n).collect()
}

fn valid_scenarios() -> Vec<&'static str> {
    SCENARIOS.iter().map(|(n, _)| *n).collect()
}

/// Validate the requested targets and expand `all`, keeping the request
/// order. *Every* name is checked up front — an unknown target is an error
/// even when `all` appears alongside it (a silently dropped typo used to
/// make `repro all figX` exit 0 without running `figX`).
fn resolve_targets(requested: &[String]) -> Result<Vec<String>, String> {
    let known =
        |t: &str| SCENARIOS.iter().any(|(n, _)| *n == t) || FIGS.iter().any(|(n, _)| *n == t);
    let unknown: Vec<&str> = requested
        .iter()
        .map(String::as_str)
        .filter(|t| *t != "all" && !known(t))
        .collect();
    if !unknown.is_empty() {
        return Err(format!(
            "unknown target(s): {}\nvalid figures: all {}\nvalid scenarios: {}",
            unknown.join(" "),
            valid_figures().join(" "),
            valid_scenarios().join(" "),
        ));
    }
    if requested.is_empty() {
        return Err("no target given".to_string());
    }
    if requested.iter().any(|t| t == "all") {
        // `all` covers every figure; explicitly-named scenarios still run.
        Ok(requested
            .iter()
            .filter(|t| SCENARIOS.iter().any(|(n, _)| *n == t.as_str()))
            .cloned()
            .chain(FIGS.iter().map(|(n, _)| n.to_string()))
            .collect())
    } else {
        Ok(requested.to_vec())
    }
}

fn sanitize(caption: &str) -> String {
    caption
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect::<String>()
        .trim_matches('_')
        .to_string()
}

/// Run one scenario target, optionally tracing and sampling telemetry,
/// and print the summary.
#[allow(clippy::too_many_arguments)]
fn run_scenario(
    name: &str,
    make: ScenarioFn,
    budget: &Budget,
    trace_path: Option<&str>,
    filter: TraceFilter,
    telemetry: Option<&TelemetryConfig>,
    telemetry_out: Option<&str>,
    profile: bool,
) -> Result<(), String> {
    let mut s = make();
    s.warmup = budget.warmup;
    s.measure = budget.measure;
    let mut sim = Simulation::new(s);
    if trace_path.is_some() {
        sim.set_trace(TraceHandle::new(Tracer::new(
            DEFAULT_TRACE_CAPACITY,
            filter,
        )));
    }
    if let Some(cfg) = telemetry {
        sim.set_telemetry(TelemetryHandle::new(Telemetry::new(cfg.clone())));
    }
    if profile {
        sim.set_perf(PerfHandle::new(PerfProfiler::new()));
    }

    let profiler = SimRateProfiler::start(sim.events_processed(), sim.now());
    let r = sim.run();
    let report = profiler.finish(sim.events_processed(), sim.now());

    println!("== scenario {name} ==");
    println!(
        "goodput {:.1} Gbps (all flows {:.1}), drop rate {:.3} % ({} NIC + {} switch of {} packets)",
        r.goodput_gbps(),
        r.goodput_all.as_gbps(),
        r.drop_rate_pct,
        r.nic_drops,
        r.switch_drops,
        r.data_packets,
    );
    println!(
        "marks: {} host + {} fabric; retransmits {}, timeouts {}",
        r.host_marks, r.fabric_marks, r.retransmits, r.timeouts,
    );
    println!(
        "signals: mean I_S {:.1}, mean B_S {:.1} Gbps, mean MBA level {:.2} ({} MSR writes)",
        r.mean_is,
        r.mean_bs.as_gbps(),
        r.mean_level,
        r.mba_writes,
    );
    if let Some(counts) = &r.trace {
        let per_kind: Vec<String> = counts
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(k, n)| format!("{} {}", k.name(), n))
            .collect();
        println!(
            "traced {} events ({} evicted from the ring): {}",
            counts.total(),
            counts.overflowed,
            per_kind.join(", "),
        );
    }
    println!("{}", report.render());
    if let Some(perf) = sim.perf().report() {
        print!("{}", perf.render());
    }

    if let Some(path) = trace_path {
        let export = sim.trace().with(|t| {
            let mut buf = Vec::new();
            if path.ends_with(".jsonl") {
                write_jsonl(t, &mut buf).map(|()| buf)
            } else {
                write_chrome_trace(t, &mut buf).map(|()| buf)
            }
        });
        match export {
            Some(Ok(buf)) => {
                let mut file = std::fs::File::create(path)
                    .map_err(|e| format!("cannot create {path}: {e}"))?;
                file.write_all(&buf)
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("[wrote {path}: {} bytes]", buf.len());
            }
            Some(Err(e)) => return Err(format!("trace export failed: {e}")),
            None => unreachable!("tracing was enabled above"),
        }
    }
    if let Some(t) = &r.telemetry {
        println!(
            "telemetry: {} samples over {} series, {} watchdog checks, {} violation(s)",
            t.summary.samples,
            t.series.len(),
            t.summary.checks,
            t.summary.total_violations(),
        );
        if let Some(dir) = telemetry_out {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
            for (file, contents) in [
                ("telemetry.csv", wide_csv(&t.series)),
                ("telemetry.jsonl", to_jsonl(&t.series)),
                ("telemetry.prom", prometheus_text(&t.registry)),
                ("summary.json", summary_json(t)),
            ] {
                let path = format!("{dir}/{file}");
                std::fs::write(&path, &contents)
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("[wrote {path}: {} bytes]", contents.len());
            }
        }
        if let Err(d) = t.strict_verdict() {
            return Err(format!("strict invariants: {d}"));
        }
    }
    println!();
    Ok(())
}

/// Build a [`GridSpec`] from the sweep subcommand's positional arguments:
/// an optional leading preset name, then `axis=v1,v2,...` overrides.
fn build_spec(positionals: &[String]) -> Result<GridSpec, String> {
    let mut spec: Option<GridSpec> = None;
    for arg in positionals {
        if let Some((axis, values)) = arg.split_once('=') {
            let s = spec.get_or_insert_with(|| GridSpec::new("custom", Scenario::paper_baseline()));
            s.set_axis(axis, values)?;
        } else if spec.is_none() {
            spec = Some(GridSpec::preset(arg).ok_or_else(|| {
                format!(
                    "unknown preset '{arg}'\nvalid presets: {}",
                    GridSpec::presets()
                        .iter()
                        .map(|(_, n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(" ")
                )
            })?);
        } else {
            return Err(format!(
                "unexpected argument '{arg}': the preset must come first, axes as name=v1,v2"
            ));
        }
    }
    spec.ok_or_else(|| "no grid given: pass a preset name or axis=value,... specs".to_string())
}

/// The preset catalog, grouped by family (satisfying `repro sweep --list`):
/// every [`GridSpec`] preset under its family heading, then the matchup
/// presets (which run via `repro matchup`) as their own family.
fn preset_catalog() -> String {
    let mut out = String::from("presets, by family:\n");
    for family in GridSpec::PRESET_FAMILIES {
        out.push_str(&format!("  [{family}]\n"));
        for (f, name, desc) in GridSpec::presets() {
            if f == family {
                out.push_str(&format!("    {name:<16} {desc}\n"));
            }
        }
    }
    out.push_str("  [matchup]  (run with `repro matchup --preset NAME`)\n");
    for (name, desc) in matchup::presets() {
        out.push_str(&format!("    {name:<16} {desc}\n"));
    }
    out.push_str(&format!("axes: {}\n", grid::AXIS_NAMES));
    out
}

fn sweep_usage() -> ExitCode {
    eprintln!(
        "usage: repro sweep [--quick] [--workers N] [--out DIR] [--no-trace] \
         [--trace-filter CATS] [--telemetry] [--flows] [--strict-invariants] \
         <preset | axis=v1,v2 ...>"
    );
    eprintln!("       repro sweep --list");
    eprint!("{}", preset_catalog());
    ExitCode::FAILURE
}

fn sweep_main(args: &[String]) -> ExitCode {
    let mut budget = Budget::standard();
    let mut opts = SweepOptions::default();
    let mut out_dir: Option<String> = None;
    let mut positionals: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => budget = Budget::quick(),
            "--no-trace" => opts.trace = false,
            "--telemetry" => opts.telemetry = true,
            "--flows" => opts.flows = true,
            "--strict-invariants" => {
                opts.telemetry = true;
                opts.strict_invariants = true;
            }
            "--workers" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) => opts.workers = n,
                    None => {
                        eprintln!("--workers needs a number (0 = one per core)");
                        return sweep_usage();
                    }
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => out_dir = Some(dir.clone()),
                    None => return sweep_usage(),
                }
            }
            "--trace-filter" => {
                i += 1;
                match args.get(i).map(|s| TraceFilter::parse(s)) {
                    Some(Ok(f)) => opts.trace_filter = f,
                    Some(Err(e)) => {
                        eprintln!("bad --trace-filter: {e}");
                        return sweep_usage();
                    }
                    None => return sweep_usage(),
                }
            }
            "--list" => {
                print!("{}", preset_catalog());
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return sweep_usage(),
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag: {flag}");
                return sweep_usage();
            }
            positional => positionals.push(positional.to_string()),
        }
        i += 1;
    }
    let mut spec = match build_spec(&positionals) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return sweep_usage();
        }
    };
    spec.base = budget.apply(spec.base);
    println!("sweep '{}': {} cells", spec.name, spec.cell_count());
    let manifest = match run_sweep(&spec, &opts) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", manifest.summary_table().render());
    println!("{}", manifest.render_stats());
    if let Some(t) = &manifest.telemetry {
        println!(
            "telemetry: {} samples, {} watchdog checks, {} violation(s), fingerprint {:#018x}",
            t.samples,
            t.checks,
            t.total_violations(),
            t.fingerprint(),
        );
    }
    if let Some(f) = &manifest.flowscope {
        println!(
            "flows: {} delivered, {} dropped, {} conservation failure(s), fingerprint {:#018x}",
            f.completed,
            f.dropped,
            f.conservation_failures,
            f.fingerprint(),
        );
    }
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
        for (file, contents) in [
            ("manifest.json", manifest.to_json()),
            ("results.csv", manifest.to_csv()),
        ] {
            let path = format!("{dir}/{file}");
            if let Err(e) = std::fs::write(&path, contents) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("[wrote {path}]");
        }
    }
    ExitCode::SUCCESS
}

fn flows_usage() -> ExitCode {
    eprintln!("usage: repro flows [--quick] [--scenario NAME] [--out DIR]");
    eprintln!("scenarios: {}", valid_scenarios().join(" "));
    ExitCode::FAILURE
}

fn flows_main(args: &[String]) -> ExitCode {
    let mut budget = Budget::standard();
    let mut scenario = "congested".to_string();
    let mut out_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => budget = Budget::quick(),
            "--scenario" => {
                i += 1;
                match args.get(i) {
                    Some(name) => scenario = name.clone(),
                    None => return flows_usage(),
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => out_dir = Some(dir.clone()),
                    None => return flows_usage(),
                }
            }
            "--help" | "-h" => return flows_usage(),
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag: {flag}");
                return flows_usage();
            }
            positional => scenario = positional.to_string(),
        }
        i += 1;
    }
    let Some((name, make)) = SCENARIOS.iter().find(|(n, _)| *n == scenario) else {
        eprintln!(
            "unknown scenario '{scenario}'\nscenarios: {}",
            valid_scenarios().join(" ")
        );
        return ExitCode::FAILURE;
    };
    let mut sim = Simulation::new(budget.apply(make()));
    sim.set_flowscope(FlowscopeHandle::new(FlowScope::new()));
    let r = sim.run();
    let fs = r.flowscope.expect("the recorder was attached above");
    println!("== flows {name} ==");
    print!("{}", fs.render());
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
        for (file, contents) in [("flows.json", fs.to_json()), ("flows.csv", fs.flow_csv())] {
            let path = format!("{dir}/{file}");
            if let Err(e) = std::fs::write(&path, &contents) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("[wrote {path}: {} bytes]", contents.len());
        }
    }
    if !fs.conservation_holds() {
        eprintln!(
            "conservation FAILED: stage sums {} ns vs e2e {} ns ({} per-packet failures, \
             {} orphan stamps)",
            fs.summary.stage_grand_total_ns(),
            fs.summary.e2e_total_ns,
            fs.summary.conservation_failures,
            fs.orphan_stamps,
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn chaos_usage() -> ExitCode {
    eprintln!(
        "usage: repro chaos [--quick] [--workers N] [--strict-invariants] [--out DIR] \
         [--preset NAME | NAME|SPEC ...]"
    );
    eprintln!("       repro chaos --list");
    eprintln!("presets:");
    for (name, spec, desc) in ChaosTimeline::presets() {
        eprintln!("  {name:<16} {desc}  ({spec})");
    }
    ExitCode::FAILURE
}

fn chaos_main(args: &[String]) -> ExitCode {
    let mut budget = Budget::standard();
    let mut workers = 2usize;
    let mut strict = false;
    let mut out_dir: Option<String> = None;
    let mut specs: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => budget = Budget::quick(),
            "--strict-invariants" => strict = true,
            "--workers" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) => workers = n,
                    None => {
                        eprintln!("--workers needs a number");
                        return chaos_usage();
                    }
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => out_dir = Some(dir.clone()),
                    None => return chaos_usage(),
                }
            }
            "--preset" => {
                i += 1;
                match args.get(i) {
                    Some(name) => specs.push(name.clone()),
                    None => return chaos_usage(),
                }
            }
            "--list" => {
                println!("presets:");
                for (name, spec, desc) in ChaosTimeline::presets() {
                    println!("  {name:<16} {desc}  ({spec})");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return chaos_usage(),
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag: {flag}");
                return chaos_usage();
            }
            positional => specs.push(positional.to_string()),
        }
        i += 1;
    }
    if specs.is_empty() {
        // No timeline named: run the whole preset catalog.
        specs = ChaosTimeline::presets()
            .iter()
            .map(|(n, _, _)| n.to_string())
            .collect();
    }
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let mut failed = false;
    for spec in &specs {
        let report = match run_chaos(spec, &budget, workers) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("chaos '{spec}': {e}");
                failed = true;
                continue;
            }
        };
        print!("{}", report.render());
        if let Some(dir) = &out_dir {
            let path = format!("{dir}/{}.report.json", sanitize(spec));
            if let Err(e) = std::fs::write(&path, report.to_json()) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("[wrote {path}]");
        }
        if let Err(e) = report.verdict() {
            eprintln!("chaos '{spec}': {e}");
            failed = true;
        }
        let total = report.off.violations + report.on.violations;
        if strict && total > 0 {
            eprintln!(
                "chaos '{spec}': strict invariants: {total} violation(s), annotated included"
            );
            failed = true;
        }
        println!();
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn matchup_usage() -> ExitCode {
    eprintln!("usage: repro matchup [--quick] [--workers N] [--out DIR] [--preset NAME]");
    eprintln!("       repro matchup --list");
    eprintln!("presets:");
    for (name, desc) in matchup::presets() {
        eprintln!("  {name:<10} {desc}");
    }
    ExitCode::FAILURE
}

fn matchup_main(args: &[String]) -> ExitCode {
    let mut budget = Budget::standard();
    let mut budget_label = "standard";
    let mut workers = 0usize;
    let mut preset = "standard".to_string();
    let mut out_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                budget = Budget::quick();
                budget_label = "quick";
            }
            "--workers" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) => workers = n,
                    None => {
                        eprintln!("--workers needs a number (0 = one per core)");
                        return matchup_usage();
                    }
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => out_dir = Some(dir.clone()),
                    None => return matchup_usage(),
                }
            }
            "--preset" => {
                i += 1;
                match args.get(i) {
                    Some(name) => preset = name.clone(),
                    None => return matchup_usage(),
                }
            }
            "--list" => {
                println!("presets:");
                for (name, desc) in matchup::presets() {
                    println!("  {name:<10} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return matchup_usage(),
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag: {flag}");
                return matchup_usage();
            }
            positional => preset = positional.to_string(),
        }
        i += 1;
    }
    let report = match run_matchup(&preset, &budget, budget_label, workers) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("matchup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());
    println!(
        "{} cells, fingerprint {:#018x}",
        report.cells.len(),
        report.fingerprint()
    );
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
        for (file, contents) in [
            ("matchup.json", report.to_json()),
            ("leaderboard.md", report.leaderboard_markdown()),
            ("leaderboard.csv", report.leaderboard_csv()),
        ] {
            let path = format!("{dir}/{file}");
            if let Err(e) = std::fs::write(&path, &contents) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("[wrote {path}: {} bytes]", contents.len());
        }
    }
    ExitCode::SUCCESS
}

fn bench_usage() -> ExitCode {
    eprintln!(
        "usage: repro bench [--suite NAME] [--warmup N] [--iters N] [--out PATH] \
         [--compare BASELINE.json] [--current PATH] [--threshold PCT] \
         [--alloc-threshold PCT]"
    );
    eprintln!("       repro bench --list");
    eprintln!("suites:");
    for (name, desc) in bench::suites() {
        eprintln!("  {name:<10} {desc}");
    }
    eprintln!(
        "--compare without --suite diffs two existing files; with --suite it \
         diffs the baseline against the fresh run"
    );
    ExitCode::FAILURE
}

fn load_bench(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

/// Resolve the "current" side of a pure-file comparison: an explicit
/// `--current PATH`, else `BENCH_<sha>.json` for the current git sha, else
/// the newest `BENCH_*.json` in the current directory.
fn resolve_current(explicit: Option<&str>) -> Result<String, String> {
    if let Some(path) = explicit {
        return Ok(path.to_string());
    }
    let by_sha = format!("BENCH_{}.json", bench::git_short_sha());
    if std::fs::metadata(&by_sha).is_ok() {
        return Ok(by_sha);
    }
    let mut newest: Option<(std::time::SystemTime, String)> = None;
    let entries = std::fs::read_dir(".").map_err(|e| format!("cannot read cwd: {e}"))?;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let Ok(modified) = entry.metadata().and_then(|m| m.modified()) else {
            continue;
        };
        if newest.as_ref().is_none_or(|(t, _)| modified > *t) {
            newest = Some((modified, name));
        }
    }
    newest.map(|(_, name)| name).ok_or_else(|| {
        "no current BENCH_*.json found: run `repro bench` first or pass --current PATH".to_string()
    })
}

/// Print the delta table; nonzero exit iff a workload regressed beyond the
/// rate threshold, or grew its allocation count beyond the alloc threshold.
fn report_comparison(
    baseline: &BenchReport,
    current: &BenchReport,
    threshold: f64,
    alloc_threshold: f64,
) -> ExitCode {
    let cmp = compare_gated(baseline, current, threshold, alloc_threshold);
    print!("{}", cmp.render());
    if cmp.regressions().is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn bench_main(args: &[String]) -> ExitCode {
    let mut suite: Option<String> = None;
    let mut opts = BenchOptions::default();
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut current: Option<String> = None;
    let mut threshold = 5.0f64;
    let mut alloc_threshold = f64::INFINITY;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--suite" => {
                i += 1;
                match args.get(i) {
                    Some(name) => suite = Some(name.clone()),
                    None => return bench_usage(),
                }
            }
            "--warmup" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<u32>().ok()) {
                    Some(n) => opts.warmup = n,
                    None => {
                        eprintln!("--warmup needs a non-negative iteration count");
                        return bench_usage();
                    }
                }
            }
            "--iters" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<u32>().ok()) {
                    Some(n) if n > 0 => opts.iters = n,
                    _ => {
                        eprintln!("--iters needs a positive iteration count");
                        return bench_usage();
                    }
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => out = Some(path.clone()),
                    None => return bench_usage(),
                }
            }
            "--compare" => {
                i += 1;
                match args.get(i) {
                    Some(path) => baseline = Some(path.clone()),
                    None => return bench_usage(),
                }
            }
            "--current" => {
                i += 1;
                match args.get(i) {
                    Some(path) => current = Some(path.clone()),
                    None => return bench_usage(),
                }
            }
            "--threshold" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<f64>().ok()) {
                    Some(pct) if pct >= 0.0 => threshold = pct,
                    _ => {
                        eprintln!("--threshold needs a non-negative percentage");
                        return bench_usage();
                    }
                }
            }
            "--alloc-threshold" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<f64>().ok()) {
                    Some(pct) if pct >= 0.0 => alloc_threshold = pct,
                    _ => {
                        eprintln!("--alloc-threshold needs a non-negative percentage");
                        return bench_usage();
                    }
                }
            }
            "--list" => {
                println!("suites:");
                for (name, desc) in bench::suites() {
                    println!("  {name:<10} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return bench_usage(),
            other => {
                eprintln!("unknown argument: {other}");
                return bench_usage();
            }
        }
        i += 1;
    }

    // Pure file diff: --compare without --suite never runs anything.
    if let (Some(base_path), None) = (&baseline, &suite) {
        let base = match load_bench(base_path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let cur_path = match resolve_current(current.as_deref()) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let cur = match load_bench(&cur_path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        println!("comparing {base_path} (baseline) vs {cur_path} (current)");
        return report_comparison(&base, &cur, threshold, alloc_threshold);
    }

    let suite = suite.unwrap_or_else(|| "smoke".to_string());
    let report = match bench::run_suite(&suite, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", bench::render_report(&report));
    let path = out.unwrap_or_else(|| format!("BENCH_{}.json", report.git_sha));
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("[wrote {path}]");
    if let Some(base_path) = &baseline {
        let base = match load_bench(base_path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        println!("comparing {base_path} (baseline) vs this run");
        return report_comparison(&base, &report, threshold, alloc_threshold);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("sweep") {
        return sweep_main(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("chaos") {
        return chaos_main(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("flows") {
        return flows_main(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("bench") {
        return bench_main(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("matchup") {
        return matchup_main(&raw[1..]);
    }
    let mut budget = Budget::standard();
    let mut targets: Vec<String> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut filter = TraceFilter::all();
    let mut telemetry_on = false;
    let mut telemetry_cfg = TelemetryConfig::default();
    let mut telemetry_out: Option<String> = None;
    let mut profile = false;
    let mut args = raw.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => budget = Budget::quick(),
            "--csv" => match args.next() {
                Some(dir) => csv_dir = Some(dir),
                None => return usage(),
            },
            "--trace" => match args.next() {
                Some(path) => trace_path = Some(path),
                None => return usage(),
            },
            "--trace-filter" => match args.next() {
                Some(spec) => match TraceFilter::parse(&spec) {
                    Ok(f) => filter = f,
                    Err(e) => {
                        eprintln!("bad --trace-filter: {e}");
                        return usage();
                    }
                },
                None => return usage(),
            },
            "--telemetry" => telemetry_on = true,
            "--profile" => profile = true,
            "--strict-invariants" => {
                telemetry_on = true;
                telemetry_cfg.strict = true;
            }
            "--telemetry-interval" => {
                telemetry_on = true;
                match args.next().and_then(|v| v.parse::<u64>().ok()) {
                    Some(ns) if ns > 0 => telemetry_cfg.interval = Nanos::from_nanos(ns),
                    _ => {
                        eprintln!("--telemetry-interval needs a positive nanosecond count");
                        return usage();
                    }
                }
            }
            "--telemetry-filter" => {
                telemetry_on = true;
                match args.next().map(|s| TelemetryFilter::parse(&s)) {
                    Some(Ok(f)) => {
                        let unknown = unknown_telemetry_prefixes(&f);
                        if !unknown.is_empty() {
                            eprintln!(
                                "--telemetry-filter: no known metrics under prefix(es): {}",
                                unknown.join(", ")
                            );
                            eprintln!("known metrics: {}", known_metrics().join(" "));
                            return ExitCode::FAILURE;
                        }
                        telemetry_cfg.filter = f;
                    }
                    Some(Err(e)) => {
                        eprintln!("bad --telemetry-filter: {e}");
                        return usage();
                    }
                    None => return usage(),
                }
            }
            "--telemetry-out" => {
                telemetry_on = true;
                match args.next() {
                    Some(dir) => telemetry_out = Some(dir),
                    None => return usage(),
                }
            }
            "--help" | "-h" => return usage(),
            name => targets.push(name.to_string()),
        }
    }
    let telemetry = telemetry_on.then_some(&telemetry_cfg);
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }
    targets = match resolve_targets(&targets) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if trace_path.is_some() {
        let traceable = targets
            .iter()
            .filter(|t| SCENARIOS.iter().any(|(n, _)| *n == t.as_str()))
            .count();
        if traceable != 1 {
            eprintln!("--trace needs exactly one scenario target (one output file)");
            return usage();
        }
    }
    for t in &targets {
        if let Some((name, make)) = SCENARIOS.iter().find(|(n, _)| n == t) {
            if let Err(e) = run_scenario(
                name,
                *make,
                &budget,
                trace_path.as_deref(),
                filter,
                telemetry,
                telemetry_out.as_deref(),
                profile,
            ) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
            continue;
        }
        let Some((_, f)) = FIGS.iter().find(|(n, _)| n == t) else {
            eprintln!("unknown target: {t}");
            return usage();
        };
        let started = std::time::Instant::now();
        let report = f(&budget);
        println!("{}", report.render());
        if let Some(dir) = &csv_dir {
            for (i, (caption, table)) in report.panels.iter().enumerate() {
                let path = format!("{dir}/{t}_{i}_{}.csv", sanitize(caption));
                if let Err(e) = std::fs::write(&path, table.to_csv()) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("[wrote {path}]");
            }
        }
        println!("[{} regenerated in {:.1?}]\n", t, started.elapsed());
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_target_is_an_error_even_with_all() {
        // The old expansion silently dropped unknown names whenever `all`
        // was present, exiting 0 without running them.
        let err = resolve_targets(&names(&["all", "fig99"])).unwrap_err();
        assert!(err.contains("fig99"), "{err}");
        assert!(err.contains("valid figures"), "{err}");
        let err = resolve_targets(&names(&["nope"])).unwrap_err();
        assert!(err.contains("nope"), "{err}");
    }

    #[test]
    fn all_expands_to_every_figure_keeping_scenarios() {
        let t = resolve_targets(&names(&["baseline", "all"])).unwrap();
        assert_eq!(t[0], "baseline");
        assert_eq!(t.len(), 1 + FIGS.len());
        assert!(t.iter().any(|x| x == "fig19"));
    }

    #[test]
    fn plain_targets_pass_through_in_order() {
        let t = resolve_targets(&names(&["fig3", "hostcc", "fig2"])).unwrap();
        assert_eq!(t, names(&["fig3", "hostcc", "fig2"]));
        assert!(resolve_targets(&[]).is_err());
    }

    #[test]
    fn build_spec_accepts_presets_and_axes() {
        assert_eq!(build_spec(&names(&["fig2"])).unwrap().cell_count(), 8);
        // A preset's axes can be overridden afterwards.
        let s = build_spec(&names(&["fig2", "degree=0,3"])).unwrap();
        assert_eq!(s.cell_count(), 4);
        // Pure axis specs start from the paper baseline.
        let s = build_spec(&names(&["hostcc=off,on", "mtu=1500,9000"])).unwrap();
        assert_eq!(s.name, "custom");
        assert_eq!(s.cell_count(), 4);
    }

    #[test]
    fn build_spec_rejects_bad_input() {
        assert!(build_spec(&[]).is_err());
        assert!(build_spec(&names(&["figZZ"]))
            .unwrap_err()
            .contains("valid presets"));
        assert!(build_spec(&names(&["fig2", "bogus=1"])).is_err());
        assert!(
            build_spec(&names(&["fig2", "baseline"])).is_err(),
            "preset after axes/preset"
        );
    }
}
