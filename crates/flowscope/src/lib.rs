//! Per-flow ledger and packet-lifecycle latency attribution.
//!
//! The paper's central claim is that congestion at the *host* (IIO/DDIO,
//! memory bandwidth, PCIe credits) inflates tail latency in ways
//! fabric-level metrics cannot see. This crate is the instrument that makes
//! the claim measurable inside the simulation: every data packet is stamped
//! at each stage boundary of its life — fabric queueing, link
//! serialization, switch residency, NIC SRAM, PCIe streaming, IIO/DMA,
//! stack delivery — and the residencies fold into per-stage histograms plus
//! an end-to-end latency ledger whose stage sums are conservation-checked
//! (exactly, in integer nanoseconds) against the measured end-to-end delay.
//!
//! Alongside the packet recorder runs a **flow ledger** keyed by flow id:
//! delivered bytes and goodput timelines, ECN marks (host echo vs switch),
//! retransmits, congestion-window samples, flow completion time, and the
//! derived Jain's fairness index plus a convergence-time detector.
//!
//! The whole pipeline hangs off a [`FlowscopeHandle`] that mirrors the
//! repo's `TraceHandle`/`PerfHandle` discipline: a disabled handle is a
//! `None` — every instrumentation call is one discriminant test, no
//! allocation, and a recorder-enabled run is bit-identical to a disabled
//! one (the recorder only ever *reads* model state).

#![forbid(unsafe_code)]

mod report;
mod scope;

use std::cell::RefCell;
use std::rc::Rc;

use hostcc_sim::Nanos;

pub use report::{FlowTableRow, FlowscopeResult, FlowscopeSummary, GroupScore};
pub use scope::{FlowScope, Stage, STAGE_COUNT};

/// Shared, cloneable access to one [`FlowScope`] — or a no-op.
///
/// Clones of one enabled handle all point at the same recorder, so the
/// fabric link, the receiver host, every transport flow and the ECN echo
/// stamp into a single ledger. The simulation is single-threaded, so this
/// is `Rc<RefCell<…>>`, not a lock.
#[derive(Clone, Default)]
pub struct FlowscopeHandle(Option<Rc<RefCell<FlowScope>>>);

impl std::fmt::Debug for FlowscopeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("FlowscopeHandle")
            .field(&if self.0.is_some() {
                "enabled"
            } else {
                "disabled"
            })
            .finish()
    }
}

impl FlowscopeHandle {
    /// A handle that records into `scope`.
    pub fn new(scope: FlowScope) -> Self {
        FlowscopeHandle(Some(Rc::new(RefCell::new(scope))))
    }

    /// The no-op handle: every method below is a single `Option` test.
    pub fn disabled() -> Self {
        FlowscopeHandle(None)
    }

    /// Whether a recorder is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Run `f` against the recorder, if enabled.
    #[inline]
    pub fn with<R>(&self, f: impl FnOnce(&FlowScope) -> R) -> Option<R> {
        self.0.as_ref().map(|s| f(&s.borrow()))
    }

    /// Run `f` against the recorder mutably, if enabled.
    #[inline]
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut FlowScope) -> R) -> Option<R> {
        self.0.as_ref().map(|s| f(&mut s.borrow_mut()))
    }

    /// Declare a flow before the run starts (greedy = NetApp-T bulk flow;
    /// non-greedy flows are excluded from fairness/convergence scoring).
    #[inline]
    pub fn register_flow(&self, flow: u32, greedy: bool) {
        if let Some(s) = &self.0 {
            s.borrow_mut().register_flow(flow, greedy);
        }
    }

    /// Declare a flow with its CC-group label (the protocol name) so the
    /// frozen result carries per-group ledger splits.
    #[inline]
    pub fn register_flow_grouped(&self, flow: u32, greedy: bool, group: &str) {
        if let Some(s) = &self.0 {
            s.borrow_mut().register_flow_grouped(flow, greedy, group);
        }
    }

    /// A data packet left the sender's transport (opens its life record;
    /// `at` is the packet's `sent_at`).
    #[inline]
    pub fn packet_sent(&self, id: u64, flow: u32, at: Nanos) {
        if let Some(s) = &self.0 {
            s.borrow_mut().packet_sent(id, flow, at);
        }
    }

    /// The packet crossed the boundary that *closes* `stage` at `at`.
    #[inline]
    pub fn boundary(&self, id: u64, stage: Stage, at: Nanos) {
        if let Some(s) = &self.0 {
            s.borrow_mut().boundary(id, stage, at);
        }
    }

    /// The packet was lost; its life record is retired unfinished.
    #[inline]
    pub fn packet_dropped(&self, id: u64, at: Nanos) {
        if let Some(s) = &self.0 {
            s.borrow_mut().packet_dropped(id, at);
        }
    }

    /// The packet cleared the receive stack at `at` (closes [`Stage::Stack`],
    /// folds the whole lifetime into the ledgers, conservation-checks the
    /// stage sums against the measured end-to-end delay).
    #[inline]
    pub fn delivered(&self, id: u64, payload_bytes: u64, at: Nanos) {
        if let Some(s) = &self.0 {
            s.borrow_mut().delivered(id, payload_bytes, at);
        }
    }

    /// A delivered data packet carried a CE mark (`host` = receiver echo,
    /// otherwise the switch AQM).
    #[inline]
    pub fn ecn_mark(&self, flow: u32, host: bool) {
        if let Some(s) = &self.0 {
            s.borrow_mut().ecn_mark(flow, host);
        }
    }

    /// The flow's transport emitted a retransmission.
    #[inline]
    pub fn retransmit(&self, flow: u32) {
        if let Some(s) = &self.0 {
            s.borrow_mut().retransmit(flow);
        }
    }

    /// The flow's congestion window changed.
    #[inline]
    pub fn cwnd_sample(&self, flow: u32, at: Nanos, cwnd_bytes: u64) {
        if let Some(s) = &self.0 {
            s.borrow_mut().cwnd_sample(flow, at, cwnd_bytes);
        }
    }

    /// Freeze the recorder into a result (None when disabled). `now` is the
    /// end of the measurement window.
    pub fn result(&self, now: Nanos) -> Option<FlowscopeResult> {
        self.0.as_ref().map(|s| s.borrow().freeze(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let h = FlowscopeHandle::disabled();
        assert!(!h.is_enabled());
        h.packet_sent(1, 0, Nanos::ZERO);
        h.boundary(1, Stage::FqQueue, Nanos::from_nanos(5));
        h.delivered(1, 100, Nanos::from_nanos(10));
        assert!(h.result(Nanos::from_nanos(10)).is_none());
        assert!(h.with(|_| ()).is_none());
    }

    #[test]
    fn clones_share_one_recorder() {
        let h = FlowscopeHandle::new(FlowScope::new());
        let h2 = h.clone();
        h.register_flow(0, true);
        h.packet_sent(1, 0, Nanos::ZERO);
        h2.delivered(1, 100, Nanos::from_nanos(10));
        let r = h.result(Nanos::from_nanos(10)).unwrap();
        assert_eq!(r.summary.completed, 1);
    }
}
