//! The recorder: per-packet lifecycle stamps and the per-flow ledger.

use std::collections::{BTreeMap, HashMap};

use hostcc_metrics::Histogram;
use hostcc_sim::Nanos;

use crate::report::{FlowTableRow, FlowscopeResult, FlowscopeSummary};

/// Number of lifecycle stages.
pub const STAGE_COUNT: usize = 10;

/// Goodput-timeline bucket width (also the convergence detector's grid).
pub(crate) const TIMELINE_BUCKET: Nanos = Nanos::from_micros(100);

/// Convergence dwell: all active greedy flows must stay within ±10 % of
/// fair share for this many consecutive timeline buckets.
pub(crate) const DWELL_BUCKETS: usize = 5;

/// One stage of a data packet's life, named by the boundary that *closes*
/// it. Stages telescope: each boundary stamp closes the previous stage and
/// opens the next, so per-packet stage residencies sum to the end-to-end
/// delay exactly (integer nanoseconds) — the conservation check is a
/// recorder-integrity check, not an approximation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Stage {
    /// `sent_at` → sender-NIC fq enqueue (nonzero only behind a TX host).
    TxDma = 0,
    /// fq enqueue → serialization start (sender-side queueing).
    FqQueue = 1,
    /// Serialization start → last bit on the wire.
    Serialize = 2,
    /// Sender link propagation (constant).
    PropToSwitch = 3,
    /// Switch ingress → switch egress (queueing + switch serialization).
    SwitchQueue = 4,
    /// Switch-to-host link propagation (constant).
    PropToHost = 5,
    /// NIC SRAM residency: wire arrival → DMA initiation.
    NicRing = 6,
    /// DMA initiation → last byte streamed onto the PCIe.
    PcieStream = 7,
    /// PCIe wire + IIO occupancy + admission to memory → delivery.
    IioDma = 8,
    /// Receive-stack traversal (constant `rx_stack_delay`).
    Stack = 9,
}

impl Stage {
    /// All stages, in lifecycle order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::TxDma,
        Stage::FqQueue,
        Stage::Serialize,
        Stage::PropToSwitch,
        Stage::SwitchQueue,
        Stage::PropToHost,
        Stage::NicRing,
        Stage::PcieStream,
        Stage::IioDma,
        Stage::Stack,
    ];

    /// Short identifier used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Stage::TxDma => "tx_dma",
            Stage::FqQueue => "fq_queue",
            Stage::Serialize => "serialize",
            Stage::PropToSwitch => "prop_to_switch",
            Stage::SwitchQueue => "switch_queue",
            Stage::PropToHost => "prop_to_host",
            Stage::NicRing => "nic_ring",
            Stage::PcieStream => "pcie_stream",
            Stage::IioDma => "iio_dma",
            Stage::Stack => "stack",
        }
    }
}

/// An in-flight packet's life record. Residencies accumulate here and fold
/// into the histograms only at delivery, all-or-nothing, so the report's
/// per-stage sums equal its end-to-end sum exactly even when a packet's
/// life straddles the warm-up/measurement window reset.
#[derive(Debug, Clone)]
struct PacketLife {
    flow: u32,
    sent_at: Nanos,
    /// The last boundary crossed (stage residencies are `at - last`).
    last: Nanos,
    /// Highest stage index closed so far + 1 (0 = none).
    reached: u8,
    stage_ns: [u64; STAGE_COUNT],
}

/// Per-flow scoreboard.
#[derive(Debug, Clone, Default)]
struct FlowState {
    greedy: bool,
    /// CC-group label (protocol name) for heterogeneous-mix splits.
    group: Option<String>,
    first_sent_at: Option<Nanos>,
    last_delivered_at: Option<Nanos>,
    delivered_bytes: u64,
    delivered_packets: u64,
    drops: u64,
    ecn_host: u64,
    ecn_fabric: u64,
    retransmits: u64,
    cwnd_last: u64,
    cwnd_min: u64,
    cwnd_max: u64,
    cwnd_samples: u64,
    /// Delivered payload bytes per [`TIMELINE_BUCKET`] since window start.
    timeline: Vec<u64>,
}

/// The flowscope recorder: packet-lifecycle stamps plus the flow ledger.
///
/// All methods only *read* simulation time and ids handed to them — the
/// recorder never touches model state or RNG streams, which is what makes
/// a recorder-on run bit-identical to a recorder-off run.
#[derive(Debug)]
pub struct FlowScope {
    live: HashMap<u64, PacketLife>,
    flows: Vec<FlowState>,
    stage_hist: [Histogram; STAGE_COUNT],
    stage_total_ns: [u64; STAGE_COUNT],
    e2e_hist: Histogram,
    e2e_total_ns: u64,
    completed: u64,
    conservation_failures: u64,
    /// Dropped packets, indexed by how many stages they had closed.
    drops_after_stage: [u64; STAGE_COUNT + 1],
    dropped: u64,
    /// Stamps for ids with no open life record (recorder-integrity signal).
    orphan_stamps: u64,
    window_start: Nanos,
}

impl Default for FlowScope {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowScope {
    /// An empty recorder.
    pub fn new() -> Self {
        FlowScope {
            live: HashMap::new(),
            flows: Vec::new(),
            stage_hist: std::array::from_fn(|_| Histogram::new()),
            stage_total_ns: [0; STAGE_COUNT],
            e2e_hist: Histogram::new(),
            e2e_total_ns: 0,
            completed: 0,
            conservation_failures: 0,
            drops_after_stage: [0; STAGE_COUNT + 1],
            dropped: 0,
            orphan_stamps: 0,
            window_start: Nanos::ZERO,
        }
    }

    fn flow_mut(&mut self, flow: u32) -> &mut FlowState {
        let idx = flow as usize;
        if idx >= self.flows.len() {
            self.flows.resize_with(idx + 1, FlowState::default);
        }
        &mut self.flows[idx]
    }

    /// Declare a flow's class before the run.
    pub fn register_flow(&mut self, flow: u32, greedy: bool) {
        self.flow_mut(flow).greedy = greedy;
    }

    /// Declare a flow's class *and* its CC-group label (the protocol
    /// name). Grouped flows additionally fold into per-group ledger
    /// splits — goodput, fairness and loss per protocol — which is how
    /// heterogeneous-CC mixes are scored (who starves whom).
    pub fn register_flow_grouped(&mut self, flow: u32, greedy: bool, group: &str) {
        let fl = self.flow_mut(flow);
        fl.greedy = greedy;
        fl.group = Some(group.to_string());
    }

    /// Open a life record (see [`FlowscopeHandle::packet_sent`]).
    ///
    /// [`FlowscopeHandle::packet_sent`]: crate::FlowscopeHandle::packet_sent
    pub fn packet_sent(&mut self, id: u64, flow: u32, at: Nanos) {
        let fl = self.flow_mut(flow);
        if fl.first_sent_at.is_none() {
            fl.first_sent_at = Some(at);
        }
        self.live.insert(
            id,
            PacketLife {
                flow,
                sent_at: at,
                last: at,
                reached: 0,
                stage_ns: [0; STAGE_COUNT],
            },
        );
    }

    /// Close `stage` for packet `id` at `at`.
    pub fn boundary(&mut self, id: u64, stage: Stage, at: Nanos) {
        let Some(life) = self.live.get_mut(&id) else {
            self.orphan_stamps += 1;
            return;
        };
        life.stage_ns[stage as usize] += at.saturating_sub(life.last).as_nanos();
        life.last = life.last.max(at);
        life.reached = life.reached.max(stage as u8 + 1);
    }

    /// Retire a lost packet's record.
    pub fn packet_dropped(&mut self, id: u64, _at: Nanos) {
        let Some(life) = self.live.remove(&id) else {
            self.orphan_stamps += 1;
            return;
        };
        self.dropped += 1;
        self.drops_after_stage[life.reached as usize] += 1;
        self.flow_mut(life.flow).drops += 1;
    }

    /// Close [`Stage::Stack`] and fold the completed life into the ledgers.
    pub fn delivered(&mut self, id: u64, payload_bytes: u64, at: Nanos) {
        let Some(mut life) = self.live.remove(&id) else {
            self.orphan_stamps += 1;
            return;
        };
        life.stage_ns[Stage::Stack as usize] += at.saturating_sub(life.last).as_nanos();
        let e2e = at.saturating_sub(life.sent_at).as_nanos();
        let sum: u64 = life.stage_ns.iter().sum();
        if sum != e2e {
            self.conservation_failures += 1;
        }
        for (i, &ns) in life.stage_ns.iter().enumerate() {
            self.stage_hist[i].record(Nanos::from_nanos(ns));
            self.stage_total_ns[i] += ns;
        }
        self.e2e_hist.record(Nanos::from_nanos(e2e));
        self.e2e_total_ns += e2e;
        self.completed += 1;

        let bucket_idx =
            (at.saturating_sub(self.window_start).as_nanos() / TIMELINE_BUCKET.as_nanos()) as usize;
        let fl = self.flow_mut(life.flow);
        fl.delivered_bytes += payload_bytes;
        fl.delivered_packets += 1;
        fl.last_delivered_at = Some(at);
        if bucket_idx >= fl.timeline.len() {
            fl.timeline.resize(bucket_idx + 1, 0);
        }
        fl.timeline[bucket_idx] += payload_bytes;
    }

    /// Count a CE mark seen by the receiver on a delivered data packet.
    pub fn ecn_mark(&mut self, flow: u32, host: bool) {
        let fl = self.flow_mut(flow);
        if host {
            fl.ecn_host += 1;
        } else {
            fl.ecn_fabric += 1;
        }
    }

    /// Count a retransmission emitted by the flow's transport.
    pub fn retransmit(&mut self, flow: u32) {
        self.flow_mut(flow).retransmits += 1;
    }

    /// Record a congestion-window change.
    pub fn cwnd_sample(&mut self, flow: u32, _at: Nanos, cwnd_bytes: u64) {
        let fl = self.flow_mut(flow);
        if fl.cwnd_samples == 0 {
            fl.cwnd_min = cwnd_bytes;
            fl.cwnd_max = cwnd_bytes;
        } else {
            fl.cwnd_min = fl.cwnd_min.min(cwnd_bytes);
            fl.cwnd_max = fl.cwnd_max.max(cwnd_bytes);
        }
        fl.cwnd_last = cwnd_bytes;
        fl.cwnd_samples += 1;
    }

    /// Reset all window accounting at `now` (end of warm-up). In-flight
    /// life records persist — their full lifetimes fold into the ledgers
    /// at delivery, keeping the conservation identity exact across the
    /// reset.
    pub fn reset_window(&mut self, now: Nanos) {
        self.window_start = now;
        for h in &mut self.stage_hist {
            h.clear();
        }
        self.stage_total_ns = [0; STAGE_COUNT];
        self.e2e_hist.clear();
        self.e2e_total_ns = 0;
        self.completed = 0;
        self.conservation_failures = 0;
        self.drops_after_stage = [0; STAGE_COUNT + 1];
        self.dropped = 0;
        self.orphan_stamps = 0;
        for fl in &mut self.flows {
            fl.delivered_bytes = 0;
            fl.delivered_packets = 0;
            fl.drops = 0;
            fl.ecn_host = 0;
            fl.ecn_fabric = 0;
            fl.retransmits = 0;
            fl.cwnd_samples = 0;
            fl.timeline.clear();
        }
    }

    /// Jain's fairness index over the greedy flows' window goodput:
    /// `(Σx)² / (n·Σx²)`, 1.0 for perfect fairness, `1/n` for one hog.
    /// Flows that never sent are excluded; an empty set scores 1.0.
    pub fn jain_index(&self) -> f64 {
        let xs: Vec<f64> = self
            .flows
            .iter()
            .filter(|f| f.greedy && f.first_sent_at.is_some())
            .map(|f| f.delivered_bytes as f64)
            .collect();
        jain(&xs)
    }

    /// The convergence instant: the earliest time by which every active
    /// greedy flow has stayed within ±10 % of the bucket's fair share for
    /// `DWELL_BUCKETS` (5) consecutive timeline buckets. `None` when the
    /// flows never settle (or fewer than two greedy flows exist).
    pub fn convergence_ns(&self, now: Nanos) -> Option<u64> {
        let greedy: Vec<&FlowState> = self
            .flows
            .iter()
            .filter(|f| f.greedy && f.first_sent_at.is_some())
            .collect();
        if greedy.len() < 2 {
            return None;
        }
        let n_buckets = (now.saturating_sub(self.window_start).as_nanos()
            / TIMELINE_BUCKET.as_nanos()) as usize;
        let mut run = 0usize;
        for b in 0..n_buckets {
            let rates: Vec<f64> = greedy
                .iter()
                .map(|f| f.timeline.get(b).copied().unwrap_or(0) as f64)
                .collect();
            let fair = rates.iter().sum::<f64>() / rates.len() as f64;
            let ok = fair > 0.0 && rates.iter().all(|&r| (r - fair).abs() <= 0.10 * fair);
            run = if ok { run + 1 } else { 0 };
            if run >= DWELL_BUCKETS {
                let t = self.window_start + TIMELINE_BUCKET.scale((b + 1) as f64);
                return Some(t.as_nanos());
            }
        }
        None
    }

    /// Freeze into a result; `now` ends the measurement window.
    pub fn freeze(&self, now: Nanos) -> FlowscopeResult {
        let window = now.saturating_sub(self.window_start);
        let wns = window.as_nanos() as f64;
        let mut fct_hist = Histogram::new();
        let mut flows = Vec::new();
        for (i, fl) in self.flows.iter().enumerate() {
            if fl.first_sent_at.is_none() {
                continue;
            }
            let fct_ns = match (fl.first_sent_at, fl.last_delivered_at) {
                (Some(s), Some(d)) => Some(d.saturating_sub(s).as_nanos()),
                _ => None,
            };
            if let Some(f) = fct_ns {
                fct_hist.record(Nanos::from_nanos(f));
            }
            flows.push(FlowTableRow {
                flow: i as u32,
                greedy: fl.greedy,
                fct_ns,
                delivered_bytes: fl.delivered_bytes,
                delivered_packets: fl.delivered_packets,
                goodput_gbps: if wns > 0.0 {
                    fl.delivered_bytes as f64 * 8.0 / wns
                } else {
                    0.0
                },
                drops: fl.drops,
                ecn_host: fl.ecn_host,
                ecn_fabric: fl.ecn_fabric,
                retransmits: fl.retransmits,
                cwnd_last: fl.cwnd_last,
                cwnd_min: fl.cwnd_min,
                cwnd_max: fl.cwnd_max,
                cwnd_samples: fl.cwnd_samples,
            });
        }
        // Per-CC-group ledger splits: greedy flows that registered with a
        // group label, keyed by label in sorted order (deterministic).
        let mut by_group: BTreeMap<&str, Vec<&FlowState>> = BTreeMap::new();
        for fl in &self.flows {
            if let Some(g) = &fl.group {
                if fl.greedy && fl.first_sent_at.is_some() {
                    by_group.entry(g).or_default().push(fl);
                }
            }
        }
        let groups: Vec<crate::report::GroupScore> = by_group
            .into_iter()
            .map(|(name, members)| {
                let xs: Vec<f64> = members.iter().map(|f| f.delivered_bytes as f64).collect();
                crate::report::GroupScore {
                    group: name.to_string(),
                    flows: members.len() as u64,
                    delivered_bytes: members.iter().map(|f| f.delivered_bytes).sum(),
                    goodput_gbps: if wns > 0.0 {
                        members.iter().map(|f| f.delivered_bytes).sum::<u64>() as f64 * 8.0 / wns
                    } else {
                        0.0
                    },
                    jain: jain(&xs),
                    drops: members.iter().map(|f| f.drops).sum(),
                    retransmits: members.iter().map(|f| f.retransmits).sum(),
                }
            })
            .collect();
        let summary = FlowscopeSummary {
            stage_hist: self.stage_hist.clone(),
            stage_total_ns: self.stage_total_ns,
            e2e_hist: self.e2e_hist.clone(),
            e2e_total_ns: self.e2e_total_ns,
            fct_hist,
            completed: self.completed,
            conservation_failures: self.conservation_failures,
            dropped: self.dropped,
            ecn_host: self.flows.iter().map(|f| f.ecn_host).sum(),
            ecn_fabric: self.flows.iter().map(|f| f.ecn_fabric).sum(),
            retransmits: self.flows.iter().map(|f| f.retransmits).sum(),
            flows: flows.len() as u64,
        };
        FlowscopeResult {
            summary,
            flows,
            groups,
            jain: self.jain_index(),
            convergence_ns: self.convergence_ns(now),
            window,
            drops_after_stage: self.drops_after_stage,
            orphan_stamps: self.orphan_stamps,
            in_flight: self.live.len() as u64,
        }
    }
}

/// Jain's fairness index of a sample set (1.0 when empty or all-zero: a
/// degenerate allocation is vacuously fair).
pub(crate) fn jain(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n * sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> Nanos {
        Nanos::from_nanos(v)
    }

    /// Walk one packet through every boundary with known residencies.
    fn walk(fs: &mut FlowScope, id: u64, flow: u32, start: u64, step: u64) -> u64 {
        fs.packet_sent(id, flow, ns(start));
        let mut t = start;
        for s in Stage::ALL.iter().take(STAGE_COUNT - 1) {
            t += step;
            fs.boundary(id, *s, ns(t));
        }
        t += step;
        fs.delivered(id, 4030, ns(t));
        t - start
    }

    #[test]
    fn telescoping_stages_sum_to_e2e_exactly() {
        let mut fs = FlowScope::new();
        fs.register_flow(0, true);
        let e2e = walk(&mut fs, 1, 0, 100, 37);
        assert_eq!(e2e, 370);
        assert_eq!(fs.completed, 1);
        assert_eq!(fs.conservation_failures, 0);
        assert_eq!(fs.stage_total_ns.iter().sum::<u64>(), fs.e2e_total_ns);
        assert_eq!(fs.e2e_total_ns, 370);
        for (i, &t) in fs.stage_total_ns.iter().enumerate() {
            assert_eq!(t, 37, "stage {} residency", Stage::ALL[i].name());
        }
    }

    #[test]
    fn skipped_boundary_folds_into_the_next_stage() {
        // A packet that only stamps a few boundaries still conserves: the
        // missing residencies land in the next closed stage.
        let mut fs = FlowScope::new();
        fs.packet_sent(7, 0, ns(0));
        fs.boundary(7, Stage::SwitchQueue, ns(500));
        fs.delivered(7, 100, ns(800));
        assert_eq!(fs.conservation_failures, 0);
        assert_eq!(fs.stage_total_ns[Stage::SwitchQueue as usize], 500);
        assert_eq!(fs.stage_total_ns[Stage::Stack as usize], 300);
        assert_eq!(fs.e2e_total_ns, 800);
    }

    #[test]
    fn non_monotone_stamp_is_flagged() {
        let mut fs = FlowScope::new();
        fs.packet_sent(1, 0, ns(1000));
        fs.boundary(1, Stage::FqQueue, ns(1100));
        // A stamp in the past contributes zero residency → sum < e2e.
        fs.boundary(1, Stage::Serialize, ns(900));
        fs.delivered(1, 100, ns(1100));
        assert_eq!(fs.conservation_failures, 0, "ends at last max, still exact");
        fs.packet_sent(2, 0, ns(2000));
        fs.boundary(2, Stage::FqQueue, ns(1500)); // before sent_at
        fs.delivered(2, 100, ns(2500));
        assert_eq!(fs.completed, 2);
    }

    #[test]
    fn drops_retire_records_by_depth() {
        let mut fs = FlowScope::new();
        fs.packet_sent(1, 3, ns(0));
        fs.packet_dropped(1, ns(10));
        fs.packet_sent(2, 3, ns(0));
        fs.boundary(2, Stage::TxDma, ns(1));
        fs.boundary(2, Stage::FqQueue, ns(2));
        fs.packet_dropped(2, ns(10));
        assert_eq!(fs.dropped, 2);
        assert_eq!(fs.drops_after_stage[0], 1);
        assert_eq!(fs.drops_after_stage[2], 1);
        assert_eq!(fs.completed, 0);
        let r = fs.freeze(ns(100));
        assert_eq!(r.flows[0].flow, 3);
        assert_eq!(r.flows[0].drops, 2);
    }

    #[test]
    fn orphan_stamps_are_counted_not_panicked() {
        let mut fs = FlowScope::new();
        fs.boundary(99, Stage::FqQueue, ns(5));
        fs.packet_dropped(98, ns(5));
        fs.delivered(97, 10, ns(5));
        assert_eq!(fs.orphan_stamps, 3);
    }

    #[test]
    fn window_reset_keeps_in_flight_lifetimes_exact() {
        let mut fs = FlowScope::new();
        fs.packet_sent(1, 0, ns(100));
        fs.boundary(1, Stage::FqQueue, ns(200));
        fs.reset_window(ns(250));
        fs.boundary(1, Stage::Serialize, ns(300));
        fs.delivered(1, 4030, ns(400));
        assert_eq!(fs.completed, 1);
        assert_eq!(fs.conservation_failures, 0);
        // Full lifetime (300 ns) folded post-reset, not just the tail.
        assert_eq!(fs.e2e_total_ns, 300);
        assert_eq!(fs.stage_total_ns.iter().sum::<u64>(), 300);
    }

    #[test]
    fn jain_index_math() {
        assert_eq!(jain(&[]), 1.0);
        assert_eq!(jain(&[0.0, 0.0]), 1.0);
        assert_eq!(jain(&[5.0, 5.0, 5.0, 5.0]), 1.0);
        let one_hog = jain(&[10.0, 0.0, 0.0, 0.0]);
        assert!((one_hog - 0.25).abs() < 1e-12, "1/n for one hog: {one_hog}");
        let mild = jain(&[4.0, 6.0]);
        assert!((0.9..1.0).contains(&mild), "{mild}");
    }

    #[test]
    fn convergence_detector_finds_the_settle_point() {
        let mut fs = FlowScope::new();
        fs.register_flow(0, true);
        fs.register_flow(1, true);
        fs.reset_window(ns(0));
        let b = TIMELINE_BUCKET.as_nanos();
        // Two flows: wildly unfair for 3 buckets, then even for 8 buckets.
        let mut id = 0;
        for bucket in 0..11u64 {
            let (a_bytes, b_bytes) = if bucket < 3 {
                (9000, 1000)
            } else {
                (5000, 5000)
            };
            for (flow, bytes) in [(0u32, a_bytes), (1u32, b_bytes)] {
                id += 1;
                let t = ns(bucket * b + 10);
                fs.packet_sent(id, flow, t);
                fs.delivered(id, bytes, t);
            }
        }
        let conv = fs.convergence_ns(ns(11 * b)).expect("must converge");
        // Fair from bucket 3; dwell of 5 ends after bucket 7 → t = 8 buckets.
        assert_eq!(conv, 8 * b);
        assert!(fs.convergence_ns(ns(3 * b)).is_none(), "too early to tell");
        // A single flow can't converge by definition.
        let mut solo = FlowScope::new();
        solo.register_flow(0, true);
        solo.packet_sent(1, 0, ns(5));
        solo.delivered(1, 100, ns(6));
        assert!(solo.convergence_ns(ns(10 * b)).is_none());
    }

    #[test]
    fn grouped_flows_split_into_per_cc_ledgers() {
        let mut fs = FlowScope::new();
        fs.register_flow_grouped(0, true, "dctcp");
        fs.register_flow_grouped(1, true, "dctcp");
        fs.register_flow_grouped(2, true, "cubic");
        fs.register_flow(3, false); // ungrouped RPC flow: no split
        fs.reset_window(ns(0));
        for (id, flow, bytes) in [
            (1u64, 0u32, 8000u64),
            (2, 1, 8000),
            (3, 2, 2000),
            (4, 3, 500),
        ] {
            fs.packet_sent(id, flow, ns(10));
            fs.delivered(id, bytes, ns(20));
        }
        fs.retransmit(2);
        let r = fs.freeze(ns(1_000_000));
        assert_eq!(r.groups.len(), 2, "sorted by label: cubic, dctcp");
        assert_eq!(r.groups[0].group, "cubic");
        assert_eq!(r.groups[0].flows, 1);
        assert_eq!(r.groups[0].delivered_bytes, 2000);
        assert_eq!(r.groups[0].retransmits, 1);
        assert_eq!(r.groups[1].group, "dctcp");
        assert_eq!(r.groups[1].flows, 2);
        assert_eq!(r.groups[1].delivered_bytes, 16_000);
        assert_eq!(r.groups[1].jain, 1.0, "equal split within the group");
        // Group splits are part of the fingerprint and the JSON schema.
        let mut ungrouped = FlowScope::new();
        for f in 0..4 {
            ungrouped.register_flow(f, f < 3);
        }
        ungrouped.reset_window(ns(0));
        for (id, flow, bytes) in [
            (1u64, 0u32, 8000u64),
            (2, 1, 8000),
            (3, 2, 2000),
            (4, 3, 500),
        ] {
            ungrouped.packet_sent(id, flow, ns(10));
            ungrouped.delivered(id, bytes, ns(20));
        }
        ungrouped.retransmit(2);
        let u = ungrouped.freeze(ns(1_000_000));
        assert!(u.groups.is_empty());
        assert_ne!(r.fingerprint(), u.fingerprint());
        assert!(r.to_json().contains("\"groups\":[{\"group\":\"cubic\""));
    }

    #[test]
    fn cwnd_and_marks_land_in_the_flow_table() {
        let mut fs = FlowScope::new();
        fs.register_flow(0, true);
        fs.packet_sent(1, 0, ns(0));
        fs.delivered(1, 1000, ns(50));
        fs.cwnd_sample(0, ns(10), 30_000);
        fs.cwnd_sample(0, ns(20), 60_000);
        fs.cwnd_sample(0, ns(30), 45_000);
        fs.ecn_mark(0, true);
        fs.ecn_mark(0, false);
        fs.retransmit(0);
        let r = fs.freeze(ns(100));
        let row = &r.flows[0];
        assert_eq!(row.cwnd_min, 30_000);
        assert_eq!(row.cwnd_max, 60_000);
        assert_eq!(row.cwnd_last, 45_000);
        assert_eq!(row.cwnd_samples, 3);
        assert_eq!(row.ecn_host, 1);
        assert_eq!(row.ecn_fabric, 1);
        assert_eq!(row.retransmits, 1);
        assert_eq!(row.fct_ns, Some(50));
        assert_eq!(r.summary.retransmits, 1);
    }
}
