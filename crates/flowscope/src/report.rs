//! Frozen flowscope results: the mergeable summary, the flow table, and
//! their deterministic JSON/CSV/fingerprint encodings.

use hostcc_metrics::Histogram;
use hostcc_sim::Nanos;

use crate::scope::{Stage, STAGE_COUNT};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a(h: &mut u64, v: u64) {
    for byte in v.to_le_bytes() {
        *h = (*h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
}

/// JSON-safe float rendering (non-finite values become `null`).
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn jopt(v: Option<u64>) -> String {
    v.map_or("null".to_string(), |n| n.to_string())
}

/// The packet-lifecycle side of a frozen flowscope window: per-stage and
/// end-to-end ledgers plus run counters. Merges commutatively (histograms
/// and exact totals both add), mirroring `TelemetrySummary`, so sweep
/// workers can fold per-cell summaries in any join order.
#[derive(Debug, Clone)]
pub struct FlowscopeSummary {
    /// Per-stage residency histograms, indexed by [`Stage`] discriminant.
    pub stage_hist: [Histogram; STAGE_COUNT],
    /// Exact per-stage residency sums in nanoseconds. Their grand total
    /// equals [`FlowscopeSummary::e2e_total_ns`] exactly — the
    /// conservation identity the recorder is checked against.
    pub stage_total_ns: [u64; STAGE_COUNT],
    /// End-to-end (sent → stack-delivered) latency histogram.
    pub e2e_hist: Histogram,
    /// Exact end-to-end latency sum in nanoseconds.
    pub e2e_total_ns: u64,
    /// Flow-completion-time histogram (one sample per flow that delivered).
    pub fct_hist: Histogram,
    /// Data packets delivered in the window.
    pub completed: u64,
    /// Deliveries whose stage sums missed the end-to-end delay (recorder
    /// bugs; must be zero).
    pub conservation_failures: u64,
    /// Data packets dropped in the window.
    pub dropped: u64,
    /// CE marks applied by the receiver-host echo, summed over flows.
    pub ecn_host: u64,
    /// CE marks applied by the switch AQM, summed over flows.
    pub ecn_fabric: u64,
    /// Retransmissions emitted, summed over flows.
    pub retransmits: u64,
    /// Flows that sent at least one packet.
    pub flows: u64,
}

impl Default for FlowscopeSummary {
    fn default() -> Self {
        FlowscopeSummary {
            stage_hist: std::array::from_fn(|_| Histogram::new()),
            stage_total_ns: [0; STAGE_COUNT],
            e2e_hist: Histogram::new(),
            e2e_total_ns: 0,
            fct_hist: Histogram::new(),
            completed: 0,
            conservation_failures: 0,
            dropped: 0,
            ecn_host: 0,
            ecn_fabric: 0,
            retransmits: 0,
            flows: 0,
        }
    }
}

impl FlowscopeSummary {
    /// Merge another summary into this one — commutative and associative
    /// with the default summary as identity.
    pub fn merge(&mut self, other: &FlowscopeSummary) {
        for (h, o) in self.stage_hist.iter_mut().zip(&other.stage_hist) {
            h.merge(o);
        }
        for (t, o) in self.stage_total_ns.iter_mut().zip(&other.stage_total_ns) {
            *t += o;
        }
        self.e2e_hist.merge(&other.e2e_hist);
        self.e2e_total_ns += other.e2e_total_ns;
        self.fct_hist.merge(&other.fct_hist);
        self.completed += other.completed;
        self.conservation_failures += other.conservation_failures;
        self.dropped += other.dropped;
        self.ecn_host += other.ecn_host;
        self.ecn_fabric += other.ecn_fabric;
        self.retransmits += other.retransmits;
        self.flows += other.flows;
    }

    /// FNV-1a fingerprint over the integer ledgers (exact sums, counts,
    /// min/max) — bit-identical across worker counts and join orders.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for (hist, &total) in self.stage_hist.iter().zip(&self.stage_total_ns) {
            fnv1a(&mut h, hist.count());
            fnv1a(&mut h, total);
            fnv1a(&mut h, hist.min().map_or(u64::MAX, Nanos::as_nanos));
            fnv1a(&mut h, hist.max().map_or(0, Nanos::as_nanos));
        }
        fnv1a(&mut h, self.e2e_hist.count());
        fnv1a(&mut h, self.e2e_total_ns);
        fnv1a(
            &mut h,
            self.e2e_hist.min().map_or(u64::MAX, Nanos::as_nanos),
        );
        fnv1a(&mut h, self.e2e_hist.max().map_or(0, Nanos::as_nanos));
        fnv1a(&mut h, self.fct_hist.count());
        fnv1a(
            &mut h,
            self.fct_hist.min().map_or(u64::MAX, Nanos::as_nanos),
        );
        fnv1a(&mut h, self.fct_hist.max().map_or(0, Nanos::as_nanos));
        fnv1a(&mut h, self.completed);
        fnv1a(&mut h, self.conservation_failures);
        fnv1a(&mut h, self.dropped);
        fnv1a(&mut h, self.ecn_host);
        fnv1a(&mut h, self.ecn_fabric);
        fnv1a(&mut h, self.retransmits);
        fnv1a(&mut h, self.flows);
        h
    }

    /// Grand total of the per-stage sums. Equal to
    /// [`FlowscopeSummary::e2e_total_ns`] when conservation holds.
    pub fn stage_grand_total_ns(&self) -> u64 {
        self.stage_total_ns.iter().sum()
    }
}

/// One flow's row in the flow table.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowTableRow {
    /// Flow id.
    pub flow: u32,
    /// Whether the flow is a greedy (bulk NetApp-T) flow; non-greedy flows
    /// are excluded from fairness and convergence scoring.
    pub greedy: bool,
    /// Flow completion time: first send → last delivery (None when the
    /// flow never delivered).
    pub fct_ns: Option<u64>,
    /// Payload bytes delivered in the window.
    pub delivered_bytes: u64,
    /// Data packets delivered in the window.
    pub delivered_packets: u64,
    /// Window goodput in Gbit/s.
    pub goodput_gbps: f64,
    /// Packets of this flow dropped in the window.
    pub drops: u64,
    /// CE marks applied by the receiver-host echo.
    pub ecn_host: u64,
    /// CE marks applied by the switch AQM.
    pub ecn_fabric: u64,
    /// Retransmissions emitted.
    pub retransmits: u64,
    /// Most recent congestion-window sample in bytes.
    pub cwnd_last: u64,
    /// Smallest window-sample (0 when never sampled).
    pub cwnd_min: u64,
    /// Largest window-sample.
    pub cwnd_max: u64,
    /// Number of cwnd samples taken.
    pub cwnd_samples: u64,
}

impl FlowTableRow {
    fn fold(&self, h: &mut u64) {
        fnv1a(h, u64::from(self.flow));
        fnv1a(h, u64::from(self.greedy));
        fnv1a(h, self.fct_ns.unwrap_or(u64::MAX));
        fnv1a(h, self.delivered_bytes);
        fnv1a(h, self.delivered_packets);
        fnv1a(h, self.drops);
        fnv1a(h, self.ecn_host);
        fnv1a(h, self.ecn_fabric);
        fnv1a(h, self.retransmits);
        fnv1a(h, self.cwnd_last);
        fnv1a(h, self.cwnd_min);
        fnv1a(h, self.cwnd_max);
        fnv1a(h, self.cwnd_samples);
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"flow\":{},\"greedy\":{},\"fct_ns\":{},\"delivered_bytes\":{},\
             \"delivered_packets\":{},\"goodput_gbps\":{},\"drops\":{},\
             \"ecn_host\":{},\"ecn_fabric\":{},\"retransmits\":{},\
             \"cwnd_last\":{},\"cwnd_min\":{},\"cwnd_max\":{},\"cwnd_samples\":{}}}",
            self.flow,
            self.greedy,
            jopt(self.fct_ns),
            self.delivered_bytes,
            self.delivered_packets,
            jf(self.goodput_gbps),
            self.drops,
            self.ecn_host,
            self.ecn_fabric,
            self.retransmits,
            self.cwnd_last,
            self.cwnd_min,
            self.cwnd_max,
            self.cwnd_samples,
        )
    }
}

/// Aggregate ledger for one CC group of a heterogeneous mix: the greedy
/// flows that registered under one protocol label (see
/// `FlowScope::register_flow_grouped`). Fairness is Jain's index *within*
/// the group, so a starved-but-internally-fair victim class still scores
/// high here — the cross-group comparison happens in the leaderboard.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupScore {
    /// The group's protocol label (e.g. `dctcp`).
    pub group: String,
    /// Greedy flows in the group that sent at least one packet.
    pub flows: u64,
    /// Payload bytes the group delivered in the window.
    pub delivered_bytes: u64,
    /// Aggregate window goodput in Gbit/s.
    pub goodput_gbps: f64,
    /// Jain's fairness index within the group.
    pub jain: f64,
    /// Packets of the group dropped in the window.
    pub drops: u64,
    /// Retransmissions the group emitted.
    pub retransmits: u64,
}

impl GroupScore {
    fn fold(&self, h: &mut u64) {
        for b in self.group.bytes() {
            *h = (*h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        fnv1a(h, self.flows);
        fnv1a(h, self.delivered_bytes);
        fnv1a(h, self.jain.to_bits());
        fnv1a(h, self.drops);
        fnv1a(h, self.retransmits);
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"group\":\"{}\",\"flows\":{},\"delivered_bytes\":{},\
             \"goodput_gbps\":{},\"jain\":{},\"drops\":{},\"retransmits\":{}}}",
            self.group,
            self.flows,
            self.delivered_bytes,
            jf(self.goodput_gbps),
            jf(self.jain),
            self.drops,
            self.retransmits,
        )
    }
}

/// CSV header matching [`FlowscopeResult::flow_csv`].
pub const FLOW_CSV_HEADER: &str = "flow,greedy,fct_ns,delivered_bytes,delivered_packets,\
goodput_gbps,drops,ecn_host,ecn_fabric,retransmits,cwnd_last,cwnd_min,cwnd_max,cwnd_samples";

/// A frozen flowscope window: the mergeable summary plus the per-cell
/// extras (flow table, fairness, convergence) that do not merge.
#[derive(Debug, Clone)]
pub struct FlowscopeResult {
    /// The mergeable packet-lifecycle ledger.
    pub summary: FlowscopeSummary,
    /// Per-flow rows, in flow-id order (only flows that sent).
    pub flows: Vec<FlowTableRow>,
    /// Per-CC-group ledger splits, in group-label order (empty unless
    /// flows registered with group labels).
    pub groups: Vec<GroupScore>,
    /// Jain's fairness index over greedy flows' window goodput.
    pub jain: f64,
    /// Convergence instant (absolute sim time, ns), when detected.
    pub convergence_ns: Option<u64>,
    /// Measurement-window length.
    pub window: Nanos,
    /// Dropped packets bucketed by how many lifecycle stages they had
    /// completed (index 0 = dropped before any boundary, index
    /// [`STAGE_COUNT`] = dropped after all ten — impossible by
    /// construction, kept for schema symmetry).
    pub drops_after_stage: [u64; STAGE_COUNT + 1],
    /// Stamps that referenced no open life record (must be zero).
    pub orphan_stamps: u64,
    /// Life records still open at freeze time.
    pub in_flight: u64,
}

impl FlowscopeResult {
    /// FNV-1a fingerprint over the summary, every flow row, fairness and
    /// convergence — the bit-identity witness for flows-on runs.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        fnv1a(&mut h, self.summary.fingerprint());
        fnv1a(&mut h, self.flows.len() as u64);
        for row in &self.flows {
            row.fold(&mut h);
        }
        fnv1a(&mut h, self.groups.len() as u64);
        for g in &self.groups {
            g.fold(&mut h);
        }
        fnv1a(&mut h, self.jain.to_bits());
        fnv1a(&mut h, self.convergence_ns.unwrap_or(u64::MAX));
        fnv1a(&mut h, self.window.as_nanos());
        for &d in &self.drops_after_stage {
            fnv1a(&mut h, d);
        }
        fnv1a(&mut h, self.orphan_stamps);
        fnv1a(&mut h, self.in_flight);
        h
    }

    /// Whether every delivered packet's stage residencies summed exactly
    /// to its end-to-end delay and no stamp went astray.
    pub fn conservation_holds(&self) -> bool {
        self.summary.conservation_failures == 0
            && self.orphan_stamps == 0
            && self.summary.stage_grand_total_ns() == self.summary.e2e_total_ns
    }

    /// Deterministic JSON encoding (`hostcc-flowscope/v1`), wall-clock
    /// free — safe to byte-compare across worker counts.
    pub fn to_json(&self) -> String {
        let stages: Vec<String> = Stage::ALL
            .iter()
            .map(|&s| {
                let i = s as usize;
                let hist = &self.summary.stage_hist[i];
                format!(
                    "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"mean_ns\":{},\
                     \"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                    s.name(),
                    hist.count(),
                    self.summary.stage_total_ns[i],
                    jopt(hist.mean().map(Nanos::as_nanos)),
                    jopt(hist.quantile(0.50).map(Nanos::as_nanos)),
                    jopt(hist.quantile(0.99).map(Nanos::as_nanos)),
                    jopt(hist.max().map(Nanos::as_nanos)),
                )
            })
            .collect();
        let flows: Vec<String> = self.flows.iter().map(FlowTableRow::to_json).collect();
        let groups: Vec<String> = self.groups.iter().map(GroupScore::to_json).collect();
        let drops: Vec<String> = self.drops_after_stage.iter().map(u64::to_string).collect();
        format!(
            "{{\"schema\":\"hostcc-flowscope/v1\",\"fingerprint\":\"{:#018x}\",\
             \"window_ns\":{},\"completed\":{},\"dropped\":{},\"in_flight\":{},\
             \"conservation_failures\":{},\"orphan_stamps\":{},\
             \"stage_total_ns_sum\":{},\"e2e_total_ns\":{},\
             \"e2e_p50_ns\":{},\"e2e_p99_ns\":{},\"e2e_max_ns\":{},\
             \"fct_p50_ns\":{},\"fct_max_ns\":{},\
             \"ecn_host\":{},\"ecn_fabric\":{},\"retransmits\":{},\
             \"jain\":{},\"convergence_ns\":{},\
             \"stages\":[{}],\"drops_after_stage\":[{}],\"groups\":[{}],\"flows\":[{}]}}\n",
            self.fingerprint(),
            self.window.as_nanos(),
            self.summary.completed,
            self.summary.dropped,
            self.in_flight,
            self.summary.conservation_failures,
            self.orphan_stamps,
            self.summary.stage_grand_total_ns(),
            self.summary.e2e_total_ns,
            jopt(self.summary.e2e_hist.quantile(0.50).map(Nanos::as_nanos)),
            jopt(self.summary.e2e_hist.quantile(0.99).map(Nanos::as_nanos)),
            jopt(self.summary.e2e_hist.max().map(Nanos::as_nanos)),
            jopt(self.summary.fct_hist.quantile(0.50).map(Nanos::as_nanos)),
            jopt(self.summary.fct_hist.max().map(Nanos::as_nanos)),
            self.summary.ecn_host,
            self.summary.ecn_fabric,
            self.summary.retransmits,
            jf(self.jain),
            jopt(self.convergence_ns),
            stages.join(","),
            drops.join(","),
            groups.join(","),
            flows.join(","),
        )
    }

    /// The flow table as CSV (header + one row per flow).
    pub fn flow_csv(&self) -> String {
        let mut out = String::from(FLOW_CSV_HEADER);
        out.push('\n');
        for r in &self.flows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                r.flow,
                r.greedy,
                r.fct_ns.map_or(String::new(), |v| v.to_string()),
                r.delivered_bytes,
                r.delivered_packets,
                jf(r.goodput_gbps),
                r.drops,
                r.ecn_host,
                r.ecn_fabric,
                r.retransmits,
                r.cwnd_last,
                r.cwnd_min,
                r.cwnd_max,
                r.cwnd_samples,
            ));
        }
        out
    }

    /// Human-readable stage-residency breakdown and flow table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== flowscope ==  window {:.3} ms  completed {}  dropped {}  in-flight {}\n",
            self.window.as_millis_f64(),
            self.summary.completed,
            self.summary.dropped,
            self.in_flight,
        ));
        let e2e = self.summary.e2e_total_ns;
        out.push_str("stage            count      total(us)   share    mean(us)    p99(us)\n");
        for &s in &Stage::ALL {
            let i = s as usize;
            let hist = &self.summary.stage_hist[i];
            let total = self.summary.stage_total_ns[i];
            out.push_str(&format!(
                "{:<14} {:>8} {:>13.1} {:>6.1} % {:>10.2} {:>10.2}\n",
                s.name(),
                hist.count(),
                total as f64 / 1e3,
                if e2e > 0 {
                    total as f64 / e2e as f64 * 100.0
                } else {
                    0.0
                },
                hist.mean().map_or(0.0, |n| n.as_nanos() as f64 / 1e3),
                hist.quantile(0.99)
                    .map_or(0.0, |n| n.as_nanos() as f64 / 1e3),
            ));
        }
        out.push_str(&format!(
            "conservation: stage sum {} ns vs e2e {} ns ({}; {} failure(s), {} orphan stamp(s))\n",
            self.summary.stage_grand_total_ns(),
            e2e,
            if self.conservation_holds() {
                "exact"
            } else {
                "BROKEN"
            },
            self.summary.conservation_failures,
            self.orphan_stamps,
        ));
        out.push_str(&format!(
            "fairness: jain {:.4} over greedy flows; convergence {}\n",
            self.jain,
            self.convergence_ns
                .map_or("not reached".to_string(), |t| format!(
                    "at {:.3} ms",
                    t as f64 / 1e6
                )),
        ));
        for g in &self.groups {
            out.push_str(&format!(
                "group {:<16} {} flow(s)  {:>8.3} Gbps  jain {:.4}  drops {}  rtx {}\n",
                g.group, g.flows, g.goodput_gbps, g.jain, g.drops, g.retransmits,
            ));
        }
        out.push_str(
            "flow  greedy      fct(ms)   goodput(Gbps)      bytes  drops  ecn(h/f)  rtx   cwnd\n",
        );
        for r in &self.flows {
            out.push_str(&format!(
                "{:>4}  {:<6} {:>12} {:>15.3} {:>10} {:>6} {:>5}/{:<4} {:>4} {:>6}\n",
                r.flow,
                if r.greedy { "bulk" } else { "rpc" },
                r.fct_ns
                    .map_or("-".to_string(), |v| format!("{:.3}", v as f64 / 1e6)),
                r.goodput_gbps,
                r.delivered_bytes,
                r.drops,
                r.ecn_host,
                r.ecn_fabric,
                r.retransmits,
                r.cwnd_last,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::FlowScope;

    fn ns(v: u64) -> Nanos {
        Nanos::from_nanos(v)
    }

    fn scope_with(packets: u64, offset: u64) -> FlowScope {
        let mut fs = FlowScope::new();
        fs.register_flow(0, true);
        for p in 0..packets {
            let id = offset * 1000 + p;
            let t0 = offset * 10_000 + p * 100;
            fs.packet_sent(id, 0, ns(t0));
            fs.boundary(id, Stage::SwitchQueue, ns(t0 + 40));
            fs.delivered(id, 4030, ns(t0 + 70));
        }
        fs
    }

    #[test]
    fn merge_is_commutative_with_identity() {
        let a = scope_with(5, 1).freeze(ns(1_000_000)).summary;
        let b = scope_with(9, 2).freeze(ns(1_000_000)).summary;
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.fingerprint(), ba.fingerprint());
        assert_eq!(ab.completed, 14);
        assert_eq!(ab.stage_grand_total_ns(), ab.e2e_total_ns);
        let mut id = FlowscopeSummary::default();
        id.merge(&a);
        assert_eq!(id.fingerprint(), a.fingerprint());
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        let r1 = scope_with(5, 1).freeze(ns(1_000_000));
        let r2 = scope_with(5, 1).freeze(ns(1_000_000));
        assert_eq!(r1.fingerprint(), r2.fingerprint());
        let r3 = scope_with(6, 1).freeze(ns(1_000_000));
        assert_ne!(r1.fingerprint(), r3.fingerprint());
        let mut r4 = scope_with(5, 1).freeze(ns(1_000_000));
        r4.jain = 0.5;
        assert_ne!(r1.fingerprint(), r4.fingerprint());
    }

    #[test]
    fn json_schema_has_the_promised_keys() {
        let r = scope_with(3, 0).freeze(ns(500_000));
        let j = r.to_json();
        for key in [
            "\"schema\":\"hostcc-flowscope/v1\"",
            "\"fingerprint\":\"0x",
            "\"stage_total_ns_sum\"",
            "\"e2e_total_ns\"",
            "\"conservation_failures\":0",
            "\"jain\":",
            "\"convergence_ns\":",
            "\"stages\":[{\"name\":\"tx_dma\"",
            "\"drops_after_stage\":[",
            "\"flows\":[{\"flow\":0",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert_eq!(j.matches("\"name\":").count(), STAGE_COUNT);
        assert!(r.conservation_holds());
    }

    #[test]
    fn csv_has_header_and_one_row_per_flow() {
        let r = scope_with(2, 0).freeze(ns(500_000));
        let csv = r.flow_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(FLOW_CSV_HEADER));
        assert_eq!(lines.count(), r.flows.len());
        assert_eq!(
            FLOW_CSV_HEADER.split(',').count(),
            csv.lines().nth(1).unwrap().split(',').count()
        );
    }

    #[test]
    fn render_reports_conservation_and_fairness() {
        let r = scope_with(4, 0).freeze(ns(500_000));
        let s = r.render();
        assert!(s.contains("exact"), "{s}");
        assert!(s.contains("jain"), "{s}");
        assert!(s.contains("switch_queue"), "{s}");
    }
}
