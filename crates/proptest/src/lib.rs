//! Offline property-testing shim.
//!
//! This workspace's tier-1 verify (`cargo build --release && cargo test -q`)
//! must run on machines with **no crates.io access**, so the property tests
//! cannot depend on the real `proptest`. This crate implements the subset of
//! its API the tests actually use, with the same call-site syntax:
//!
//! * [`proptest!`] blocks of `#[test] fn name(arg in strategy, ...) { ... }`
//! * integer and float [`Range`] strategies (`0u64..100`)
//! * [`any`]`::<T>()` for the primitive types
//! * `prop::collection::vec(strategy, len_range)`
//! * [`prop_oneof!`] (uniform arms), [`Just`], and [`Strategy::prop_map`]
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`]
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics immediately with the generated
//!   inputs printed, which is enough to reproduce by hand: generation is
//!   deterministic per test (the RNG is seeded from the test's module path),
//!   so a failure recurs on every run until fixed.
//! * `proptest-regressions` files are ignored.
//! * The case count comes from `PROPTEST_CASES` (default 64).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// How a generated case ended, other than by passing.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert!` failed; the string is the rendered assertion.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject(String),
}

/// Number of passing cases each property must accumulate.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-test generator (splitmix64 over a name hash).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test's fully-qualified name: every run of the same
    /// test draws the same case sequence.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. The `proptest!` macro calls
/// [`Strategy::generate`] once per argument per case.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-process every drawn value with `f` (mirrors the real crate's
    /// `Strategy::prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of its value (mirrors the real
/// crate's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// One erased arm of a [`prop_oneof!`] union.
pub type OneOfArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Uniform choice between strategies that generate the same type — the
/// backing type of [`prop_oneof!`]. (The real crate also supports weighted
/// arms; the shim draws uniformly.)
pub struct OneOf<V> {
    arms: Vec<OneOfArm<V>>,
}

impl<V> OneOf<V> {
    /// Build from the erased arms (used by [`prop_oneof!`]).
    pub fn new(arms: Vec<OneOfArm<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

/// Box one [`prop_oneof!`] arm (a plain function so type inference can
/// unify the arms' value types across the built `Vec`).
pub fn oneof_arm<S: Strategy + 'static>(s: S) -> OneOfArm<S::Value> {
    Box::new(move |rng| s.generate(rng))
}

/// `prop_oneof![s1, s2, ...]`: draw each case from one of the listed
/// strategies, chosen uniformly. All arms must generate the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::oneof_arm($strat)),+])
    };
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = u128::from(rng.next_u64()) % width;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let width = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let off = u128::from(rng.next_u64()) % width;
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.f64_unit() as $t;
                // Clamp: rounding at the top of huge ranges must not
                // produce `end` itself (the range is half-open).
                let v = self.start + u * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let u = rng.f64_unit() as $t;
                self.start() + u * (self.end() - self.start())
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);

/// Types with a whole-domain strategy, i.e. what `any::<T>()` draws from.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, broad, and sign-balanced; NaN/inf chaos is out of scope.
        (rng.f64_unit() - 0.5) * 2e12
    }
}

/// The `any::<T>()` strategy (see [`Arbitrary`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Whole-domain strategy for a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Combinator namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use core::ops::{Range, RangeInclusive};

        /// Accepted length specifications (only `usize` ranges convert, so
        /// unsuffixed literals like `1..50` infer `usize` at the call site,
        /// matching the real crate's `Into<SizeRange>` signature).
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty length range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty length range");
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with a length drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            len: SizeRange,
        }

        /// `vec(element_strategy, len_range)`: a vector of `len_range`
        /// elements, each drawn from `element_strategy`.
        pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                len: len.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = (self.len.lo..=self.len.hi).generate(rng);
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary, Just,
        Strategy, TestCaseError,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Discard the current case (re-draw) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over [`cases`] generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cases = $crate::cases();
                let mut rng =
                    $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < cases {
                    // Arguments are patterns (`x` or `mut x`), so each value
                    // is drawn into a temporary — formatted into the failure
                    // report while still nameable — then bound.
                    let mut inputs = String::new();
                    $(
                        let generated = $crate::Strategy::generate(&($strat), &mut rng);
                        inputs.push_str(&format!(
                            "{} = {:?}  ",
                            stringify!($arg),
                            &generated
                        ));
                        let $arg = generated;
                    )+
                    let inputs = inputs;
                    let outcome = (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected < 65536,
                                "property '{}': too many prop_assume! rejections",
                                stringify!($name)
                            );
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property '{}' failed after {} passing case(s)\n  inputs: {}\n  {}",
                                stringify!($name),
                                accepted,
                                inputs,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let mut c = crate::TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_test("bounds");
        for _ in 0..10_000 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let i = (-7i32..-3).generate(&mut rng);
            assert!((-7..-3).contains(&i));
        }
    }

    #[test]
    fn tuple_and_inclusive_strategies() {
        let mut rng = crate::TestRng::for_test("tuples");
        for _ in 0..1000 {
            let (a, b) = (0u32..5, 100u32..9000).generate(&mut rng);
            assert!(a < 5 && (100..9000).contains(&b));
            let q = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&q));
            let n = (3usize..=3).generate(&mut rng);
            assert_eq!(n, 3);
            let v = prop::collection::vec(0u64..9, 3..=3).generate(&mut rng);
            assert_eq!(v.len(), 3);
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::TestRng::for_test("vec");
        for _ in 0..1000 {
            let v = prop::collection::vec(0u64..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_map_and_just_combinators() {
        let mut rng = crate::TestRng::for_test("oneof");
        let s = prop_oneof![
            (0u64..10).prop_map(Some),
            Just(None),
            (100u64..110).prop_map(Some),
        ];
        let mut arms = [false; 3];
        for _ in 0..1000 {
            match s.generate(&mut rng) {
                Some(v) if v < 10 => arms[0] = true,
                None => arms[1] = true,
                Some(v) if (100..110).contains(&v) => arms[2] = true,
                Some(v) => panic!("out-of-arm value {v}"),
            }
        }
        assert_eq!(arms, [true; 3], "all arms must be drawn from");
    }

    proptest! {
        /// The macro itself: bodies run, assertions pass, assumptions skip.
        #[test]
        fn macro_end_to_end(x in 1u64..100, ys in prop::collection::vec(0u64..50, 1..10)) {
            prop_assume!(x != 13);
            prop_assert!((1..100).contains(&x));
            prop_assert!((1..10).contains(&ys.len()));
            prop_assert!(ys.iter().all(|&y| y < 50));
        }

        /// The combinators inside a proptest! argument position.
        #[test]
        fn oneof_in_argument_position(
            v in prop::collection::vec(prop_oneof![0u64..5, 1_000u64..1_005], 1..20),
        ) {
            prop_assert!(v.iter().all(|&x| x < 5 || (1_000..1_005).contains(&x)));
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always_fails"), "panic message: {msg}");
        assert!(msg.contains("x = "), "panic message: {msg}");
    }
}
