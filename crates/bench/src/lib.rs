//! Bench-only crate: see the `benches/` directory.
