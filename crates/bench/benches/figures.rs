//! One bench per paper figure: times the regeneration of each figure's
//! data at the `quick` budget, so `cargo bench` exercises every harness.
//!
//! Full-budget numbers come from
//! `cargo run --release -p hostcc-experiments --bin repro -- all`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use hostcc_experiments::figures::{self, Budget, FigureReport};

type FigFn = fn(&Budget) -> FigureReport;

const FIGS: &[(&str, FigFn)] = &[
    ("fig02_baseline_congestion", figures::fig2 as FigFn),
    ("fig03_mtu_flows", figures::fig3),
    ("fig04_tail_latency", figures::fig4),
    ("fig07_signal_latency", figures::fig7),
    ("fig08_signal_timeseries", figures::fig8),
    ("fig09_mba_levels", figures::fig9),
    ("fig10_hostcc_benefits", figures::fig10),
    ("fig11_hostcc_mtu_flows", figures::fig11),
    ("fig12_hostcc_latency", figures::fig12),
    ("fig13_incast", figures::fig13),
    ("fig14_hostcc_ddio", figures::fig14),
    ("fig15_hostcc_ddio_latency", figures::fig15),
    ("fig16_bt_sensitivity", figures::fig16),
    ("fig17_it_sensitivity", figures::fig17),
    ("fig18_ablation", figures::fig18),
    ("fig19_steady_state", figures::fig19),
];

fn bench_figures(c: &mut Criterion) {
    let budget = Budget::quick();
    let mut group = c.benchmark_group("figures");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for (name, f) in FIGS {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let report = f(&budget);
                std::hint::black_box(report.panels.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
