//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each bench runs the 3× congestion + hostCC scenario with one design
//! parameter changed, timing the run and printing the resulting
//! throughput/drop outcome once, so `cargo bench --bench ablations`
//! doubles as the ablation study.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use hostcc_experiments::{RunResult, Scenario, Simulation};
use hostcc_sim::Nanos;

fn quick(mut s: Scenario) -> RunResult {
    s.warmup = Nanos::from_millis(2);
    s.measure = Nanos::from_millis(5);
    Simulation::new(s).run()
}

fn report(name: &str, r: &RunResult) {
    eprintln!(
        "[ablation] {name}: tput={:.1}G drop={:.4}% mean_level={:.2} mba_writes={}",
        r.goodput_gbps(),
        r.drop_rate_pct,
        r.mean_level,
        r.mba_writes
    );
}

/// EWMA weights for I_S: the paper's 1/8 vs a twitchy 1/2 vs a sluggish
/// 1/64 (§4.1's aggressiveness-vs-delay tradeoff).
fn bench_ewma(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_ewma");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, w) in [
        ("is_w_half", 0.5),
        ("is_w_eighth", 0.125),
        ("is_w_64th", 1.0 / 64.0),
    ] {
        let make = move || {
            let mut s = Scenario::with_congestion(3.0).enable_hostcc();
            if let Some(hc) = &mut s.hostcc {
                hc.signal.is_weight = w;
            }
            s
        };
        report(name, &quick(make()));
        g.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(quick(make()).nic_drops))
        });
    }
    g.finish();
}

/// MBA actuation delay: the measured 22 µs vs an idealized 1 µs MSR write
/// (§6: "existing tools for host resource allocation are insufficient").
fn bench_mba_delay(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_mba_delay");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, us) in [("mba_22us", 22u64), ("mba_1us", 1)] {
        let make = move || {
            let mut s = Scenario::with_congestion(3.0).enable_hostcc();
            s.host.mba_write_latency = Nanos::from_micros(us);
            s
        };
        report(name, &quick(make()));
        g.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(quick(make()).nic_drops))
        });
    }
    g.finish();
}

/// hostCC sampling period: sub-µs (paper) vs a sluggish 100 µs poller.
fn bench_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_sampling");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, ns) in [
        ("period_700ns", 700u64),
        ("period_10us", 10_000),
        ("period_100us", 100_000),
    ] {
        let make = move || {
            let mut s = Scenario::with_congestion(3.0).enable_hostcc();
            if let Some(hc) = &mut s.hostcc {
                hc.signal.period = Nanos::from_nanos(ns);
            }
            s
        };
        report(name, &quick(make()));
        g.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(quick(make()).nic_drops))
        });
    }
    g.finish();
}

/// NIC buffer sizing (§2.2: "Isolating NIC buffers does not solve this
/// problem" — smaller buffers drop more, larger buffers queue more).
fn bench_nic_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_nic_buffer");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, kib) in [("nic_128KiB", 128u64), ("nic_512KiB", 512), ("nic_2MiB", 2048)] {
        let make = move || {
            let mut s = Scenario::with_congestion(3.0); // vanilla DCTCP
            s.host.nic_buffer_bytes = kib * 1024;
            s
        };
        let r = quick(make());
        eprintln!(
            "[ablation] {name}: drop={:.4}% peak_nic_queue≈{:.0}us",
            r.drop_rate_pct,
            r.nic_peak_bytes as f64 / 5.4 / 1000.0 // drain ≈ 43 Gbps
        );
        g.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(quick(make()).nic_drops))
        });
    }
    g.finish();
}

/// Congestion-signal source: the paper's IIO occupancy vs the §6
/// alternative, NIC buffer occupancy (which asserts only after the domino
/// effect has reached the NIC).
fn bench_signal_source(c: &mut Criterion) {
    use hostcc_core::SignalSource;
    let mut g = c.benchmark_group("ablation_signal_source");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, source) in [
        ("signal_iio", SignalSource::IioOccupancy),
        ("signal_nic_buffer", SignalSource::NicBuffer),
    ] {
        let make = move || {
            let mut s = Scenario::with_congestion(3.0).enable_hostcc();
            if let Some(hc) = &mut s.hostcc {
                hc.signal_source = source;
            }
            s
        };
        let r = quick(make());
        eprintln!(
            "[ablation] {name}: tput={:.1}G drop={:.4}% peak_nic_queue={}B",
            r.goodput_gbps(),
            r.drop_rate_pct,
            r.nic_peak_bytes
        );
        g.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(quick(make()).nic_drops))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_ewma,
    bench_mba_delay,
    bench_sampling,
    bench_nic_buffer,
    bench_signal_source
);
criterion_main!(benches);
