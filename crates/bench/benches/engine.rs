//! Engine microbenches: the hot paths that bound how much simulated time a
//! second of wall clock buys.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use hostcc_sim::{EventQueue, Nanos, Rng};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(Nanos::from_nanos(i * 37 % 1000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            std::hint::black_box(acc)
        })
    });
    g.bench_function("rng_throughput_10k", |b| {
        let mut rng = Rng::new(42);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            std::hint::black_box(acc)
        })
    });
    g.finish();
}

fn bench_host_tick(c: &mut Criterion) {
    use hostcc_fabric::{FlowId, Packet};
    use hostcc_host::{HostConfig, RxHost};

    let mut g = c.benchmark_group("engine");
    g.sample_size(20).measurement_time(Duration::from_secs(3));
    g.bench_function("rxhost_tick_1ms_congested", |b| {
        b.iter(|| {
            let cfg = HostConfig::paper_default();
            let tick = cfg.tick;
            let mut h = RxHost::new(cfg, 3.0);
            let mut now = Nanos::ZERO;
            let mut id = 0u64;
            let mut next = Nanos::ZERO;
            while now < Nanos::from_millis(1) {
                now += tick;
                while next <= now {
                    h.on_wire_arrival(Packet::data(id, FlowId(0), 0, 4030, false, next), next);
                    id += 1;
                    next += Nanos::from_nanos(328);
                }
                std::hint::black_box(h.tick(now).occupancy_cl);
            }
            std::hint::black_box(h.delivered_packets)
        })
    });
    g.finish();
}

fn bench_simulation_rate(c: &mut Criterion) {
    use hostcc_experiments::{Scenario, Simulation};
    let mut g = c.benchmark_group("engine");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    g.bench_function("full_sim_5ms_hostcc_3x", |b| {
        b.iter(|| {
            let mut s = Scenario::with_congestion(3.0).enable_hostcc();
            s.warmup = Nanos::from_millis(1);
            s.measure = Nanos::from_millis(4);
            std::hint::black_box(Simulation::new(s).run().nic_drops)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_host_tick, bench_simulation_rate);
criterion_main!(benches);
