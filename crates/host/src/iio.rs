//! The Integrated IO controller (IIO) buffer.
//!
//! PCIe transactions land here and wait until the memory controller admits
//! them (paper §2.1). The buffer is the *source of the hostCC congestion
//! signal*: its occupancy rises the instant — and only when — the memory
//! controller backs up, which is why the paper picks it over any NIC-side
//! statistic (§3.1).
//!
//! Bytes flow FIFO; packet boundaries are tracked as cumulative offsets in
//! the DMA byte stream, so a packet is delivered to the stack exactly when
//! the stream has been admitted past its last byte.

use std::collections::VecDeque;

use crate::config::CACHELINE;
use crate::nic::StreamedPacket;

#[cfg(test)]
use hostcc_fabric::Packet;

/// The IIO buffer of one receiving host.
#[derive(Debug, Clone, Default)]
pub struct IioBuffer {
    /// Bytes inserted but not yet admitted to the memory controller; these
    /// hold PCIe credits.
    waiting_bytes: f64,
    /// Cumulative bytes admitted to the memory controller.
    admitted_cum: f64,
    /// Cumulative bytes inserted from the PCIe.
    inserted_cum: f64,
    /// Packets awaiting delivery, keyed by their end offset in the DMA
    /// byte stream (FIFO).
    pending: VecDeque<StreamedPacket>,
}

impl IioBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes inserted from the PCIe wire this tick.
    pub fn insert(&mut self, bytes: f64) {
        self.waiting_bytes += bytes;
        self.inserted_cum += bytes;
    }

    /// Register a packet whose DMA bytes end at `end_offset` of the stream.
    pub fn register(&mut self, sp: StreamedPacket) {
        debug_assert!(
            self.pending
                .back()
                .is_none_or(|p| sp.end_offset >= p.end_offset),
            "packet registration out of stream order"
        );
        self.pending.push_back(sp);
    }

    /// Admit up to `bytes` into the memory controller; returns the packets
    /// whose last byte was admitted (now deliverable to the stack).
    ///
    /// Convenience wrapper over [`IioBuffer::admit_into`] that allocates
    /// the output list; the per-tick hot path reuses a buffer instead.
    pub fn admit(&mut self, bytes: f64) -> Vec<StreamedPacket> {
        let mut out = Vec::new();
        self.admit_into(bytes, &mut out);
        out
    }

    /// Allocation-free core of [`IioBuffer::admit`]: deliverable packets
    /// are appended to `out` (not cleared first).
    pub fn admit_into(&mut self, bytes: f64, out: &mut Vec<StreamedPacket>) {
        let take = bytes.min(self.waiting_bytes);
        self.waiting_bytes -= take;
        if self.waiting_bytes < 1e-6 {
            self.waiting_bytes = 0.0; // absorb float residue
        }
        self.admitted_cum += take;
        while let Some(front) = self.pending.front() {
            if front.end_offset <= self.admitted_cum + 1e-6 {
                out.push(self.pending.pop_front().expect("front exists"));
            } else {
                break;
            }
        }
    }

    /// Bytes waiting for admission (holding PCIe credits).
    pub fn waiting_bytes(&self) -> f64 {
        self.waiting_bytes
    }

    /// Waiting bytes in cachelines.
    pub fn waiting_cl(&self) -> f64 {
        self.waiting_bytes / CACHELINE as f64
    }

    /// Cumulative admitted bytes.
    pub fn admitted_cum(&self) -> f64 {
        self.admitted_cum
    }

    /// Cumulative inserted bytes.
    pub fn inserted_cum(&self) -> f64 {
        self.inserted_cum
    }

    /// Packets registered but not yet delivered.
    pub fn pending_packets(&self) -> usize {
        self.pending.len()
    }
}

/// Convenience for tests: make a `StreamedPacket`.
#[cfg(test)]
fn sp(pkt: Packet, end_offset: f64) -> StreamedPacket {
    StreamedPacket {
        pkt,
        end_offset,
        enqueued_at: hostcc_sim::Nanos::ZERO,
        dma_started_at: hostcc_sim::Nanos::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostcc_fabric::FlowId;
    use hostcc_sim::Nanos;

    fn pkt(id: u64) -> Packet {
        Packet::data(id, FlowId(0), 0, 1000, false, Nanos::ZERO)
    }

    #[test]
    fn waiting_tracks_insert_and_admit() {
        let mut iio = IioBuffer::new();
        iio.insert(1000.0);
        assert_eq!(iio.waiting_bytes(), 1000.0);
        iio.admit(400.0);
        assert_eq!(iio.waiting_bytes(), 600.0);
        assert_eq!(iio.admitted_cum(), 400.0);
    }

    #[test]
    fn admit_capped_by_waiting() {
        let mut iio = IioBuffer::new();
        iio.insert(100.0);
        iio.admit(1e9);
        assert_eq!(iio.waiting_bytes(), 0.0);
        assert_eq!(iio.admitted_cum(), 100.0);
    }

    #[test]
    fn packets_deliver_when_stream_passes_their_end() {
        let mut iio = IioBuffer::new();
        iio.register(sp(pkt(0), 1100.0));
        iio.register(sp(pkt(1), 2200.0));
        iio.insert(2200.0);
        let d1 = iio.admit(1100.0);
        assert_eq!(d1.len(), 1);
        assert_eq!(d1[0].pkt.id, 0);
        let d2 = iio.admit(1099.0);
        assert!(d2.is_empty(), "one byte short of packet 1");
        let d3 = iio.admit(1.0);
        assert_eq!(d3.len(), 1);
        assert_eq!(d3[0].pkt.id, 1);
        assert_eq!(iio.pending_packets(), 0);
    }

    #[test]
    fn occupancy_in_cachelines() {
        let mut iio = IioBuffer::new();
        iio.insert(5952.0); // 93 cachelines
        assert!((iio.waiting_cl() - 93.0).abs() < 1e-9);
    }

    #[test]
    fn float_residue_absorbed() {
        let mut iio = IioBuffer::new();
        for _ in 0..1000 {
            iio.insert(0.3);
        }
        iio.admit(300.0);
        assert_eq!(iio.waiting_bytes(), 0.0);
    }
}
