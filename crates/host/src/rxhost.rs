//! The composed receiver host: NIC → PCIe → IIO → memory, with MApp, the
//! copy engine, DDIO, MBA and the MSR counter bank.
//!
//! [`RxHost`] is advanced by the experiment driver on a fixed tick
//! (default 100 ns). Packet arrivals are event-driven
//! ([`RxHost::on_wire_arrival`]); everything on the host side — PCIe
//! streaming under credit flow control, IIO admission under memory-
//! controller arbitration, MApp and copy progress — integrates per tick.
//!
//! The tick implements the paper's domino effect end to end (§2.1): when
//! the memory controller backs up, IIO admission slows, the IIO buffer
//! fills, PCIe credits stop replenishing, the NIC cannot stream, the NIC
//! SRAM fills, and packets drop — all without any component knowing about
//! any other beyond its direct neighbour.

use hostcc_fabric::Packet;
use hostcc_flowscope::{FlowscopeHandle, Stage};
use hostcc_sim::{Nanos, Rate};
use hostcc_trace::{DropLocus, TraceEvent, TraceHandle};

use crate::config::{HostConfig, CACHELINE};
use crate::copy_engine::CopyEngine;
use crate::ddio::Ddio;
use crate::iio::IioBuffer;
use crate::mapp::MApp;
use crate::mba::Mba;
use crate::memctrl::{Demand, MemoryController};
use crate::msr::MsrBank;
use crate::nic::NicRxQueue;
use crate::pcie::WirePipe;

/// A packet delivered to the network stack, with datapath timestamps.
#[derive(Debug, Clone)]
pub struct Delivered {
    /// The packet.
    pub pkt: Packet,
    /// When it was enqueued in the NIC buffer (wire arrival).
    pub nic_at: Nanos,
    /// When its DMA completed (admission past its last byte).
    pub delivered_at: Nanos,
}

/// Per-tick output of the host datapath.
#[derive(Debug, Default)]
pub struct TickOutput {
    /// Packets whose DMA completed this tick, in order.
    pub delivered: Vec<Delivered>,
    /// Application bytes the copy engine finished this tick (drain socket
    /// buffers / count goodput).
    pub copied_app_bytes: f64,
    /// Instantaneous IIO occupancy in cachelines (ground truth — the MSRs
    /// expose only the cumulative integral of this).
    pub occupancy_cl: f64,
    /// Bytes inserted into the IIO from the PCIe this tick.
    pub inserted_bytes: f64,
}

/// A read-only snapshot of the host datapath for telemetry gauges and
/// conservation checks. All fields are plain reads of existing state —
/// taking a probe never perturbs the run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HostProbe {
    /// Packets ever accepted by the NIC (cumulative, survives window resets).
    pub nic_arrivals_total: u64,
    /// Packets ever tail-dropped at the NIC (cumulative).
    pub nic_drops_total: u64,
    /// Packets currently in NIC SRAM (including a partially-DMAed head).
    pub nic_queued: u64,
    /// NIC buffer backlog in bytes.
    pub nic_backlog_bytes: u64,
    /// Packets fully streamed onto PCIe, not yet evicted from the IIO.
    pub iio_pending: u64,
    /// Packets ever delivered to the copy engine (cumulative).
    pub delivered_total: u64,
    /// Bytes currently in flight on the PCIe wire.
    pub pcie_inflight_bytes: f64,
    /// PCIe credits currently available, in bytes.
    pub pcie_credits_avail_bytes: f64,
    /// The configured PCIe credit limit, in bytes.
    pub pcie_credit_limit_bytes: f64,
    /// Bytes currently buffered in the IIO.
    pub iio_waiting_bytes: f64,
    /// Cumulative bytes inserted into the IIO.
    pub iio_inserted_bytes: f64,
    /// Cumulative bytes admitted from the IIO to memory.
    pub iio_admitted_bytes: f64,
    /// Currently requested MBA throttle level.
    pub mba_requested: u8,
    /// Current DDIO eviction fraction.
    pub ddio_eviction_fraction: f64,
    /// Application bytes waiting in the copy backlog.
    pub copy_backlog_app_bytes: f64,
    /// Cumulative memory-controller bytes served this window (all requesters).
    pub mc_served_bytes: f64,
    /// Memory-controller utilization over the current window.
    pub mc_utilization: f64,
}

/// The receiver host model.
#[derive(Debug)]
pub struct RxHost {
    cfg: HostConfig,
    nic: NicRxQueue,
    wire: WirePipe,
    iio: IioBuffer,
    mc: MemoryController,
    mapp: MApp,
    copy: CopyEngine,
    ddio: Ddio,
    mba: Mba,
    msr: MsrBank,
    /// Wire payload bytes delivered in the current window.
    pub delivered_payload_bytes: u64,
    /// Packets delivered in the current window.
    pub delivered_packets: u64,
    /// Packets ever delivered (never reset — conservation checks).
    delivered_packets_total: u64,
    last_tick_at: Nanos,
    trace: TraceHandle,
    /// Lifecycle recorder (disabled by default): stamps the receive-side
    /// stage boundaries (`PropToHost`, `NicRing`, `PcieStream`, `IioDma`)
    /// and retires NIC tail-drops.
    flowscope: FlowscopeHandle,
    /// Reused per-tick buffers (see [`RxHost::tick_into`]): admitted
    /// packets awaiting delivery accounting, and DMA completions awaiting
    /// IIO registration. Cleared and refilled every tick, never freed.
    scratch_admitted: Vec<crate::nic::StreamedPacket>,
    scratch_completed: Vec<crate::nic::StreamedPacket>,
    /// When the current PCIe credit stall began (None = not stalled).
    stalled_since: Option<Nanos>,
    /// Last traced values, for change-triggered counter emission.
    traced_occupancy: f64,
    traced_backlog: u64,
    traced_eviction: f64,
}

impl RxHost {
    /// Build a host with the given configuration and MApp degree.
    pub fn new(cfg: HostConfig, mapp_degree: f64) -> Self {
        cfg.validate();
        let nic = NicRxQueue::new(cfg.nic_buffer_bytes);
        let mba = Mba::new(cfg.mba_added_latency, cfg.mba_write_latency);
        RxHost {
            cfg,
            nic,
            wire: WirePipe::new(),
            iio: IioBuffer::new(),
            mc: MemoryController::new(),
            mapp: MApp::new(mapp_degree),
            copy: CopyEngine::new(),
            ddio: Ddio::new(),
            mba,
            msr: MsrBank::new(),
            delivered_payload_bytes: 0,
            delivered_packets: 0,
            delivered_packets_total: 0,
            last_tick_at: Nanos::ZERO,
            trace: TraceHandle::disabled(),
            flowscope: FlowscopeHandle::disabled(),
            scratch_admitted: Vec::new(),
            scratch_completed: Vec::new(),
            stalled_since: None,
            traced_occupancy: f64::NAN,
            traced_backlog: 0,
            traced_eviction: f64::NAN,
        }
    }

    /// The host configuration.
    pub fn cfg(&self) -> &HostConfig {
        &self.cfg
    }

    /// Attach a trace handle to the datapath (and the MBA actuator).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.mba.set_trace(trace.clone());
        self.trace = trace;
    }

    /// Attach a packet-lifecycle recorder to the receive datapath.
    pub fn set_flowscope(&mut self, handle: FlowscopeHandle) {
        self.flowscope = handle;
    }

    /// A packet's last bit arrived at the NIC. Returns `false` when the
    /// NIC buffer tail-drops it.
    pub fn on_wire_arrival(&mut self, pkt: Packet, now: Nanos) -> bool {
        let flow = pkt.flow.0;
        let id = pkt.id;
        let dma = (pkt.wire_bytes() as f64 * self.cfg.pcie_overhead).ceil() as u64;
        let accepted = self.nic.offer(pkt, dma, now);
        if accepted {
            self.flowscope.boundary(id, Stage::PropToHost, now);
        } else {
            self.flowscope.packet_dropped(id, now);
            self.trace.emit(now, || TraceEvent::PacketDrop {
                flow,
                locus: DropLocus::Nic,
            });
        }
        accepted
    }

    /// Advance the datapath to `now` (one tick of `cfg.tick`).
    ///
    /// Convenience wrapper over [`RxHost::tick_into`] that allocates a
    /// fresh [`TickOutput`]; the experiment driver reuses one across ticks
    /// instead.
    pub fn tick(&mut self, now: Nanos) -> TickOutput {
        let mut out = TickOutput::default();
        self.tick_into(now, &mut out);
        out
    }

    /// Allocation-free core of [`RxHost::tick`]: `out` is cleared and
    /// refilled. In steady state (once `out.delivered` and the internal
    /// scratch buffers reach their high-water capacity) a tick performs no
    /// heap allocation at all.
    pub fn tick_into(&mut self, now: Nanos, out: &mut TickOutput) {
        out.delivered.clear();
        let dt = self.cfg.tick;
        debug_assert!(now >= self.last_tick_at);
        self.last_tick_at = now;

        // 1. Actuator state.
        let mba_added = self.mba.effective_added_latency(now);

        // 2. Demands against the memory controller.
        let l_mem = self.mc.l_mem(&self.cfg);
        // LLC churn from host-local traffic drives DDIO evictions.
        let mapp_util =
            self.mapp.mem_rate_estimate().as_bytes_per_ns() / self.cfg.mem_peak.as_bytes_per_ns();
        self.ddio.set_mapp_util(mapp_util);
        let e = self.ddio.eviction_fraction(&self.cfg);
        let credit_cl = self.cfg.pcie_max_credit_cl as f64;
        // The IIO's arbitration weight counts every credit-holding request
        // — waiting in the buffer *or* in transit on the PCIe wire: all of
        // it is committed network traffic the controller must serve, and
        // under stall it totals exactly the credit limit (the paper's
        // "maximum number of requests issued by IIO … dependent on the
        // PCIe credit limit", §2.2).
        let iio_inflight_cl =
            (self.iio.waiting_bytes() + self.wire.inflight_bytes()) / CACHELINE as f64;
        let iio_demand = Demand {
            // Only the evicted fraction costs memory-write bandwidth.
            bytes: e * self.iio.waiting_bytes(),
            weight: self.cfg.weight_iio * iio_inflight_cl.min(credit_cl),
        };
        let mapp_demand = self.mapp.demand(&self.cfg, mba_added, dt);
        let copy_demand = self.copy.demand(&self.cfg, l_mem, dt);

        // 3. Arbitrate.
        #[cfg(feature = "dbg")]
        if now.as_nanos() % 1_000_000 == 0 {
            eprintln!(
                "t={} iio(d={:.0},w={:.1}) mapp(d={:.0},w={:.1}) copy(d={:.0},w={:.1}) l_mem={}",
                now,
                iio_demand.bytes,
                iio_demand.weight,
                mapp_demand.bytes,
                mapp_demand.weight,
                copy_demand.bytes,
                copy_demand.weight,
                l_mem
            );
        }
        let grants = self
            .mc
            .tick(&self.cfg, dt, iio_demand, mapp_demand, copy_demand);
        #[cfg(feature = "dbg")]
        if now.as_nanos() % 1_000_000 == 0 {
            eprintln!(
                "   grants iio={:.0} mapp={:.0} copy={:.0} sat={}",
                grants.iio, grants.mapp, grants.copy, grants.saturated
            );
        }

        // 4. IIO admission: the grant covers the evicted fraction; DDIO
        //    hits ride along without consuming memory bandwidth.
        let admit = if e > 0.0 {
            (grants.iio / e).min(self.iio.waiting_bytes())
        } else {
            self.iio.waiting_bytes()
        };
        self.scratch_admitted.clear();
        self.iio.admit_into(admit, &mut self.scratch_admitted);
        self.ddio.on_dma(&self.cfg, (1.0 - e) * admit);

        // 5. MApp and copy progress.
        self.mapp.serve(grants.mapp, dt);
        let copied = self.copy.serve(&self.cfg, grants.copy);
        self.ddio.on_consumed(&self.cfg, copied);

        // 6. Deliver packets: payload enters the copy backlog.
        let cfg = &self.cfg;
        let copy = &mut self.copy;
        let fs = &self.flowscope;
        for spkt in self.scratch_admitted.drain(..) {
            let payload = spkt.pkt.payload_bytes();
            copy.push(cfg, payload as f64);
            self.delivered_payload_bytes += payload;
            self.delivered_packets += 1;
            self.delivered_packets_total += 1;
            fs.boundary(spkt.pkt.id, Stage::IioDma, now);
            out.delivered.push(Delivered {
                pkt: spkt.pkt,
                nic_at: spkt.enqueued_at,
                delivered_at: now,
            });
        }

        // 7. Occupancy: waiting entries (measured after admission, before
        //    this tick's fresh insertions, to avoid counting bytes that a
        //    continuous system would have admitted within the tick) plus
        //    the service pipeline tail (admitted but not yet completed —
        //    Little's law on the blended write latency), capped by the
        //    credit limit the paper observes as the I_S ceiling.
        let l_blend = self
            .ddio
            .blended_latency(&self.cfg, self.mc.l_mem(&self.cfg));
        let tail_cl = (admit / dt.as_nanos() as f64) * l_blend.as_nanos() as f64 / CACHELINE as f64;
        let occupancy = (self.iio.waiting_cl() + tail_cl).min(credit_cl);
        self.msr.integrate_occupancy(occupancy, dt);

        // 8. PCIe streaming under credit flow control.
        let credits_free =
            (self.cfg.pcie_credit_bytes() - self.wire.inflight_bytes() - self.iio.waiting_bytes())
                .max(0.0);
        // IOTLB misses stall DMA issue on the NIC side of the IIO — the
        // congestion the IIO occupancy signal cannot see (paper §6).
        let pcie_rate = self.cfg.iommu.effective_rate(self.cfg.pcie_rate);
        let wire_budget = pcie_rate.bytes_in(dt);
        let budget = credits_free.min(wire_budget);
        self.scratch_completed.clear();
        let streamed = self
            .nic
            .stream_into(budget, now, &mut self.scratch_completed);
        self.wire.push(now + self.cfg.l_p, streamed);
        if self.flowscope.is_enabled() {
            for sp in &self.scratch_completed {
                // NicRing closed at DMA initiation (a past tick), PcieStream
                // at this tick — per-packet timestamps stay monotone.
                self.flowscope
                    .boundary(sp.pkt.id, Stage::NicRing, sp.dma_started_at);
                self.flowscope.boundary(sp.pkt.id, Stage::PcieStream, now);
            }
        }
        for sp in self.scratch_completed.drain(..) {
            self.iio.register(sp);
        }

        // 9. Wire arrivals insert into the IIO.
        let inserted = self.wire.pop_arrived(now);
        self.iio.insert(inserted);
        self.msr.add_insertions(inserted);

        // 10. Tracing: stall transitions and change-triggered counters.
        //     Read-only over the datapath state, so a traced run computes
        //     bit-identical results to an untraced one.
        if self.trace.is_enabled() {
            self.trace_tick(now, e, occupancy, credits_free < wire_budget);
        }

        out.copied_app_bytes = copied;
        out.occupancy_cl = occupancy;
        out.inserted_bytes = inserted;
    }

    /// Per-tick trace emission. Counters are change-triggered rather than
    /// per-tick: at the 100 ns tick an unconditional sample stream would be
    /// 10 M events per simulated millisecond of nothing changing.
    fn trace_tick(&mut self, now: Nanos, eviction: f64, occupancy: f64, credit_limited: bool) {
        let backlog = self.nic.backlog_bytes();

        // PCIe stall transitions: the NIC holds packets but cannot stream
        // at wire rate because the credit return — not the link — is the
        // binding constraint (the paper's domino stage 3).
        let stalled = backlog > 0 && credit_limited;
        match (self.stalled_since, stalled) {
            (None, true) => {
                self.stalled_since = Some(now);
                self.trace.emit(now, || TraceEvent::PcieCreditStall {
                    backlog_bytes: backlog,
                });
            }
            (Some(since), false) => {
                self.stalled_since = None;
                self.trace.emit(now, || TraceEvent::PcieCreditGrant {
                    stalled_ns: now.as_nanos() - since.as_nanos(),
                });
            }
            _ => {}
        }

        // IIO occupancy: one cacheline of hysteresis.
        if self.traced_occupancy.is_nan() || (occupancy - self.traced_occupancy).abs() >= 1.0 {
            self.traced_occupancy = occupancy;
            self.trace.emit(now, || TraceEvent::IioOccupancy {
                cachelines: occupancy,
            });
        }

        // NIC backlog: a page of hysteresis, plus the empty transition.
        if backlog.abs_diff(self.traced_backlog) >= 4096
            || ((backlog == 0) != (self.traced_backlog == 0))
        {
            self.traced_backlog = backlog;
            self.trace
                .emit(now, || TraceEvent::NicBacklog { bytes: backlog });
        }

        // DDIO eviction fraction: 1% hysteresis.
        if self.traced_eviction.is_nan() || (eviction - self.traced_eviction).abs() >= 0.01 {
            self.traced_eviction = eviction;
            self.trace
                .emit(now, || TraceEvent::DdioEviction { fraction: eviction });
        }
    }

    // ------------------------------------------------------------ accessors

    /// The MSR counter bank (hostCC reads signals from here).
    pub fn msr(&self) -> &MsrBank {
        &self.msr
    }

    /// The MBA actuator (hostCC writes response levels here).
    pub fn mba_mut(&mut self) -> &mut Mba {
        &mut self.mba
    }

    /// Immutable MBA access.
    pub fn mba(&self) -> &Mba {
        &self.mba
    }

    /// Split borrow for the hostCC control loop: read the counters while
    /// holding the actuator mutably.
    pub fn msr_and_mba(&mut self) -> (&MsrBank, &mut Mba) {
        (&self.msr, &mut self.mba)
    }

    /// The MApp workload (degree changes, throughput accounting).
    pub fn mapp_mut(&mut self) -> &mut MApp {
        &mut self.mapp
    }

    /// Immutable MApp access.
    pub fn mapp(&self) -> &MApp {
        &self.mapp
    }

    /// The memory controller (utilization and attribution metrics).
    pub fn mc(&self) -> &MemoryController {
        &self.mc
    }

    /// The DDIO state.
    pub fn ddio_mut(&mut self) -> &mut Ddio {
        &mut self.ddio
    }

    /// Whether DDIO (DMA into LLC) is currently enabled.
    pub fn ddio_enabled(&self) -> bool {
        self.cfg.ddio_enabled
    }

    /// Flip DDIO on or off mid-run (chaos: a BIOS/driver reconfiguration).
    /// Safe at a tick boundary: the eviction fraction and DMA-landing
    /// decisions are evaluated per tick from `cfg.ddio_enabled`, so bytes
    /// already in the IIO simply drain under the new policy.
    pub fn set_ddio_enabled(&mut self, enabled: bool) {
        self.cfg.ddio_enabled = enabled;
    }

    /// NIC buffer backlog in bytes.
    pub fn nic_backlog_bytes(&self) -> u64 {
        self.nic.backlog_bytes()
    }

    /// NIC arrival count in the current window.
    pub fn nic_arrivals(&self) -> u64 {
        self.nic.arrivals
    }

    /// NIC drop count in the current window.
    pub fn nic_drops(&self) -> u64 {
        self.nic.drops
    }

    /// Peak NIC buffer occupancy in the current window.
    pub fn nic_peak_bytes(&self) -> u64 {
        self.nic.peak_used_bytes
    }

    /// Application bytes still waiting in the copy backlog.
    pub fn copy_backlog_app_bytes(&self) -> f64 {
        self.copy.backlog_app_bytes(&self.cfg)
    }

    /// Memory bandwidth attributed to network traffic (DMA + copy) over a
    /// window of `dt`.
    pub fn net_mem_rate(&self, window: Nanos) -> Rate {
        if window == Nanos::ZERO {
            return Rate::ZERO;
        }
        let bytes = self.mc.served_iio_bytes + self.mc.served_copy_bytes;
        Rate::bytes_per_ns(bytes / window.as_nanos() as f64)
    }

    /// Memory bandwidth used by MApp over a window of `dt`.
    pub fn mapp_mem_rate(&self, window: Nanos) -> Rate {
        if window == Nanos::ZERO {
            return Rate::ZERO;
        }
        Rate::bytes_per_ns(self.mc.served_mapp_bytes / window.as_nanos() as f64)
    }

    /// MApp application-level throughput over a window.
    pub fn mapp_app_rate(&self, window: Nanos) -> Rate {
        if window == Nanos::ZERO {
            return Rate::ZERO;
        }
        Rate::bytes_per_ns(self.mapp.app_bytes(&self.cfg) / window.as_nanos() as f64)
    }

    /// Packets ever delivered, across window resets.
    pub fn delivered_packets_total(&self) -> u64 {
        self.delivered_packets_total
    }

    /// Take a read-only telemetry snapshot of the whole datapath.
    pub fn probe(&self) -> HostProbe {
        let credits_avail =
            (self.cfg.pcie_credit_bytes() - self.wire.inflight_bytes() - self.iio.waiting_bytes())
                .max(0.0);
        HostProbe {
            nic_arrivals_total: self.nic.arrivals_total(),
            nic_drops_total: self.nic.drops_total(),
            nic_queued: self.nic.len() as u64,
            nic_backlog_bytes: self.nic.backlog_bytes(),
            iio_pending: self.iio.pending_packets() as u64,
            delivered_total: self.delivered_packets_total,
            pcie_inflight_bytes: self.wire.inflight_bytes(),
            pcie_credits_avail_bytes: credits_avail,
            pcie_credit_limit_bytes: self.cfg.pcie_credit_bytes(),
            iio_waiting_bytes: self.iio.waiting_bytes(),
            iio_inserted_bytes: self.iio.inserted_cum(),
            iio_admitted_bytes: self.iio.admitted_cum(),
            mba_requested: self.mba.requested_level(),
            ddio_eviction_fraction: self.ddio.eviction_fraction(&self.cfg),
            copy_backlog_app_bytes: self.copy.backlog_app_bytes(&self.cfg),
            mc_served_bytes: self.mc.served_iio_bytes
                + self.mc.served_mapp_bytes
                + self.mc.served_copy_bytes,
            mc_utilization: self.mc.utilization(),
        }
    }

    /// Reset all window accounting (after warm-up).
    pub fn reset_window(&mut self) {
        self.nic.reset_window();
        self.mc.reset_window();
        self.mapp.reset_window();
        self.copy.reset_window();
        self.delivered_payload_bytes = 0;
        self.delivered_packets = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostcc_fabric::{FlowId, Packet};

    fn host(degree: f64) -> RxHost {
        RxHost::new(HostConfig::paper_default(), degree)
    }

    /// Drive `host` with a fixed arrival rate for `duration`; returns
    /// delivered payload bytes.
    fn drive(host: &mut RxHost, rate: Rate, payload: u32, duration: Nanos) -> u64 {
        let dt = host.cfg().tick;
        let mut now = Nanos::ZERO;
        let mut next_arrival = Nanos::ZERO;
        let gap = rate.time_for_bytes((payload + 66) as u64);
        let mut id = 0;
        while now < duration {
            now += dt;
            while next_arrival <= now {
                let pkt = Packet::data(id, FlowId(0), 0, payload, false, next_arrival);
                host.on_wire_arrival(pkt, next_arrival);
                id += 1;
                next_arrival += gap;
            }
            host.tick(now);
        }
        host.delivered_payload_bytes
    }

    #[test]
    fn uncongested_line_rate_flows_through() {
        let mut h = host(0.0);
        let dur = Nanos::from_millis(2);
        let delivered = drive(&mut h, Rate::gbps(100.0), 4030, dur);
        let goodput = Rate::bytes_per_ns(delivered as f64 / dur.as_nanos() as f64);
        // ~98.4% of 100 Gbps is payload; allow startup transient.
        assert!(
            goodput.as_gbps() > 92.0,
            "uncongested goodput = {goodput}, want ≈ 98"
        );
        assert_eq!(h.nic_drops(), 0, "no drops without host congestion");
    }

    #[test]
    fn uncongested_occupancy_near_paper_anchor() {
        let mut h = host(0.0);
        drive(&mut h, Rate::gbps(100.0), 4030, Nanos::from_millis(1));
        // Average I_S from the MSR integral over the last stretch.
        let f = h.cfg().f_iio_ghz;
        let rocc = h.msr().rocc(f);
        let is = rocc as f64 / (Nanos::from_millis(1).as_nanos() as f64 * f);
        assert!(
            (55.0..75.0).contains(&is),
            "uncongested I_S = {is}, paper anchor ≈ 65"
        );
    }

    #[test]
    fn severe_congestion_throttles_pcie_and_fills_nic() {
        let mut h = host(3.0);
        let dur = Nanos::from_millis(3);
        let delivered = drive(&mut h, Rate::gbps(100.0), 4030, dur);
        let goodput = Rate::bytes_per_ns(delivered as f64 / dur.as_nanos() as f64);
        assert!(
            goodput.as_gbps() < 60.0,
            "3x congestion must throttle PCIe: got {goodput}"
        );
        assert!(goodput.as_gbps() > 25.0, "but not collapse: got {goodput}");
        assert!(h.nic_drops() > 0, "overload must drop at the NIC");
    }

    #[test]
    fn congested_occupancy_saturates_at_credit_limit() {
        let mut h = host(3.0);
        let mut max_occ: f64 = 0.0;
        let dt = h.cfg().tick;
        let mut now = Nanos::ZERO;
        let mut id = 0;
        let gap = Rate::gbps(100.0).time_for_bytes(4096);
        let mut next = Nanos::ZERO;
        while now < Nanos::from_millis(2) {
            now += dt;
            while next <= now {
                h.on_wire_arrival(Packet::data(id, FlowId(0), 0, 4030, false, next), next);
                id += 1;
                next += gap;
            }
            let out = h.tick(now);
            max_occ = max_occ.max(out.occupancy_cl);
        }
        assert!(
            (85.0..=93.0).contains(&max_occ),
            "I_S must saturate near 93: got {max_occ}"
        );
    }

    #[test]
    fn mapp_alone_bandwidth_anchors() {
        // Paper §2.2: MApp-only observed bandwidth ≈ 16.0 / 28.7 / 34.8
        // GB/s at 1× / 2× / 3×. The model is calibrated to land within
        // ~15 % of each anchor.
        for (degree, want) in [(1.0, 16.0), (2.0, 28.7), (3.0, 34.8)] {
            let mut h = host(degree);
            let dur = Nanos::from_millis(1);
            let dt = h.cfg().tick;
            let mut now = Nanos::ZERO;
            while now < dur {
                now += dt;
                h.tick(now);
            }
            let got = h.mapp_mem_rate(dur).as_gbytes_per_sec();
            let err = (got - want).abs() / want;
            assert!(
                err < 0.15,
                "MApp {degree}x alone: got {got:.1} GB/s, want ≈ {want}"
            );
        }
    }

    #[test]
    fn mba_pause_restores_line_rate_under_congestion() {
        let mut h = host(3.0);
        h.mba_mut().force_level(4); // pause MApp
        let dur = Nanos::from_millis(2);
        let delivered = drive(&mut h, Rate::gbps(100.0), 4030, dur);
        let goodput = Rate::bytes_per_ns(delivered as f64 / dur.as_nanos() as f64);
        assert!(
            goodput.as_gbps() > 90.0,
            "paused MApp must restore line rate: got {goodput}"
        );
    }

    #[test]
    fn mba_levels_monotonically_help_network() {
        let mut last = 0.0;
        for level in 0..=4u8 {
            let mut h = host(3.0);
            h.mba_mut().force_level(level);
            let dur = Nanos::from_millis(2);
            let delivered = drive(&mut h, Rate::gbps(100.0), 4030, dur);
            let goodput = delivered as f64 / dur.as_nanos() as f64 * 8.0;
            assert!(
                goodput > last - 1.0,
                "level {level}: goodput {goodput:.1} not above level {}: {last:.1}",
                level.wrapping_sub(1)
            );
            last = goodput;
        }
    }

    #[test]
    fn window_reset_clears_accounting() {
        let mut h = host(1.0);
        drive(&mut h, Rate::gbps(50.0), 4030, Nanos::from_micros(100));
        h.reset_window();
        assert_eq!(h.delivered_payload_bytes, 0);
        assert_eq!(h.nic_arrivals(), 0);
        assert_eq!(h.mc().served_mapp_bytes, 0.0);
    }

    #[test]
    fn congested_run_traces_the_domino_stages() {
        use hostcc_trace::{TraceFilter, TraceHandle, TraceKind, Tracer};
        let mut h = host(3.0);
        let trace = TraceHandle::new(Tracer::new(1 << 16, TraceFilter::all()));
        h.set_trace(trace.clone());
        drive(&mut h, Rate::gbps(100.0), 4030, Nanos::from_millis(2));
        let c = trace.counts().unwrap();
        assert!(c.of(TraceKind::IioOccupancy) > 0, "occupancy moved");
        assert!(c.of(TraceKind::NicBacklog) > 0, "NIC backlog grew");
        assert!(c.of(TraceKind::PcieStall) > 0, "credits must stall at 3x");
        assert!(c.of(TraceKind::PacketDrop) > 0, "overload drops at the NIC");
        assert_eq!(
            c.of(TraceKind::PacketDrop),
            h.nic_drops(),
            "every NIC drop traced exactly once"
        );
    }

    #[test]
    fn tracing_does_not_change_the_datapath() {
        use hostcc_trace::{TraceFilter, TraceHandle, Tracer};
        let dur = Nanos::from_millis(2);
        let mut plain = host(3.0);
        let plain_bytes = drive(&mut plain, Rate::gbps(100.0), 4030, dur);
        let mut traced = host(3.0);
        traced.set_trace(TraceHandle::new(Tracer::new(1 << 16, TraceFilter::all())));
        let traced_bytes = drive(&mut traced, Rate::gbps(100.0), 4030, dur);
        assert_eq!(plain_bytes, traced_bytes);
        assert_eq!(plain.nic_drops(), traced.nic_drops());
    }

    #[test]
    fn probe_conserves_packets_and_credits_under_congestion() {
        let mut h = host(3.0);
        let dt = h.cfg().tick;
        let gap = Rate::gbps(100.0).time_for_bytes(4096);
        let (mut now, mut next, mut id) = (Nanos::ZERO, Nanos::ZERO, 0u64);
        while now < Nanos::from_millis(2) {
            now += dt;
            while next <= now {
                h.on_wire_arrival(Packet::data(id, FlowId(0), 0, 4030, false, next), next);
                id += 1;
                next += gap;
            }
            h.tick(now);
            let p = h.probe();
            assert_eq!(
                p.nic_arrivals_total,
                p.nic_queued + p.iio_pending + p.delivered_total,
                "packet conservation at t={now:?}"
            );
            assert!(
                p.pcie_inflight_bytes + p.iio_waiting_bytes <= p.pcie_credit_limit_bytes + 1.0,
                "credit overrun at t={now:?}"
            );
            assert!(
                (p.iio_waiting_bytes - (p.iio_inserted_bytes - p.iio_admitted_bytes)).abs() < 64.0,
                "IIO accounting drift at t={now:?}"
            );
        }
        // Something actually flowed and dropped at 3x congestion.
        let p = h.probe();
        assert!(p.delivered_total > 0 && p.nic_drops_total > 0);
        // Window reset leaves cumulative conservation intact.
        h.reset_window();
        let p = h.probe();
        assert_eq!(
            p.nic_arrivals_total,
            p.nic_queued + p.iio_pending + p.delivered_total
        );
    }

    #[test]
    fn delivered_packets_preserve_fifo_order() {
        let mut h = host(0.0);
        let dt = h.cfg().tick;
        let mut now = Nanos::ZERO;
        for id in 0..50 {
            h.on_wire_arrival(Packet::data(id, FlowId(0), 0, 4030, false, now), now);
        }
        let mut seen = Vec::new();
        while now < Nanos::from_micros(100) {
            now += dt;
            let out = h.tick(now);
            seen.extend(out.delivered.iter().map(|d| d.pkt.id));
        }
        assert_eq!(seen, (0..50).collect::<Vec<u64>>());
    }
}
