//! The sender-side host datapath: TX DMA reads under memory contention.
//!
//! hostCC's architecture is symmetric (paper Fig 5): "at the sender,
//! hostCC uses host-local congestion response to ensure that network
//! traffic is not starved, even at sub-RTT granularity" (§1, §3.2). The
//! paper's evaluation places the antagonist at the receiver, so the sender
//! path can stay simpler than [`crate::RxHost`]: outbound packets must be
//! DMA-*read* from host memory before the NIC can serialize them, and that
//! read bandwidth competes with sender-local MApp traffic at the sender's
//! memory controller.
//!
//! The model: packets queue for TX DMA; per tick the memory controller
//! arbitrates between the TX-DMA entity (weight = credit-capped in-flight
//! reads, like the receive side) and the sender's MApp; granted bytes
//! release packets, in order, to the NIC. The same MSR counter bank is
//! maintained (occupancy of pending reads, insertions of granted bytes) so
//! an unmodified [`hostcc-core`] controller can drive the sender-side
//! response.

use std::collections::VecDeque;

use hostcc_fabric::Packet;
use hostcc_sim::Nanos;

use crate::config::{HostConfig, CACHELINE};
use crate::mapp::MApp;
use crate::mba::Mba;
use crate::memctrl::{Demand, MemoryController};
use crate::msr::MsrBank;

/// The sender host model.
#[derive(Debug)]
pub struct TxHost {
    cfg: HostConfig,
    /// Packets awaiting TX DMA, FIFO, with remaining DMA bytes for the
    /// head.
    queue: VecDeque<(Packet, f64)>,
    queued_bytes: f64,
    mc: MemoryController,
    mapp: MApp,
    mba: Mba,
    msr: MsrBank,
    /// Packets released to the NIC in the current window.
    pub released_packets: u64,
    /// Wire bytes released in the current window.
    pub released_bytes: u64,
}

impl TxHost {
    /// Build a sender host with the given MApp degree.
    pub fn new(cfg: HostConfig, mapp_degree: f64) -> Self {
        cfg.validate();
        let mba = Mba::new(cfg.mba_added_latency, cfg.mba_write_latency);
        TxHost {
            queue: VecDeque::new(),
            queued_bytes: 0.0,
            mc: MemoryController::new(),
            mapp: MApp::new(mapp_degree),
            mba,
            msr: MsrBank::new(),
            released_packets: 0,
            released_bytes: 0,
            cfg,
        }
    }

    /// Transport handed a packet to the sender NIC; it must be DMA-read
    /// before transmission.
    pub fn enqueue(&mut self, pkt: Packet) {
        let dma = pkt.wire_bytes() as f64 * self.cfg.pcie_overhead;
        self.queued_bytes += dma;
        self.queue.push_back((pkt, dma));
    }

    /// Bytes awaiting TX DMA.
    pub fn backlog_bytes(&self) -> f64 {
        self.queued_bytes
    }

    /// Advance one tick; returns packets whose DMA completed (ready for
    /// the NIC to serialize).
    ///
    /// Convenience wrapper over [`TxHost::tick_into`] that allocates the
    /// output list; the experiment driver reuses a buffer instead.
    pub fn tick(&mut self, now: Nanos) -> Vec<Packet> {
        let mut out = Vec::new();
        self.tick_into(now, &mut out);
        out
    }

    /// Allocation-free core of [`TxHost::tick`]: released packets are
    /// appended to `out` (not cleared first).
    pub fn tick_into(&mut self, now: Nanos, out: &mut Vec<Packet>) {
        let dt = self.cfg.tick;
        let mba_added = self.mba.effective_added_latency(now);

        // TX DMA reads are posted through the same kind of credit-limited
        // engine as receive writes; pending reads beyond the credit pool
        // wait in host memory and cost nothing.
        let credit_bytes = self.cfg.pcie_credit_bytes();
        let inflight = self.queued_bytes.min(credit_bytes);
        let dma_demand = Demand {
            bytes: self.queued_bytes.min(self.cfg.pcie_rate.bytes_in(dt)),
            weight: self.cfg.weight_iio * inflight / CACHELINE as f64,
        };
        let mapp_demand = self.mapp.demand(&self.cfg, mba_added, dt);
        let grants = self
            .mc
            .tick(&self.cfg, dt, dma_demand, mapp_demand, Demand::NONE);
        self.mapp.serve(grants.mapp, dt);

        // Release packets covered by the granted DMA bytes.
        let mut budget = grants.iio.min(self.queued_bytes);
        self.msr.add_insertions(budget);
        while budget > 1e-9 {
            let Some((_, remaining)) = self.queue.front_mut() else {
                break;
            };
            let take = remaining.min(budget);
            *remaining -= take;
            budget -= take;
            self.queued_bytes -= take;
            if *remaining <= 1e-9 {
                let (pkt, _) = self.queue.pop_front().expect("head exists");
                self.released_packets += 1;
                self.released_bytes += pkt.wire_bytes();
                out.push(pkt);
            }
        }
        if self.queue.is_empty() {
            self.queued_bytes = 0.0; // absorb float residue
        }

        // Occupancy signal: pending reads, capped at the credit pool.
        let occ_cl = (self.queued_bytes / CACHELINE as f64).min(self.cfg.pcie_max_credit_cl as f64);
        self.msr.integrate_occupancy(occ_cl, dt);
    }

    /// The MSR bank (sender-side hostCC reads it).
    pub fn msr(&self) -> &MsrBank {
        &self.msr
    }

    /// Split borrow for the sender-side control loop.
    pub fn msr_and_mba(&mut self) -> (&MsrBank, &mut Mba) {
        (&self.msr, &mut self.mba)
    }

    /// The sender MApp.
    pub fn mapp_mut(&mut self) -> &mut MApp {
        &mut self.mapp
    }

    /// The sender memory controller (metrics).
    pub fn mc(&self) -> &MemoryController {
        &self.mc
    }

    /// Reset window accounting.
    pub fn reset_window(&mut self) {
        self.mc.reset_window();
        self.mapp.reset_window();
        self.released_packets = 0;
        self.released_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostcc_fabric::FlowId;
    use hostcc_sim::Rate;

    fn pkt(id: u64) -> Packet {
        Packet::data(id, FlowId(0), 0, 4030, false, Nanos::ZERO)
    }

    fn drive(host: &mut TxHost, offered_gbps: f64, dur: Nanos) -> u64 {
        let dt = host.cfg.tick;
        let gap = Rate::gbps(offered_gbps).time_for_bytes(4096);
        let mut now = Nanos::ZERO;
        let mut next = Nanos::ZERO;
        let mut id = 0;
        let mut released = 0;
        while now < dur {
            now += dt;
            while next <= now {
                host.enqueue(pkt(id));
                id += 1;
                next += gap;
            }
            released += host.tick(now).len() as u64;
        }
        released
    }

    #[test]
    fn uncontended_sender_passes_line_rate() {
        let mut h = TxHost::new(HostConfig::paper_default(), 0.0);
        let dur = Nanos::from_millis(2);
        let released = drive(&mut h, 100.0, dur);
        let gbps = released as f64 * 4096.0 * 8.0 / dur.as_nanos() as f64;
        assert!(gbps > 95.0, "uncontended TX: {gbps:.1} Gbps");
        assert!(h.backlog_bytes() < 20_000.0, "no standing TX backlog");
    }

    #[test]
    fn sender_mapp_starves_tx_dma() {
        let mut h = TxHost::new(HostConfig::paper_default(), 3.0);
        let dur = Nanos::from_millis(3);
        let released = drive(&mut h, 100.0, dur);
        let gbps = released as f64 * 4096.0 * 8.0 / dur.as_nanos() as f64;
        // Milder than the receive side (no copy-engine contention): the
        // paper notes host congestion "is more prominent at the receiver"
        // (§2.1), which this asymmetry reflects.
        assert!(
            (40.0..80.0).contains(&gbps),
            "3x sender congestion throttles TX DMA: {gbps:.1} Gbps"
        );
        assert!(h.backlog_bytes() > 100_000.0, "TX backlog builds");
    }

    #[test]
    fn mba_pause_restores_tx_rate() {
        let mut h = TxHost::new(HostConfig::paper_default(), 3.0);
        h.mba.force_level(4);
        let dur = Nanos::from_millis(2);
        let released = drive(&mut h, 100.0, dur);
        let gbps = released as f64 * 4096.0 * 8.0 / dur.as_nanos() as f64;
        assert!(gbps > 90.0, "paused sender MApp: {gbps:.1} Gbps");
    }

    #[test]
    fn packets_release_in_order() {
        let mut h = TxHost::new(HostConfig::paper_default(), 0.0);
        for i in 0..20 {
            h.enqueue(pkt(i));
        }
        let mut seen = Vec::new();
        let mut now = Nanos::ZERO;
        for _ in 0..10_000 {
            now += h.cfg.tick;
            seen.extend(h.tick(now).into_iter().map(|p| p.id));
            if seen.len() == 20 {
                break;
            }
        }
        assert_eq!(seen, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn msr_counters_track_occupancy_and_insertions() {
        let mut h = TxHost::new(HostConfig::paper_default(), 3.0);
        drive(&mut h, 100.0, Nanos::from_millis(1));
        assert!(h.msr().rins() > 0);
        assert!(h.msr().rocc(0.5) > 0);
    }
}
