//! IOMMU / IOTLB model: host congestion *before* the IIO.
//!
//! The paper's §6 highlights a second source of host congestion the IIO
//! occupancy signal cannot capture: "PCIe underutilization due to
//! bottlenecks within hardware devices for memory protection (e.g.,
//! IOMMU)" — every DMA must translate its I/O virtual address, and an
//! IOTLB miss stalls the transaction for a page-table walk [1, 6, 9, 28,
//! 33]. Crucially, this bottleneck sits on the NIC side of the IIO: the
//! IIO buffer stays *empty* while the NIC overflows, so hostCC's `I_S`
//! signal never fires — the paper's motivation for "additional congestion
//! signals to capture IOMMU-induced host congestion".
//!
//! Model: DMA proceeds TLP by TLP; a fraction `miss_rate` of TLPs pay a
//! page-walk latency, stretching the effective PCIe streaming rate to
//! `tlp_bytes / (tlp_time + miss_rate × walk_latency)`. The miss rate
//! follows the classic working-set form `1 − entries/footprint`: the DMA
//! buffer pool's page footprint vs the IOTLB capacity.

use hostcc_sim::{Nanos, Rate};

/// IOMMU configuration for one host.
#[derive(Debug, Clone)]
pub struct IommuConfig {
    /// Whether DMA remapping is enabled at all.
    pub enabled: bool,
    /// IOTLB capacity in entries (one entry maps one I/O page).
    pub iotlb_entries: u64,
    /// Pages in the driver's DMA buffer pool working set (rings × ring
    /// size × buffers-per-slot; grows with flow count and buffer tuning).
    pub footprint_pages: u64,
    /// Latency of one page-table walk on an IOTLB miss.
    pub walk_latency: Nanos,
    /// PCIe TLP payload size (the unit that pays the translation).
    pub tlp_bytes: u64,
}

impl IommuConfig {
    /// IOMMU disabled (the paper's testbed default — and the common
    /// datacenter configuration precisely *because* of this bottleneck).
    pub fn disabled() -> Self {
        IommuConfig {
            enabled: false,
            iotlb_entries: 128,
            footprint_pages: 256,
            walk_latency: Nanos::from_nanos(250),
            tlp_bytes: 512,
        }
    }

    /// An enabled IOMMU with a working set of `footprint_pages` I/O pages.
    pub fn with_footprint(footprint_pages: u64) -> Self {
        IommuConfig {
            enabled: true,
            footprint_pages,
            ..Self::disabled()
        }
    }

    /// Steady-state IOTLB miss probability: `max(0, 1 − entries/footprint)`
    /// (uniform reuse over the working set).
    pub fn miss_rate(&self) -> f64 {
        if !self.enabled || self.footprint_pages == 0 {
            return 0.0;
        }
        (1.0 - self.iotlb_entries as f64 / self.footprint_pages as f64).clamp(0.0, 1.0)
    }

    /// The effective PCIe streaming rate once translation stalls are
    /// accounted: `tlp / (tlp/raw_rate + miss_rate × walk)`.
    pub fn effective_rate(&self, raw: Rate) -> Rate {
        let m = self.miss_rate();
        if m == 0.0 {
            return raw;
        }
        let tlp_time = self.tlp_bytes as f64 / raw.as_bytes_per_ns();
        let stalled = tlp_time + m * self.walk_latency.as_nanos() as f64;
        Rate::bytes_per_ns(self.tlp_bytes as f64 / stalled)
    }
}

impl Default for IommuConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_transparent() {
        let i = IommuConfig::disabled();
        assert_eq!(i.miss_rate(), 0.0);
        let raw = Rate::gbps(128.0);
        assert_eq!(i.effective_rate(raw).as_gbps(), raw.as_gbps());
    }

    #[test]
    fn small_working_set_fits_the_iotlb() {
        let mut i = IommuConfig::with_footprint(100);
        i.iotlb_entries = 128;
        assert_eq!(i.miss_rate(), 0.0);
    }

    #[test]
    fn miss_rate_follows_working_set() {
        let i = IommuConfig::with_footprint(256);
        assert!((i.miss_rate() - 0.5).abs() < 1e-12);
        let i = IommuConfig::with_footprint(1280);
        assert!((i.miss_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn large_footprint_collapses_pcie_throughput() {
        // At 90% miss rate: per-512B-TLP time = 32 ns + 0.9·250 ns = 257 ns
        // → ~2 GB/s ≈ 16 Gbps: the collapse reported for IOMMU-enabled
        // high-bandwidth receive [9].
        let i = IommuConfig::with_footprint(1280);
        let eff = i.effective_rate(Rate::gbps(128.0));
        assert!(
            (14.0..18.0).contains(&eff.as_gbps()),
            "effective rate = {eff}"
        );
    }

    #[test]
    fn effective_rate_monotone_in_footprint() {
        let raw = Rate::gbps(128.0);
        let mut last = f64::INFINITY;
        for fp in [64u64, 128, 256, 512, 1024, 4096] {
            let eff = IommuConfig::with_footprint(fp)
                .effective_rate(raw)
                .as_gbps();
            assert!(eff <= last + 1e-9, "footprint {fp}: {eff} > {last}");
            last = eff;
        }
    }
}
