//! Intel Data Direct I/O (DDIO) model: DMA into the last-level cache.
//!
//! With DDIO enabled the IIO writes incoming cachelines into a small LLC
//! partition instead of DRAM (§2.1). Two consequences the simulation must
//! capture:
//!
//! * **hits are cheap** — the IIO→LLC write has lower latency than
//!   IIO→DRAM and consumes no memory-write bandwidth;
//! * **evictions are worse than no DDIO** — an evicting write costs a full
//!   cacheline of memory bandwidth *and* extra latency because "IIO to LLC
//!   write can only be executed after the eviction has completed".
//!
//! The eviction fraction is modeled from the DDIO partition's residency:
//! bytes DMA'd but not yet consumed by the CPU accumulate; once they
//! overflow the partition the eviction fraction climbs from the baseline
//! pollution level toward 1. This reproduces the paper's observations that
//! (a) under host congestion "the majority of cachelines are evicted from
//! LLC before the CPU can consume them" (Fig 2), and (b) eviction rates
//! rise with MTU size and flow count (Fig 3); the latter dependence enters
//! through [`Ddio::set_pollution_factor`], a phenomenological knob the
//! workload layer sets from MTU/flow-count (the paper itself notes that
//! precise DDIO behaviour is opaque without hardware visibility, §5.2).

use hostcc_sim::Nanos;

use crate::config::HostConfig;

/// DDIO state at one receiving host.
#[derive(Debug, Clone)]
pub struct Ddio {
    /// Bytes DMA'd into the LLC partition and not yet consumed by the CPU.
    resident_bytes: f64,
    /// Workload-dependent multiplier on the baseline pollution eviction
    /// fraction (≥ 1; grows with MTU size and flow count).
    pollution_factor: f64,
    /// Host-local (MApp) memory utilization, updated per tick; LLC churn
    /// from CPU traffic evicts DMA'd lines (§2.2).
    mapp_util: f64,
}

impl Ddio {
    /// Fresh DDIO state.
    pub fn new() -> Self {
        Ddio {
            resident_bytes: 0.0,
            pollution_factor: 1.0,
            mapp_util: 0.0,
        }
    }

    /// Update the host-local traffic utilization (fraction of peak memory
    /// bandwidth MApp currently consumes).
    pub fn set_mapp_util(&mut self, u: f64) {
        self.mapp_util = u.clamp(0.0, 1.0);
    }

    /// Set the workload pollution multiplier (≥ 1).
    pub fn set_pollution_factor(&mut self, f: f64) {
        assert!(f >= 1.0, "pollution factor must be >= 1");
        self.pollution_factor = f;
    }

    /// Bytes currently resident in the DDIO partition.
    pub fn resident_bytes(&self) -> f64 {
        self.resident_bytes
    }

    /// Current eviction fraction in `[base, 1]`.
    ///
    /// Three contributions: baseline pollution (scaled by the workload
    /// factor), LLC churn from host-local CPU traffic, and overflow of the
    /// DDIO partition (residency ramp from 1× to 2× the window).
    pub fn eviction_fraction(&self, cfg: &HostConfig) -> f64 {
        if !cfg.ddio_enabled {
            return 1.0;
        }
        let base = (cfg.ddio_base_eviction * self.pollution_factor).min(1.0);
        let cross = cfg.ddio_cross_pollution * self.mapp_util;
        let w = cfg.ddio_window_bytes as f64;
        let overflow = ((self.resident_bytes - w) / w).clamp(0.0, 1.0);
        let e = base + cross;
        (e + (1.0 - e.min(1.0)) * overflow).clamp(0.0, 1.0)
    }

    /// Blended IIO write-service latency for the occupancy signal:
    /// hits at `l_ddio_min`, evictions at `ℓ_m + penalty`.
    pub fn blended_latency(&self, cfg: &HostConfig, l_mem: Nanos) -> Nanos {
        if !cfg.ddio_enabled {
            return l_mem;
        }
        let e = self.eviction_fraction(cfg);
        let hit = cfg.l_ddio_min.as_nanos() as f64;
        let miss = (l_mem + cfg.ddio_evict_penalty).as_nanos() as f64;
        Nanos::from_nanos(((1.0 - e) * hit + e * miss).round() as u64)
    }

    /// Account DMA'd bytes entering the LLC partition.
    pub fn on_dma(&mut self, cfg: &HostConfig, bytes: f64) {
        if cfg.ddio_enabled {
            self.resident_bytes += bytes;
        }
    }

    /// Account CPU consumption (copy) removing bytes from the partition.
    pub fn on_consumed(&mut self, cfg: &HostConfig, bytes: f64) {
        if cfg.ddio_enabled {
            self.resident_bytes = (self.resident_bytes - bytes).max(0.0);
        }
    }
}

impl Default for Ddio {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on() -> HostConfig {
        HostConfig::paper_ddio()
    }

    fn off() -> HostConfig {
        HostConfig::paper_default()
    }

    #[test]
    fn disabled_means_full_eviction_semantics() {
        let d = Ddio::new();
        assert_eq!(d.eviction_fraction(&off()), 1.0);
        assert_eq!(
            d.blended_latency(&off(), Nanos::from_nanos(400)),
            Nanos::from_nanos(400)
        );
    }

    #[test]
    fn baseline_pollution_when_cpu_keeps_up() {
        let cfg = on();
        let mut d = Ddio::new();
        d.on_dma(&cfg, 10_000.0);
        assert!((d.eviction_fraction(&cfg) - cfg.ddio_base_eviction).abs() < 1e-9);
    }

    #[test]
    fn overflow_drives_eviction_to_one() {
        let cfg = on();
        let mut d = Ddio::new();
        d.on_dma(&cfg, 2.0 * cfg.ddio_window_bytes as f64);
        assert!((d.eviction_fraction(&cfg) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn consumption_reclaims_the_window() {
        let cfg = on();
        let mut d = Ddio::new();
        d.on_dma(&cfg, 2.0 * cfg.ddio_window_bytes as f64);
        d.on_consumed(&cfg, 1.5 * cfg.ddio_window_bytes as f64);
        let e = d.eviction_fraction(&cfg);
        assert!(e < 1.0);
        assert!(e >= cfg.ddio_base_eviction);
    }

    #[test]
    fn blended_latency_between_hit_and_miss() {
        let cfg = on();
        let d = Ddio::new();
        let l = d.blended_latency(&cfg, Nanos::from_nanos(400));
        assert!(l > cfg.l_ddio_min);
        assert!(l < Nanos::from_nanos(500));
        // Uncongested anchor: e = 0.15, ℓ_m = 323 →
        // 0.85·200 + 0.15·423 ≈ 233 ns → I_S ≈ 47 ≈ the paper's ~45.
        let l2 = d.blended_latency(&cfg, Nanos::from_nanos(323));
        let is = 12.875 * l2.as_nanos() as f64 / 64.0;
        assert!((40.0..52.0).contains(&is), "DDIO-on uncongested I_S = {is}");
    }

    #[test]
    fn pollution_factor_scales_baseline() {
        let cfg = on();
        let mut d = Ddio::new();
        d.set_pollution_factor(3.0);
        assert!((d.eviction_fraction(&cfg) - 0.45).abs() < 1e-9);
        // And saturates at 1.
        d.set_pollution_factor(20.0);
        assert_eq!(d.eviction_fraction(&cfg), 1.0);
    }

    #[test]
    fn resident_never_negative() {
        let cfg = on();
        let mut d = Ddio::new();
        d.on_dma(&cfg, 100.0);
        d.on_consumed(&cfg, 1e9);
        assert_eq!(d.resident_bytes(), 0.0);
    }
}
