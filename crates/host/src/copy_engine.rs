//! The receive-side copy engine: the CPU work that moves delivered packet
//! data from kernel buffers to the application.
//!
//! This is where the paper's "compute bottleneck" at 1× congestion comes
//! from: per-byte receive processing (dominated by the skb→user copy)
//! slows down as memory access latency inflates, and at 100 Gbps the four
//! NetApp-T cores are only *just* sufficient when the memory is unloaded
//! ("DCTCP needs a minimum of 4 cores to saturate 100 Gbps", §2.2).
//!
//! Model: a closed-loop entity like MApp — `net_cores ×
//! copy_inflight_per_core` cachelines in flight against the current memory
//! latency — but demand-bounded by the actual backlog of delivered-but-
//! unconsumed bytes. Each delivered application byte costs
//! `copy_mem_per_byte` bytes of memory bandwidth (1.1× by default, which
//! together with the 1.0× DMA write reproduces the paper's measured 2.1×
//! memory-bytes-per-network-byte for NetApp-T, §4.2).

use hostcc_sim::Nanos;

use crate::config::{HostConfig, CACHELINE};
use crate::memctrl::Demand;

/// The copy engine of one receiving host.
#[derive(Debug, Clone, Default)]
pub struct CopyEngine {
    /// Memory bytes still to be moved (delivered app bytes × cost factor).
    backlog_mem_bytes: f64,
    /// Application bytes copied in the current window.
    pub copied_app_bytes: f64,
    /// Memory bytes consumed in the current window.
    pub served_mem_bytes: f64,
}

impl CopyEngine {
    /// An idle engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue `app_bytes` of freshly delivered packet data for copying.
    pub fn push(&mut self, cfg: &HostConfig, app_bytes: f64) {
        self.backlog_mem_bytes += app_bytes * cfg.copy_mem_per_byte;
    }

    /// Application bytes waiting to be copied.
    pub fn backlog_app_bytes(&self, cfg: &HostConfig) -> f64 {
        self.backlog_mem_bytes / cfg.copy_mem_per_byte
    }

    /// Demand presented to the memory controller for one tick.
    pub fn demand(&self, cfg: &HostConfig, l_mem: Nanos, dt: Nanos) -> Demand {
        if self.backlog_mem_bytes <= 0.0 {
            return Demand::NONE;
        }
        let l = l_mem.as_nanos() as f64;
        if l <= 0.0 {
            return Demand::NONE;
        }
        let capacity_rate = cfg.copy_inflight() * CACHELINE as f64 / l;
        let dt_ns = dt.as_nanos() as f64;
        let bytes = (capacity_rate * dt_ns).min(self.backlog_mem_bytes);
        // Whenever there is work, the copy cores keep their full line-fill
        // concurrency in flight — the weight must NOT scale with the bytes
        // they happen to be granted, or a starved copy engine would lose
        // arbitration weight and starve further (its backlog is fed by the
        // very DMA grant it competes with).
        let weight = cfg.weight_copy * cfg.copy_inflight();
        Demand { bytes, weight }
    }

    /// Account a grant; returns application bytes that finished copying
    /// this tick (to be drained from socket buffers / counted as goodput).
    pub fn serve(&mut self, cfg: &HostConfig, granted_mem_bytes: f64) -> f64 {
        let served = granted_mem_bytes.min(self.backlog_mem_bytes);
        self.backlog_mem_bytes -= served;
        self.served_mem_bytes += served;
        let app = served / cfg.copy_mem_per_byte;
        self.copied_app_bytes += app;
        app
    }

    /// Reset window accounting (backlog persists — it is real state).
    pub fn reset_window(&mut self) {
        self.copied_app_bytes = 0.0;
        self.served_mem_bytes = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HostConfig {
        HostConfig::paper_default()
    }

    #[test]
    fn no_backlog_no_demand() {
        let e = CopyEngine::new();
        let d = e.demand(&cfg(), Nanos::from_nanos(300), Nanos::from_nanos(100));
        assert_eq!(d.bytes, 0.0);
    }

    #[test]
    fn demand_bounded_by_concurrency() {
        let c = cfg();
        let mut e = CopyEngine::new();
        e.push(&c, 1e9); // huge backlog
        let d = e.demand(&c, Nanos::from_nanos(320), Nanos::from_nanos(100));
        // 80 lines × 64 B / 320 ns = 16 B/ns → 1600 B per 100 ns tick.
        assert!((d.bytes - 1600.0).abs() < 1e-6);
        // Full concurrency in flight → weight = w_copy × 80.
        assert!((d.weight - c.weight_copy * 80.0).abs() < 1e-6);
    }

    #[test]
    fn demand_bounded_by_backlog_but_weight_holds() {
        let c = cfg();
        let mut e = CopyEngine::new();
        e.push(&c, 100.0); // 110 memory bytes
        let d = e.demand(&c, Nanos::from_nanos(320), Nanos::from_nanos(100));
        assert!((d.bytes - 110.0).abs() < 1e-9);
        // Full arbitration weight whenever work exists (see comment in
        // `demand`): starving the copy engine must not shrink its claim.
        assert!((d.weight - c.weight_copy * 80.0).abs() < 1e-9);
    }

    #[test]
    fn serve_converts_mem_to_app_bytes() {
        let c = cfg();
        let mut e = CopyEngine::new();
        e.push(&c, 1000.0);
        let app = e.serve(&c, 550.0);
        assert!((app - 500.0).abs() < 1e-9);
        assert!((e.backlog_app_bytes(&c) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn serve_never_overdraws_backlog() {
        let c = cfg();
        let mut e = CopyEngine::new();
        e.push(&c, 10.0); // 11 mem bytes
        let app = e.serve(&c, 1e9);
        assert!((app - 10.0).abs() < 1e-9);
        assert_eq!(e.backlog_app_bytes(&c), 0.0);
    }

    #[test]
    fn uncongested_capacity_exceeds_line_rate() {
        // At ℓ_m = 323 ns the engine moves ≈ 15.9 GB/s of memory bytes
        // ⇒ ≈ 14.4 GB/s of app bytes ⇒ > 100 Gbps: the copy engine is not
        // the bottleneck without host congestion.
        let c = cfg();
        let mut e = CopyEngine::new();
        e.push(&c, 1e9);
        let d = e.demand(&c, Nanos::from_nanos(323), Nanos::from_nanos(100));
        let app_rate_gbps = d.bytes / 100.0 / c.copy_mem_per_byte * 8.0;
        assert!(app_rate_gbps > 100.0, "copy cap = {app_rate_gbps} Gbps");
    }

    #[test]
    fn congested_capacity_binds_below_line_rate() {
        // At ℓ_m ≈ 560 ns the copy engine tops out below 12.5 GB/s of app
        // bytes — the 1× "compute bottleneck" regime.
        let c = cfg();
        let mut e = CopyEngine::new();
        e.push(&c, 1e9);
        let d = e.demand(&c, Nanos::from_nanos(560), Nanos::from_nanos(100));
        let app_rate_gbps = d.bytes / 100.0 / c.copy_mem_per_byte * 8.0;
        assert!(app_rate_gbps < 100.0, "copy cap = {app_rate_gbps} Gbps");
    }
}
