//! The NIC receive buffer and DMA streaming front-end.
//!
//! Packets arriving from the wire land in a small on-NIC SRAM buffer
//! (paper §2.1 step 1); when the buffer is full they are tail-dropped —
//! the *only* loss point of the lossless host network, and the drop site
//! the whole paper revolves around. The NIC streams buffered packets into
//! the PCIe as credits allow; per the paper, "the packet can be safely
//! removed from the NIC buffer as soon as DMA is initiated", so buffer
//! space frees when a packet starts streaming, not when it finishes.

use std::collections::VecDeque;

use hostcc_fabric::Packet;
use hostcc_sim::Nanos;

/// A packet that has fully entered the PCIe byte stream.
#[derive(Debug, Clone)]
pub struct StreamedPacket {
    /// The packet itself.
    pub pkt: Packet,
    /// Cumulative position of this packet's last DMA byte in the PCIe byte
    /// stream; the packet is delivered once the IIO has admitted the stream
    /// up to this offset.
    pub end_offset: f64,
    /// When the packet was enqueued in the NIC buffer (for queueing-delay
    /// diagnostics).
    pub enqueued_at: Nanos,
    /// When the packet's DMA was initiated — the instant it left the NIC
    /// SRAM (the flowscope `NicRing` stage boundary).
    pub dma_started_at: Nanos,
}

#[derive(Debug, Clone)]
struct NicEntry {
    pkt: Packet,
    dma_bytes: u64,
    progress: f64,
    started: bool,
    enqueued_at: Nanos,
    started_at: Nanos,
}

/// The NIC receive queue.
#[derive(Debug, Clone)]
pub struct NicRxQueue {
    queue: VecDeque<NicEntry>,
    capacity_bytes: u64,
    used_bytes: u64,
    cum_streamed: f64,
    /// Packets accepted into the buffer.
    pub arrivals: u64,
    /// Packets tail-dropped because the buffer was full.
    pub drops: u64,
    /// Peak buffer occupancy observed.
    pub peak_used_bytes: u64,
    /// Packets ever accepted (never reset — conservation checks).
    arrivals_total: u64,
    /// Packets ever dropped (never reset — conservation checks).
    drops_total: u64,
}

impl NicRxQueue {
    /// A queue with the given SRAM capacity.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0);
        NicRxQueue {
            queue: VecDeque::new(),
            capacity_bytes,
            used_bytes: 0,
            cum_streamed: 0.0,
            arrivals: 0,
            drops: 0,
            peak_used_bytes: 0,
            arrivals_total: 0,
            drops_total: 0,
        }
    }

    /// Offer an arriving packet; `dma_bytes` is its size on the PCIe
    /// (wire bytes × overhead). Returns `false` if tail-dropped.
    pub fn offer(&mut self, pkt: Packet, dma_bytes: u64, now: Nanos) -> bool {
        let wire = pkt.wire_bytes();
        if self.used_bytes + wire > self.capacity_bytes {
            self.drops += 1;
            self.drops_total += 1;
            return false;
        }
        self.used_bytes += wire;
        self.peak_used_bytes = self.peak_used_bytes.max(self.used_bytes);
        self.arrivals += 1;
        self.arrivals_total += 1;
        self.queue.push_back(NicEntry {
            pkt,
            dma_bytes,
            progress: 0.0,
            started: false,
            enqueued_at: now,
            started_at: now,
        });
        true
    }

    /// Stream up to `budget` DMA bytes into the PCIe, head-of-line first.
    /// Returns `(bytes_streamed, packets_that_finished_streaming)`.
    ///
    /// Convenience wrapper over [`NicRxQueue::stream_into`] that allocates
    /// the completion list; the per-tick hot path passes a reused buffer
    /// to `stream_into` instead.
    pub fn stream(&mut self, budget: f64, now: Nanos) -> (f64, Vec<StreamedPacket>) {
        let mut completed = Vec::new();
        let streamed = self.stream_into(budget, now, &mut completed);
        (streamed, completed)
    }

    /// Allocation-free core of [`NicRxQueue::stream`]: completions are
    /// appended to `completed` (not cleared first) and the bytes streamed
    /// are returned. `now` timestamps DMA initiation for packets whose
    /// streaming starts in this call.
    pub fn stream_into(
        &mut self,
        mut budget: f64,
        now: Nanos,
        completed: &mut Vec<StreamedPacket>,
    ) -> f64 {
        let mut streamed = 0.0;
        while budget > 1e-9 {
            let Some(head) = self.queue.front_mut() else {
                break;
            };
            if !head.started {
                head.started = true;
                head.started_at = now;
                // DMA initiated: the packet leaves the NIC SRAM now.
                self.used_bytes -= head.pkt.wire_bytes();
            }
            let want = head.dma_bytes as f64 - head.progress;
            let take = want.min(budget);
            head.progress += take;
            budget -= take;
            streamed += take;
            self.cum_streamed += take;
            if head.dma_bytes as f64 - head.progress <= 1e-9 {
                let e = self.queue.pop_front().expect("head exists");
                completed.push(StreamedPacket {
                    pkt: e.pkt,
                    end_offset: self.cum_streamed,
                    enqueued_at: e.enqueued_at,
                    dma_started_at: e.started_at,
                });
            }
        }
        streamed
    }

    /// Buffer occupancy in bytes (packets whose DMA has not started).
    pub fn backlog_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Number of packets queued (including the one being streamed).
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue holds no packets at all.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total DMA bytes ever streamed.
    pub fn cum_streamed(&self) -> f64 {
        self.cum_streamed
    }

    /// Packets ever accepted, across window resets.
    pub fn arrivals_total(&self) -> u64 {
        self.arrivals_total
    }

    /// Packets ever tail-dropped, across window resets.
    pub fn drops_total(&self) -> u64 {
        self.drops_total
    }

    /// Reset drop/arrival window counters (occupancy state persists).
    pub fn reset_window(&mut self) {
        self.arrivals = 0;
        self.drops = 0;
        self.peak_used_bytes = self.used_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostcc_fabric::FlowId;

    fn pkt(id: u64, payload: u32) -> Packet {
        Packet::data(id, FlowId(0), 0, payload, false, Nanos::ZERO)
    }

    #[test]
    fn accepts_until_full_then_drops() {
        let mut q = NicRxQueue::new(10_000);
        // wire bytes = payload + 66 = 4096 each.
        for i in 0..2 {
            assert!(q.offer(pkt(i, 4030), 4220, Nanos::ZERO));
        }
        assert!(!q.offer(pkt(2, 4030), 4220, Nanos::ZERO));
        assert_eq!(q.drops, 1);
        assert_eq!(q.arrivals, 2);
    }

    #[test]
    fn space_frees_when_dma_starts() {
        let mut q = NicRxQueue::new(10_000);
        q.offer(pkt(0, 4030), 4220, Nanos::ZERO);
        q.offer(pkt(1, 4030), 4220, Nanos::ZERO);
        assert_eq!(q.backlog_bytes(), 8192);
        // Stream one byte of the head: its whole wire size is released.
        q.stream(1.0, Nanos::ZERO);
        assert_eq!(q.backlog_bytes(), 4096);
        // Now a third packet fits even though the head is still streaming.
        assert!(q.offer(pkt(2, 4030), 4220, Nanos::ZERO));
    }

    #[test]
    fn streaming_respects_budget_and_completes_in_order() {
        let mut q = NicRxQueue::new(100_000);
        q.offer(pkt(0, 1000), 1100, Nanos::ZERO);
        q.offer(pkt(1, 1000), 1100, Nanos::ZERO);
        let (s, done) = q.stream(1100.0, Nanos::ZERO);
        assert!((s - 1100.0).abs() < 1e-9);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].pkt.id, 0);
        assert!((done[0].end_offset - 1100.0).abs() < 1e-9);
        let (s2, done2) = q.stream(2000.0, Nanos::ZERO);
        assert!((s2 - 1100.0).abs() < 1e-9);
        assert_eq!(done2[0].pkt.id, 1);
        assert!((done2[0].end_offset - 2200.0).abs() < 1e-9);
    }

    #[test]
    fn partial_stream_across_calls() {
        let mut q = NicRxQueue::new(100_000);
        q.offer(pkt(0, 4030), 4220, Nanos::ZERO);
        let (s1, d1) = q.stream(1000.0, Nanos::ZERO);
        assert!((s1 - 1000.0).abs() < 1e-9);
        assert!(d1.is_empty());
        let (s2, d2) = q.stream(1e9, Nanos::ZERO);
        assert!((s2 - 3220.0).abs() < 1e-9);
        assert_eq!(d2.len(), 1);
    }

    #[test]
    fn empty_queue_streams_nothing() {
        let mut q = NicRxQueue::new(1000);
        let (s, done) = q.stream(1e9, Nanos::ZERO);
        assert_eq!(s, 0.0);
        assert!(done.is_empty());
        assert!(q.is_empty());
    }

    #[test]
    fn peak_tracking_and_window_reset() {
        let mut q = NicRxQueue::new(100_000);
        q.offer(pkt(0, 4030), 4220, Nanos::ZERO);
        assert_eq!(q.peak_used_bytes, 4096);
        q.stream(1e9, Nanos::ZERO);
        q.reset_window();
        assert_eq!(q.arrivals, 0);
        assert_eq!(q.peak_used_bytes, 0);
    }
}
