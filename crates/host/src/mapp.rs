//! MApp: the paper's CPU-to-memory antagonist workload (Intel MLC).
//!
//! MApp runs on `degree × 8` cores with a 1:1 read-write ratio and
//! sequential access; each core keeps at most LFB-size (10–12) memory
//! requests in flight (paper §2.2 fn 3), so its *offered* load is
//! `cores × LFB × cacheline / (ℓ_m + MBA-added-latency)` — a closed loop
//! where rising memory latency self-limits the traffic, and MBA throttling
//! stretches the per-access latency (paper §4.2).

use hostcc_sim::{Ewma, Nanos};

use crate::config::{HostConfig, CACHELINE};
use crate::memctrl::Demand;

/// The MApp workload state at one host.
#[derive(Debug, Clone)]
pub struct MApp {
    /// Congestion degree (0× disables; the paper sweeps 1×–3×).
    degree: f64,
    /// Memory bytes served in the current measurement window.
    pub served_bytes: f64,
    /// Smoothed own service rate in bytes/ns (drives the self-utilization
    /// latency curve; ~2 µs time constant at the 100 ns tick).
    self_rate: Ewma,
}

impl MApp {
    /// MApp at the given congestion degree.
    pub fn new(degree: f64) -> Self {
        assert!(degree >= 0.0);
        MApp {
            degree,
            served_bytes: 0.0,
            self_rate: Ewma::new(0.05, 0.0),
        }
    }

    /// Current congestion degree.
    pub fn degree(&self) -> f64 {
        self.degree
    }

    /// Change the degree mid-run (used by the abrupt-onset experiments).
    pub fn set_degree(&mut self, degree: f64) {
        assert!(degree >= 0.0);
        self.degree = degree;
    }

    /// Smoothed memory bandwidth MApp is currently drawing.
    pub fn mem_rate_estimate(&self) -> hostcc_sim::Rate {
        hostcc_sim::Rate::bytes_per_ns(self.self_rate.get())
    }

    /// MApp's own memory-access latency right now: the self-utilization
    /// curve (bounded in-flight means cross-traffic shows up as a
    /// bandwidth split, not as unbounded latency).
    pub fn own_latency(&self, cfg: &HostConfig) -> Nanos {
        let u_self = self.self_rate.get() / cfg.mem_peak.as_bytes_per_ns();
        cfg.l_cpu_of(u_self)
    }

    /// The demand MApp presents to the memory controller for one tick.
    ///
    /// `mba_added` is the per-access latency injected by the current MBA
    /// level; `None` means level 4 (the process is paused via SIGSTOP and
    /// generates no traffic).
    pub fn demand(&self, cfg: &HostConfig, mba_added: Option<Nanos>, dt: Nanos) -> Demand {
        let inflight = cfg.mapp_inflight(self.degree);
        if inflight == 0.0 {
            return Demand::NONE;
        }
        let Some(added) = mba_added else {
            return Demand::NONE; // level 4: paused
        };
        let l_own = self.own_latency(cfg);
        let per_access = (l_own + added).as_nanos() as f64;
        if per_access <= 0.0 {
            return Demand::NONE;
        }
        // Offered rate: closed-loop reissue of `inflight` requests, each
        // taking (ℓ_own + added) end to end.
        let rate = inflight * CACHELINE as f64 / per_access;
        // In-flight requests actually *at the controller* (Little's law):
        // the MBA stall time keeps requests away from the controller, which
        // is exactly how MBA reduces MApp's arbitration share.
        let at_mc = inflight * l_own.as_nanos() as f64 / per_access;
        Demand {
            bytes: rate * dt.as_nanos() as f64,
            weight: cfg.weight_mapp * at_mc,
        }
    }

    /// Account bytes granted by the controller over one tick of `dt`.
    pub fn serve(&mut self, bytes: f64, dt: Nanos) {
        self.served_bytes += bytes;
        self.self_rate.update(bytes / dt.as_nanos() as f64);
    }

    /// Application-level throughput corresponding to the served memory
    /// bytes (the paper's "MApp Tput" in Fig 9 divides out the ~1.33×
    /// interconnect overhead).
    pub fn app_bytes(&self, cfg: &HostConfig) -> f64 {
        self.served_bytes / cfg.mapp_mem_per_app_byte
    }

    /// Reset window accounting.
    pub fn reset_window(&mut self) {
        self.served_bytes = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HostConfig {
        HostConfig::paper_default()
    }

    #[test]
    fn demand_scales_with_degree() {
        let c = cfg();
        let dt = Nanos::from_nanos(100);
        let d1 = MApp::new(1.0).demand(&c, Some(Nanos::ZERO), dt);
        let d3 = MApp::new(3.0).demand(&c, Some(Nanos::ZERO), dt);
        assert!((d3.bytes / d1.bytes - 3.0).abs() < 1e-9);
        assert!((d3.weight / d1.weight - 3.0).abs() < 1e-9);
    }

    #[test]
    fn unthrottled_idle_demand_uses_unloaded_latency() {
        // 1×, no history: 80 in-flight × 64 B / 280 ns ≈ 18.3 GB/s.
        let c = cfg();
        let d = MApp::new(1.0).demand(&c, Some(Nanos::ZERO), Nanos::from_nanos(100));
        let rate = d.bytes / 100.0; // bytes per ns = GB/s
        assert!((rate - 18.28).abs() < 0.05, "rate={rate}");
        assert!((d.weight - 80.0).abs() < 1e-9);
    }

    #[test]
    fn own_latency_rises_with_self_load() {
        let c = cfg();
        let mut app = MApp::new(1.0);
        let idle = app.own_latency(&c);
        assert_eq!(idle, c.l_m_min);
        // Sustain 16 GB/s: latency ≈ 320 ns (the 1×-alone anchor).
        for _ in 0..200 {
            app.serve(1600.0, Nanos::from_nanos(100));
        }
        let loaded = app.own_latency(&c);
        assert!(
            (315..=330).contains(&loaded.as_nanos()),
            "own latency at 16 GB/s = {loaded}"
        );
    }

    #[test]
    fn mba_latency_throttles_demand_and_share() {
        let c = cfg();
        let dt = Nanos::from_nanos(100);
        let app = MApp::new(3.0);
        let l = app.own_latency(&c).as_nanos() as f64;
        let free = app.demand(&c, Some(Nanos::ZERO), dt);
        let throttled = app.demand(&c, Some(Nanos::from_nanos(2500)), dt);
        let expect = l / (l + 2500.0);
        assert!((throttled.bytes / free.bytes - expect).abs() < 1e-9);
        assert!((throttled.weight / free.weight - expect).abs() < 1e-9);
    }

    #[test]
    fn level4_pause_generates_nothing() {
        let c = cfg();
        let d = MApp::new(3.0).demand(&c, None, Nanos::from_nanos(100));
        assert_eq!(d.bytes, 0.0);
        assert_eq!(d.weight, 0.0);
    }

    #[test]
    fn zero_degree_is_idle() {
        let c = cfg();
        let d = MApp::new(0.0).demand(&c, Some(Nanos::ZERO), Nanos::from_nanos(100));
        assert_eq!(d.bytes, 0.0);
    }

    #[test]
    fn app_bytes_divide_out_interconnect_overhead() {
        let c = cfg();
        let mut app = MApp::new(1.0);
        app.serve(133.0, Nanos::from_nanos(100));
        assert!((app.app_bytes(&c) - 100.0).abs() < 1e-9);
        app.reset_window();
        assert_eq!(app.app_bytes(&c), 0.0);
    }
}
