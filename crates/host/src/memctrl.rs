//! The memory controller: a shared server with a load-latency curve and
//! weighted, work-conserving bandwidth arbitration.
//!
//! The paper's key empirical observation about the memory interconnect
//! (§2.2) is that **bandwidth allocation is proportional to the load each
//! entity presents** — and since MApp's in-flight requests grow with core
//! count while the IIO's are capped by the PCIe credit limit, CPU traffic
//! squeezes out network DMA as congestion increases. This module implements
//! exactly that arbitration:
//!
//! * every entity (IIO DMA writes, MApp cores, receive-side copy) presents
//!   a demand (bytes it wants served this tick) and a weight (its weighted
//!   in-flight request count);
//! * service is allocated by weighted water-filling: proportional to
//!   weight, work-conserving (unused quota redistributes), capped at the
//!   achievable bandwidth `mem_saturated`;
//! * the unloaded→loaded write latency follows
//!   `ℓ_m(u) = ℓ_m_min · (1 + α·u/(1−u))`, with utilization smoothed over a
//!   ~2 µs horizon so the latency signal does not chatter at tick scale.

use hostcc_sim::{Ewma, Nanos};

use crate::config::HostConfig;

/// One entity's request to the controller for a tick.
#[derive(Debug, Clone, Copy, Default)]
pub struct Demand {
    /// Bytes of memory bandwidth wanted this tick.
    pub bytes: f64,
    /// Weighted in-flight request count (arbitration share).
    pub weight: f64,
}

impl Demand {
    /// No demand.
    pub const NONE: Demand = Demand {
        bytes: 0.0,
        weight: 0.0,
    };
}

/// Bytes granted to each entity for a tick.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Grants {
    /// Granted to IIO DMA writes (network receive path).
    pub iio: f64,
    /// Granted to MApp (host-local CPU traffic).
    pub mapp: f64,
    /// Granted to receive-side copy (network cores).
    pub copy: f64,
    /// Whether the controller ran out of bandwidth this tick.
    pub saturated: bool,
}

impl Grants {
    /// Total bytes granted.
    pub fn total(&self) -> f64 {
        self.iio + self.mapp + self.copy
    }
}

/// The shared memory controller of one host.
#[derive(Debug, Clone)]
pub struct MemoryController {
    /// Smoothed utilization (fraction of `mem_peak`).
    u: Ewma,
    /// Current write latency `ℓ_m(u)`.
    l_mem: Nanos,
    /// Cumulative grant accounting for the utilization/attribution metrics
    /// (window-resettable from the experiment driver).
    pub served_iio_bytes: f64,
    /// Cumulative bytes served to MApp.
    pub served_mapp_bytes: f64,
    /// Cumulative bytes served to the copy engine.
    pub served_copy_bytes: f64,
    /// Ticks during which the controller was saturated.
    pub saturated_ticks: u64,
    /// Total ticks processed.
    pub ticks: u64,
}

/// Weighted, work-conserving water-filling over up to 3 entities.
fn water_fill(cap: f64, demands: &[Demand; 3]) -> [f64; 3] {
    let mut grants = [0.0f64; 3];
    let mut remaining = cap;
    let mut active = [true; 3];
    // Entities with zero weight but positive demand would starve under
    // proportional sharing; give them a minimal weight so work conservation
    // still reaches them (they only matter when bandwidth is plentiful).
    let weight = |d: &Demand| {
        if d.bytes > 0.0 {
            d.weight.max(1e-9)
        } else {
            0.0
        }
    };
    for _ in 0..3 {
        let total_w: f64 = (0..3)
            .filter(|&i| active[i])
            .map(|i| weight(&demands[i]))
            .sum();
        if total_w <= 0.0 || remaining <= 1e-12 {
            break;
        }
        let mut consumed = 0.0;
        let mut any_closed = false;
        for i in 0..3 {
            if !active[i] {
                continue;
            }
            let quota = remaining * weight(&demands[i]) / total_w;
            let want = demands[i].bytes - grants[i];
            if want <= quota {
                grants[i] += want;
                consumed += want;
                active[i] = false;
                any_closed = true;
            } else {
                grants[i] += quota;
                consumed += quota;
            }
        }
        remaining -= consumed;
        if !any_closed {
            break; // all remaining entities are share-limited
        }
    }
    grants
}

impl MemoryController {
    /// A controller starting idle.
    pub fn new() -> Self {
        MemoryController {
            // Weight 0.05/tick ⇒ ~2 µs time constant at the 100 ns tick.
            u: Ewma::new(0.05, 0.0),
            l_mem: Nanos::ZERO,
            served_iio_bytes: 0.0,
            served_mapp_bytes: 0.0,
            served_copy_bytes: 0.0,
            saturated_ticks: 0,
            ticks: 0,
        }
    }

    /// Current (smoothed) write latency `ℓ_m`. Before the first tick this
    /// is the unloaded latency.
    pub fn l_mem(&self, cfg: &HostConfig) -> Nanos {
        if self.ticks == 0 {
            cfg.l_m_min
        } else {
            self.l_mem
        }
    }

    /// Current smoothed utilization (fraction of theoretical peak).
    pub fn utilization(&self) -> f64 {
        self.u.get()
    }

    /// Arbitrate one tick of `dt` among the three entities.
    pub fn tick(
        &mut self,
        cfg: &HostConfig,
        dt: Nanos,
        iio: Demand,
        mapp: Demand,
        copy: Demand,
    ) -> Grants {
        let cap = cfg.mem_saturated.bytes_in(dt);
        let demands = [iio, mapp, copy];
        let total_demand: f64 = demands.iter().map(|d| d.bytes).sum();
        let saturated = total_demand > cap;
        let g = if saturated {
            water_fill(cap, &demands)
        } else {
            [iio.bytes, mapp.bytes, copy.bytes]
        };

        self.served_iio_bytes += g[0];
        self.served_mapp_bytes += g[1];
        self.served_copy_bytes += g[2];
        self.ticks += 1;
        if saturated {
            self.saturated_ticks += 1;
        }

        let u_inst = (g[0] + g[1] + g[2]) / cfg.mem_peak.bytes_in(dt);
        let u = self.u.update(u_inst.clamp(0.0, 1.0));
        self.l_mem = cfg.l_m_of(u);

        Grants {
            iio: g[0],
            mapp: g[1],
            copy: g[2],
            saturated,
        }
    }

    /// Reset the window accounting (keeps the latency/utilization state).
    pub fn reset_window(&mut self) {
        self.served_iio_bytes = 0.0;
        self.served_mapp_bytes = 0.0;
        self.served_copy_bytes = 0.0;
        self.saturated_ticks = 0;
        self.ticks = 0;
    }
}

impl Default for MemoryController {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostcc_sim::Rate;

    fn cfg() -> HostConfig {
        HostConfig::paper_default()
    }

    fn dt() -> Nanos {
        Nanos::from_nanos(100)
    }

    #[test]
    fn under_capacity_everyone_gets_demand() {
        let mut mc = MemoryController::new();
        let g = mc.tick(
            &cfg(),
            dt(),
            Demand {
                bytes: 1000.0,
                weight: 43.0,
            },
            Demand {
                bytes: 1000.0,
                weight: 240.0,
            },
            Demand {
                bytes: 1000.0,
                weight: 47.0,
            },
        );
        assert_eq!(g.iio, 1000.0);
        assert_eq!(g.mapp, 1000.0);
        assert_eq!(g.copy, 1000.0);
        assert!(!g.saturated);
    }

    #[test]
    fn saturated_split_is_weight_proportional() {
        let mut mc = MemoryController::new();
        let cap = cfg().mem_saturated.bytes_in(dt()); // 4130 bytes
        let g = mc.tick(
            &cfg(),
            dt(),
            Demand {
                bytes: 1e9,
                weight: 43.0,
            },
            Demand {
                bytes: 1e9,
                weight: 240.0,
            },
            Demand {
                bytes: 1e9,
                weight: 47.0,
            },
        );
        assert!(g.saturated);
        let total_w = 43.0 + 240.0 + 47.0;
        assert!((g.iio - cap * 43.0 / total_w).abs() < 1e-6);
        assert!((g.mapp - cap * 240.0 / total_w).abs() < 1e-6);
        assert!((g.copy - cap * 47.0 / total_w).abs() < 1e-6);
        assert!((g.total() - cap).abs() < 1e-6);
    }

    #[test]
    fn work_conservation_redistributes_unused_quota() {
        let mut mc = MemoryController::new();
        let cap = cfg().mem_saturated.bytes_in(dt());
        // MApp wants very little; its unused share must flow to the others.
        let g = mc.tick(
            &cfg(),
            dt(),
            Demand {
                bytes: 1e9,
                weight: 50.0,
            },
            Demand {
                bytes: 100.0,
                weight: 240.0,
            },
            Demand {
                bytes: 1e9,
                weight: 50.0,
            },
        );
        assert_eq!(g.mapp, 100.0);
        // The rest splits 50:50 between iio and copy.
        let rest = cap - 100.0;
        assert!((g.iio - rest / 2.0).abs() < 1e-6, "iio={}", g.iio);
        assert!((g.copy - rest / 2.0).abs() < 1e-6);
    }

    #[test]
    fn paper_3x_share_anchor() {
        // At 3× congestion the calibrated weights must hand the IIO ≈ 13 %
        // of saturated bandwidth ⇒ ≈ 5.4 GB/s ⇒ ≈ 43 Gbps of network DMA
        // (Fig 9 level 0).
        let c = cfg();
        let mut mc = MemoryController::new();
        let w_iio = c.weight_iio * 93.0;
        let w_mapp = c.weight_mapp * c.mapp_inflight(3.0);
        let w_copy = c.weight_copy * c.copy_inflight();
        let g = mc.tick(
            &c,
            dt(),
            Demand {
                bytes: 1e9,
                weight: w_iio,
            },
            Demand {
                bytes: 1e9,
                weight: w_mapp,
            },
            Demand {
                bytes: 1e9,
                weight: w_copy,
            },
        );
        let iio_rate = Rate::bytes_per_ns(g.iio / 100.0);
        let gbps = iio_rate.as_gbps();
        assert!(
            (38.0..48.0).contains(&gbps),
            "3x anchor: IIO share = {gbps} Gbps, want ≈ 43"
        );
    }

    #[test]
    fn latency_rises_with_load() {
        let c = cfg();
        let mut mc = MemoryController::new();
        let idle = mc.l_mem(&c);
        assert_eq!(idle, c.l_m_min);
        for _ in 0..200 {
            mc.tick(
                &c,
                dt(),
                Demand {
                    bytes: 2000.0,
                    weight: 50.0,
                },
                Demand {
                    bytes: 1500.0,
                    weight: 100.0,
                },
                Demand::NONE,
            );
        }
        assert!(mc.l_mem(&c) > idle);
        assert!(mc.utilization() > 0.5);
    }

    #[test]
    fn zero_demand_is_free() {
        let c = cfg();
        let mut mc = MemoryController::new();
        let g = mc.tick(&c, dt(), Demand::NONE, Demand::NONE, Demand::NONE);
        assert_eq!(g.total(), 0.0);
        assert!(!g.saturated);
        assert_eq!(mc.utilization(), 0.0);
    }

    #[test]
    fn zero_weight_positive_demand_not_starved() {
        let c = cfg();
        let mut mc = MemoryController::new();
        // A demand with zero weight still gets bandwidth when others leave
        // capacity unused.
        let g = mc.tick(
            &c,
            dt(),
            Demand {
                bytes: 500.0,
                weight: 0.0,
            },
            Demand {
                bytes: 100.0,
                weight: 10.0,
            },
            Demand::NONE,
        );
        assert_eq!(g.iio, 500.0);
    }

    #[test]
    fn accounting_accumulates_and_resets() {
        let c = cfg();
        let mut mc = MemoryController::new();
        mc.tick(
            &c,
            dt(),
            Demand {
                bytes: 10.0,
                weight: 1.0,
            },
            Demand {
                bytes: 20.0,
                weight: 1.0,
            },
            Demand {
                bytes: 30.0,
                weight: 1.0,
            },
        );
        assert_eq!(mc.served_iio_bytes, 10.0);
        assert_eq!(mc.served_mapp_bytes, 20.0);
        assert_eq!(mc.served_copy_bytes, 30.0);
        mc.reset_window();
        assert_eq!(mc.served_iio_bytes, 0.0);
        assert_eq!(mc.ticks, 0);
    }
}
