//! Model-specific register (MSR) bank: the uncore counters hostCC reads.
//!
//! The paper's signal collection (§4.1) uses two cumulative uncore
//! counters exposed as MSRs:
//!
//! * `R_OCC(t)` — cumulative IIO occupancy, incremented by the current
//!   occupancy once per IIO clock (`F_IIO` = 500 MHz on their servers), so
//!   `I_S = (R_OCC(t₂) − R_OCC(t₁)) / ((t₂ − t₁) · F_IIO)`;
//! * `R_INS(t)` — cumulative IIO insertions (cachelines), so the average
//!   insertion rate `I = ΔR_INS / Δt` and `B_S = I × cacheline`.
//!
//! Each MSR read costs ≈ 600 ns (the TSC read is ~2 ns); crucially, the
//! reads happen on the CPU interconnect, **outside** the NIC→memory
//! datapath, so the read latency is independent of host congestion — the
//! property Fig 7 demonstrates and that makes the signal trustworthy during
//! the very congestion it measures.

use hostcc_sim::{Nanos, Rng};

use crate::config::CACHELINE;

/// The simulated uncore counter bank of the receiver's IIO stack.
#[derive(Debug, Clone, Default)]
pub struct MsrBank {
    /// ∫ occupancy(t) dt in cacheline·nanoseconds (converted to counter
    /// units — cacheline·cycles — at read time).
    occ_integral_cl_ns: f64,
    /// Cumulative insertions in cachelines.
    insertions_cl: f64,
}

impl MsrBank {
    /// A zeroed counter bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Integrate `occupancy_cl` held for `dt` (called once per host tick).
    pub fn integrate_occupancy(&mut self, occupancy_cl: f64, dt: Nanos) {
        self.occ_integral_cl_ns += occupancy_cl * dt.as_nanos() as f64;
    }

    /// Account `bytes` inserted into the IIO from the PCIe.
    pub fn add_insertions(&mut self, bytes: f64) {
        self.insertions_cl += bytes / CACHELINE as f64;
    }

    /// Raw `R_OCC` counter value in cacheline·cycles for an uncore clock of
    /// `f_iio_ghz` GHz (cycles per ns).
    pub fn rocc(&self, f_iio_ghz: f64) -> u64 {
        (self.occ_integral_cl_ns * f_iio_ghz) as u64
    }

    /// Raw `R_INS` counter value in cachelines.
    pub fn rins(&self) -> u64 {
        self.insertions_cl as u64
    }
}

/// Models the cost of one congestion-signal read: TSC (+2 ns) plus the MSR
/// read itself (~600 ns, jittered), independent of host congestion.
#[derive(Debug, Clone)]
pub struct MsrReadModel {
    mean: Nanos,
    jitter: Nanos,
    tsc: Nanos,
}

impl MsrReadModel {
    /// Build from the host configuration constants.
    pub fn new(mean: Nanos, jitter: Nanos) -> Self {
        assert!(
            jitter <= mean,
            "jitter wider than the mean would go negative"
        );
        MsrReadModel {
            mean,
            jitter,
            tsc: Nanos::from_nanos(2),
        }
    }

    /// The mean MSR-read latency.
    pub fn mean(&self) -> Nanos {
        self.mean
    }

    /// The current half-width of the uniform read-latency jitter.
    pub fn jitter(&self) -> Nanos {
        self.jitter
    }

    /// Change the jitter half-width mid-run (chaos: a noisy uncore).
    /// Only the *computed* latency changes — each draw still consumes
    /// exactly one RNG value, so restoring the jitter restores the
    /// original latency sequence from that point on.
    pub fn set_jitter(&mut self, jitter: Nanos) {
        assert!(
            jitter <= self.mean,
            "jitter wider than the mean would go negative"
        );
        self.jitter = jitter;
    }

    /// Draw the latency of one signal read (one TSC read + one MSR read).
    pub fn draw(&self, rng: &mut Rng) -> Nanos {
        let j = self.jitter.as_nanos() as f64;
        let offset = (2.0 * rng.f64() - 1.0) * j; // zero-mean uniform jitter
        let ns = self.mean.as_nanos() as f64 + offset;
        self.tsc + Nanos::from_nanos(ns.max(0.0).round() as u64)
    }
}

/// Snapshot-based signal computation, implementing the paper's §4.1
/// formulas. The hostCC sampler keeps one of these per signal.
#[derive(Debug, Clone, Copy)]
pub struct CounterSnapshot {
    /// TSC timestamp of the snapshot.
    pub at: Nanos,
    /// `R_OCC` at the snapshot.
    pub rocc: u64,
    /// `R_INS` at the snapshot.
    pub rins: u64,
}

impl CounterSnapshot {
    /// Take a snapshot of the bank at `now`.
    pub fn take(bank: &MsrBank, f_iio_ghz: f64, now: Nanos) -> Self {
        CounterSnapshot {
            at: now,
            rocc: bank.rocc(f_iio_ghz),
            rins: bank.rins(),
        }
    }

    /// Average IIO occupancy (cachelines) between `prev` and `self`:
    /// `I_S = ΔR_OCC / (Δt · F_IIO)`.
    pub fn avg_occupancy_since(&self, prev: &CounterSnapshot, f_iio_ghz: f64) -> f64 {
        let dt = self.at.saturating_sub(prev.at).as_nanos() as f64;
        if dt <= 0.0 {
            return 0.0;
        }
        (self.rocc.saturating_sub(prev.rocc)) as f64 / (dt * f_iio_ghz)
    }

    /// Average PCIe bandwidth (bytes/ns) between `prev` and `self`:
    /// `B_S = ΔR_INS · cacheline / Δt`.
    pub fn avg_pcie_bytes_per_ns_since(&self, prev: &CounterSnapshot) -> f64 {
        let dt = self.at.saturating_sub(prev.at).as_nanos() as f64;
        if dt <= 0.0 {
            return 0.0;
        }
        (self.rins.saturating_sub(prev.rins)) as f64 * CACHELINE as f64 / dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_recovered_from_counter_deltas() {
        let mut bank = MsrBank::new();
        let f = 0.5; // 500 MHz
        let t0 = Nanos::ZERO;
        let s0 = CounterSnapshot::take(&bank, f, t0);
        // Hold occupancy 65 cachelines for 10 us.
        for _ in 0..100 {
            bank.integrate_occupancy(65.0, Nanos::from_nanos(100));
        }
        let t1 = Nanos::from_micros(10);
        let s1 = CounterSnapshot::take(&bank, f, t1);
        let is = s1.avg_occupancy_since(&s0, f);
        assert!((is - 65.0).abs() < 0.1, "I_S={is}");
    }

    #[test]
    fn pcie_bandwidth_recovered_from_insertions() {
        let mut bank = MsrBank::new();
        let s0 = CounterSnapshot::take(&bank, 0.5, Nanos::ZERO);
        // Insert 12.875 B/ns for 10 us = 128,750 bytes.
        bank.add_insertions(128_750.0);
        let s1 = CounterSnapshot::take(&bank, 0.5, Nanos::from_micros(10));
        let bs = s1.avg_pcie_bytes_per_ns_since(&s0);
        // ≈ 12.875 B/ns = 103 Gbps; counter truncation loses < 1 cacheline.
        assert!((bs - 12.875).abs() < 0.01, "B_S={bs}");
    }

    #[test]
    fn zero_interval_is_zero() {
        let bank = MsrBank::new();
        let s = CounterSnapshot::take(&bank, 0.5, Nanos::from_nanos(5));
        assert_eq!(s.avg_occupancy_since(&s, 0.5), 0.0);
        assert_eq!(s.avg_pcie_bytes_per_ns_since(&s), 0.0);
    }

    #[test]
    fn read_latency_in_band_and_congestion_independent() {
        let model = MsrReadModel::new(Nanos::from_nanos(600), Nanos::from_nanos(250));
        let mut rng = Rng::new(42);
        let mut min = u64::MAX;
        let mut max = 0;
        let mut sum = 0u64;
        let n = 10_000;
        for _ in 0..n {
            let l = model.draw(&mut rng).as_nanos();
            min = min.min(l);
            max = max.max(l);
            sum += l;
        }
        // Band: 2 + [350, 850] ns.
        assert!(min >= 302, "min={min}");
        assert!(max <= 902, "max={max}");
        let mean = sum as f64 / n as f64;
        assert!((mean - 602.0).abs() < 10.0, "mean={mean}");
    }

    #[test]
    #[should_panic(expected = "jitter wider")]
    fn invalid_jitter_rejected() {
        MsrReadModel::new(Nanos::from_nanos(100), Nanos::from_nanos(200));
    }
}
