//! The PCIe wire: a fixed-latency byte pipeline between NIC and IIO.
//!
//! Bytes pushed by the NIC arrive at the IIO `ℓ_p` later. Bytes in flight
//! on the wire hold PCIe credits (together with bytes waiting in the IIO
//! buffer); the credit check itself lives in [`crate::RxHost`], which sees
//! both sides.

use std::collections::VecDeque;

use hostcc_sim::Nanos;

/// In-flight PCIe bytes, bucketed by arrival time.
#[derive(Debug, Clone, Default)]
pub struct WirePipe {
    inflight: VecDeque<(Nanos, f64)>,
    inflight_bytes: f64,
    total_bytes: f64,
}

impl WirePipe {
    /// An empty pipe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Push `bytes` that will arrive at the IIO at `arrive_at`.
    pub fn push(&mut self, arrive_at: Nanos, bytes: f64) {
        if bytes <= 0.0 {
            return;
        }
        debug_assert!(
            self.inflight.back().is_none_or(|&(t, _)| arrive_at >= t),
            "wire arrivals must be monotone"
        );
        self.inflight.push_back((arrive_at, bytes));
        self.inflight_bytes += bytes;
        self.total_bytes += bytes;
    }

    /// Pop all bytes that have arrived by `now`.
    pub fn pop_arrived(&mut self, now: Nanos) -> f64 {
        let mut arrived = 0.0;
        while let Some(&(t, b)) = self.inflight.front() {
            if t <= now {
                arrived += b;
                self.inflight_bytes -= b;
                self.inflight.pop_front();
            } else {
                break;
            }
        }
        if self.inflight.is_empty() {
            self.inflight_bytes = 0.0; // absorb float residue
        }
        arrived
    }

    /// Bytes currently on the wire (holding credits).
    pub fn inflight_bytes(&self) -> f64 {
        self.inflight_bytes
    }

    /// Total bytes ever pushed.
    pub fn total_bytes(&self) -> f64 {
        self.total_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_arrive_after_latency() {
        let mut w = WirePipe::new();
        w.push(Nanos::from_nanos(300), 1000.0);
        assert_eq!(w.pop_arrived(Nanos::from_nanos(299)), 0.0);
        assert_eq!(w.pop_arrived(Nanos::from_nanos(300)), 1000.0);
        assert_eq!(w.inflight_bytes(), 0.0);
    }

    #[test]
    fn multiple_chunks_accumulate() {
        let mut w = WirePipe::new();
        w.push(Nanos::from_nanos(100), 10.0);
        w.push(Nanos::from_nanos(200), 20.0);
        w.push(Nanos::from_nanos(300), 30.0);
        assert_eq!(w.inflight_bytes(), 60.0);
        assert_eq!(w.pop_arrived(Nanos::from_nanos(250)), 30.0);
        assert_eq!(w.inflight_bytes(), 30.0);
    }

    #[test]
    fn zero_push_is_noop() {
        let mut w = WirePipe::new();
        w.push(Nanos::from_nanos(100), 0.0);
        assert_eq!(w.inflight_bytes(), 0.0);
        assert_eq!(w.total_bytes(), 0.0);
    }

    #[test]
    fn total_accounts_everything() {
        let mut w = WirePipe::new();
        w.push(Nanos::from_nanos(1), 5.0);
        w.push(Nanos::from_nanos(2), 7.0);
        w.pop_arrived(Nanos::from_nanos(10));
        assert_eq!(w.total_bytes(), 12.0);
    }
}
