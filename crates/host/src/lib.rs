//! The host-network substrate of the hostCC reproduction.
//!
//! The paper's subject is *host congestion*: contention on the path
//! between the NIC and CPU/memory. This crate simulates that path for one
//! server at the level of detail the paper's own analysis uses (§2.1,
//! §3.1):
//!
//! ```text
//!   wire → NIC SRAM → [PCIe credits] → IIO buffer → memory controller
//!                                          │              ├── MApp (CPU↔mem antagonist)
//!                                          │              └── copy engine (rx processing)
//!                                          └── MSR counters (R_OCC / R_INS)
//! ```
//!
//! * [`NicRxQueue`] — finite NIC buffer; the only drop point.
//! * [`WirePipe`] — the PCIe wire (`ℓ_p`), whose in-flight bytes hold
//!   credits.
//! * [`IioBuffer`] — the congestion-signal source: occupancy rises iff the
//!   memory controller backs up.
//! * [`MemoryController`] — weighted proportional bandwidth arbitration
//!   with a load-latency curve.
//! * [`MApp`] — the paper's CPU-to-memory antagonist (Intel MLC).
//! * [`CopyEngine`] — receive-side per-byte processing (the "compute
//!   bottleneck").
//! * [`Ddio`] — DMA-into-LLC with residency-driven evictions.
//! * [`Mba`] — the slow, coarse Memory Bandwidth Allocation actuator.
//! * [`MsrBank`] / [`MsrReadModel`] — the uncore counters hostCC samples
//!   and the cost of sampling them.
//! * [`RxHost`] — the composed receiver datapath, advanced on a 100 ns
//!   tick.
//!
//! All constants live in [`HostConfig`], calibrated against the paper's
//! measured anchors (see the field docs and DESIGN.md §3).
//!
//! ```
//! use hostcc_fabric::{FlowId, Packet};
//! use hostcc_host::{HostConfig, RxHost};
//! use hostcc_sim::{Nanos, Rate};
//!
//! // A receiver under severe (3x) host congestion, fed at line rate.
//! let cfg = HostConfig::paper_default();
//! let tick = cfg.tick;
//! let mut host = RxHost::new(cfg, 3.0);
//! let mut now = Nanos::ZERO;
//! let gap = Rate::gbps(100.0).time_for_bytes(4096);
//! let (mut next, mut id) = (Nanos::ZERO, 0u64);
//! while now < Nanos::from_millis(1) {
//!     now += tick;
//!     while next <= now {
//!         host.on_wire_arrival(Packet::data(id, FlowId(0), 0, 4030, false, next), next);
//!         id += 1;
//!         next += gap;
//!     }
//!     host.tick(now);
//! }
//! // The §2.1 domino effect: memory contention backs up the IIO, PCIe
//! // credits run out, and the NIC overflows.
//! assert!(host.nic_drops() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod copy_engine;
mod ddio;
mod iio;
mod iommu;
mod mapp;
mod mba;
mod memctrl;
mod msr;
mod nic;
mod pcie;
mod rxhost;
mod txhost;

pub use config::{HostConfig, CACHELINE};
pub use copy_engine::CopyEngine;
pub use ddio::Ddio;
pub use iio::IioBuffer;
pub use iommu::IommuConfig;
pub use mapp::MApp;
pub use mba::{Mba, MBA_LEVELS};
pub use memctrl::{Demand, Grants, MemoryController};
pub use msr::{CounterSnapshot, MsrBank, MsrReadModel};
pub use nic::{NicRxQueue, StreamedPacket};
pub use pcie::WirePipe;
pub use rxhost::{Delivered, HostProbe, RxHost, TickOutput};
pub use txhost::TxHost;
