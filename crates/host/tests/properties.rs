//! Property-based tests for the host-network substrate.

use hostcc_fabric::{FlowId, Packet};
use hostcc_host::{Demand, HostConfig, MemoryController, RxHost, CACHELINE};
use hostcc_sim::{Nanos, Rate, Rng};
use proptest::prelude::*;

fn pkt(id: u64, payload: u32) -> Packet {
    Packet::data(id, FlowId(0), 0, payload, false, Nanos::ZERO)
}

proptest! {
    /// Memory-controller grants never exceed demands, never exceed
    /// capacity, and are work-conserving: if total demand exceeds the cap,
    /// the cap is fully used; otherwise everyone gets their demand.
    #[test]
    fn memctrl_grants_are_feasible_and_work_conserving(
        demands in prop::collection::vec((0.0f64..1e5, 0.0f64..500.0), 3..=3),
    ) {
        let cfg = HostConfig::paper_default();
        let mut mc = MemoryController::new();
        let dt = Nanos::from_nanos(100);
        let d: Vec<Demand> = demands
            .iter()
            .map(|&(bytes, weight)| Demand { bytes, weight })
            .collect();
        let g = mc.tick(&cfg, dt, d[0], d[1], d[2]);
        let cap = cfg.mem_saturated.bytes_in(dt);
        let grants = [g.iio, g.mapp, g.copy];
        for (gr, dem) in grants.iter().zip(&d) {
            prop_assert!(*gr <= dem.bytes + 1e-6, "grant beyond demand");
            prop_assert!(*gr >= 0.0);
        }
        let total: f64 = grants.iter().sum();
        let total_demand: f64 = d.iter().map(|x| x.bytes).sum();
        prop_assert!(total <= cap + 1e-6, "over capacity");
        if total_demand <= cap {
            prop_assert!((total - total_demand).abs() < 1e-6, "under-serving without saturation");
        } else {
            prop_assert!(total > cap - 1e-3, "not work-conserving: {total} < {cap}");
        }
    }

    /// The receiver datapath conserves packets: every offered packet is
    /// either delivered, dropped at the NIC, or still in flight — never
    /// duplicated, never lost silently — and delivery preserves FIFO order.
    #[test]
    fn rxhost_conserves_packets(
        seed in any::<u64>(),
        degree in 0.0f64..3.5,
        offered_gbps in 10.0f64..140.0,
        payload in 200u32..8000,
    ) {
        let cfg = HostConfig::paper_default();
        cfg.validate();
        if payload as u64 + 66 > cfg.nic_buffer_bytes {
            return Ok(());
        }
        let mut h = RxHost::new(cfg.clone(), degree);
        let mut rng = Rng::new(seed);
        let dt = cfg.tick;
        let gap = Rate::gbps(offered_gbps).time_for_bytes(u64::from(payload) + 66);
        let mut now = Nanos::ZERO;
        let mut next = Nanos::ZERO;
        let mut id = 0u64;
        let mut delivered_ids = Vec::new();
        let mut offered = 0u64;
        while now < Nanos::from_micros(300) {
            now += dt;
            while next <= now {
                // Jittered arrivals.
                let p = pkt(id, payload);
                h.on_wire_arrival(p, next);
                offered += 1;
                id += 1;
                next += gap.scale(rng.jitter(1.0, 0.3));
            }
            let out = h.tick(now);
            delivered_ids.extend(out.delivered.iter().map(|d| d.pkt.id));
            prop_assert!(out.occupancy_cl >= 0.0);
            prop_assert!(out.occupancy_cl <= cfg.pcie_max_credit_cl as f64 + 1e-9);
        }
        // FIFO delivery, no duplicates.
        for w in delivered_ids.windows(2) {
            prop_assert!(w[1] > w[0], "out-of-order or duplicate delivery");
        }
        // Conservation: delivered + dropped ≤ offered.
        let drops = h.nic_drops();
        prop_assert!(delivered_ids.len() as u64 + drops <= offered);
        prop_assert_eq!(h.nic_arrivals() + drops, offered);
    }

    /// NIC backlog never exceeds the configured buffer size.
    #[test]
    fn nic_backlog_bounded(seed in any::<u64>(), burst in 1usize..600) {
        let cfg = HostConfig::paper_default();
        let mut h = RxHost::new(cfg.clone(), 3.0);
        let mut rng = Rng::new(seed);
        let mut now = Nanos::ZERO;
        for i in 0..burst {
            let payload = 200 + (rng.below(3800)) as u32;
            h.on_wire_arrival(pkt(i as u64, payload), now);
            prop_assert!(h.nic_backlog_bytes() <= cfg.nic_buffer_bytes);
        }
        for _ in 0..100 {
            now += cfg.tick;
            h.tick(now);
            prop_assert!(h.nic_backlog_bytes() <= cfg.nic_buffer_bytes);
        }
    }

    /// Memory accounting: bytes served to the three entities over a run
    /// equal the controller's totals, and utilization fractions stay in
    /// [0, 1].
    #[test]
    fn memory_accounting_consistent(degree in 0.0f64..3.5, rate in 10.0f64..120.0) {
        let cfg = HostConfig::paper_default();
        let mut h = RxHost::new(cfg.clone(), degree);
        let dt = cfg.tick;
        let gap = Rate::gbps(rate).time_for_bytes(4096);
        let mut now = Nanos::ZERO;
        let mut next = Nanos::ZERO;
        let mut id = 0;
        let dur = Nanos::from_micros(500);
        while now < dur {
            now += dt;
            while next <= now {
                h.on_wire_arrival(pkt(id, 4030), next);
                id += 1;
                next += gap;
            }
            h.tick(now);
        }
        let net = h.net_mem_rate(dur) / cfg.mem_peak;
        let mapp = h.mapp_mem_rate(dur) / cfg.mem_peak;
        prop_assert!((0.0..=1.0).contains(&net), "net util {net}");
        prop_assert!((0.0..=1.0).contains(&mapp), "mapp util {mapp}");
        prop_assert!(net + mapp <= 1.0 + 1e-9, "total util over 1");
        // Served DMA bytes can never exceed offered DMA bytes (each packet
        // is ceil(wire × overhead) bytes on the PCIe).
        let offered_dma = id as f64 * (4096.0 * cfg.pcie_overhead).ceil();
        prop_assert!(h.mc().served_iio_bytes <= offered_dma + 1.0);
    }

    /// The MSR occupancy integral is monotone and consistent with the
    /// occupancy bounds: ΔR_OCC over any tick ≤ credit-limit × Δcycles.
    #[test]
    fn msr_integral_bounded(degree in 0.0f64..3.5) {
        let cfg = HostConfig::paper_default();
        let mut h = RxHost::new(cfg.clone(), degree);
        let dt = cfg.tick;
        let mut now = Nanos::ZERO;
        let mut last_rocc = 0u64;
        for id in 0..2000 {
            now += dt;
            h.on_wire_arrival(pkt(id, 4030), now);
            h.tick(now);
            let rocc = h.msr().rocc(cfg.f_iio_ghz);
            prop_assert!(rocc >= last_rocc, "R_OCC must be monotone");
            let max_delta =
                (cfg.pcie_max_credit_cl as f64 * dt.as_nanos() as f64 * cfg.f_iio_ghz) as u64 + 1;
            prop_assert!(rocc - last_rocc <= max_delta, "occupancy above credit limit");
            last_rocc = rocc;
        }
    }

    /// CACHELINE sanity: the config helpers keep units consistent.
    #[test]
    fn config_unit_consistency(degree in 0.0f64..4.0) {
        let cfg = HostConfig::paper_default();
        let inflight = cfg.mapp_inflight(degree);
        prop_assert!((inflight - degree * 80.0).abs() < 1e-9);
        prop_assert_eq!(cfg.pcie_credit_bytes(), (cfg.pcie_max_credit_cl * CACHELINE) as f64);
        // Latency curves are monotone in utilization.
        let mut last = Nanos::ZERO;
        for i in 0..=20 {
            let u = i as f64 / 20.0;
            let l = cfg.l_m_of(u);
            prop_assert!(l >= last);
            last = l;
        }
    }
}
