//! Head-to-head congestion-control scoring: the matchup report.
//!
//! The matchup harness (driven from `hostcc-experiments`) runs every CC
//! protocol — homogeneous kinds and heterogeneous per-flow mixes — through
//! the same deterministic sweep cells, with and without hostCC, across
//! evaluation contexts (dumbbell incast, multi-switch fabric, chaos
//! timelines). This crate holds the *pure* result side of that pipeline,
//! mirroring how `hostcc-chaos` owns `ResilienceReport` while the driver
//! lives in the experiments crate:
//!
//! * [`CellScore`] — one (cc, hostcc, context) cell flattened to its
//!   scoring dimensions: aggregate goodput, Jain's fairness index over the
//!   greedy flows, convergence time from the flowscope dwell detector,
//!   retransmits/timeouts, RPC p99, and the per-CC-group ledger splits of
//!   a heterogeneous mix.
//! * [`LeaderboardRow`] — the per-(cc, hostcc) aggregation, ranked by
//!   fairness-weighted goodput (`mean Jain × mean goodput`).
//! * [`MatchupReport`] — the whole matchup: deterministic
//!   `hostcc-matchup/v1` JSON, an FNV-1a fingerprint that is
//!   byte-identical at any worker count, and Markdown/CSV leaderboards.
//!
//! Everything here is a pure function of the scored values: no wall-clock
//! fields, no floating-point re-derivation at print time that could differ
//! between runs — serial and parallel sweeps of the same grid must produce
//! byte-identical exports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hostcc_metrics::{f2, Table};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a(h: &mut u64, v: u64) {
    for byte in v.to_le_bytes() {
        *h = (*h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
}

fn fnv_str(h: &mut u64, s: &str) {
    for b in s.bytes() {
        *h = (*h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    // Length-delimit so "ab"+"c" never collides with "a"+"bc".
    fnv1a(h, s.len() as u64);
}

/// JSON-safe float rendering (non-finite values become `null`).
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn jopt(v: Option<u64>) -> String {
    v.map_or("null".to_string(), |n| n.to_string())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One CC group's outcome inside a heterogeneous-mix cell (copied from the
/// flowscope per-group ledger split). Homogeneous cells carry none.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupOutcome {
    /// The group's protocol label (e.g. `dctcp`).
    pub group: String,
    /// Greedy flows in the group that sent at least one packet.
    pub flows: u64,
    /// Aggregate window goodput in Gbit/s.
    pub goodput_gbps: f64,
    /// Jain's fairness index within the group.
    pub jain: f64,
    /// Retransmissions the group emitted.
    pub retransmits: u64,
}

impl GroupOutcome {
    fn fold(&self, h: &mut u64) {
        fnv_str(h, &self.group);
        fnv1a(h, self.flows);
        fnv1a(h, self.goodput_gbps.to_bits());
        fnv1a(h, self.jain.to_bits());
        fnv1a(h, self.retransmits);
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"group\":\"{}\",\"flows\":{},\"goodput_gbps\":{},\"jain\":{},\
             \"retransmits\":{}}}",
            json_escape(&self.group),
            self.flows,
            jf(self.goodput_gbps),
            jf(self.jain),
            self.retransmits,
        )
    }
}

/// One scored matchup cell: a (cc, hostcc) arm evaluated in one context.
#[derive(Debug, Clone, PartialEq)]
pub struct CellScore {
    /// The CC label — a protocol name (`dcqcn`) or a canonical mix label
    /// (`dctcp:4+cubic:4`).
    pub cc: String,
    /// Whether hostCC was active.
    pub hostcc: bool,
    /// The evaluation context label (e.g. `incast`, `fat-tree`,
    /// `chaos:flap`).
    pub context: String,
    /// The underlying grid cell's canonical parameter key.
    pub key: String,
    /// The derived per-cell RNG seed that ran.
    pub seed: u64,
    /// Greedy-flow goodput in Gbit/s.
    pub goodput_gbps: f64,
    /// Goodput of the worst-off greedy flow in Gbit/s.
    pub min_flow_gbps: f64,
    /// Jain's fairness index over the greedy flows.
    pub jain: f64,
    /// Convergence instant from the flowscope dwell detector (absolute
    /// sim time in ns; `None` when the flows never settled).
    pub convergence_ns: Option<u64>,
    /// Retransmitted packets.
    pub retransmits: u64,
    /// RTO events.
    pub timeouts: u64,
    /// Packet drop percentage.
    pub drop_rate_pct: f64,
    /// Worst P99 RPC latency across RPC sizes in ns (`None` without an
    /// RPC workload).
    pub rpc_p99_ns: Option<u64>,
    /// Per-CC-group splits for heterogeneous mixes (label order).
    pub groups: Vec<GroupOutcome>,
}

impl CellScore {
    fn fold(&self, h: &mut u64) {
        fnv_str(h, &self.cc);
        fnv1a(h, u64::from(self.hostcc));
        fnv_str(h, &self.context);
        fnv_str(h, &self.key);
        fnv1a(h, self.seed);
        fnv1a(h, self.goodput_gbps.to_bits());
        fnv1a(h, self.min_flow_gbps.to_bits());
        fnv1a(h, self.jain.to_bits());
        fnv1a(h, self.convergence_ns.unwrap_or(u64::MAX));
        fnv1a(h, self.retransmits);
        fnv1a(h, self.timeouts);
        fnv1a(h, self.drop_rate_pct.to_bits());
        fnv1a(h, self.rpc_p99_ns.unwrap_or(u64::MAX));
        fnv1a(h, self.groups.len() as u64);
        for g in &self.groups {
            g.fold(h);
        }
    }

    /// The group outcome for one protocol label, if this cell ran a mix
    /// containing it.
    pub fn group(&self, label: &str) -> Option<&GroupOutcome> {
        self.groups.iter().find(|g| g.group == label)
    }

    fn to_json(&self) -> String {
        let groups: Vec<String> = self.groups.iter().map(GroupOutcome::to_json).collect();
        format!(
            "{{\"cc\":\"{}\",\"hostcc\":{},\"context\":\"{}\",\"key\":\"{}\",\
             \"seed\":{},\"goodput_gbps\":{},\"min_flow_gbps\":{},\"jain\":{},\
             \"convergence_ns\":{},\"retransmits\":{},\"timeouts\":{},\
             \"drop_rate_pct\":{},\"rpc_p99_ns\":{},\"groups\":[{}]}}",
            json_escape(&self.cc),
            self.hostcc,
            json_escape(&self.context),
            json_escape(&self.key),
            self.seed,
            jf(self.goodput_gbps),
            jf(self.min_flow_gbps),
            jf(self.jain),
            jopt(self.convergence_ns),
            self.retransmits,
            self.timeouts,
            jf(self.drop_rate_pct),
            jopt(self.rpc_p99_ns),
            groups.join(","),
        )
    }
}

/// One ranked leaderboard entry: a (cc, hostcc) arm aggregated over every
/// context it ran in.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderboardRow {
    /// Rank, starting at 1 (best score).
    pub rank: usize,
    /// The CC label.
    pub cc: String,
    /// Whether hostCC was active.
    pub hostcc: bool,
    /// Cells aggregated into this row.
    pub cells: u64,
    /// Mean greedy-flow goodput over the cells, in Gbit/s.
    pub mean_goodput_gbps: f64,
    /// Mean Jain's fairness index over the cells.
    pub mean_jain: f64,
    /// Cells whose flows converged (dwell detector fired).
    pub converged: u64,
    /// Mean convergence time over the converged cells, in ns.
    pub mean_convergence_ns: Option<u64>,
    /// Total retransmits over the cells.
    pub retransmits: u64,
    /// Worst P99 RPC latency across the cells, in ns.
    pub worst_rpc_p99_ns: Option<u64>,
    /// The ranking score: `mean_jain × mean_goodput_gbps`
    /// (fairness-weighted goodput — a fast-but-unfair protocol and a
    /// fair-but-starved one both score low).
    pub score: f64,
}

impl LeaderboardRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"rank\":{},\"cc\":\"{}\",\"hostcc\":{},\"cells\":{},\
             \"mean_goodput_gbps\":{},\"mean_jain\":{},\"converged\":{},\
             \"mean_convergence_ns\":{},\"retransmits\":{},\
             \"worst_rpc_p99_ns\":{},\"score\":{}}}",
            self.rank,
            json_escape(&self.cc),
            self.hostcc,
            self.cells,
            jf(self.mean_goodput_gbps),
            jf(self.mean_jain),
            self.converged,
            jopt(self.mean_convergence_ns),
            self.retransmits,
            jopt(self.worst_rpc_p99_ns),
            jf(self.score),
        )
    }
}

/// Column order shared by [`MatchupReport::leaderboard_csv`].
pub const LEADERBOARD_CSV_HEADER: &str = "rank,cc,hostcc,cells,mean_goodput_gbps,\
mean_jain,converged,mean_convergence_ns,retransmits,worst_rpc_p99_ns,score";

/// The whole matchup: every scored cell plus the derived leaderboard.
#[derive(Debug, Clone)]
pub struct MatchupReport {
    /// The matchup preset that produced this report.
    pub preset: String,
    /// The measurement budget label (`standard` or `quick`).
    pub budget: String,
    /// Every scored cell, in (context, grid expansion) order.
    pub cells: Vec<CellScore>,
}

impl MatchupReport {
    /// The ranked leaderboard: one row per (cc, hostcc) arm, best score
    /// first. Ties break on the CC label, then hostcc-off before -on, so
    /// the ranking is total and deterministic.
    pub fn leaderboard(&self) -> Vec<LeaderboardRow> {
        // Group in first-seen order; the sort below imposes the ranking.
        let mut rows: Vec<LeaderboardRow> = Vec::new();
        for c in &self.cells {
            if !rows.iter().any(|r| r.cc == c.cc && r.hostcc == c.hostcc) {
                rows.push(self.aggregate(&c.cc, c.hostcc));
            }
        }
        rows.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.cc.cmp(&b.cc))
                .then_with(|| a.hostcc.cmp(&b.hostcc))
        });
        for (i, r) in rows.iter_mut().enumerate() {
            r.rank = i + 1;
        }
        rows
    }

    fn aggregate(&self, cc: &str, hostcc: bool) -> LeaderboardRow {
        let cells: Vec<&CellScore> = self
            .cells
            .iter()
            .filter(|c| c.cc == cc && c.hostcc == hostcc)
            .collect();
        let n = cells.len() as f64;
        let mean_goodput_gbps = cells.iter().map(|c| c.goodput_gbps).sum::<f64>() / n;
        let mean_jain = cells.iter().map(|c| c.jain).sum::<f64>() / n;
        let conv: Vec<u64> = cells.iter().filter_map(|c| c.convergence_ns).collect();
        let mean_convergence_ns = if conv.is_empty() {
            None
        } else {
            Some(conv.iter().sum::<u64>() / conv.len() as u64)
        };
        LeaderboardRow {
            rank: 0,
            cc: cc.to_string(),
            hostcc,
            cells: cells.len() as u64,
            mean_goodput_gbps,
            mean_jain,
            converged: conv.len() as u64,
            mean_convergence_ns,
            retransmits: cells.iter().map(|c| c.retransmits).sum(),
            worst_rpc_p99_ns: cells.iter().filter_map(|c| c.rpc_p99_ns).max(),
            score: mean_jain * mean_goodput_gbps,
        }
    }

    /// FNV-1a fingerprint over the preset, budget and every cell score.
    /// The leaderboard is derived from the cells, so it is not folded —
    /// equal fingerprints imply equal leaderboards.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        fnv_str(&mut h, &self.preset);
        fnv_str(&mut h, &self.budget);
        fnv1a(&mut h, self.cells.len() as u64);
        for c in &self.cells {
            c.fold(&mut h);
        }
        h
    }

    /// Deterministic `hostcc-matchup/v1` JSON: wall-clock free,
    /// byte-identical at any worker count.
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| format!("  {}", c.to_json()))
            .collect();
        let board: Vec<String> = self
            .leaderboard()
            .iter()
            .map(|r| format!("  {}", r.to_json()))
            .collect();
        format!(
            "{{\"schema\":\"hostcc-matchup/v1\",\"preset\":\"{}\",\"budget\":\"{}\",\
             \"fingerprint\":\"{:#018x}\",\"cell_count\":{},\n\"leaderboard\":[\n{}\n],\
             \n\"cells\":[\n{}\n]}}\n",
            json_escape(&self.preset),
            json_escape(&self.budget),
            self.fingerprint(),
            self.cells.len(),
            board.join(",\n"),
            cells.join(",\n"),
        )
    }

    /// The leaderboard as a GitHub-flavored Markdown table.
    pub fn leaderboard_markdown(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "# Matchup leaderboard: {} ({} budget)\n\n",
            self.preset, self.budget
        ));
        s.push_str(
            "| rank | cc | hostcc | cells | goodput (Gbps) | jain | converged | \
             conv (ms) | retx | rpc p99 (us) | score |\n",
        );
        s.push_str("|---:|:---|:---|---:|---:|---:|---:|---:|---:|---:|---:|\n");
        for r in self.leaderboard() {
            s.push_str(&format!(
                "| {} | {} | {} | {} | {:.3} | {:.4} | {}/{} | {} | {} | {} | {:.3} |\n",
                r.rank,
                r.cc,
                if r.hostcc { "on" } else { "off" },
                r.cells,
                r.mean_goodput_gbps,
                r.mean_jain,
                r.converged,
                r.cells,
                r.mean_convergence_ns
                    .map_or("-".to_string(), |n| format!("{:.3}", n as f64 / 1e6)),
                r.retransmits,
                r.worst_rpc_p99_ns
                    .map_or("-".to_string(), |n| format!("{:.1}", n as f64 / 1e3)),
                r.score,
            ));
        }
        s
    }

    /// The leaderboard as CSV ([`LEADERBOARD_CSV_HEADER`] + one row per
    /// arm). Only deterministic columns: a serial and a parallel run of
    /// the same matchup diff empty.
    pub fn leaderboard_csv(&self) -> String {
        let mut s = String::from(LEADERBOARD_CSV_HEADER);
        s.push('\n');
        for r in self.leaderboard() {
            s.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{}\n",
                r.rank,
                r.cc,
                if r.hostcc { "on" } else { "off" },
                r.cells,
                jf(r.mean_goodput_gbps),
                jf(r.mean_jain),
                r.converged,
                r.mean_convergence_ns
                    .map_or(String::new(), |n| n.to_string()),
                r.retransmits,
                r.worst_rpc_p99_ns.map_or(String::new(), |n| n.to_string()),
                jf(r.score),
            ));
        }
        s
    }

    /// Terminal rendering: the ranked leaderboard table plus one line per
    /// heterogeneous-mix group split.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== matchup {} ==  {} cells  ({} budget)  fingerprint {:#018x}\n",
            self.preset,
            self.cells.len(),
            self.budget,
            self.fingerprint(),
        );
        let mut t = Table::new([
            "rank", "cc", "hostcc", "cells", "goodput", "jain", "conv", "retx", "score",
        ]);
        for r in self.leaderboard() {
            t.row([
                r.rank.to_string(),
                r.cc.clone(),
                if r.hostcc { "on" } else { "off" }.to_string(),
                r.cells.to_string(),
                f2(r.mean_goodput_gbps),
                format!("{:.4}", r.mean_jain),
                format!("{}/{}", r.converged, r.cells),
                r.retransmits.to_string(),
                f2(r.score),
            ]);
        }
        out.push_str(&t.render());
        // Homogeneous cells carry exactly one group (the sim labels every
        // flow); only true mixes earn a per-group breakdown here.
        for c in self.cells.iter().filter(|c| c.groups.len() > 1) {
            for g in &c.groups {
                out.push_str(&format!(
                    "mix {} [{}] hostcc={}: group {:<10} {} flow(s)  {:.3} Gbps  jain {:.4}  rtx {}\n",
                    c.cc,
                    c.context,
                    if c.hostcc { "on" } else { "off" },
                    g.group,
                    g.flows,
                    g.goodput_gbps,
                    g.jain,
                    g.retransmits,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(cc: &str, hostcc: bool, goodput: f64, jain: f64) -> CellScore {
        CellScore {
            cc: cc.to_string(),
            hostcc,
            context: "incast".to_string(),
            key: format!("hostcc={} cc={cc}", if hostcc { "on" } else { "off" }),
            seed: 7,
            goodput_gbps: goodput,
            min_flow_gbps: goodput / 4.0,
            jain,
            convergence_ns: Some(5_000_000),
            retransmits: 3,
            timeouts: 0,
            drop_rate_pct: 0.1,
            rpc_p99_ns: Some(250_000),
            groups: Vec::new(),
        }
    }

    fn report() -> MatchupReport {
        MatchupReport {
            preset: "test".to_string(),
            budget: "quick".to_string(),
            cells: vec![
                cell("dctcp", false, 80.0, 0.99),
                cell("dctcp", true, 85.0, 0.995),
                cell("cubic", false, 90.0, 0.6),
                cell("cubic", true, 70.0, 0.7),
            ],
        }
    }

    #[test]
    fn leaderboard_ranks_by_fairness_weighted_goodput() {
        let r = report();
        let board = r.leaderboard();
        assert_eq!(board.len(), 4);
        // dctcp+hostcc: 85 * 0.995 = 84.6 beats cubic-off: 90 * 0.6 = 54.
        assert_eq!(board[0].cc, "dctcp");
        assert!(board[0].hostcc);
        assert_eq!(board[0].rank, 1);
        assert_eq!(board[3].rank, 4);
        assert!(board[0].score > board[1].score);
        // Scores strictly decrease (or tie deterministically) down the board.
        for w in board.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn ties_break_on_label_then_hostcc() {
        let r = MatchupReport {
            preset: "tie".to_string(),
            budget: "quick".to_string(),
            cells: vec![
                cell("swift", true, 50.0, 1.0),
                cell("reno", false, 50.0, 1.0),
                cell("reno", true, 50.0, 1.0),
            ],
        };
        let board = r.leaderboard();
        assert_eq!(
            board
                .iter()
                .map(|r| (r.cc.as_str(), r.hostcc))
                .collect::<Vec<_>>(),
            vec![("reno", false), ("reno", true), ("swift", true)],
        );
    }

    #[test]
    fn aggregation_averages_over_contexts() {
        let mut r = report();
        let mut second = cell("dctcp", false, 60.0, 0.97);
        second.context = "fat-tree".to_string();
        second.convergence_ns = None;
        second.rpc_p99_ns = Some(900_000);
        r.cells.push(second);
        let row = r
            .leaderboard()
            .into_iter()
            .find(|x| x.cc == "dctcp" && !x.hostcc)
            .unwrap();
        assert_eq!(row.cells, 2);
        assert!((row.mean_goodput_gbps - 70.0).abs() < 1e-12);
        assert_eq!(row.converged, 1, "only one of the two cells converged");
        assert_eq!(row.mean_convergence_ns, Some(5_000_000));
        assert_eq!(row.worst_rpc_p99_ns, Some(900_000));
        assert_eq!(row.retransmits, 6);
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        let a = report();
        let b = report();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = report();
        c.cells[0].jain = 0.5;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = report();
        d.cells[0].groups.push(GroupOutcome {
            group: "dctcp".to_string(),
            flows: 4,
            goodput_gbps: 40.0,
            jain: 0.9,
            retransmits: 1,
        });
        assert_ne!(a.fingerprint(), d.fingerprint());
        let mut e = report();
        e.preset = "other".to_string();
        assert_ne!(a.fingerprint(), e.fingerprint());
    }

    #[test]
    fn json_has_the_promised_schema() {
        let r = report();
        let j = r.to_json();
        for key in [
            "\"schema\":\"hostcc-matchup/v1\"",
            "\"preset\":\"test\"",
            "\"budget\":\"quick\"",
            "\"fingerprint\":\"0x",
            "\"cell_count\":4",
            "\"leaderboard\":[",
            "\"cells\":[",
            "\"convergence_ns\":5000000",
            "\"rpc_p99_ns\":250000",
            "\"groups\":[]",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn group_outcomes_surface_in_json_and_render() {
        let mut r = report();
        r.cells[1].cc = "dctcp:4+cubic:4".to_string();
        r.cells[1].groups = vec![
            GroupOutcome {
                group: "cubic".to_string(),
                flows: 4,
                goodput_gbps: 55.0,
                jain: 0.98,
                retransmits: 2,
            },
            GroupOutcome {
                group: "dctcp".to_string(),
                flows: 4,
                goodput_gbps: 30.0,
                jain: 0.91,
                retransmits: 9,
            },
        ];
        assert_eq!(r.cells[1].group("dctcp").unwrap().flows, 4);
        assert!(r.cells[1].group("swift").is_none());
        let j = r.to_json();
        assert!(j.contains("\"group\":\"cubic\""), "{j}");
        let rendered = r.render();
        assert!(rendered.contains("mix dctcp:4+cubic:4"), "{rendered}");
        assert!(rendered.contains("group dctcp"), "{rendered}");
    }

    #[test]
    fn leaderboard_exports_are_aligned() {
        let r = report();
        let csv = r.leaderboard_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(LEADERBOARD_CSV_HEADER));
        assert_eq!(lines.count(), 4);
        let cols = LEADERBOARD_CSV_HEADER.split(',').count();
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), cols, "{line}");
        }
        let md = r.leaderboard_markdown();
        assert!(md.starts_with("# Matchup leaderboard: test"));
        // Header + separator + one row per arm, all with the same pipe count.
        let rows: Vec<&str> = md.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(rows.len(), 2 + 4);
        let pipes = rows[0].matches('|').count();
        for row in &rows {
            assert_eq!(row.matches('|').count(), pipes, "{row}");
        }
    }
}
