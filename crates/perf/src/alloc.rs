//! Heap observability: a counting global allocator behind the
//! `alloc-profile` feature.
//!
//! Default builds compile none of the unsafe allocator code (the crate
//! is `forbid(unsafe_code)` without the feature) and [`alloc_stats`]
//! statically returns `None`, so tier-1 builds pay nothing. With the
//! feature on, the `repro` binary registers [`CountingAllocator`] as the
//! `#[global_allocator]` and the bench harness snapshots counter deltas
//! around each workload.

/// A snapshot (or delta) of heap-allocator activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of allocations.
    pub allocs: u64,
    /// Number of deallocations.
    pub frees: u64,
    /// Total bytes requested across all allocations.
    pub bytes: u64,
    /// High-water mark of live heap bytes (process lifetime for a
    /// snapshot; within-window peak is not recoverable from deltas, so
    /// [`reset_alloc_peak`] rebases it to the current live size first).
    pub peak_live_bytes: u64,
}

impl AllocStats {
    /// Activity between `earlier` and `self` (`self - earlier` for the
    /// monotone counters; the peak is reported as-is since it is rebased
    /// by [`reset_alloc_peak`], not differenced).
    pub fn since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            frees: self.frees.saturating_sub(earlier.frees),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            peak_live_bytes: self.peak_live_bytes,
        }
    }
}

#[cfg(feature = "alloc-profile")]
mod counting {
    use super::AllocStats;
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static FREES: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);
    static LIVE: AtomicU64 = AtomicU64::new(0);
    static PEAK: AtomicU64 = AtomicU64::new(0);

    /// A [`GlobalAlloc`] wrapping [`System`] that counts allocations,
    /// frees, requested bytes, and the peak live heap size.
    ///
    /// Counters are relaxed atomics — cheap, and exact totals are all we
    /// need (the bench harness reads them between workloads, never
    /// concurrently with a measurement it cares about).
    pub struct CountingAllocator;

    fn on_alloc(size: u64) {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(size, Relaxed);
        let live = LIVE.fetch_add(size, Relaxed) + size;
        PEAK.fetch_max(live, Relaxed);
    }

    fn on_free(size: u64) {
        FREES.fetch_add(1, Relaxed);
        LIVE.fetch_sub(size, Relaxed);
    }

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) };
            on_free(layout.size() as u64);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = unsafe { System.realloc(ptr, layout, new_size) };
            if !p.is_null() {
                // Count a realloc as one free + one alloc so live-byte
                // accounting stays exact.
                on_free(layout.size() as u64);
                on_alloc(new_size as u64);
            }
            p
        }
    }

    /// Current counter snapshot.
    pub fn stats() -> AllocStats {
        AllocStats {
            allocs: ALLOCS.load(Relaxed),
            frees: FREES.load(Relaxed),
            bytes: BYTES.load(Relaxed),
            peak_live_bytes: PEAK.load(Relaxed),
        }
    }

    /// Rebase the peak to the current live size (call at the start of a
    /// measurement window so the reported peak is the window's own).
    pub fn reset_peak() {
        PEAK.store(LIVE.load(Relaxed), Relaxed);
    }
}

/// Re-export of the counting allocator for `#[global_allocator]`
/// registration (only exists with the `alloc-profile` feature).
#[cfg(feature = "alloc-profile")]
pub use counting::CountingAllocator;

/// Current allocator counters, or `None` when the `alloc-profile`
/// feature is off (or the counting allocator simply wasn't registered —
/// then all counters read zero, which callers may treat as absent too).
pub fn alloc_stats() -> Option<AllocStats> {
    #[cfg(feature = "alloc-profile")]
    {
        let s = counting::stats();
        if s.allocs == 0 {
            return None;
        }
        Some(s)
    }
    #[cfg(not(feature = "alloc-profile"))]
    {
        None
    }
}

/// Rebase the peak-live-bytes high-water mark to the current live heap
/// size. No-op without the `alloc-profile` feature.
pub fn reset_alloc_peak() {
    #[cfg(feature = "alloc-profile")]
    counting::reset_peak();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_monotone_counters() {
        let earlier = AllocStats {
            allocs: 10,
            frees: 4,
            bytes: 1000,
            peak_live_bytes: 600,
        };
        let later = AllocStats {
            allocs: 25,
            frees: 20,
            bytes: 4000,
            peak_live_bytes: 900,
        };
        let d = later.since(&earlier);
        assert_eq!(d.allocs, 15);
        assert_eq!(d.frees, 16);
        assert_eq!(d.bytes, 3000);
        assert_eq!(d.peak_live_bytes, 900);
    }

    #[cfg(not(feature = "alloc-profile"))]
    #[test]
    fn stats_absent_without_feature() {
        assert!(alloc_stats().is_none());
        reset_alloc_peak(); // must be a harmless no-op
    }
}
