//! A minimal JSON reader (and `f64` writer) so `repro bench --compare`
//! can load prior `BENCH_*.json` files without pulling `serde` into an
//! offline, registry-free workspace.
//!
//! The parser is a plain recursive-descent over the JSON grammar:
//! objects, arrays, strings (with the standard escapes incl. `\u`),
//! numbers, booleans, null. It is built for files this repo emits —
//! small, trusted, machine-written — so it favours clarity over speed
//! and rejects anything malformed with a character offset.

use std::collections::BTreeMap;

/// A parsed JSON document node.
///
/// Object keys are kept in a `BTreeMap`, so re-serialisation order is
/// deterministic (alphabetical) even when the input wasn't.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number. Stored as `f64`; u64 accessors re-check
    /// integrality.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parse a complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("json: trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if it is a non-negative integer that fits
    /// exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key→value map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// Render an `f64` so that parsing it back yields the identical bits:
/// Rust's `{:?}` shortest-round-trip repr, with non-finite values mapped
/// to `null` (JSON has no NaN/inf).
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Escape a string for embedding in a JSON document (adds no quotes).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("json: expected '{}' at byte {pos}", byte as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(format!("json: unexpected input at byte {pos}")),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("json: expected '{lit}' at byte {pos}"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            _ => return Err(format!("json: expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("json: expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("json: unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("json: truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "json: bad \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "json: bad \\u escape".to_string())?;
                        // Surrogate pairs are not needed for the ASCII
                        // control chars we emit; replace lone surrogates.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("json: bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so the
                // boundaries are valid by construction).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "json: invalid utf-8".to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(c) = bytes.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("json: bad number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = JsonValue::parse(
            r#"{"a": 1, "b": [true, null, -2.5e3], "c": {"d": "x\ny"}, "e": false}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert!(arr[1].is_null());
        assert_eq!(arr[2].as_f64(), Some(-2500.0));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("e").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(JsonValue::Num(3.5).as_u64(), None);
        assert_eq!(JsonValue::Num(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Num(1e15).as_u64(), Some(1_000_000_000_000_000));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{\"a\" 1}").is_err());
        assert!(JsonValue::parse("true false").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn f64_formatting_round_trips_exactly() {
        for v in [
            0.0,
            1.0 / 3.0,
            123_456_789.123_456_78,
            f64::MIN_POSITIVE,
            -9.87e-300,
        ] {
            let text = fmt_f64(v);
            let back = JsonValue::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn escape_covers_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\n\u{1}"), "a\\\"b\\\\c\\n\\u0001");
        let wrapped = format!("\"{}\"", escape("tab\there"));
        assert_eq!(
            JsonValue::parse(&wrapped).unwrap().as_str(),
            Some("tab\there")
        );
    }

    #[test]
    fn unicode_escape_and_raw_utf8() {
        let v = JsonValue::parse(r#""Aµ""#).unwrap();
        assert_eq!(v.as_str(), Some("Aµ"));
    }
}
