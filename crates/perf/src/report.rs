//! The `BENCH_<git-sha>.json` trajectory format (`hostcc-bench/v1`):
//! what `repro bench` writes, what `repro bench --compare` reads back.
//!
//! One file is one benchmark run: per-workload throughput (events/sec,
//! sim-ns per wall-sec), iteration spread (p50/p95 wall seconds),
//! per-subsystem attribution ([`PerfReport`]) and allocator stats when
//! available, plus a `host` metadata block that describes the machine
//! and is deliberately **excluded from comparison** — trajectories are
//! only meaningful within one host, and the compare logic never looks
//! at it.

use crate::json::{escape, fmt_f64, JsonValue};
use crate::profile::PerfReport;
use crate::AllocStats;
use hostcc_trace::SimRateReport;

/// Schema identifier written into (and required from) every BENCH file.
pub const BENCH_SCHEMA: &str = "hostcc-bench/v1";

/// One measured workload inside a [`BenchReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchWorkload {
    /// Workload name, unique within the suite (e.g. `scenario:baseline`,
    /// `sweep:figure-grid`, `chaos:flap`).
    pub name: String,
    /// Median wall seconds over the measured iterations — the
    /// representative cost all rates are derived from.
    pub wall_secs_p50: f64,
    /// 95th-percentile wall seconds (nearest-rank over the iterations).
    pub wall_secs_p95: f64,
    /// Every measured iteration's wall seconds, in run order.
    pub wall_secs_iters: Vec<f64>,
    /// Events processed by one iteration (identical across iterations —
    /// the simulation is deterministic; the runner enforces this).
    pub events: u64,
    /// Simulated nanoseconds covered by one iteration.
    pub sim_ns: u64,
    /// Per-scope attribution summed over the measured iterations, when
    /// profiling was on.
    pub perf: Option<PerfReport>,
    /// Allocator activity across the measured iterations, when the
    /// counting allocator was registered.
    pub alloc: Option<AllocStats>,
}

impl BenchWorkload {
    /// The sim-rate view at the median iteration cost.
    pub fn rate(&self) -> SimRateReport {
        SimRateReport {
            wall_secs: self.wall_secs_p50,
            events: self.events,
            sim_ns: self.sim_ns,
        }
    }

    /// Events per wall second at the median iteration.
    pub fn events_per_sec(&self) -> f64 {
        self.rate().events_per_sec()
    }

    /// Simulated nanoseconds per wall second at the median iteration.
    pub fn sim_ns_per_wall_sec(&self) -> f64 {
        self.rate().sim_ns_per_wall_sec()
    }

    fn to_json(&self) -> String {
        let iters: Vec<String> = self.wall_secs_iters.iter().map(|v| fmt_f64(*v)).collect();
        let perf = match &self.perf {
            Some(p) => p.to_json(),
            None => "null".to_string(),
        };
        let alloc = match &self.alloc {
            Some(a) => format!(
                "{{\"allocs\": {}, \"frees\": {}, \"bytes\": {}, \"peak_live_bytes\": {}}}",
                a.allocs, a.frees, a.bytes, a.peak_live_bytes
            ),
            None => "null".to_string(),
        };
        format!(
            "{{\"name\": \"{}\", \"rate\": {}, \
             \"spread\": {{\"wall_secs_p50\": {}, \"wall_secs_p95\": {}, \"wall_secs_iters\": [{}]}}, \
             \"perf\": {}, \"alloc\": {}}}",
            escape(&self.name),
            self.rate().to_json(),
            fmt_f64(self.wall_secs_p50),
            fmt_f64(self.wall_secs_p95),
            iters.join(", "),
            perf,
            alloc,
        )
    }

    fn from_json(v: &JsonValue) -> Result<BenchWorkload, String> {
        let name = v
            .get("name")
            .and_then(|x| x.as_str())
            .ok_or("bench: workload missing name")?
            .to_string();
        let rate = v
            .get("rate")
            .ok_or_else(|| format!("bench: workload '{name}' missing rate"))?;
        let spread = v
            .get("spread")
            .ok_or_else(|| format!("bench: workload '{name}' missing spread"))?;
        let req_f64 = |node: &JsonValue, key: &str| {
            node.get(key)
                .and_then(|x| x.as_f64())
                .ok_or_else(|| format!("bench: workload '{name}' missing {key}"))
        };
        let perf = match v.get("perf") {
            None => None,
            Some(p) if p.is_null() => None,
            Some(p) => Some(PerfReport::from_json(p)?),
        };
        let alloc = match v.get("alloc") {
            None => None,
            Some(a) if a.is_null() => None,
            Some(a) => Some(AllocStats {
                allocs: a.get("allocs").and_then(|x| x.as_u64()).unwrap_or(0),
                frees: a.get("frees").and_then(|x| x.as_u64()).unwrap_or(0),
                bytes: a.get("bytes").and_then(|x| x.as_u64()).unwrap_or(0),
                peak_live_bytes: a
                    .get("peak_live_bytes")
                    .and_then(|x| x.as_u64())
                    .unwrap_or(0),
            }),
        };
        Ok(BenchWorkload {
            wall_secs_p50: req_f64(spread, "wall_secs_p50")?,
            wall_secs_p95: req_f64(spread, "wall_secs_p95")?,
            wall_secs_iters: spread
                .get("wall_secs_iters")
                .and_then(|x| x.as_arr())
                .map(|items| items.iter().filter_map(|i| i.as_f64()).collect())
                .unwrap_or_default(),
            events: rate
                .get("events")
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("bench: workload '{name}' missing events"))?,
            sim_ns: rate
                .get("sim_ns")
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("bench: workload '{name}' missing sim_ns"))?,
            perf,
            alloc,
            name,
        })
    }
}

/// Machine context for a bench run. Descriptive only: [`compare`] never
/// reads it, so baselines survive toolchain bumps with an honest record
/// of what changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostMeta {
    /// Available logical CPUs.
    pub cpus: u64,
    /// `rustc --version` line (empty when unavailable).
    pub rustc: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Unix seconds when the run finished (0 when unavailable).
    pub timestamp_unix: u64,
}

impl HostMeta {
    fn to_json(&self) -> String {
        format!(
            "{{\"cpus\": {}, \"rustc\": \"{}\", \"os\": \"{}\", \"arch\": \"{}\", \
             \"timestamp_unix\": {}}}",
            self.cpus,
            escape(&self.rustc),
            escape(&self.os),
            escape(&self.arch),
            self.timestamp_unix
        )
    }

    fn from_json(v: &JsonValue) -> HostMeta {
        let s = |key: &str| {
            v.get(key)
                .and_then(|x| x.as_str())
                .unwrap_or("")
                .to_string()
        };
        HostMeta {
            cpus: v.get("cpus").and_then(|x| x.as_u64()).unwrap_or(0),
            rustc: s("rustc"),
            os: s("os"),
            arch: s("arch"),
            timestamp_unix: v
                .get("timestamp_unix")
                .and_then(|x| x.as_u64())
                .unwrap_or(0),
        }
    }
}

/// A complete bench run: the unit of the BENCH trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Git short sha the run was taken at (stamped from `git rev-parse
    /// --short HEAD` when the suite runs; `unknown` outside a git
    /// checkout). The filename convention `BENCH_<sha>.json` repeats it.
    pub git_sha: String,
    /// Suite name (`smoke`, `standard`).
    pub suite: String,
    /// Warmup iterations per workload (not measured).
    pub warmup: u32,
    /// Measured iterations per workload.
    pub iters: u32,
    /// The measured workloads, in suite order.
    pub workloads: Vec<BenchWorkload>,
    /// Machine context — never compared.
    pub host: HostMeta,
}

impl BenchReport {
    /// Serialise to the `hostcc-bench/v1` JSON document (pretty at the
    /// top level: one line per workload).
    pub fn to_json(&self) -> String {
        let workloads: Vec<String> = self
            .workloads
            .iter()
            .map(|w| format!("    {}", w.to_json()))
            .collect();
        format!(
            "{{\n  \"schema\": \"{}\",\n  \"git_sha\": \"{}\",\n  \"suite\": \"{}\",\n  \
             \"warmup\": {},\n  \"iters\": {},\n  \"workloads\": [\n{}\n  ],\n  \
             \"host\": {}\n}}\n",
            BENCH_SCHEMA,
            escape(&self.git_sha),
            escape(&self.suite),
            self.warmup,
            self.iters,
            workloads.join(",\n"),
            self.host.to_json(),
        )
    }

    /// Parse a BENCH document, rejecting unknown schema identifiers.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let v = JsonValue::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(|x| x.as_str())
            .ok_or("bench: missing schema field")?;
        if schema != BENCH_SCHEMA {
            return Err(format!(
                "bench: unsupported schema '{schema}' (expected '{BENCH_SCHEMA}')"
            ));
        }
        let workloads = v
            .get("workloads")
            .and_then(|x| x.as_arr())
            .ok_or("bench: missing workloads array")?
            .iter()
            .map(BenchWorkload::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            git_sha: v
                .get("git_sha")
                .and_then(|x| x.as_str())
                .unwrap_or("unknown")
                .to_string(),
            suite: v
                .get("suite")
                .and_then(|x| x.as_str())
                .unwrap_or("unknown")
                .to_string(),
            warmup: v.get("warmup").and_then(|x| x.as_u64()).unwrap_or(0) as u32,
            iters: v.get("iters").and_then(|x| x.as_u64()).unwrap_or(0) as u32,
            workloads,
            host: v.get("host").map(HostMeta::from_json).unwrap_or_default(),
        })
    }

    /// Find a workload by name.
    pub fn workload(&self, name: &str) -> Option<&BenchWorkload> {
        self.workloads.iter().find(|w| w.name == name)
    }
}

/// How one workload moved between a baseline and a new run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDelta {
    /// Workload name.
    pub name: String,
    /// Baseline events/sec (`None` if the workload is new).
    pub old_events_per_sec: Option<f64>,
    /// New events/sec (`None` if the workload was removed).
    pub new_events_per_sec: Option<f64>,
    /// Baseline allocation count (`None` when the baseline had no
    /// allocator stats for this workload).
    pub old_allocs: Option<u64>,
    /// New allocation count (`None` when the new run had none).
    pub new_allocs: Option<u64>,
}

impl BenchDelta {
    /// Relative throughput change in percent (positive = faster), when
    /// both sides are present and the baseline is nonzero.
    pub fn delta_pct(&self) -> Option<f64> {
        match (self.old_events_per_sec, self.new_events_per_sec) {
            (Some(old), Some(new)) if old > 0.0 => Some(100.0 * (new - old) / old),
            _ => None,
        }
    }

    /// Relative allocation-count change in percent (positive = more
    /// allocations), when both sides have allocator stats. Unlike wall
    /// rates, alloc counts are deterministic for a given binary and
    /// workload, so they compare meaningfully across machines.
    pub fn alloc_delta_pct(&self) -> Option<f64> {
        match (self.old_allocs, self.new_allocs) {
            (Some(old), Some(new)) if old > 0 => {
                Some(100.0 * (new as f64 - old as f64) / old as f64)
            }
            _ => None,
        }
    }

    /// Whether the throughput delta is a regression beyond `threshold_pct`.
    pub fn regressed(&self, threshold_pct: f64) -> bool {
        matches!(self.delta_pct(), Some(d) if d < -threshold_pct)
    }

    /// Whether the allocation count grew beyond `threshold_pct`.
    pub fn alloc_regressed(&self, threshold_pct: f64) -> bool {
        matches!(self.alloc_delta_pct(), Some(d) if d > threshold_pct)
    }
}

/// The result of diffing two [`BenchReport`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchComparison {
    /// Per-workload deltas: baseline order first, then workloads that
    /// only exist in the new run.
    pub deltas: Vec<BenchDelta>,
    /// Throughput regression threshold in percent.
    pub threshold_pct: f64,
    /// Allocation-growth threshold in percent (`f64::INFINITY` disables
    /// alloc gating, the [`compare`] default).
    pub alloc_threshold_pct: f64,
}

impl BenchComparison {
    /// Names of workloads slower than the rate threshold allows, or
    /// allocating more than the alloc threshold allows.
    pub fn regressions(&self) -> Vec<&str> {
        self.deltas
            .iter()
            .filter(|d| {
                d.regressed(self.threshold_pct) || d.alloc_regressed(self.alloc_threshold_pct)
            })
            .map(|d| d.name.as_str())
            .collect()
    }

    /// Human delta table plus the verdict line.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<24} {:>14} {:>14} {:>9} {:>10}\n",
            "workload", "base ev/s", "new ev/s", "delta", "allocs"
        );
        for d in &self.deltas {
            let side = |v: Option<f64>| match v {
                Some(x) => format!("{x:.0}"),
                None => "-".to_string(),
            };
            let delta = match d.delta_pct() {
                Some(p) => format!("{p:+.1} %"),
                None if d.old_events_per_sec.is_none() => "new".to_string(),
                None => "gone".to_string(),
            };
            let allocs = match d.alloc_delta_pct() {
                Some(p) => format!("{p:+.1} %"),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "{:<24} {:>14} {:>14} {:>9} {:>10}\n",
                d.name,
                side(d.old_events_per_sec),
                side(d.new_events_per_sec),
                delta,
                allocs,
            ));
        }
        let regressions = self.regressions();
        let thresholds = if self.alloc_threshold_pct.is_finite() {
            format!(
                "{:.1} % rate / {:.1} % alloc threshold",
                self.threshold_pct, self.alloc_threshold_pct
            )
        } else {
            format!("{:.1} % threshold", self.threshold_pct)
        };
        if regressions.is_empty() {
            out.push_str(&format!("no regressions beyond {thresholds}\n"));
        } else {
            out.push_str(&format!(
                "REGRESSED beyond {thresholds}: {}\n",
                regressions.join(", ")
            ));
        }
        out
    }
}

/// Diff `new` against the `baseline`, matching workloads by name.
///
/// Only `events_per_sec` drives the verdict — it is the one number every
/// workload has regardless of profiling or allocator availability. Host
/// metadata is never consulted. Use [`compare_gated`] to additionally
/// gate on allocation-count growth.
pub fn compare(baseline: &BenchReport, new: &BenchReport, threshold_pct: f64) -> BenchComparison {
    compare_gated(baseline, new, threshold_pct, f64::INFINITY)
}

/// Like [`compare`], but a workload also counts as regressed when its
/// allocation count grew more than `alloc_threshold_pct` percent over
/// the baseline.
///
/// Wall rates are machine-dependent — a committed baseline from one
/// machine needs a very loose rate threshold on another. Allocation
/// counts are deterministic for a given binary and workload, so the
/// alloc gate stays tight even across machines; CI leans on it.
pub fn compare_gated(
    baseline: &BenchReport,
    new: &BenchReport,
    threshold_pct: f64,
    alloc_threshold_pct: f64,
) -> BenchComparison {
    let allocs = |w: &BenchWorkload| w.alloc.as_ref().map(|a| a.allocs);
    let mut deltas = Vec::new();
    for old in &baseline.workloads {
        let cur = new.workload(&old.name);
        deltas.push(BenchDelta {
            name: old.name.clone(),
            old_events_per_sec: Some(old.events_per_sec()),
            new_events_per_sec: cur.map(|w| w.events_per_sec()),
            old_allocs: allocs(old),
            new_allocs: cur.and_then(allocs),
        });
    }
    for w in &new.workloads {
        if baseline.workload(&w.name).is_none() {
            deltas.push(BenchDelta {
                name: w.name.clone(),
                old_events_per_sec: None,
                new_events_per_sec: Some(w.events_per_sec()),
                old_allocs: None,
                new_allocs: allocs(w),
            });
        }
    }
    BenchComparison {
        deltas,
        threshold_pct,
        alloc_threshold_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PerfScope;

    fn sample_report() -> BenchReport {
        let mut perf = PerfReport {
            total_ns: 1_000_000,
            ..PerfReport::default()
        };
        perf.scope_ns[PerfScope::Engine as usize] = 400_000;
        perf.scope_ns[PerfScope::TickHost as usize] = 590_000;
        perf.scope_enters[PerfScope::Engine as usize] = 3;
        perf.scope_enters[PerfScope::TickHost as usize] = 900;
        perf.max_depth = 2;
        BenchReport {
            git_sha: "abc1234".to_string(),
            suite: "smoke".to_string(),
            warmup: 1,
            iters: 3,
            workloads: vec![
                BenchWorkload {
                    name: "scenario:baseline".to_string(),
                    wall_secs_p50: 0.125,
                    wall_secs_p95: 0.25,
                    wall_secs_iters: vec![0.125, 0.1, 0.25],
                    events: 50_000,
                    sim_ns: 20_000_000,
                    perf: Some(perf),
                    alloc: Some(AllocStats {
                        allocs: 1234,
                        frees: 1200,
                        bytes: 987_654,
                        peak_live_bytes: 65_536,
                    }),
                },
                BenchWorkload {
                    name: "chaos:flap".to_string(),
                    wall_secs_p50: 0.5,
                    wall_secs_p95: 0.5,
                    wall_secs_iters: vec![0.5],
                    events: 10_000,
                    sim_ns: 7_000_000,
                    perf: None,
                    alloc: None,
                },
            ],
            host: HostMeta {
                cpus: 8,
                rustc: "rustc 1.80.0".to_string(),
                os: "linux".to_string(),
                arch: "x86_64".to_string(),
                timestamp_unix: 1_750_000_000,
            },
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let report = sample_report();
        let json = report.to_json();
        let back = BenchReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        // And stable: serialising the parsed copy reproduces the bytes.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn identical_files_compare_to_zero_delta() {
        let report = sample_report();
        let cmp = compare(&report, &report, 5.0);
        assert_eq!(cmp.deltas.len(), 2);
        for d in &cmp.deltas {
            assert_eq!(d.delta_pct(), Some(0.0), "{}", d.name);
        }
        assert!(cmp.regressions().is_empty());
        assert!(cmp.render().contains("no regressions"));
    }

    #[test]
    fn regression_beyond_threshold_is_flagged() {
        let base = sample_report();
        let mut slow = base.clone();
        slow.workloads[0].wall_secs_p50 *= 1.5; // ~33 % fewer events/sec
        let cmp = compare(&base, &slow, 5.0);
        assert_eq!(cmp.regressions(), vec!["scenario:baseline"]);
        assert!(cmp.render().contains("REGRESSED"));
        // A generous threshold accepts the same delta.
        assert!(compare(&base, &slow, 50.0).regressions().is_empty());
    }

    #[test]
    fn added_and_removed_workloads_are_reported_not_regressions() {
        let base = sample_report();
        let mut new = base.clone();
        new.workloads.remove(1);
        new.workloads.push(BenchWorkload {
            name: "sweep:small".to_string(),
            wall_secs_p50: 1.0,
            wall_secs_p95: 1.0,
            wall_secs_iters: vec![1.0],
            events: 1,
            sim_ns: 1,
            perf: None,
            alloc: None,
        });
        let cmp = compare(&base, &new, 5.0);
        assert!(cmp.regressions().is_empty());
        let gone = cmp.deltas.iter().find(|d| d.name == "chaos:flap").unwrap();
        assert_eq!(gone.new_events_per_sec, None);
        let added = cmp.deltas.iter().find(|d| d.name == "sweep:small").unwrap();
        assert_eq!(added.old_events_per_sec, None);
        let text = cmp.render();
        assert!(text.contains("gone"), "{text}");
        assert!(text.contains("new"), "{text}");
    }

    #[test]
    fn alloc_growth_beyond_threshold_is_flagged() {
        let base = sample_report();
        let mut leaky = base.clone();
        // Same speed, 20 % more allocations.
        leaky.workloads[0].alloc.as_mut().unwrap().allocs = 1481;
        // Plain compare never gates on allocs.
        assert!(compare(&base, &leaky, 5.0).regressions().is_empty());
        // The gated form does, independent of the (satisfied) rate gate.
        let cmp = compare_gated(&base, &leaky, 5.0, 10.0);
        assert_eq!(cmp.regressions(), vec!["scenario:baseline"]);
        let text = cmp.render();
        assert!(text.contains("+20.0 %"), "{text}");
        assert!(text.contains("alloc threshold"), "{text}");
        // A looser alloc threshold accepts the same growth; shrinking
        // alloc counts never regress.
        assert!(compare_gated(&base, &leaky, 5.0, 25.0)
            .regressions()
            .is_empty());
        assert!(compare_gated(&leaky, &base, 5.0, 10.0)
            .regressions()
            .is_empty());
        // Workloads without allocator stats (chaos:flap here) are exempt.
        let d = cmp.deltas.iter().find(|d| d.name == "chaos:flap").unwrap();
        assert_eq!(d.alloc_delta_pct(), None);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let doc = r#"{"schema": "hostcc-bench/v0", "workloads": []}"#;
        let err = BenchReport::from_json(doc).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
        assert!(BenchReport::from_json("{}").is_err());
    }

    #[test]
    fn workload_rates_derive_from_p50() {
        let w = &sample_report().workloads[0];
        assert_eq!(w.events_per_sec(), 400_000.0);
        assert_eq!(w.sim_ns_per_wall_sec(), 160_000_000.0);
    }
}
