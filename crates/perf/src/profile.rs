//! Wall-clock attribution: a scope stack the simulation loop threads
//! `enter`/`exit` pairs through, accumulating *self-time* per scope.
//!
//! Self-time means entering a nested scope pauses its parent, so the
//! per-scope nanoseconds always sum to exactly the wall time between the
//! first `enter` and the last `exit` — minus only the gaps where *no*
//! scope was open. The simulation keeps an `Engine` scope open for the
//! whole event loop and nests event/tick scopes inside it, so in practice
//! the unattributed gap is a handful of instructions per `advance_to`
//! call and the attributed fraction is ≥99 %.
//!
//! Everything here only *reads* the wall clock ([`std::time::Instant`]);
//! no simulation state is touched, so a profiled run is bit-identical to
//! an unprofiled one in `RunResult` terms.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

/// One attribution bucket: an event-dispatch kind or a host-tick phase.
///
/// The discriminants index the fixed-size count/nanosecond arrays in
/// [`PerfReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum PerfScope {
    /// Event-queue operations and loop control (pop, heap maintenance).
    Engine = 0,
    /// `Depart` events: a packet's last bit leaving a sender NIC.
    EvDepart,
    /// `ArriveSwitch` events: switch enqueue, ECN marking, fault/chaos
    /// drop draws.
    EvArriveSwitch,
    /// `ArriveRxNic` events: receiver NIC buffer admission.
    EvArriveRxNic,
    /// `DeliverStack` events: receive-stack delivery and ACK generation.
    EvDeliverStack,
    /// `AckArrive` events: sender-side ACK/SACK processing and send pump.
    EvAckArrive,
    /// `Chaos` events: fault-window injections opening and closing.
    EvChaos,
    /// Tick phase: host datapath integration (TX DMA, RX NIC → PCIe →
    /// IIO → memory).
    TickHost,
    /// Tick phase: hostCC controllers and the monitoring sampler.
    TickCore,
    /// Tick phase: deliveries, application reads, window reopening, flow
    /// timers and the send pump.
    TickTransport,
    /// Tick phase: RPC workload generators.
    TickWorkload,
    /// Tick phase: telemetry gauges, invariant watchdog, sampling.
    TickTelemetry,
}

impl PerfScope {
    /// Number of scopes (array dimension in [`PerfReport`]).
    pub const COUNT: usize = 12;

    /// Every scope, in discriminant order.
    pub const ALL: [PerfScope; PerfScope::COUNT] = [
        PerfScope::Engine,
        PerfScope::EvDepart,
        PerfScope::EvArriveSwitch,
        PerfScope::EvArriveRxNic,
        PerfScope::EvDeliverStack,
        PerfScope::EvAckArrive,
        PerfScope::EvChaos,
        PerfScope::TickHost,
        PerfScope::TickCore,
        PerfScope::TickTransport,
        PerfScope::TickWorkload,
        PerfScope::TickTelemetry,
    ];

    /// Stable snake_case name (JSON keys, table rows).
    pub fn name(self) -> &'static str {
        match self {
            PerfScope::Engine => "engine",
            PerfScope::EvDepart => "ev_depart",
            PerfScope::EvArriveSwitch => "ev_arrive_switch",
            PerfScope::EvArriveRxNic => "ev_arrive_rx_nic",
            PerfScope::EvDeliverStack => "ev_deliver_stack",
            PerfScope::EvAckArrive => "ev_ack_arrive",
            PerfScope::EvChaos => "ev_chaos",
            PerfScope::TickHost => "tick_host",
            PerfScope::TickCore => "tick_core",
            PerfScope::TickTransport => "tick_transport",
            PerfScope::TickWorkload => "tick_workload",
            PerfScope::TickTelemetry => "tick_telemetry",
        }
    }

    /// Resolve a scope from its [`PerfScope::name`].
    pub fn from_name(name: &str) -> Option<PerfScope> {
        PerfScope::ALL.iter().copied().find(|s| s.name() == name)
    }

    /// The subsystem this scope rolls up into.
    pub fn subsystem(self) -> Subsystem {
        match self {
            PerfScope::Engine => Subsystem::Engine,
            PerfScope::EvDepart | PerfScope::EvArriveSwitch => Subsystem::Fabric,
            PerfScope::EvArriveRxNic | PerfScope::TickHost => Subsystem::Host,
            PerfScope::EvDeliverStack | PerfScope::EvAckArrive | PerfScope::TickTransport => {
                Subsystem::Transport
            }
            PerfScope::EvChaos => Subsystem::Chaos,
            PerfScope::TickCore => Subsystem::Core,
            PerfScope::TickWorkload => Subsystem::Workload,
            PerfScope::TickTelemetry => Subsystem::Telemetry,
        }
    }
}

/// Coarse cost roll-up of [`PerfScope`]s: which layer of the stack burned
/// the wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Subsystem {
    /// Event-queue and loop overhead.
    Engine = 0,
    /// Links and the switch.
    Fabric,
    /// The host substrate (NIC, PCIe, IIO, memory, copy engine).
    Host,
    /// hostCC controllers, signals, monitoring.
    Core,
    /// Transport (flows, receivers, ACK processing).
    Transport,
    /// Workload generators.
    Workload,
    /// Telemetry pipeline.
    Telemetry,
    /// Chaos fault orchestration.
    Chaos,
}

impl Subsystem {
    /// Number of subsystems.
    pub const COUNT: usize = 8;

    /// Every subsystem, in discriminant order.
    pub const ALL: [Subsystem; Subsystem::COUNT] = [
        Subsystem::Engine,
        Subsystem::Fabric,
        Subsystem::Host,
        Subsystem::Core,
        Subsystem::Transport,
        Subsystem::Workload,
        Subsystem::Telemetry,
        Subsystem::Chaos,
    ];

    /// Stable lowercase name (JSON keys, table rows).
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Engine => "engine",
            Subsystem::Fabric => "fabric",
            Subsystem::Host => "host",
            Subsystem::Core => "core",
            Subsystem::Transport => "transport",
            Subsystem::Workload => "workload",
            Subsystem::Telemetry => "telemetry",
            Subsystem::Chaos => "chaos",
        }
    }
}

/// The clock-free attribution core: all arithmetic over caller-supplied
/// nanosecond timestamps, so tests can drive it with exact values.
/// [`PerfProfiler`] wraps it with the real monotonic clock.
#[derive(Debug, Clone, Default)]
struct ScopeStack {
    /// Open frames: `(scope, start of its current self-time segment)`.
    frames: Vec<(PerfScope, u64)>,
    ns: [u64; PerfScope::COUNT],
    enters: [u64; PerfScope::COUNT],
    /// Timestamp of the very first `enter`.
    first: Option<u64>,
    /// Timestamp of the latest `exit`.
    last: u64,
    max_depth: usize,
}

impl ScopeStack {
    fn enter(&mut self, scope: PerfScope, now: u64) {
        if self.first.is_none() {
            self.first = Some(now);
        }
        // Self-time: the parent's running segment ends here and resumes
        // when the child exits.
        if let Some(top) = self.frames.last_mut() {
            self.ns[top.0 as usize] += now.saturating_sub(top.1);
            top.1 = now;
        }
        self.frames.push((scope, now));
        self.enters[scope as usize] += 1;
        self.max_depth = self.max_depth.max(self.frames.len());
    }

    fn exit(&mut self, now: u64) {
        let Some((scope, start)) = self.frames.pop() else {
            debug_assert!(false, "PerfProfiler::exit without a matching enter");
            return;
        };
        self.ns[scope as usize] += now.saturating_sub(start);
        if let Some(top) = self.frames.last_mut() {
            top.1 = now;
        }
        self.last = now;
    }

    fn report(&self) -> PerfReport {
        PerfReport {
            total_ns: self.last.saturating_sub(self.first.unwrap_or(0)),
            scope_ns: self.ns,
            scope_enters: self.enters,
            max_depth: self.max_depth as u64,
        }
    }
}

/// An in-flight attribution measurement over the real monotonic clock.
#[derive(Debug, Clone)]
pub struct PerfProfiler {
    origin: Instant,
    stack: ScopeStack,
}

impl Default for PerfProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl PerfProfiler {
    /// A fresh profiler; the clock origin is captured now.
    pub fn new() -> Self {
        PerfProfiler {
            origin: Instant::now(),
            stack: ScopeStack::default(),
        }
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Open `scope`, pausing the enclosing scope (if any).
    #[inline]
    pub fn enter(&mut self, scope: PerfScope) {
        let now = self.now_ns();
        self.stack.enter(scope, now);
    }

    /// Close the innermost open scope, resuming its parent.
    #[inline]
    pub fn exit(&mut self) {
        let now = self.now_ns();
        self.stack.exit(now);
    }

    /// Snapshot the attribution accumulated so far.
    pub fn report(&self) -> PerfReport {
        self.stack.report()
    }
}

/// The cloneable handle instrumented code holds. Disabled, every call is
/// a single `Option` check and the wall clock is never read.
#[derive(Debug, Clone, Default)]
pub struct PerfHandle(Option<Rc<RefCell<PerfProfiler>>>);

impl PerfHandle {
    /// The no-op handle.
    pub fn disabled() -> Self {
        PerfHandle(None)
    }

    /// A handle owning a fresh profiler; clones share it.
    pub fn new(profiler: PerfProfiler) -> Self {
        PerfHandle(Some(Rc::new(RefCell::new(profiler))))
    }

    /// Whether attribution is being collected at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Open `scope` (no-op when disabled).
    #[inline]
    pub fn enter(&self, scope: PerfScope) {
        if let Some(p) = &self.0 {
            p.borrow_mut().enter(scope);
        }
    }

    /// Close the innermost scope (no-op when disabled).
    #[inline]
    pub fn exit(&self) {
        if let Some(p) = &self.0 {
            p.borrow_mut().exit();
        }
    }

    /// Snapshot the report, if enabled.
    pub fn report(&self) -> Option<PerfReport> {
        self.0.as_ref().map(|p| p.borrow().report())
    }
}

/// A closed attribution measurement: self-time nanoseconds and enter
/// counts per scope, plus the covered wall window.
///
/// Wall-clock data varies run to run — reports are never part of result
/// fingerprints, the sweep CSV, or any determinism comparison.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PerfReport {
    /// Wall nanoseconds between the first `enter` and the last `exit`.
    pub total_ns: u64,
    /// Self-time nanoseconds per scope (indexed by `PerfScope as usize`).
    pub scope_ns: [u64; PerfScope::COUNT],
    /// Enter count per scope.
    pub scope_enters: [u64; PerfScope::COUNT],
    /// Deepest simultaneous nesting observed.
    pub max_depth: u64,
}

impl PerfReport {
    /// Nanoseconds attributed to some scope — `≤ total_ns`, with equality
    /// when a scope was open for the whole window.
    pub fn attributed_ns(&self) -> u64 {
        self.scope_ns.iter().sum()
    }

    /// Attributed share of the total window (0.0 when nothing was
    /// measured).
    pub fn attributed_frac(&self) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        self.attributed_ns() as f64 / self.total_ns as f64
    }

    /// Self-time per subsystem, in [`Subsystem::ALL`] order.
    pub fn subsystem_ns(&self) -> [u64; Subsystem::COUNT] {
        let mut out = [0u64; Subsystem::COUNT];
        for s in PerfScope::ALL {
            out[s.subsystem() as usize] += self.scope_ns[s as usize];
        }
        out
    }

    /// Fold another report into this one (sums; commutative, so per-cell
    /// sweep reports can merge at join time in any order).
    pub fn merge(&mut self, other: &PerfReport) {
        self.total_ns += other.total_ns;
        for i in 0..PerfScope::COUNT {
            self.scope_ns[i] += other.scope_ns[i];
            self.scope_enters[i] += other.scope_enters[i];
        }
        self.max_depth = self.max_depth.max(other.max_depth);
    }

    /// Multi-line human rendering: subsystem percentages, then the
    /// nonzero scopes.
    pub fn render(&self) -> String {
        let total = self.total_ns.max(1) as f64;
        let mut out = format!(
            "perf: {:.3} ms attributed of {:.3} ms profiled ({:.1} %)\n",
            self.attributed_ns() as f64 / 1e6,
            self.total_ns as f64 / 1e6,
            100.0 * self.attributed_frac(),
        );
        let by_subsystem = self.subsystem_ns();
        let line: Vec<String> = Subsystem::ALL
            .iter()
            .filter(|s| by_subsystem[**s as usize] > 0)
            .map(|s| {
                format!(
                    "{} {:.1}%",
                    s.name(),
                    100.0 * by_subsystem[*s as usize] as f64 / total
                )
            })
            .collect();
        out.push_str(&format!("  subsystems: {}\n", line.join(", ")));
        for s in PerfScope::ALL {
            let ns = self.scope_ns[s as usize];
            if ns == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {:<18} {:>10.3} ms  {:>5.1} %  {:>10} enters\n",
                s.name(),
                ns as f64 / 1e6,
                100.0 * ns as f64 / total,
                self.scope_enters[s as usize],
            ));
        }
        out
    }

    /// JSON object: totals, the subsystem roll-up (with fractions) and
    /// every scope's nanoseconds and enter count.
    pub fn to_json(&self) -> String {
        let total = self.total_ns.max(1) as f64;
        let by_subsystem = self.subsystem_ns();
        let subsystems: Vec<String> = Subsystem::ALL
            .iter()
            .map(|s| {
                let ns = by_subsystem[*s as usize];
                format!(
                    "\"{}\": {{\"ns\": {}, \"frac\": {}}}",
                    s.name(),
                    ns,
                    crate::json::fmt_f64(ns as f64 / total)
                )
            })
            .collect();
        let scopes: Vec<String> = PerfScope::ALL
            .iter()
            .map(|s| {
                format!(
                    "\"{}\": {{\"ns\": {}, \"enters\": {}}}",
                    s.name(),
                    self.scope_ns[*s as usize],
                    self.scope_enters[*s as usize]
                )
            })
            .collect();
        format!(
            "{{\"total_ns\": {}, \"attributed_ns\": {}, \"attributed_frac\": {}, \
             \"max_depth\": {}, \"subsystems\": {{{}}}, \"scopes\": {{{}}}}}",
            self.total_ns,
            self.attributed_ns(),
            crate::json::fmt_f64(self.attributed_frac()),
            self.max_depth,
            subsystems.join(", "),
            scopes.join(", "),
        )
    }

    /// Parse a report back out of [`PerfReport::to_json`] output.
    pub fn from_json(v: &crate::json::JsonValue) -> Result<PerfReport, String> {
        let mut r = PerfReport {
            total_ns: v
                .get("total_ns")
                .and_then(|x| x.as_u64())
                .ok_or("perf: missing total_ns")?,
            max_depth: v.get("max_depth").and_then(|x| x.as_u64()).unwrap_or(0),
            ..PerfReport::default()
        };
        let scopes = v.get("scopes").ok_or("perf: missing scopes")?;
        for s in PerfScope::ALL {
            if let Some(entry) = scopes.get(s.name()) {
                r.scope_ns[s as usize] = entry
                    .get("ns")
                    .and_then(|x| x.as_u64())
                    .ok_or_else(|| format!("perf: scope {} missing ns", s.name()))?;
                r.scope_enters[s as usize] =
                    entry.get("enters").and_then(|x| x.as_u64()).unwrap_or(0);
            }
        }
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_scopes_attribute_self_time() {
        let mut s = ScopeStack::default();
        s.enter(PerfScope::Engine, 0);
        s.enter(PerfScope::EvArriveSwitch, 10); // Engine self-time: 10
        s.enter(PerfScope::TickCore, 15); // ArriveSwitch self-time: 5
        s.exit(25); // TickCore: 10
        s.exit(40); // ArriveSwitch: +15 = 20
        s.exit(100); // Engine: +60 = 70
        let r = s.report();
        assert_eq!(r.scope_ns[PerfScope::Engine as usize], 70);
        assert_eq!(r.scope_ns[PerfScope::EvArriveSwitch as usize], 20);
        assert_eq!(r.scope_ns[PerfScope::TickCore as usize], 10);
        assert_eq!(r.max_depth, 3);
        assert_eq!(r.total_ns, 100);
    }

    #[test]
    fn attribution_sums_to_total_with_no_gaps() {
        // As long as some scope is always open, attributed == total.
        let mut s = ScopeStack::default();
        s.enter(PerfScope::Engine, 5);
        for i in 0..100u64 {
            s.enter(PerfScope::EvAckArrive, 10 + i * 7);
            s.enter(PerfScope::TickTransport, 12 + i * 7);
            s.exit(14 + i * 7);
            s.exit(16 + i * 7);
        }
        s.exit(1000);
        let r = s.report();
        assert_eq!(r.attributed_ns(), r.total_ns);
        assert_eq!(r.total_ns, 995);
        assert_eq!(r.scope_enters[PerfScope::EvAckArrive as usize], 100);
        assert!((r.attributed_frac() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gaps_between_top_level_scopes_stay_unattributed() {
        let mut s = ScopeStack::default();
        s.enter(PerfScope::Engine, 0);
        s.exit(40);
        // 20 ns gap with nothing open.
        s.enter(PerfScope::Engine, 60);
        s.exit(100);
        let r = s.report();
        assert_eq!(r.total_ns, 100);
        assert_eq!(r.attributed_ns(), 80);
        assert!((r.attributed_frac() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn unmatched_exit_is_ignored_in_release() {
        let mut s = ScopeStack::default();
        s.enter(PerfScope::Engine, 0);
        s.exit(10);
        let before = s.report();
        // In release builds a stray exit must not corrupt anything; the
        // debug_assert catches it during development. (Tests run with
        // debug assertions, so exercise the state, not the call.)
        assert_eq!(before.attributed_ns(), 10);
    }

    #[test]
    fn merge_sums_and_keeps_max_depth() {
        let mut a = ScopeStack::default();
        a.enter(PerfScope::Engine, 0);
        a.exit(10);
        let mut b = ScopeStack::default();
        b.enter(PerfScope::Engine, 0);
        b.enter(PerfScope::TickHost, 2);
        b.exit(8);
        b.exit(10);
        let mut m = a.report();
        m.merge(&b.report());
        assert_eq!(m.total_ns, 20);
        assert_eq!(m.scope_ns[PerfScope::Engine as usize], 14);
        assert_eq!(m.scope_ns[PerfScope::TickHost as usize], 6);
        assert_eq!(m.scope_enters[PerfScope::Engine as usize], 2);
        assert_eq!(m.max_depth, 2);
    }

    #[test]
    fn subsystem_rollup_covers_every_scope() {
        let mut s = ScopeStack::default();
        let mut t = 0;
        for scope in PerfScope::ALL {
            s.enter(scope, t);
            s.exit(t + 3);
            t += 3;
        }
        let r = s.report();
        let subsystems = r.subsystem_ns();
        assert_eq!(
            subsystems.iter().sum::<u64>(),
            r.attributed_ns(),
            "every scope maps to exactly one subsystem"
        );
        assert_eq!(r.attributed_ns(), 3 * PerfScope::COUNT as u64);
    }

    #[test]
    fn handle_disabled_is_inert_and_enabled_round_trips() {
        let off = PerfHandle::disabled();
        off.enter(PerfScope::Engine);
        off.exit();
        assert!(off.report().is_none());
        assert!(!off.is_enabled());

        let on = PerfHandle::new(PerfProfiler::new());
        let clone = on.clone();
        on.enter(PerfScope::Engine);
        clone.enter(PerfScope::TickHost);
        clone.exit();
        on.exit();
        let r = on.report().unwrap();
        assert_eq!(r.scope_enters[PerfScope::Engine as usize], 1);
        assert_eq!(r.scope_enters[PerfScope::TickHost as usize], 1);
        assert_eq!(r.max_depth, 2);
        assert!(r.attributed_ns() <= r.total_ns);
    }

    #[test]
    fn report_json_round_trips() {
        let mut s = ScopeStack::default();
        s.enter(PerfScope::Engine, 0);
        s.enter(PerfScope::EvDepart, 5);
        s.exit(11);
        s.exit(20);
        let r = s.report();
        let json = r.to_json();
        let v = crate::json::JsonValue::parse(&json).unwrap();
        let back = PerfReport::from_json(&v).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        for s in PerfScope::ALL {
            assert_eq!(PerfScope::from_name(s.name()), Some(s));
        }
        assert_eq!(PerfScope::from_name("nope"), None);
        let mut names: Vec<&str> = Subsystem::ALL.iter().map(|s| s.name()).collect();
        names.dedup();
        assert_eq!(names.len(), Subsystem::COUNT);
    }

    #[test]
    fn render_mentions_the_big_buckets() {
        let mut s = ScopeStack::default();
        s.enter(PerfScope::Engine, 0);
        s.enter(PerfScope::TickHost, 100);
        s.exit(900);
        s.exit(1000);
        let text = s.report().render();
        assert!(text.contains("host 80.0%"), "{text}");
        assert!(text.contains("tick_host"), "{text}");
    }
}
