//! # hostcc-perf
//!
//! Performance observability for the hostCC simulation stack: where do the
//! wall-clock nanoseconds of a run actually go, and is the simulator
//! getting faster or slower PR over PR?
//!
//! Three layers:
//!
//! * **Attribution** — [`PerfProfiler`] behind a cloneable [`PerfHandle`]:
//!   a scope stack the simulation loop enters and exits around every event
//!   dispatch and host-tick phase. Attribution is *self-time* (entering a
//!   nested scope pauses its parent), so the per-scope nanoseconds sum to
//!   the total profiled wall time exactly. The disabled handle is a single
//!   `Option` check; profiling only ever reads the wall clock, so profiled
//!   runs stay bit-identical to unprofiled ones (pinned by test in
//!   `hostcc-experiments`).
//! * **Allocation counting** — a `CountingAllocator` global allocator
//!   (allocs, freed, bytes, peak live heap) gated behind the
//!   `alloc-profile` feature so default builds keep `forbid(unsafe_code)`
//!   and pay nothing.
//! * **Trajectory** — [`BenchReport`]: the `BENCH_<git-sha>.json` schema
//!   the `repro bench` subcommand emits, with a registry-free JSON
//!   parser ([`JsonValue`]) and [`compare`] for the per-workload delta
//!   table and regression verdicts that make the performance trajectory
//!   visible PR over PR.
//!
//! ## Example
//!
//! ```
//! use hostcc_perf::{PerfHandle, PerfProfiler, PerfScope};
//!
//! let perf = PerfHandle::new(PerfProfiler::new());
//! perf.enter(PerfScope::Engine);
//! perf.enter(PerfScope::EvArriveSwitch); // pauses Engine
//! perf.exit();
//! perf.exit();
//! let report = perf.report().unwrap();
//! assert_eq!(report.attributed_ns(), report.total_ns);
//! assert_eq!(report.scope_enters[PerfScope::Engine as usize], 1);
//! ```

#![cfg_attr(not(feature = "alloc-profile"), forbid(unsafe_code))]
#![warn(missing_docs)]

mod alloc;
mod json;
mod profile;
mod report;

#[cfg(feature = "alloc-profile")]
pub use alloc::CountingAllocator;
pub use alloc::{alloc_stats, reset_alloc_peak, AllocStats};
pub use json::JsonValue;
pub use profile::{PerfHandle, PerfProfiler, PerfReport, PerfScope, Subsystem};
pub use report::{
    compare, compare_gated, BenchComparison, BenchDelta, BenchReport, BenchWorkload, HostMeta,
};
