//! Property-based tests for the transport crate.

use hostcc_fabric::{FlowId, Packet, PacketBody};
use hostcc_sim::{Nanos, Rng};
use hostcc_transport::{Dctcp, Flow, FlowConfig, Receiver, Reno};
use proptest::prelude::*;

const MTU: u64 = 4096;
const MSS: u64 = MTU - 66;

fn data(seq: u64, len: u32) -> Packet {
    Packet::data(seq, FlowId(1), seq, len, false, Nanos::ZERO)
}

proptest! {
    /// The receiver's cumulative ACK equals the reference prefix length for
    /// ANY arrival order (with duplicates) of a segmented stream.
    #[test]
    fn receiver_reassembly_matches_reference(
        n_segs in 1usize..40,
        order in prop::collection::vec(0usize..40, 1..120),
    ) {
        let mut r = Receiver::new(FlowId(1), 1 << 30);
        let mut received = vec![false; n_segs];
        for &i in &order {
            let i = i % n_segs;
            received[i] = true;
            let seq = i as u64 * 1000;
            r.on_data(&data(seq, 1000), Nanos::ZERO);
            // Reference: cum = longest received prefix.
            let prefix = received.iter().take_while(|&&x| x).count() as u64 * 1000;
            prop_assert_eq!(r.cum_ack(), prefix);
        }
        // Bytes held never exceed the stream received (duplicates dropped).
        let unique: u64 = received.iter().filter(|&&x| x).count() as u64 * 1000;
        prop_assert_eq!(r.cum_ack() + r.ooo_bytes(), unique);
    }

    /// Window accounting: buffered bytes equal delivered-minus-consumed,
    /// and the advertised window never exceeds the buffer size.
    #[test]
    fn receiver_window_accounting(
        segs in prop::collection::vec((0u64..50, 1u32..2000), 1..60),
        reads in prop::collection::vec(0u64..5000, 0..30),
    ) {
        let rcv_buf = 1u64 << 20;
        let mut r = Receiver::new(FlowId(1), rcv_buf);
        for &(slot, len) in &segs {
            r.on_data(&data(slot * 2000, len), Nanos::ZERO);
            prop_assert!(r.rwnd() <= rcv_buf);
        }
        let mut consumed = 0;
        for &b in &reads {
            consumed += r.app_read(b);
        }
        prop_assert!(consumed <= r.cum_ack());
        prop_assert!(r.rwnd() <= rcv_buf);
    }

    /// Flow sequencing invariants hold under arbitrary (valid) cumulative
    /// ACK sequences: snd_una is monotone, never beyond snd_nxt, and
    /// in-flight never goes negative.
    #[test]
    fn flow_sequencing_invariants(acks in prop::collection::vec((0u64..200, any::<bool>()), 1..100)) {
        let mut f = Flow::new(FlowId(1), FlowConfig::for_mtu(MTU), Box::new(Reno::new()));
        f.set_greedy();
        let mut now = Nanos::ZERO;
        let mut last_una = 0;
        for &(ack_seg, ece) in &acks {
            now += Nanos::from_micros(10);
            while f.poll_send(now).is_some() {}
            // An arbitrary-but-valid cumulative ACK: within [una, nxt].
            let inflight_segs = f.inflight() / MSS;
            let cum = f.acked_bytes() + (ack_seg % (inflight_segs + 1)) * MSS;
            f.on_ack(now, cum, ece, u64::MAX);
            prop_assert!(f.acked_bytes() >= last_una, "snd_una must be monotone");
            last_una = f.acked_bytes();
            prop_assert!(f.cwnd() >= MSS, "cwnd floor");
        }
    }

    /// End-to-end delivery through a lossy, reordering-free channel: all
    /// queued messages eventually arrive, regardless of the drop pattern,
    /// thanks to retransmission machinery. Tail losses can serialize whole
    /// RTO-backoff epochs (200 + 400 + 800 ms each, exactly like Linux),
    /// so the horizon is generous: 8 simulated seconds.
    #[test]
    fn lossy_channel_eventually_delivers(seed in any::<u64>(), loss_pct in 0u32..20) {
        let mut rng = Rng::new(seed);
        let mut f = Flow::new(FlowId(1), FlowConfig::for_mtu(MTU), Box::new(Dctcp::new()));
        let total: u64 = 8 * MSS + 123;
        f.queue_message(total);
        let mut r = Receiver::new(FlowId(1), 1 << 30);
        let mut now = Nanos::ZERO;
        let rtt = Nanos::from_micros(40);
        // Run rounds: send everything pollable, drop some, ack the rest.
        for _round in 0..200_000 {
            now += rtt;
            let pkts: Vec<Packet> = std::iter::from_fn(|| f.poll_send(now)).collect();
            let mut acks = Vec::new();
            for pkt in pkts {
                if rng.below(100) < u64::from(loss_pct) {
                    continue; // dropped
                }
                acks.push(r.on_data(&pkt, now));
            }
            for a in acks {
                f.on_ack_sack(now, a.cum_ack, a.ece, a.rwnd, &a.sack);
            }
            f.on_tick(now);
            if r.cum_ack() == total {
                break;
            }
        }
        prop_assert_eq!(r.cum_ack(), total, "stream must complete");
        let done = r.take_completed();
        prop_assert_eq!(done.len(), 1);
        prop_assert_eq!(done[0].end_offset, total);
    }

    /// Payload conservation: bytes the receiver acknowledges never exceed
    /// bytes the flow has emitted (counting retransmissions once).
    #[test]
    fn no_bytes_invented(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let mut f = Flow::new(FlowId(1), FlowConfig::for_mtu(MTU), Box::new(Reno::new()));
        f.set_greedy();
        let mut r = Receiver::new(FlowId(1), 1 << 30);
        let mut now = Nanos::ZERO;
        let mut emitted_max = 0u64;
        for _ in 0..200 {
            now += Nanos::from_micros(40);
            while let Some(pkt) = f.poll_send(now) {
                if let PacketBody::Data { seq, len, .. } = pkt.body {
                    emitted_max = emitted_max.max(seq + u64::from(len));
                }
                if rng.chance(0.9) {
                    let a = r.on_data(&pkt, now);
                    f.on_ack_sack(now, a.cum_ack, a.ece, a.rwnd, &a.sack);
                }
            }
            f.on_tick(now);
            prop_assert!(r.cum_ack() <= emitted_max);
            prop_assert!(f.acked_bytes() <= emitted_max);
        }
    }
}
