//! The receiver-side transport: reassembly, ACK generation, flow control.
//!
//! The receiver issues one cumulative ACK per delivered data packet, echoing
//! the packet's CE mark (the per-packet echo DCTCP needs). Its advertised
//! window shrinks as delivered-but-unconsumed bytes accumulate — the app
//! "consumes" data when the host model's copy engine finishes moving it, so
//! memory congestion closes the window exactly the way slow receive
//! processing does on Linux.

use std::collections::{BTreeMap, BTreeSet};

use hostcc_fabric::{FlowId, Packet, PacketBody};
use hostcc_sim::Nanos;

/// Maximum SACK ranges reported per ACK (like TCP's 3-block limit).
pub const MAX_SACK_RANGES: usize = 3;

/// What to put in the ACK for a received data packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckInfo {
    /// Cumulative ACK (next expected stream offset).
    pub cum_ack: u64,
    /// Echo of the data packet's CE mark.
    pub ece: bool,
    /// Advertised receive window in bytes.
    pub rwnd: u64,
    /// Up to 3 SACK ranges `[start, end)` of out-of-order data held.
    pub sack: [Option<(u64, u64)>; MAX_SACK_RANGES],
}

/// A completed application message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedMessage {
    /// Stream offset at which the message ends.
    pub end_offset: u64,
    /// When the last in-order byte was delivered.
    pub completed_at: Nanos,
}

/// Receiver state for one flow.
#[derive(Debug)]
pub struct Receiver {
    /// The flow this receiver terminates.
    pub flow: FlowId,
    /// Next expected in-order offset.
    cum: u64,
    /// Out-of-order intervals: start → end.
    ooo: BTreeMap<u64, u64>,
    /// Socket buffer size.
    rcv_buf: u64,
    /// Bytes held (in-order not yet consumed + out-of-order).
    buffered: u64,
    /// In-order bytes not yet consumed by the application.
    unconsumed: u64,
    /// Known message-end offsets not yet completed.
    msg_ends: BTreeSet<u64>,
    /// Completed messages awaiting pickup by the workload layer.
    completed: Vec<CompletedMessage>,
    /// Data packets received (including duplicates).
    pub packets_received: u64,
    /// Data packets that arrived CE-marked.
    pub ce_received: u64,
    /// Duplicate/overlapping payload bytes discarded.
    pub duplicate_bytes: u64,
}

impl Receiver {
    /// A receiver with the given socket buffer size.
    pub fn new(flow: FlowId, rcv_buf: u64) -> Self {
        assert!(rcv_buf > 0);
        Receiver {
            flow,
            cum: 0,
            ooo: BTreeMap::new(),
            rcv_buf,
            buffered: 0,
            unconsumed: 0,
            msg_ends: BTreeSet::new(),
            completed: Vec::new(),
            packets_received: 0,
            ce_received: 0,
            duplicate_bytes: 0,
        }
    }

    /// Next expected in-order offset.
    pub fn cum_ack(&self) -> u64 {
        self.cum
    }

    /// Current advertised window.
    pub fn rwnd(&self) -> u64 {
        self.rcv_buf.saturating_sub(self.buffered)
    }

    /// In-order bytes awaiting application consumption (copy backlog share
    /// of this flow).
    pub fn unconsumed(&self) -> u64 {
        self.unconsumed
    }

    /// Process one delivered data packet; returns the ACK to send.
    pub fn on_data(&mut self, pkt: &Packet, now: Nanos) -> AckInfo {
        let PacketBody::Data { seq, len, msg_end } = pkt.body else {
            panic!("on_data called with a non-data packet");
        };
        self.packets_received += 1;
        if pkt.ecn.is_ce() {
            self.ce_received += 1;
        }
        let start = seq;
        let end = seq + u64::from(len);
        if msg_end {
            self.msg_ends.insert(end);
        }

        // Insert [start, end) minus already-held bytes.
        let new_bytes = self.insert_interval(start, end);
        self.buffered += new_bytes;
        self.duplicate_bytes += (end - start) - new_bytes;

        // Advance the cumulative pointer over any now-contiguous intervals.
        let before = self.cum;
        self.advance_cum();
        let advanced = self.cum - before;
        self.unconsumed += advanced;

        // Message completions.
        while let Some(&e) = self.msg_ends.iter().next() {
            if e <= self.cum {
                self.msg_ends.remove(&e);
                self.completed.push(CompletedMessage {
                    end_offset: e,
                    completed_at: now,
                });
            } else {
                break;
            }
        }

        let mut sack = [None; MAX_SACK_RANGES];
        for (i, (&s, &e)) in self.ooo.iter().take(MAX_SACK_RANGES).enumerate() {
            sack[i] = Some((s, e));
        }
        AckInfo {
            cum_ack: self.cum,
            ece: pkt.ecn.is_ce(),
            rwnd: self.rwnd(),
            sack,
        }
    }

    /// Insert an interval into the reassembly state; returns bytes newly
    /// held (everything before `cum` or overlapping existing intervals is
    /// discarded as duplicate).
    fn insert_interval(&mut self, start: u64, end: u64) -> u64 {
        let mut start = start.max(self.cum);
        if start >= end {
            return 0;
        }
        let mut new_bytes = 0;
        // Walk existing intervals overlapping [start, end).
        loop {
            // The first interval with key ≥ start could still overlap via a
            // predecessor; check it first.
            if let Some((&ps, &pe)) = self.ooo.range(..=start).next_back() {
                if pe >= end {
                    return new_bytes; // fully covered
                }
                if pe > start {
                    start = pe;
                    let _ = ps;
                }
            }
            match self.ooo.range(start..end).next() {
                Some((&ns, &ne)) => {
                    if ns > start {
                        new_bytes += ns - start;
                        self.ooo.insert(start, ns);
                        self.merge_around(start);
                    }
                    if ne >= end {
                        return new_bytes;
                    }
                    start = ne;
                }
                None => {
                    new_bytes += end - start;
                    self.ooo.insert(start, end);
                    self.merge_around(start);
                    return new_bytes;
                }
            }
        }
    }

    /// Merge the interval starting at `key` with adjacent ones.
    fn merge_around(&mut self, key: u64) {
        let (&s, &e) = self
            .ooo
            .range(..=key)
            .next_back()
            .expect("interval just inserted");
        let mut start = s;
        let mut end = e;
        // Merge with predecessor.
        if let Some((&ps, &pe)) = self.ooo.range(..start).next_back() {
            if pe >= start {
                self.ooo.remove(&ps);
                self.ooo.remove(&start);
                start = ps;
                end = end.max(pe);
                self.ooo.insert(start, end);
            }
        }
        // Merge with successors.
        while let Some((&ns, &ne)) = self.ooo.range(start + 1..).next() {
            if ns <= end {
                self.ooo.remove(&ns);
                end = end.max(ne);
                self.ooo.insert(start, end);
            } else {
                break;
            }
        }
    }

    fn advance_cum(&mut self) {
        while let Some((&s, &e)) = self.ooo.iter().next() {
            if s <= self.cum {
                self.cum = self.cum.max(e);
                self.ooo.remove(&s);
            } else {
                break;
            }
        }
    }

    /// The application consumed `bytes` (copy engine finished them).
    /// Returns bytes actually consumed (capped by what was unconsumed).
    pub fn app_read(&mut self, bytes: u64) -> u64 {
        let take = bytes.min(self.unconsumed);
        self.unconsumed -= take;
        self.buffered -= take;
        take
    }

    /// Drain completed messages (RPC layer).
    pub fn take_completed(&mut self) -> Vec<CompletedMessage> {
        std::mem::take(&mut self.completed)
    }

    /// Bytes held out of order (diagnostics).
    pub fn ooo_bytes(&self) -> u64 {
        self.ooo.iter().map(|(s, e)| e - s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostcc_fabric::EcnCodepoint;

    fn data(seq: u64, len: u32, msg_end: bool) -> Packet {
        Packet::data(seq, FlowId(1), seq, len, msg_end, Nanos::ZERO)
    }

    fn rx() -> Receiver {
        Receiver::new(FlowId(1), 1 << 20)
    }

    #[test]
    fn in_order_delivery_advances_cum() {
        let mut r = rx();
        let a1 = r.on_data(&data(0, 1000, false), Nanos::ZERO);
        assert_eq!(a1.cum_ack, 1000);
        let a2 = r.on_data(&data(1000, 1000, false), Nanos::ZERO);
        assert_eq!(a2.cum_ack, 2000);
    }

    #[test]
    fn out_of_order_held_then_released() {
        let mut r = rx();
        let a = r.on_data(&data(1000, 1000, false), Nanos::ZERO);
        assert_eq!(a.cum_ack, 0, "gap at 0");
        assert_eq!(r.ooo_bytes(), 1000);
        let b = r.on_data(&data(0, 1000, false), Nanos::ZERO);
        assert_eq!(b.cum_ack, 2000, "hole filled releases everything");
        assert_eq!(r.ooo_bytes(), 0);
    }

    #[test]
    fn duplicates_discarded() {
        let mut r = rx();
        r.on_data(&data(0, 1000, false), Nanos::ZERO);
        let before = r.rwnd();
        r.on_data(&data(0, 1000, false), Nanos::ZERO);
        assert_eq!(r.duplicate_bytes, 1000);
        assert_eq!(r.rwnd(), before, "no double buffering");
    }

    #[test]
    fn partial_overlap_counts_once() {
        let mut r = rx();
        r.on_data(&data(500, 1000, false), Nanos::ZERO); // [500,1500) ooo
        r.on_data(&data(0, 1000, false), Nanos::ZERO); // [0,1000) overlaps
        assert_eq!(r.cum_ack(), 1500);
        assert_eq!(r.duplicate_bytes, 500);
    }

    #[test]
    fn rwnd_closes_as_data_buffers() {
        let mut r = Receiver::new(FlowId(1), 10_000);
        r.on_data(&data(0, 4000, false), Nanos::ZERO);
        assert_eq!(r.rwnd(), 6000);
        r.on_data(&data(4000, 4000, false), Nanos::ZERO);
        assert_eq!(r.rwnd(), 2000);
        // App consumes: window reopens.
        assert_eq!(r.app_read(8000), 8000);
        assert_eq!(r.rwnd(), 10_000);
    }

    #[test]
    fn app_read_capped_by_unconsumed() {
        let mut r = rx();
        r.on_data(&data(0, 1000, false), Nanos::ZERO);
        assert_eq!(r.app_read(5000), 1000);
        assert_eq!(r.unconsumed(), 0);
    }

    #[test]
    fn ooo_bytes_are_not_consumable() {
        let mut r = rx();
        r.on_data(&data(1000, 1000, false), Nanos::ZERO);
        assert_eq!(r.unconsumed(), 0, "ooo data is not app-readable");
        assert_eq!(r.app_read(1000), 0);
    }

    #[test]
    fn ce_echoed_per_packet() {
        let mut r = rx();
        let mut p = data(0, 1000, false);
        p.ecn = EcnCodepoint::Ce;
        let a = r.on_data(&p, Nanos::ZERO);
        assert!(a.ece);
        let a2 = r.on_data(&data(1000, 1000, false), Nanos::ZERO);
        assert!(!a2.ece, "echo follows each packet's own mark");
        assert_eq!(r.ce_received, 1);
    }

    #[test]
    fn message_completion_requires_in_order_delivery() {
        let mut r = rx();
        // Message [0, 2000): second half arrives first.
        r.on_data(&data(1000, 1000, true), Nanos::from_micros(1));
        assert!(r.take_completed().is_empty());
        r.on_data(&data(0, 1000, false), Nanos::from_micros(2));
        let done = r.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].end_offset, 2000);
        assert_eq!(done[0].completed_at, Nanos::from_micros(2));
    }

    #[test]
    fn multiple_messages_complete_in_order() {
        let mut r = rx();
        r.on_data(&data(0, 100, true), Nanos::ZERO);
        r.on_data(&data(100, 100, true), Nanos::ZERO);
        let done = r.take_completed();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].end_offset, 100);
        assert_eq!(done[1].end_offset, 200);
        assert!(r.take_completed().is_empty(), "drained");
    }

    #[test]
    fn many_interleaved_holes() {
        let mut r = rx();
        // Even packets first, then odd.
        for i in (0..10).step_by(2) {
            r.on_data(&data(i * 100, 100, false), Nanos::ZERO);
        }
        assert_eq!(r.cum_ack(), 100);
        for i in (1..10).step_by(2) {
            r.on_data(&data(i * 100, 100, false), Nanos::ZERO);
        }
        assert_eq!(r.cum_ack(), 1000);
        assert_eq!(r.ooo_bytes(), 0);
        assert_eq!(r.duplicate_bytes, 0);
    }
}
