//! Transport layer for the hostCC reproduction.
//!
//! The paper evaluates hostCC with **unmodified Linux DCTCP**; this crate
//! provides a faithful simulation-level DCTCP plus the pieces of Linux
//! loss recovery whose timescales shape the paper's tail-latency results
//! (Fig 4/12/15):
//!
//! * [`Dctcp`] — ECN-fraction AIMD per [Alizadeh et al., SIGCOMM'10] with
//!   `g = 1/16`, reduction `cwnd ← cwnd·(1 − α/2)` once per window;
//! * [`Reno`] and [`Cubic`] — loss-based baselines;
//! * [`Swift`] and [`Timely`] — delay-based protocols in the spirit of
//!   [Kumar et al., SIGCOMM'20] and [Mittal et al., SIGCOMM'15],
//!   exercising hostCC's delay-signal extension (paper §6);
//! * [`Dcqcn`] — CNP-driven rate-based AIMD per [Zhu et al., SIGCOMM'15],
//!   the RDMA-representative scheme, riding the same ECN echo path as
//!   DCTCP;
//! * [`BbrLite`] — a BBR-class bandwidth-probe scheme with a gain-cycled
//!   window that ignores ECN entirely, the adversarial case for hostCC's
//!   transport-agnosticism claim;
//! * [`Flow`] — the sender state machine: slow start / congestion
//!   avoidance, NewReno-style fast recovery on 3 dup-ACKs, minimum RTO of
//!   **200 ms** (the Linux default that dominates the paper's P99.9), and
//!   Tail Loss Probe armed only when more than one packet is in flight
//!   (which is why small RPCs eat full RTOs in Fig 4 and large ones
//!   don't);
//! * [`Receiver`] — cumulative ACKing with out-of-order reassembly,
//!   per-packet ECN echo, and a receive window that closes as the
//!   (host-model) copy engine falls behind — the flow-control path that
//!   turns memory latency into a throughput ceiling at 1× congestion.
//!
//! The crate is poll-driven: the experiment loop owns time, feeds ACKs and
//! ticks in, and drains packets out. Nothing here knows about the host
//! model or the fabric topology beyond the shared [`hostcc_fabric::Packet`]
//! format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbr_lite;
mod cc;
mod cubic;
mod dcqcn;
mod dctcp;
mod flow;
mod receiver;
mod swift;
mod timely;

pub use bbr_lite::BbrLite;
pub use cc::{CongestionControl, Reno, Window};
pub use cubic::Cubic;
pub use dcqcn::Dcqcn;
pub use dctcp::Dctcp;
pub use flow::{Flow, FlowConfig, FlowStats};
pub use receiver::{AckInfo, Receiver};
pub use swift::Swift;
pub use timely::Timely;
