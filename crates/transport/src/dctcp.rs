//! DCTCP: Data Center TCP (Alizadeh et al., SIGCOMM 2010).
//!
//! DCTCP keeps an EWMA `α` of the fraction of ECN-marked bytes per window
//! (`α ← (1−g)·α + g·F`, `g = 1/16`) and on a window with marks reduces
//! `cwnd ← cwnd·(1 − α/2)` — a graded response that keeps high throughput
//! with tiny queues. hostCC piggybacks on exactly this machinery: receiver-
//! side CE marks produced by the host congestion signal are indistinguishable
//! from switch marks, so DCTCP allocates *host* resources with the same
//! AIMD loop it uses for fabric queues (paper §4.3, and §4.1 on why the
//! EWMA weights compose).

use hostcc_sim::Nanos;

use crate::cc::{CongestionControl, Window};

/// Linux's default DCTCP EWMA gain: `g = 1/16`.
pub const DCTCP_G: f64 = 1.0 / 16.0;

/// The DCTCP sender state.
#[derive(Debug, Clone)]
pub struct Dctcp {
    /// EWMA of the marked-byte fraction.
    alpha: f64,
    g: f64,
    /// Bytes acked in the current observation window.
    acked_bytes: u64,
    /// Marked bytes acked in the current observation window.
    marked_bytes: u64,
    /// The window ends when `cum_ack` passes this sequence.
    window_end: u64,
    /// Number of window-boundary α updates (diagnostics).
    pub alpha_updates: u64,
    /// Number of multiplicative reductions taken (diagnostics).
    pub reductions: u64,
}

impl Default for Dctcp {
    fn default() -> Self {
        Self::new()
    }
}

impl Dctcp {
    /// DCTCP with Linux defaults (α initialized to 1, as
    /// `dctcp_alpha_on_init` does, so the first congested window reacts
    /// strongly).
    pub fn new() -> Self {
        Dctcp {
            alpha: 1.0,
            g: DCTCP_G,
            acked_bytes: 0,
            marked_bytes: 0,
            window_end: 0,
            alpha_updates: 0,
            reductions: 0,
        }
    }

    /// Current α estimate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl CongestionControl for Dctcp {
    fn on_ack(
        &mut self,
        _now: Nanos,
        newly_acked: u64,
        ece: bool,
        cum_ack: u64,
        snd_nxt: u64,
        _rtt: Option<Nanos>,
        w: &mut Window,
    ) {
        if newly_acked > 0 {
            self.acked_bytes += newly_acked;
            if ece {
                self.marked_bytes += newly_acked;
            }
            // Growth exactly as Reno — DCTCP only changes the *decrease*.
            // Linux suppresses growth while the window has marks; we grow
            // and then reduce at the boundary, which is equivalent at
            // window granularity.
            if !ece {
                w.grow_reno(newly_acked);
            }
            // Lazy-start the first observation window at the current send
            // frontier (RFC 8257: one update per window of data).
            if self.window_end == 0 {
                self.window_end = snd_nxt;
            }
        }
        // Window boundary: one RTT of data acknowledged.
        if cum_ack >= self.window_end && self.acked_bytes > 0 {
            let f = self.marked_bytes as f64 / self.acked_bytes as f64;
            self.alpha = (1.0 - self.g) * self.alpha + self.g * f;
            self.alpha_updates += 1;
            if self.marked_bytes > 0 {
                w.ssthresh = w.cwnd * (1.0 - self.alpha / 2.0);
                w.cwnd = w.ssthresh;
                w.clamp_floors();
                self.reductions += 1;
            }
            self.acked_bytes = 0;
            self.marked_bytes = 0;
            self.window_end = snd_nxt;
        }
    }

    fn on_loss(&mut self, _now: Nanos, w: &mut Window) {
        // On packet loss DCTCP falls back to the standard halving
        // (RFC 8257 §3.5).
        w.ssthresh = w.cwnd / 2.0;
        w.cwnd = w.ssthresh;
        w.clamp_floors();
    }

    fn on_rto(&mut self, _now: Nanos, w: &mut Window) {
        w.ssthresh = w.cwnd / 2.0;
        w.cwnd = w.mss;
        w.clamp_floors();
    }

    fn name(&self) -> &'static str {
        "dctcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 4030;

    fn win() -> Window {
        let mut w = Window::new(MSS);
        w.cwnd = 100_000.0;
        w.ssthresh = 100_000.0; // congestion avoidance
        w
    }

    /// Ack one window of `n` segments, `marked` of them CE, starting the
    /// stream at `start`. `snd_nxt` is passed one window ahead of the
    /// cumulative ACK, as it would be for a flow with a full window in
    /// flight.
    fn ack_window(d: &mut Dctcp, w: &mut Window, start: u64, n: u64, marked: u64) -> u64 {
        let mut cum = start;
        let end = start + n * MSS;
        for i in 0..n {
            cum += MSS;
            d.on_ack(Nanos::ZERO, MSS, i < marked, cum, end + n * MSS, None, w);
        }
        cum
    }

    /// Ack a *final* window: no more data in flight, so `snd_nxt == end`.
    fn ack_last_window(d: &mut Dctcp, w: &mut Window, start: u64, n: u64, marked: u64) -> u64 {
        let mut cum = start;
        let end = start + n * MSS;
        for i in 0..n {
            cum += MSS;
            d.on_ack(Nanos::ZERO, MSS, i < marked, cum, end, None, w);
        }
        cum
    }

    #[test]
    fn no_marks_no_reduction() {
        let mut d = Dctcp::new();
        let mut w = win();
        let before = w.cwnd;
        let cum = ack_window(&mut d, &mut w, 0, 25, 0);
        ack_window(&mut d, &mut w, cum, 25, 0); // cross a window boundary
        assert!(w.cwnd > before, "pure additive increase");
        assert_eq!(d.reductions, 0);
        // α decays toward 0.
        assert!(d.alpha() < 1.0);
    }

    #[test]
    fn alpha_converges_to_mark_fraction() {
        let mut d = Dctcp::new();
        let mut w = win();
        let mut cum = 0;
        // 50% marks for many windows.
        for _ in 0..200 {
            cum = ack_window(&mut d, &mut w, cum, 10, 5);
        }
        assert!((d.alpha() - 0.5).abs() < 0.05, "alpha={}", d.alpha());
    }

    #[test]
    fn fully_marked_window_halves() {
        let mut d = Dctcp::new();
        let mut w = win();
        // α starts at 1.0 (Linux init); a fully marked first window cuts
        // cwnd by α/2 = 50%.
        let before = w.cwnd;
        ack_last_window(&mut d, &mut w, 0, 25, 25);
        assert!(w.cwnd <= before * 0.52, "cwnd={} before={before}", w.cwnd);
        assert_eq!(d.reductions, 1);
    }

    #[test]
    fn lightly_marked_window_cuts_gently() {
        let mut d = Dctcp::new();
        let mut w = win();
        let mut cum = 0;
        // Drive α down with clean windows first.
        for _ in 0..100 {
            cum = ack_window(&mut d, &mut w, cum, 10, 0);
        }
        let before = w.cwnd;
        let reductions_before = d.reductions;
        cum = ack_window(&mut d, &mut w, cum, 10, 1);
        ack_window(&mut d, &mut w, cum, 10, 0); // flush the boundary
                                                // Exactly one (gentle) reduction happened; with α ≈ 0.01 the cut is
                                                // a fraction of a percent, so the window barely moves even after
                                                // two windows of additive growth.
        assert_eq!(d.reductions, reductions_before + 1);
        let rel = (w.cwnd / before - 1.0).abs();
        assert!(rel < 0.1, "relative change = {rel}");
    }

    #[test]
    fn at_most_one_reduction_per_window() {
        let mut d = Dctcp::new();
        let mut w = win();
        ack_last_window(&mut d, &mut w, 0, 25, 25);
        assert_eq!(d.reductions, 1);
        assert_eq!(d.alpha_updates, 1);
    }

    #[test]
    fn loss_falls_back_to_halving() {
        let mut d = Dctcp::new();
        let mut w = win();
        d.on_loss(Nanos::ZERO, &mut w);
        assert_eq!(w.cwnd, 50_000.0);
    }

    #[test]
    fn rto_collapses_window() {
        let mut d = Dctcp::new();
        let mut w = win();
        d.on_rto(Nanos::ZERO, &mut w);
        assert_eq!(w.cwnd, MSS as f64);
    }
}
