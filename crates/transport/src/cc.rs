//! The congestion-control interface and the Reno baseline.

use core::fmt;

use hostcc_sim::Nanos;

/// The congestion window state a [`CongestionControl`] mutates.
///
/// Windows are kept in fractional bytes so that sub-MSS congestion-
/// avoidance increments (`mss²/cwnd` per ACK) accumulate exactly.
#[derive(Debug, Clone)]
pub struct Window {
    /// Congestion window in bytes.
    pub cwnd: f64,
    /// Slow-start threshold in bytes.
    pub ssthresh: f64,
    /// Maximum segment size in bytes.
    pub mss: f64,
}

impl Window {
    /// A fresh window: IW = 10·MSS (RFC 6928), ssthresh = ∞.
    pub fn new(mss: u64) -> Self {
        Window {
            cwnd: 10.0 * mss as f64,
            ssthresh: f64::INFINITY,
            mss: mss as f64,
        }
    }

    /// Whether the flow is in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Clamp the window to at least 1 MSS (2 MSS for ssthresh, RFC 5681).
    pub fn clamp_floors(&mut self) {
        self.cwnd = self.cwnd.max(self.mss);
        self.ssthresh = self.ssthresh.max(2.0 * self.mss);
    }

    /// Standard Reno-style growth on `acked` new bytes: exponential in
    /// slow start, `mss²/cwnd` per acked MSS in congestion avoidance.
    pub fn grow_reno(&mut self, acked: u64) {
        if self.in_slow_start() {
            self.cwnd += acked as f64;
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
        } else {
            self.cwnd += self.mss * self.mss * (acked as f64 / self.mss) / self.cwnd;
        }
    }
}

/// A pluggable congestion-control algorithm.
///
/// Methods receive the flow's [`Window`] to mutate; the [`crate::Flow`]
/// state machine handles sequencing, loss detection and timers, so
/// implementations only decide window sizes — exactly the split Linux uses
/// (`tcp_congestion_ops`), and the reason hostCC composes with "existing
/// congestion control protocols" without modification (paper §4.3).
pub trait CongestionControl: fmt::Debug {
    /// Process one cumulative ACK.
    ///
    /// * `newly_acked` — bytes newly acknowledged (0 for a duplicate ACK);
    /// * `ece` — the ACK carried ECN-Echo (the congestion signal hostCC
    ///   merges with the fabric's);
    /// * `cum_ack`/`snd_nxt` — stream positions, for window-boundary
    ///   bookkeeping (DCTCP's per-window α update);
    /// * `rtt` — a fresh RTT sample, when this ACK produced one.
    #[allow(clippy::too_many_arguments)]
    fn on_ack(
        &mut self,
        now: Nanos,
        newly_acked: u64,
        ece: bool,
        cum_ack: u64,
        snd_nxt: u64,
        rtt: Option<Nanos>,
        w: &mut Window,
    );

    /// A loss was detected via duplicate ACKs (entering fast recovery).
    fn on_loss(&mut self, now: Nanos, w: &mut Window);

    /// The retransmission timer fired.
    fn on_rto(&mut self, now: Nanos, w: &mut Window);

    /// Algorithm name (diagnostics and experiment tables).
    fn name(&self) -> &'static str;
}

/// TCP Reno (NewReno window arithmetic).
#[derive(Debug, Default, Clone)]
pub struct Reno;

impl Reno {
    /// A Reno instance.
    pub fn new() -> Self {
        Reno
    }
}

impl CongestionControl for Reno {
    fn on_ack(
        &mut self,
        _now: Nanos,
        newly_acked: u64,
        _ece: bool,
        _cum_ack: u64,
        _snd_nxt: u64,
        _rtt: Option<Nanos>,
        w: &mut Window,
    ) {
        if newly_acked > 0 {
            w.grow_reno(newly_acked);
        }
    }

    fn on_loss(&mut self, _now: Nanos, w: &mut Window) {
        w.ssthresh = w.cwnd / 2.0;
        w.cwnd = w.ssthresh;
        w.clamp_floors();
    }

    fn on_rto(&mut self, _now: Nanos, w: &mut Window) {
        w.ssthresh = w.cwnd / 2.0;
        w.cwnd = w.mss;
        w.clamp_floors();
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mss() -> u64 {
        4030
    }

    #[test]
    fn initial_window_is_10_mss() {
        let w = Window::new(mss());
        assert_eq!(w.cwnd, 40300.0);
        assert!(w.in_slow_start());
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut w = Window::new(mss());
        let start = w.cwnd;
        // Ack a full window worth of data.
        let mut acked = 0.0;
        while acked < start {
            w.grow_reno(mss());
            acked += mss() as f64;
        }
        assert!((w.cwnd - 2.0 * start).abs() < mss() as f64);
    }

    #[test]
    fn congestion_avoidance_adds_one_mss_per_rtt() {
        let mut w = Window::new(mss());
        w.ssthresh = w.cwnd; // leave slow start
        let start = w.cwnd;
        let mut acked = 0.0;
        while acked < start {
            w.grow_reno(mss());
            acked += mss() as f64;
        }
        let gained = w.cwnd - start;
        assert!(
            (gained - mss() as f64).abs() < 0.1 * mss() as f64,
            "gained {gained}"
        );
    }

    #[test]
    fn reno_halves_on_loss() {
        let mut w = Window::new(mss());
        w.cwnd = 100_000.0;
        w.ssthresh = 100_000.0;
        Reno.on_loss(Nanos::ZERO, &mut w);
        assert_eq!(w.cwnd, 50_000.0);
        assert_eq!(w.ssthresh, 50_000.0);
    }

    #[test]
    fn reno_collapses_on_rto() {
        let mut w = Window::new(mss());
        w.cwnd = 100_000.0;
        Reno.on_rto(Nanos::ZERO, &mut w);
        assert_eq!(w.cwnd, mss() as f64);
        assert_eq!(w.ssthresh, 50_000.0);
    }

    #[test]
    fn floors_respected() {
        let mut w = Window::new(mss());
        w.cwnd = 10.0;
        w.ssthresh = 10.0;
        w.clamp_floors();
        assert_eq!(w.cwnd, mss() as f64);
        assert_eq!(w.ssthresh, 2.0 * mss() as f64);
    }

    #[test]
    fn slow_start_caps_at_ssthresh() {
        let mut w = Window::new(mss());
        w.ssthresh = w.cwnd + 100.0;
        w.grow_reno(mss());
        assert_eq!(w.cwnd, w.ssthresh);
    }
}
