//! The sender-side flow state machine: sequencing, loss detection, timers.
//!
//! The pieces here are chosen for their role in the paper's results:
//!
//! * **min RTO = 200 ms** — the Linux default; with a ~40 µs fabric RTT
//!   every timeout costs five thousand RTTs, which is exactly the P99.9
//!   cliff of Fig 4 ("latency inflation is close to 200 ms, which is the
//!   default Linux minimum retransmission timeout value").
//! * **Tail Loss Probe** — armed only when more than one packet is in
//!   flight, so single-packet RPCs still pay full RTOs while larger RPCs
//!   recover in ~2·RTT + PTO ("for larger RPCs, Linux TLP is effective …
//!   when there is more than one in-flight packet", §2.2).
//! * **NewReno fast recovery** — 3 duplicate ACKs trigger retransmission
//!   and one multiplicative decrease per recovery episode; partial ACKs
//!   retransmit the next hole.

use std::collections::{BTreeSet, VecDeque};

use hostcc_fabric::{FlowId, Packet};
use hostcc_flowscope::FlowscopeHandle;
use hostcc_sim::Nanos;
use hostcc_trace::{TraceEvent, TraceHandle};

use crate::cc::{CongestionControl, Window};

/// Tuning knobs of a flow (Linux-flavoured defaults).
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Maximum segment size (payload bytes per packet).
    pub mss: u64,
    /// Minimum retransmission timeout (Linux: 200 ms).
    pub rto_min: Nanos,
    /// Maximum RTO after backoff.
    pub rto_max: Nanos,
    /// Minimum tail-loss-probe timeout (Linux: 10 ms floor on PTO).
    pub pto_min: Nanos,
    /// Whether TLP is enabled.
    pub tlp_enabled: bool,
    /// Initial RTO before any RTT sample (RFC 6298 says 1 s; Linux uses
    /// 200 ms for datacenter-like settings — we follow Linux).
    pub rto_initial: Nanos,
}

impl FlowConfig {
    /// Defaults for a given MTU: `mss = mtu − 66` header bytes.
    pub fn for_mtu(mtu: u64) -> Self {
        FlowConfig {
            mss: mtu - u64::from(hostcc_fabric::HEADER_BYTES),
            rto_min: Nanos::from_millis(200),
            rto_max: Nanos::from_secs(120),
            pto_min: Nanos::from_millis(10),
            tlp_enabled: true,
            rto_initial: Nanos::from_millis(200),
        }
    }
}

/// Counters exposed for the experiment tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowStats {
    /// Data packets transmitted (including retransmissions).
    pub sent: u64,
    /// Retransmitted packets.
    pub retransmits: u64,
    /// RTO events.
    pub timeouts: u64,
    /// TLP probes fired.
    pub tlp_probes: u64,
    /// Bytes cumulatively acknowledged.
    pub acked_bytes: u64,
    /// ACKs carrying ECN-Echo.
    pub ece_acks: u64,
    /// ACKs processed.
    pub acks: u64,
}

#[derive(Debug, Clone, Copy)]
struct Segment {
    seq: u64,
    len: u64,
    sent_at: Nanos,
    retransmitted: bool,
    /// Covered by a SACK range (received out of order at the peer).
    sacked: bool,
    /// Queued for retransmission but not yet emitted.
    rtx_pending: bool,
}

/// A sender flow.
#[derive(Debug)]
pub struct Flow {
    /// Flow identity (appears in every packet).
    pub id: FlowId,
    cfg: FlowConfig,
    w: Window,
    cc: Box<dyn CongestionControl>,

    // Sequence space.
    snd_una: u64,
    snd_nxt: u64,
    /// Total bytes the application has asked to send (`u64::MAX` = greedy).
    app_limit: u64,
    /// Stream offsets that terminate a message (RPC framing).
    msg_ends: BTreeSet<u64>,

    // In-flight bookkeeping.
    segs: VecDeque<Segment>,
    rtx_queue: VecDeque<u64>,
    dup_acks: u32,
    in_recovery: bool,
    recover_seq: u64,
    /// Highest stream offset covered by any SACK range seen (FACK).
    high_sacked: u64,
    /// Dup-ACKs since the last repair, for rescue retransmissions of lost
    /// retransmissions (RACK-lite).
    rescue_dupacks: u32,

    // RTT estimation / timers (RFC 6298).
    srtt: Option<Nanos>,
    rttvar: Nanos,
    rto: Nanos,
    rto_backoff: u32,
    rto_deadline: Option<Nanos>,
    tlp_deadline: Option<Nanos>,

    // Peer state.
    peer_rwnd: u64,

    packet_id: u64,
    /// Public stats for tables.
    pub stats: FlowStats,
    trace: TraceHandle,
    flowscope: FlowscopeHandle,
}

impl Flow {
    /// A flow with the given congestion control, initially greedy-less
    /// (no app data queued).
    pub fn new(id: FlowId, cfg: FlowConfig, cc: Box<dyn CongestionControl>) -> Self {
        let w = Window::new(cfg.mss);
        let rto = cfg.rto_initial;
        Flow {
            id,
            w,
            cc,
            snd_una: 0,
            snd_nxt: 0,
            app_limit: 0,
            msg_ends: BTreeSet::new(),
            segs: VecDeque::new(),
            rtx_queue: VecDeque::new(),
            dup_acks: 0,
            in_recovery: false,
            recover_seq: 0,
            high_sacked: 0,
            rescue_dupacks: 0,
            srtt: None,
            rttvar: Nanos::ZERO,
            rto,
            rto_backoff: 0,
            rto_deadline: None,
            tlp_deadline: None,
            peer_rwnd: u64::MAX,
            packet_id: (u64::from(id.0)) << 40,
            stats: FlowStats::default(),
            trace: TraceHandle::disabled(),
            flowscope: FlowscopeHandle::disabled(),
            cfg,
        }
    }

    /// Attach a trace handle (congestion-window-change events).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Attach a flow-ledger recorder (cwnd samples, retransmit counts).
    pub fn set_flowscope(&mut self, handle: FlowscopeHandle) {
        self.flowscope = handle;
    }

    /// Emit a `CcUpdate` if the congestion window moved across a call.
    #[inline]
    fn trace_cwnd(&self, now: Nanos, before: u64) {
        let cwnd = self.w.cwnd as u64;
        if cwnd != before {
            self.trace.emit(now, || TraceEvent::CcUpdate {
                flow: self.id.0,
                cwnd_bytes: cwnd,
            });
            self.flowscope.cwnd_sample(self.id.0, now, cwnd);
        }
    }

    /// Make the flow greedy: unlimited application data (NetApp-T mode).
    pub fn set_greedy(&mut self) {
        self.app_limit = u64::MAX;
    }

    /// Stop offering application data: nothing beyond what is already in
    /// flight will be sent (a greedy flow's application exiting).
    pub fn stop_app(&mut self) {
        self.app_limit = self.snd_nxt;
    }

    /// Queue a message of `bytes`; returns the stream offset at which the
    /// message ends (for RPC completion matching).
    pub fn queue_message(&mut self, bytes: u64) -> u64 {
        assert!(
            self.app_limit != u64::MAX,
            "cannot queue messages on a greedy flow"
        );
        assert!(bytes > 0);
        self.app_limit += bytes;
        let end = self.app_limit;
        self.msg_ends.insert(end);
        end
    }

    /// Bytes in flight.
    pub fn inflight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.w.cwnd as u64
    }

    /// Current smoothed RTT, if measured.
    pub fn srtt(&self) -> Option<Nanos> {
        self.srtt
    }

    /// Current RTO (after backoff).
    pub fn rto(&self) -> Nanos {
        let backed = self
            .rto
            .as_nanos()
            .saturating_mul(1u64 << self.rto_backoff.min(16));
        Nanos::from_nanos(backed).min(self.cfg.rto_max)
    }

    /// The congestion-control algorithm name.
    pub fn cc_name(&self) -> &'static str {
        self.cc.name()
    }

    /// Cumulative-ACK position (application bytes delivered end to end).
    pub fn acked_bytes(&self) -> u64 {
        self.snd_una
    }

    /// Whether all queued application data has been acknowledged.
    pub fn is_idle(&self) -> bool {
        self.app_limit != u64::MAX && self.snd_una == self.app_limit
    }

    fn next_packet_id(&mut self) -> u64 {
        self.packet_id += 1;
        self.packet_id
    }

    fn effective_window(&self) -> u64 {
        (self.w.cwnd as u64).min(self.peer_rwnd)
    }

    /// Emit the next packet to transmit, if any: retransmissions first,
    /// then new data as the windows allow. Call repeatedly until `None`.
    pub fn poll_send(&mut self, now: Nanos) -> Option<Packet> {
        // 1. Pending retransmissions (not window-gated: they replace data
        //    already counted in flight).
        while let Some(seq) = self.rtx_queue.pop_front() {
            if seq < self.snd_una {
                continue; // stale: already cumulatively acked
            }
            let Some(seg) = self.segs.iter_mut().find(|s| s.seq == seq) else {
                continue;
            };
            if seg.sacked {
                seg.rtx_pending = false;
                continue; // the peer got it after all
            }
            seg.rtx_pending = false;
            let len = seg.len;
            return Some(self.emit(now, seq, len, true));
        }
        // 2. New data.
        let remaining = self.app_limit.saturating_sub(self.snd_nxt);
        if remaining == 0 {
            return None;
        }
        let wnd = self.effective_window();
        if self.inflight() >= wnd {
            return None;
        }
        let room = wnd - self.inflight();
        // Send a partial MSS only at a message boundary (push semantics);
        // otherwise wait for window space for a full segment.
        let mut len = self.cfg.mss.min(remaining);
        if len > room {
            if room == 0 {
                return None;
            }
            // Don't silly-window ourselves: require at least a full MSS of
            // room unless this completes the application data.
            if remaining > room {
                return None;
            }
            len = remaining;
        }
        // Respect message boundaries: never cross a message end inside one
        // segment (keeps `msg_end` flags exact).
        if let Some(&end) = self.msg_ends.range(self.snd_nxt + 1..).next() {
            len = len.min(end - self.snd_nxt);
        }
        let seq = self.snd_nxt;
        self.snd_nxt += len;
        self.segs.push_back(Segment {
            seq,
            len,
            sent_at: now,
            retransmitted: false,
            sacked: false,
            rtx_pending: false,
        });
        Some(self.emit(now, seq, len, false))
    }

    fn emit(&mut self, now: Nanos, seq: u64, len: u64, retransmit: bool) -> Packet {
        let msg_end = self.msg_ends.contains(&(seq + len));
        let id = self.next_packet_id();
        let mut pkt = Packet::data(id, self.id, seq, len as u32, msg_end, now);
        pkt.retransmit = retransmit;
        self.stats.sent += 1;
        if retransmit {
            self.stats.retransmits += 1;
            self.flowscope.retransmit(self.id.0);
            if let Some(seg) = self.segs.iter_mut().find(|s| s.seq == seq) {
                seg.retransmitted = true;
                seg.sent_at = now;
            }
        }
        self.arm_timers(now);
        pkt
    }

    fn arm_timers(&mut self, now: Nanos) {
        if self.inflight() == 0 && self.rtx_queue.is_empty() {
            self.rto_deadline = None;
            self.tlp_deadline = None;
            return;
        }
        self.rto_deadline = Some(now + self.rto());
        // TLP per Linux: only in Open state (not recovery/backoff) and
        // only with more than one packet outstanding.
        self.tlp_deadline = if self.cfg.tlp_enabled
            && !self.in_recovery
            && self.rto_backoff == 0
            && self.inflight() > self.cfg.mss
        {
            let srtt = self.srtt.unwrap_or(self.cfg.rto_initial);
            let pto = (srtt * 2).max(self.cfg.pto_min);
            Some(now + pto)
        } else {
            None
        };
    }

    /// Process a cumulative ACK without SACK information (window updates).
    pub fn on_ack(&mut self, now: Nanos, cum_ack: u64, ece: bool, rwnd: u64) {
        self.on_ack_sack(now, cum_ack, ece, rwnd, &[]);
    }

    /// Process a cumulative ACK carrying SACK ranges.
    pub fn on_ack_sack(
        &mut self,
        now: Nanos,
        cum_ack: u64,
        ece: bool,
        rwnd: u64,
        sack: &[Option<(u64, u64)>],
    ) {
        let cwnd_before = self.w.cwnd as u64;
        self.on_ack_sack_inner(now, cum_ack, ece, rwnd, sack);
        self.trace_cwnd(now, cwnd_before);
    }

    fn on_ack_sack_inner(
        &mut self,
        now: Nanos,
        cum_ack: u64,
        ece: bool,
        rwnd: u64,
        sack: &[Option<(u64, u64)>],
    ) {
        self.peer_rwnd = rwnd;
        self.stats.acks += 1;
        if ece {
            self.stats.ece_acks += 1;
        }

        // Apply SACK ranges to the scoreboard.
        for range in sack.iter().flatten() {
            let (s, e) = *range;
            self.high_sacked = self.high_sacked.max(e);
            for seg in self.segs.iter_mut() {
                if seg.seq >= s && seg.seq + seg.len <= e {
                    seg.sacked = true;
                }
            }
        }

        if cum_ack > self.snd_una {
            let newly = cum_ack - self.snd_una;
            self.snd_una = cum_ack;
            self.stats.acked_bytes += newly;
            self.dup_acks = 0;
            self.rto_backoff = 0;

            // Pop fully acked segments; RTT from the newest clean sample
            // (Karn's algorithm: skip retransmitted segments).
            let mut rtt_sample = None;
            while let Some(front) = self.segs.front() {
                if front.seq + front.len <= cum_ack {
                    if !front.retransmitted {
                        rtt_sample = Some(now.saturating_sub(front.sent_at));
                    }
                    self.segs.pop_front();
                } else {
                    break;
                }
            }
            if let Some(rtt) = rtt_sample {
                self.update_rtt(rtt);
            }

            if self.in_recovery {
                self.rescue_dupacks = 0;
                if cum_ack >= self.recover_seq {
                    self.in_recovery = false;
                } else {
                    // Partial ACK: the new front is a fresh hole — repair
                    // it even if an earlier copy was retransmitted (the
                    // retransmission may itself have been lost).
                    if let Some(front) = self.segs.front_mut() {
                        if !front.sacked {
                            front.retransmitted = false;
                        }
                    }
                    self.queue_next_lost();
                }
            }

            self.cc.on_ack(
                now,
                newly,
                ece,
                cum_ack,
                self.snd_nxt,
                rtt_sample,
                &mut self.w,
            );
            self.arm_timers(now);
        } else if self.inflight() > 0 {
            // Duplicate ACK.
            self.dup_acks += 1;
            self.cc
                .on_ack(now, 0, ece, cum_ack, self.snd_nxt, None, &mut self.w);
            if self.dup_acks == 3 && !self.in_recovery {
                self.enter_recovery(now);
            } else if self.in_recovery {
                // Each further dup-ACK clocks out one more repair
                // (SACK-based recovery pipelines hole repair instead of
                // NewReno's one-hole-per-RTT trickle).
                self.queue_next_lost();
                // Rescue: if the cumulative point is stuck while SACK
                // evidence keeps arriving, the front's retransmission was
                // itself lost — re-arm it rather than stalling to the RTO.
                self.rescue_dupacks += 1;
                if self.rescue_dupacks >= 16 {
                    self.rescue_dupacks = 0;
                    if let Some(front) = self.segs.front_mut() {
                        if !front.sacked && !front.rtx_pending {
                            front.retransmitted = false;
                        }
                    }
                    self.queue_next_lost();
                }
            }
        }
    }

    /// Queue the next segment deemed lost under the FACK criterion: not
    /// SACKed, not already queued/repaired, with SACKed data above it.
    fn queue_next_lost(&mut self) {
        let high = self.high_sacked;
        if let Some(seg) = self
            .segs
            .iter_mut()
            .find(|s| !s.sacked && !s.rtx_pending && !s.retransmitted && s.seq + s.len <= high)
        {
            seg.rtx_pending = true;
            let seq = seg.seq;
            self.rtx_queue.push_back(seq);
        }
    }

    fn enter_recovery(&mut self, now: Nanos) {
        self.in_recovery = true;
        self.recover_seq = self.snd_nxt;
        self.cc.on_loss(now, &mut self.w);
        // Always repair the first unacked segment, then let the scoreboard
        // drive the rest.
        if let Some(front) = self.segs.front_mut() {
            if !front.sacked && !front.rtx_pending {
                front.rtx_pending = true;
                let seq = front.seq;
                self.rtx_queue.push_back(seq);
            }
        }
        self.queue_next_lost();
    }

    /// Earliest pending timer deadline, if any.
    pub fn next_deadline(&self) -> Option<Nanos> {
        match (self.rto_deadline, self.tlp_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Check timers at `now`; fires at most one event per call.
    pub fn on_tick(&mut self, now: Nanos) {
        let cwnd_before = self.w.cwnd as u64;
        self.on_tick_inner(now);
        self.trace_cwnd(now, cwnd_before);
    }

    fn on_tick_inner(&mut self, now: Nanos) {
        if let Some(tlp) = self.tlp_deadline {
            if now >= tlp {
                self.fire_tlp(now);
                return;
            }
        }
        if let Some(rto) = self.rto_deadline {
            if now >= rto {
                self.fire_rto(now);
            }
        }
    }

    fn fire_tlp(&mut self, _now: Nanos) {
        self.tlp_deadline = None;
        if self.segs.is_empty() {
            return;
        }
        self.stats.tlp_probes += 1;
        // Probe with the highest-sequence unSACKed segment (RFC 8985).
        if let Some(seg) = self.segs.iter_mut().rev().find(|s| !s.sacked) {
            seg.rtx_pending = true;
            let seq = seg.seq;
            self.rtx_queue.push_back(seq);
        }
        // RTO remains armed; a probe that elicits an ACK repairs the tail
        // without ever reaching the 200 ms cliff.
    }

    fn fire_rto(&mut self, now: Nanos) {
        self.rto_deadline = None;
        self.tlp_deadline = None;
        if self.segs.is_empty() {
            return;
        }
        self.stats.timeouts += 1;
        self.dup_acks = 0;
        self.in_recovery = false;
        self.cc.on_rto(now, &mut self.w);
        self.rto_backoff = (self.rto_backoff + 1).min(16);
        // Retransmit the first unacked segment; clear repair state so the
        // slow-start rebuild proceeds cleanly.
        for seg in self.segs.iter_mut() {
            seg.retransmitted = false;
            seg.rtx_pending = false;
        }
        let first = self.segs.front_mut().expect("non-empty");
        first.rtx_pending = true;
        let seq = first.seq;
        self.rtx_queue.clear();
        self.rtx_queue.push_back(seq);
        self.rto_deadline = Some(now + self.rto());
    }

    fn update_rtt(&mut self, rtt: Nanos) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let diff = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = Nanos::from_nanos((self.rttvar.as_nanos() * 3 + diff.as_nanos()) / 4);
                self.srtt = Some(Nanos::from_nanos(
                    (srtt.as_nanos() * 7 + rtt.as_nanos()) / 8,
                ));
            }
        }
        let srtt = self.srtt.expect("just set");
        self.rto = (srtt + self.rttvar * 4)
            .max(self.cfg.rto_min)
            .min(self.cfg.rto_max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::Reno;
    use crate::dctcp::Dctcp;

    const MTU: u64 = 4096;
    const MSS: u64 = MTU - 66;

    fn flow() -> Flow {
        let mut f = Flow::new(FlowId(1), FlowConfig::for_mtu(MTU), Box::new(Reno::new()));
        f.set_greedy();
        f
    }

    fn drain(f: &mut Flow, now: Nanos) -> Vec<Packet> {
        std::iter::from_fn(|| f.poll_send(now)).collect()
    }

    #[test]
    fn initial_burst_is_initial_window() {
        let mut f = flow();
        let pkts = drain(&mut f, Nanos::ZERO);
        assert_eq!(pkts.len(), 10, "IW = 10 segments");
        assert_eq!(f.inflight(), 10 * MSS);
        // Sequences are contiguous.
        for (i, p) in pkts.iter().enumerate() {
            match p.body {
                hostcc_fabric::PacketBody::Data { seq, len, .. } => {
                    assert_eq!(seq, i as u64 * MSS);
                    assert_eq!(len as u64, MSS);
                }
                _ => panic!("expected data"),
            }
        }
    }

    #[test]
    fn ack_opens_window_for_more() {
        let mut f = flow();
        drain(&mut f, Nanos::ZERO);
        let now = Nanos::from_micros(40);
        f.on_ack(now, MSS, false, u64::MAX);
        let more = drain(&mut f, now);
        // Slow start: 1 acked MSS ⇒ cwnd grows by 1 MSS ⇒ 2 new segments.
        assert_eq!(more.len(), 2);
    }

    #[test]
    fn cwnd_changes_are_traced() {
        use hostcc_trace::{TraceFilter, TraceHandle, TraceKind, Tracer};
        let mut f = flow();
        let trace = TraceHandle::new(Tracer::new(64, TraceFilter::all()));
        f.set_trace(trace.clone());
        drain(&mut f, Nanos::ZERO);
        // Slow-start growth on a clean ACK…
        f.on_ack(Nanos::from_micros(40), MSS, false, u64::MAX);
        // …and a multiplicative decrease on three dup-ACKs.
        for _ in 0..3 {
            f.on_ack(Nanos::from_micros(50), MSS, false, u64::MAX);
        }
        let c = trace.counts().unwrap();
        assert!(c.of(TraceKind::CcUpdate) >= 2, "growth + decrease traced");
        trace.with(|t| {
            for r in t.records() {
                match r.event {
                    TraceEvent::CcUpdate { flow, cwnd_bytes } => {
                        assert_eq!(flow, 1);
                        assert!(cwnd_bytes > 0);
                    }
                    other => panic!("unexpected event {other:?}"),
                }
            }
        });
    }

    #[test]
    fn rwnd_limits_sending() {
        let mut f = flow();
        f.on_ack(Nanos::ZERO, 0, false, 2 * MSS); // peer_rwnd = 2 MSS
        let pkts = drain(&mut f, Nanos::ZERO);
        assert_eq!(pkts.len(), 2);
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let mut f = flow();
        drain(&mut f, Nanos::ZERO);
        let now = Nanos::from_micros(50);
        let cwnd_before = f.cwnd();
        for _ in 0..3 {
            f.on_ack(now, 0, false, u64::MAX);
        }
        let pkts = drain(&mut f, now);
        assert!(!pkts.is_empty());
        assert!(pkts[0].retransmit, "first packet out is the retransmit");
        match pkts[0].body {
            hostcc_fabric::PacketBody::Data { seq, .. } => assert_eq!(seq, 0),
            _ => panic!(),
        }
        assert!(f.cwnd() < cwnd_before, "multiplicative decrease");
        assert_eq!(f.stats.retransmits, 1);
    }

    #[test]
    fn recovery_exits_on_full_ack() {
        let mut f = flow();
        drain(&mut f, Nanos::ZERO);
        let now = Nanos::from_micros(50);
        for _ in 0..3 {
            f.on_ack(now, 0, false, u64::MAX);
        }
        drain(&mut f, now);
        assert!(f.in_recovery);
        // Full cumulative ACK of everything in flight.
        f.on_ack(Nanos::from_micros(100), 10 * MSS, false, u64::MAX);
        assert!(!f.in_recovery);
    }

    #[test]
    fn rto_fires_at_200ms_minimum() {
        let mut f = flow();
        drain(&mut f, Nanos::ZERO);
        // No ACKs at all. Before 200 ms: nothing.
        f.on_tick(Nanos::from_millis(199));
        assert_eq!(f.stats.timeouts, 0);
        f.on_tick(Nanos::from_millis(200));
        assert_eq!(f.stats.timeouts, 1);
        assert_eq!(f.cwnd(), MSS, "cwnd collapses to 1 MSS");
        let pkts = drain(&mut f, Nanos::from_millis(200));
        assert_eq!(pkts.len(), 1);
        assert!(pkts[0].retransmit);
    }

    #[test]
    fn rto_backoff_doubles() {
        let mut f = flow();
        drain(&mut f, Nanos::ZERO);
        f.on_tick(Nanos::from_millis(200));
        assert_eq!(f.stats.timeouts, 1);
        // Next deadline is 400 ms later.
        f.on_tick(Nanos::from_millis(599));
        assert_eq!(f.stats.timeouts, 1);
        f.on_tick(Nanos::from_millis(600));
        assert_eq!(f.stats.timeouts, 2);
    }

    #[test]
    fn tlp_fires_before_rto_with_multiple_inflight() {
        let mut f = flow();
        drain(&mut f, Nanos::ZERO);
        // Establish an RTT estimate so PTO = max(2·srtt, 10 ms) = 10 ms.
        f.on_ack(Nanos::from_micros(40), MSS, false, u64::MAX);
        drain(&mut f, Nanos::from_micros(40));
        // At 10.04 ms the TLP fires; well before the 200 ms RTO.
        f.on_tick(Nanos::from_millis(11));
        assert_eq!(f.stats.tlp_probes, 1);
        assert_eq!(f.stats.timeouts, 0);
        let pkts = drain(&mut f, Nanos::from_millis(11));
        assert_eq!(pkts.len(), 1, "probe retransmits the tail segment");
        assert!(pkts[0].retransmit);
    }

    #[test]
    fn single_packet_message_has_no_tlp() {
        // The Fig 4 asymmetry: a 128 B RPC (one packet) cannot arm TLP and
        // must wait out the full RTO.
        let mut f = Flow::new(FlowId(2), FlowConfig::for_mtu(MTU), Box::new(Dctcp::new()));
        f.queue_message(128);
        let pkts = drain(&mut f, Nanos::ZERO);
        assert_eq!(pkts.len(), 1);
        assert_eq!(f.next_deadline(), Some(Nanos::from_millis(200)));
        f.on_tick(Nanos::from_millis(50));
        assert_eq!(f.stats.tlp_probes, 0);
        f.on_tick(Nanos::from_millis(200));
        assert_eq!(f.stats.timeouts, 1);
    }

    #[test]
    fn message_boundaries_set_msg_end_flag() {
        let mut f = Flow::new(FlowId(3), FlowConfig::for_mtu(MTU), Box::new(Reno::new()));
        let end = f.queue_message(2 * MSS + 100);
        assert_eq!(end, 2 * MSS + 100);
        let pkts = drain(&mut f, Nanos::ZERO);
        assert_eq!(pkts.len(), 3);
        let ends: Vec<bool> = pkts
            .iter()
            .map(|p| match p.body {
                hostcc_fabric::PacketBody::Data { msg_end, .. } => msg_end,
                _ => false,
            })
            .collect();
        assert_eq!(ends, [false, false, true]);
    }

    #[test]
    fn messages_do_not_cross_segment_boundaries() {
        let mut f = Flow::new(FlowId(4), FlowConfig::for_mtu(MTU), Box::new(Reno::new()));
        f.queue_message(100);
        f.queue_message(100);
        let pkts = drain(&mut f, Nanos::ZERO);
        assert_eq!(pkts.len(), 2, "one packet per message");
        for p in &pkts {
            assert_eq!(p.payload_bytes(), 100);
        }
    }

    #[test]
    fn rtt_estimation_sets_rto() {
        let mut f = flow();
        drain(&mut f, Nanos::ZERO);
        f.on_ack(Nanos::from_micros(40), MSS, false, u64::MAX);
        assert_eq!(f.srtt(), Some(Nanos::from_micros(40)));
        // RTO = srtt + 4·rttvar = 120 µs, clamped to 200 ms.
        assert_eq!(f.rto(), Nanos::from_millis(200));
    }

    #[test]
    fn karn_skips_retransmitted_segments() {
        let mut f = flow();
        drain(&mut f, Nanos::ZERO);
        for _ in 0..3 {
            f.on_ack(Nanos::from_micros(50), 0, false, u64::MAX);
        }
        drain(&mut f, Nanos::from_micros(50)); // emits retransmit of seg 0
                                               // ACK covering the retransmitted segment: no RTT sample from it.
        f.on_ack(Nanos::from_millis(1), MSS, false, u64::MAX);
        assert_eq!(f.srtt(), None);
    }

    #[test]
    fn idle_flow_has_no_timers() {
        let mut f = Flow::new(FlowId(5), FlowConfig::for_mtu(MTU), Box::new(Reno::new()));
        f.queue_message(100);
        drain(&mut f, Nanos::ZERO);
        f.on_ack(Nanos::from_micros(40), 100, false, u64::MAX);
        assert!(f.is_idle());
        assert_eq!(f.next_deadline(), None);
        f.on_tick(Nanos::from_secs(10));
        assert_eq!(f.stats.timeouts, 0);
    }

    #[test]
    fn ece_is_counted_and_passed_to_cc() {
        let mut f = Flow::new(FlowId(6), FlowConfig::for_mtu(MTU), Box::new(Dctcp::new()));
        f.set_greedy();
        drain(&mut f, Nanos::ZERO);
        f.on_ack(Nanos::from_micros(40), MSS, true, u64::MAX);
        assert_eq!(f.stats.ece_acks, 1);
    }
}
