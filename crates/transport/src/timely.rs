//! TIMELY: RTT-gradient congestion control (Mittal et al., SIGCOMM 2015,
//! simplified) — the paper's reference [31] and, with Swift, the other
//! delay-based protocol family hostCC's §6 delay-signal extension targets.
//!
//! TIMELY adjusts a *rate* from the RTT gradient; this windowed adaptation
//! keeps the algorithm's decision structure (HAI increase below `t_low`,
//! multiplicative decrease above `t_high`, gradient-proportional reaction
//! between) while fitting the window-based [`crate::Flow`] machinery —
//! cwnd = rate × RTT under the usual equivalence.

use hostcc_sim::Nanos;

use crate::cc::{CongestionControl, Window};

/// Simplified TIMELY sender state.
#[derive(Debug, Clone)]
pub struct Timely {
    /// Below this RTT: additive increase regardless of gradient.
    t_low: Nanos,
    /// Above this RTT: multiplicative decrease regardless of gradient.
    t_high: Nanos,
    /// EWMA of the RTT difference (the gradient numerator).
    rtt_diff_ns: f64,
    prev_rtt: Option<Nanos>,
    /// EWMA gain for the gradient filter (paper: α = 0.875 complement).
    alpha: f64,
    /// Multiplicative decrease factor β.
    beta: f64,
    /// Additive increment in MSS per RTT.
    delta: f64,
    /// Completed negative-gradient rounds (HAI mode counter).
    hai_rounds: u32,
    /// Stream offset ending the current completion round (one cwnd of
    /// ACKs ≈ one RTT — the TIMELY paper's "completion event" unit).
    round_end: u64,
}

impl Timely {
    /// TIMELY with thresholds scaled to the environment's base RTT.
    pub fn new(base_rtt: Nanos) -> Self {
        Timely {
            t_low: base_rtt.scale(1.1),
            t_high: base_rtt.scale(2.0),
            rtt_diff_ns: 0.0,
            prev_rtt: None,
            alpha: 0.125,
            beta: 0.8,
            delta: 1.0,
            hai_rounds: 0,
            round_end: 0,
        }
    }

    /// The low RTT threshold.
    pub fn t_low(&self) -> Nanos {
        self.t_low
    }

    /// The high RTT threshold.
    pub fn t_high(&self) -> Nanos {
        self.t_high
    }

    /// Current filtered normalized gradient (diagnostics).
    pub fn gradient(&self, min_rtt: Nanos) -> f64 {
        self.rtt_diff_ns / min_rtt.as_nanos().max(1) as f64
    }
}

impl CongestionControl for Timely {
    fn on_ack(
        &mut self,
        _now: Nanos,
        newly_acked: u64,
        _ece: bool,
        cum_ack: u64,
        snd_nxt: u64,
        rtt: Option<Nanos>,
        w: &mut Window,
    ) {
        let (Some(rtt), true) = (rtt, newly_acked > 0) else {
            return;
        };
        let prev = self.prev_rtt.replace(rtt).unwrap_or(rtt);
        let new_diff = rtt.as_nanos() as f64 - prev.as_nanos() as f64;
        self.rtt_diff_ns = (1.0 - self.alpha) * self.rtt_diff_ns + self.alpha * new_diff;

        // Count completion rounds (one cwnd of ACKs), the unit after which
        // TIMELY's HAI mode engages.
        let round_done = cum_ack >= self.round_end;
        if round_done {
            self.round_end = snd_nxt;
        }

        let per_window = newly_acked as f64 / w.cwnd.max(1.0);
        if rtt < self.t_low {
            // RTT well under target: additive increase, hyper-active after
            // 5 consecutive good completion rounds.
            if round_done {
                self.hai_rounds += 1;
            }
            let n = if self.hai_rounds >= 5 { 5.0 } else { 1.0 };
            w.cwnd += n * self.delta * w.mss * per_window;
            return;
        }
        if rtt > self.t_high {
            // RTT far over target: strong multiplicative decrease toward
            // t_high/rtt.
            self.hai_rounds = 0;
            let f = 1.0 - self.beta * (1.0 - self.t_high.as_nanos() as f64 / rtt.as_nanos() as f64);
            w.cwnd *= f.max(0.5) * per_window + (1.0 - per_window);
            w.clamp_floors();
            return;
        }
        // Gradient regime.
        let g = self.gradient(self.t_low);
        if g <= 0.0 {
            if round_done {
                self.hai_rounds += 1;
            }
            let n = if self.hai_rounds >= 5 { 5.0 } else { 1.0 };
            w.cwnd += n * self.delta * w.mss * per_window;
        } else {
            self.hai_rounds = 0;
            let f = 1.0 - self.beta * g.min(1.0);
            w.cwnd *= f * per_window + (1.0 - per_window);
            w.clamp_floors();
        }
    }

    fn on_loss(&mut self, _now: Nanos, w: &mut Window) {
        self.hai_rounds = 0;
        w.ssthresh = w.cwnd / 2.0;
        w.cwnd = w.ssthresh;
        w.clamp_floors();
    }

    fn on_rto(&mut self, _now: Nanos, w: &mut Window) {
        self.hai_rounds = 0;
        w.ssthresh = w.cwnd / 2.0;
        w.cwnd = w.mss;
        w.clamp_floors();
    }

    fn name(&self) -> &'static str {
        "timely"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 4030;

    fn win() -> Window {
        let mut w = Window::new(MSS);
        w.cwnd = 100_000.0;
        w.ssthresh = 100_000.0;
        w
    }

    fn ack(t: &mut Timely, w: &mut Window, rtt_us: u64) {
        t.on_ack(
            Nanos::ZERO,
            MSS,
            false,
            0,
            0,
            Some(Nanos::from_micros(rtt_us)),
            w,
        );
    }

    #[test]
    fn grows_below_t_low() {
        let mut t = Timely::new(Nanos::from_micros(40));
        let mut w = win();
        let before = w.cwnd;
        for _ in 0..50 {
            ack(&mut t, &mut w, 40);
        }
        assert!(w.cwnd > before);
    }

    #[test]
    fn shrinks_above_t_high() {
        let mut t = Timely::new(Nanos::from_micros(40));
        let mut w = win();
        let before = w.cwnd;
        for _ in 0..50 {
            ack(&mut t, &mut w, 200);
        }
        assert!(w.cwnd < before * 0.8, "cwnd={} before={before}", w.cwnd);
    }

    #[test]
    fn rising_gradient_in_band_decreases() {
        let mut t = Timely::new(Nanos::from_micros(40));
        let mut w = win();
        // Stay within [t_low, t_high] = [44, 80] µs but rising steadily.
        for r in [50u64, 55, 60, 65, 70, 75] {
            ack(&mut t, &mut w, r);
        }
        let mid = w.cwnd;
        for r in [75u64, 75, 76, 77, 78, 79] {
            ack(&mut t, &mut w, r);
        }
        assert!(w.cwnd <= mid, "rising RTT in band must not grow cwnd");
    }

    #[test]
    fn falling_gradient_in_band_increases() {
        let mut t = Timely::new(Nanos::from_micros(40));
        let mut w = win();
        // Prime the filter with a falling sequence inside the band.
        for r in [78u64, 74, 70, 66, 62, 58] {
            ack(&mut t, &mut w, r);
        }
        let before = w.cwnd;
        for r in [56u64, 54, 52, 50, 48, 46] {
            ack(&mut t, &mut w, r);
        }
        assert!(w.cwnd > before);
    }

    #[test]
    fn hai_accelerates_after_5_rounds() {
        let mut t = Timely::new(Nanos::from_micros(40));
        let mut w = win();
        // Feed full windows of low-RTT ACKs with real stream positions so
        // completion rounds are counted (one per window).
        let mut cum = 0u64;
        let mut increments = Vec::new();
        for _round in 0..8 {
            let start = w.cwnd;
            let round_start = cum;
            while cum - round_start < start as u64 {
                cum += MSS;
                let snd_nxt = cum + w.cwnd as u64;
                t.on_ack(
                    Nanos::ZERO,
                    MSS,
                    false,
                    cum,
                    snd_nxt,
                    Some(Nanos::from_micros(40)),
                    &mut w,
                );
            }
            increments.push(w.cwnd - start);
        }
        // Rounds 1–5 grow by ~1 MSS; from round 6 on by ~5 MSS.
        assert!(
            increments.last().unwrap() > &(increments[0] * 2.0),
            "HAI must accelerate: {increments:?}"
        );
    }

    #[test]
    fn loss_halves() {
        let mut t = Timely::new(Nanos::from_micros(40));
        let mut w = win();
        t.on_loss(Nanos::ZERO, &mut w);
        assert_eq!(w.cwnd, 50_000.0);
        t.on_rto(Nanos::ZERO, &mut w);
        assert_eq!(w.cwnd, MSS as f64);
    }
}
