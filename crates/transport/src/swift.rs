//! A Swift-style delay-based congestion control (Kumar et al., SIGCOMM
//! 2020, simplified).
//!
//! The paper's §6 notes that hostCC's signals extend naturally to
//! delay-based protocols: the host delay `ℓ_p + ℓ_m` (obtained from the
//! IIO counters via Little's law) can be added to the fabric RTT target.
//! This implementation exercises that extension: a flow reduces
//! multiplicatively when the measured RTT exceeds a target, and grows
//! additively otherwise — the Swift shape without its per-hop scaling
//! refinements.

use hostcc_sim::Nanos;

use crate::cc::{CongestionControl, Window};

/// Simplified Swift sender state.
#[derive(Debug, Clone)]
pub struct Swift {
    /// Base RTT target (fabric + uncongested host).
    target: Nanos,
    /// Additive increase per acked window, in MSS.
    ai: f64,
    /// Max multiplicative decrease per RTT.
    beta: f64,
    /// Time of last decrease (at most one per RTT).
    last_decrease: Nanos,
}

impl Swift {
    /// A Swift instance with the given RTT target.
    pub fn new(target: Nanos) -> Self {
        Swift {
            target,
            ai: 1.0,
            beta: 0.8,
            last_decrease: Nanos::ZERO,
        }
    }

    /// The configured target delay.
    pub fn target(&self) -> Nanos {
        self.target
    }

    /// Adjust the target delay (hostCC's delay-signal extension adds the
    /// measured host delay here).
    pub fn set_target(&mut self, target: Nanos) {
        self.target = target;
    }
}

impl CongestionControl for Swift {
    fn on_ack(
        &mut self,
        now: Nanos,
        newly_acked: u64,
        _ece: bool,
        _cum_ack: u64,
        _snd_nxt: u64,
        rtt: Option<Nanos>,
        w: &mut Window,
    ) {
        let Some(rtt) = rtt else {
            return;
        };
        if newly_acked == 0 {
            return;
        }
        if rtt <= self.target {
            // Additive increase: ai MSS per window of ACKs.
            w.cwnd += self.ai * w.mss * newly_acked as f64 / w.cwnd;
        } else if now.saturating_sub(self.last_decrease) >= rtt {
            // Multiplicative decrease proportional to overshoot, capped.
            let over =
                (rtt.as_nanos() as f64 - self.target.as_nanos() as f64) / rtt.as_nanos() as f64;
            let factor = (1.0 - over).max(self.beta);
            w.cwnd *= factor;
            w.clamp_floors();
            self.last_decrease = now;
        }
    }

    fn on_loss(&mut self, now: Nanos, w: &mut Window) {
        w.ssthresh = w.cwnd / 2.0;
        w.cwnd = w.ssthresh;
        w.clamp_floors();
        self.last_decrease = now;
    }

    fn on_rto(&mut self, now: Nanos, w: &mut Window) {
        w.ssthresh = w.cwnd / 2.0;
        w.cwnd = w.mss;
        w.clamp_floors();
        self.last_decrease = now;
    }

    fn name(&self) -> &'static str {
        "swift"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 4030;

    #[test]
    fn grows_below_target() {
        let mut s = Swift::new(Nanos::from_micros(50));
        let mut w = Window::new(MSS);
        let before = w.cwnd;
        s.on_ack(
            Nanos::from_micros(100),
            MSS,
            false,
            0,
            0,
            Some(Nanos::from_micros(40)),
            &mut w,
        );
        assert!(w.cwnd > before);
    }

    #[test]
    fn shrinks_above_target() {
        let mut s = Swift::new(Nanos::from_micros(50));
        let mut w = Window::new(MSS);
        let before = w.cwnd;
        s.on_ack(
            Nanos::from_millis(1), // more than one RTT after start
            MSS,
            false,
            0,
            0,
            Some(Nanos::from_micros(200)),
            &mut w,
        );
        assert!(w.cwnd < before);
    }

    #[test]
    fn at_most_one_decrease_per_rtt() {
        let mut s = Swift::new(Nanos::from_micros(50));
        let mut w = Window::new(MSS);
        let rtt = Some(Nanos::from_micros(200));
        s.on_ack(Nanos::from_micros(300), MSS, false, 0, 0, rtt, &mut w);
        let after_first = w.cwnd;
        // Immediately again: no further decrease.
        s.on_ack(Nanos::from_micros(310), MSS, false, 0, 0, rtt, &mut w);
        assert_eq!(w.cwnd, after_first);
        // One RTT later: decreases again.
        s.on_ack(Nanos::from_micros(510), MSS, false, 0, 0, rtt, &mut w);
        assert!(w.cwnd < after_first);
    }

    #[test]
    fn decrease_capped_at_beta() {
        let mut s = Swift::new(Nanos::from_micros(10));
        let mut w = Window::new(MSS);
        let before = w.cwnd;
        // Hugely over target: capped at 0.8×.
        s.on_ack(
            Nanos::from_millis(10),
            MSS,
            false,
            0,
            0,
            Some(Nanos::from_millis(5)),
            &mut w,
        );
        assert!((w.cwnd - before * 0.8).abs() < 1e-6);
    }

    #[test]
    fn no_rtt_sample_no_change() {
        let mut s = Swift::new(Nanos::from_micros(50));
        let mut w = Window::new(MSS);
        let before = w.cwnd;
        s.on_ack(Nanos::from_micros(100), MSS, false, 0, 0, None, &mut w);
        assert_eq!(w.cwnd, before);
    }

    #[test]
    fn target_adjustable() {
        let mut s = Swift::new(Nanos::from_micros(50));
        s.set_target(Nanos::from_micros(80));
        assert_eq!(s.target(), Nanos::from_micros(80));
    }
}
