//! A BBR-style delay-based bandwidth-probe scheme (Cardwell et al.,
//! "BBR: Congestion-Based Congestion Control", 2016 — simplified).
//!
//! The sender builds a model of the path — a windowed-max delivery-rate
//! estimate (`btl_bw`) and a windowed-min RTT (`min_rtt`) — and sizes the
//! window to `gain · cwnd_gain · btl_bw · min_rtt`, stepping `gain`
//! through the classic eight-phase cycle (probe 1.25, drain 0.75, six
//! cruise phases at 1.0) once per RTT. ECN-Echo is deliberately ignored:
//! BBR-class schemes respond to the *model*, not to marks, which is
//! exactly why they stress hostCC's claim of protecting hosts regardless
//! of the transport in play. Loss causes only a mild cut; an RTO
//! collapses the window but keeps the model.

use hostcc_sim::Nanos;

use crate::cc::{CongestionControl, Window};

/// The eight-phase pacing-gain cycle.
pub const BBR_GAIN_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];

/// Steady-state window gain applied on top of the cycle gain.
pub const BBR_CWND_GAIN: f64 = 2.0;

/// How long a min-RTT sample stays valid before it is refreshed.
pub const BBR_MIN_RTT_WIN: Nanos = Nanos::from_millis(10);

/// Plateau cycles (bandwidth growth < 25%) before startup ends.
pub const BBR_FULL_BW_CYCLES: u32 = 3;

/// The BBR-lite sender state.
#[derive(Debug, Clone)]
pub struct BbrLite {
    /// Windowed-min RTT estimate.
    min_rtt: Option<Nanos>,
    /// When the current min-RTT sample was taken.
    min_rtt_at: Nanos,
    /// Per-cycle max delivery-rate samples (bytes/ns); the model's
    /// `btl_bw` is the max over the ring.
    bw: [f64; 8],
    /// Current gain-cycle phase.
    cycle: usize,
    /// When the current phase started.
    cycle_start: Nanos,
    /// Startup has ended (bandwidth estimate plateaued).
    filled_pipe: bool,
    /// Best bandwidth seen when the plateau check last reset.
    full_bw: f64,
    /// Consecutive cycles without ≥25% bandwidth growth.
    full_bw_count: u32,
    /// Completed gain-cycle phases (diagnostics).
    pub cycles: u64,
}

impl Default for BbrLite {
    fn default() -> Self {
        Self::new()
    }
}

impl BbrLite {
    /// A fresh BBR-lite instance with an empty path model.
    pub fn new() -> Self {
        BbrLite {
            min_rtt: None,
            min_rtt_at: Nanos::ZERO,
            bw: [0.0; 8],
            cycle: 0,
            cycle_start: Nanos::ZERO,
            filled_pipe: false,
            full_bw: 0.0,
            full_bw_count: 0,
            cycles: 0,
        }
    }

    /// The model's bottleneck-bandwidth estimate in bytes/ns (0 until the
    /// first RTT sample).
    pub fn btl_bw(&self) -> f64 {
        self.bw.iter().copied().fold(0.0, f64::max)
    }

    /// The model's min-RTT estimate, if any sample has arrived.
    pub fn min_rtt(&self) -> Option<Nanos> {
        self.min_rtt
    }

    /// Whether startup has ended and the gain cycle is driving the window.
    pub fn filled_pipe(&self) -> bool {
        self.filled_pipe
    }
}

impl CongestionControl for BbrLite {
    fn on_ack(
        &mut self,
        now: Nanos,
        newly_acked: u64,
        _ece: bool,
        _cum_ack: u64,
        _snd_nxt: u64,
        rtt: Option<Nanos>,
        w: &mut Window,
    ) {
        let Some(rtt) = rtt else {
            return;
        };
        if newly_acked == 0 {
            return;
        }
        // Windowed-min RTT: take smaller samples immediately, refresh a
        // stale window with whatever the path reports now.
        match self.min_rtt {
            Some(m) if rtt >= m && now.saturating_sub(self.min_rtt_at) <= BBR_MIN_RTT_WIN => {}
            _ => {
                self.min_rtt = Some(rtt);
                self.min_rtt_at = now;
            }
        }
        let min_rtt = self.min_rtt.unwrap_or(rtt);
        // Delivery-rate sample: an ack-clocked window's worth per RTT.
        let sample = w.cwnd / rtt.as_nanos().max(1) as f64;
        if sample > self.bw[self.cycle] {
            self.bw[self.cycle] = sample;
        }
        // Advance the gain cycle once per min-RTT.
        if now.saturating_sub(self.cycle_start) >= min_rtt {
            let best = self.btl_bw();
            if !self.filled_pipe {
                if best >= self.full_bw * 1.25 {
                    self.full_bw = best;
                    self.full_bw_count = 0;
                } else {
                    self.full_bw_count += 1;
                    if self.full_bw_count >= BBR_FULL_BW_CYCLES {
                        self.filled_pipe = true;
                    }
                }
            }
            self.cycle = (self.cycle + 1) % BBR_GAIN_CYCLE.len();
            self.bw[self.cycle] = 0.0;
            self.cycle_start = now;
            self.cycles += 1;
        }
        if self.filled_pipe {
            // Steady state: the window tracks the model directly.
            let bdp = self.btl_bw() * min_rtt.as_nanos() as f64;
            w.cwnd = BBR_GAIN_CYCLE[self.cycle] * BBR_CWND_GAIN * bdp;
            w.clamp_floors();
        } else {
            // Startup: exponential growth until the estimate plateaus.
            w.cwnd += newly_acked as f64;
        }
    }

    fn on_loss(&mut self, _now: Nanos, w: &mut Window) {
        // The model, not loss, sizes the window — take only a mild cut so
        // a burst of drops cannot starve the flow below its estimate.
        w.ssthresh = w.cwnd;
        w.cwnd *= 0.85;
        w.clamp_floors();
    }

    fn on_rto(&mut self, _now: Nanos, w: &mut Window) {
        w.ssthresh = w.cwnd / 2.0;
        w.cwnd = w.mss;
        w.clamp_floors();
    }

    fn name(&self) -> &'static str {
        "bbr-lite"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 4030;

    /// Drive a constant-rate path: fixed RTT, one window acked per RTT,
    /// starting the clock at `now`. Returns the advanced clock.
    fn run_rtts(b: &mut BbrLite, w: &mut Window, rtt: Nanos, rtts: u32, mut now: Nanos) -> Nanos {
        for _ in 0..rtts {
            now += rtt;
            let per_ack = (w.cwnd / 10.0).max(MSS as f64) as u64;
            for _ in 0..10 {
                b.on_ack(now, per_ack, false, 0, 0, Some(rtt), w);
            }
        }
        now
    }

    #[test]
    fn no_rtt_sample_no_change() {
        let mut b = BbrLite::new();
        let mut w = Window::new(MSS);
        let before = w.cwnd;
        b.on_ack(Nanos::from_micros(100), MSS, false, 0, 0, None, &mut w);
        assert_eq!(w.cwnd, before);
    }

    #[test]
    fn startup_grows_exponentially() {
        let mut b = BbrLite::new();
        let mut w = Window::new(MSS);
        let before = w.cwnd;
        run_rtts(&mut b, &mut w, Nanos::from_micros(50), 2, Nanos::ZERO);
        assert!(w.cwnd >= 2.0 * before, "cwnd={} before={before}", w.cwnd);
    }

    #[test]
    fn plateau_ends_startup() {
        let mut b = BbrLite::new();
        let mut w = Window::new(MSS);
        let rtt = Nanos::from_micros(50);
        // With a constant RTT the bw sample scales with cwnd, so emulate a
        // real bottleneck (which would cap delivery via RTT inflation) by
        // pinning cwnd between rounds; once samples stop growing, the
        // plateau detector must end startup.
        let mut now = Nanos::ZERO;
        for _ in 0..40 {
            now = run_rtts(&mut b, &mut w, rtt, 1, now);
            w.cwnd = w.cwnd.min(500_000.0);
            if b.filled_pipe() {
                break;
            }
        }
        assert!(b.filled_pipe(), "startup never ended");
    }

    #[test]
    fn steady_state_tracks_gain_times_bdp() {
        let mut b = BbrLite::new();
        let mut w = Window::new(MSS);
        let rtt = Nanos::from_micros(100);
        let mut now = Nanos::ZERO;
        for _ in 0..40 {
            now = run_rtts(&mut b, &mut w, rtt, 1, now);
            if !b.filled_pipe() {
                w.cwnd = w.cwnd.min(400_000.0);
            }
        }
        assert!(b.filled_pipe());
        let bdp = b.btl_bw() * rtt.as_nanos() as f64;
        let expect = BBR_GAIN_CYCLE[b.cycle] * BBR_CWND_GAIN * bdp;
        let rel = (w.cwnd / expect - 1.0).abs();
        assert!(rel < 1e-9, "cwnd={} expect={expect}", w.cwnd);
    }

    #[test]
    fn gain_cycle_advances() {
        let mut b = BbrLite::new();
        let mut w = Window::new(MSS);
        run_rtts(&mut b, &mut w, Nanos::from_micros(50), 30, Nanos::ZERO);
        assert!(b.cycles >= 10, "cycles={}", b.cycles);
    }

    #[test]
    fn min_rtt_window_refreshes() {
        let mut b = BbrLite::new();
        let mut w = Window::new(MSS);
        b.on_ack(
            Nanos::from_micros(100),
            MSS,
            false,
            0,
            0,
            Some(Nanos::from_micros(40)),
            &mut w,
        );
        assert_eq!(b.min_rtt(), Some(Nanos::from_micros(40)));
        // A larger sample inside the window is ignored…
        b.on_ack(
            Nanos::from_micros(200),
            MSS,
            false,
            0,
            0,
            Some(Nanos::from_micros(90)),
            &mut w,
        );
        assert_eq!(b.min_rtt(), Some(Nanos::from_micros(40)));
        // …but adopted once the old sample expires.
        b.on_ack(
            Nanos::from_millis(11),
            MSS,
            false,
            0,
            0,
            Some(Nanos::from_micros(90)),
            &mut w,
        );
        assert_eq!(b.min_rtt(), Some(Nanos::from_micros(90)));
    }

    #[test]
    fn ece_is_ignored() {
        let mut a = BbrLite::new();
        let mut b = BbrLite::new();
        let mut wa = Window::new(MSS);
        let mut wb = Window::new(MSS);
        let rtt = Some(Nanos::from_micros(50));
        a.on_ack(Nanos::from_micros(60), MSS, true, 0, 0, rtt, &mut wa);
        b.on_ack(Nanos::from_micros(60), MSS, false, 0, 0, rtt, &mut wb);
        assert_eq!(wa.cwnd, wb.cwnd);
    }

    #[test]
    fn loss_cuts_mildly() {
        let mut b = BbrLite::new();
        let mut w = Window::new(MSS);
        w.cwnd = 100_000.0;
        b.on_loss(Nanos::ZERO, &mut w);
        assert_eq!(w.cwnd, 85_000.0);
    }

    #[test]
    fn rto_collapses_window_but_keeps_model() {
        let mut b = BbrLite::new();
        let mut w = Window::new(MSS);
        run_rtts(&mut b, &mut w, Nanos::from_micros(50), 10, Nanos::ZERO);
        let bw = b.btl_bw();
        b.on_rto(Nanos::ZERO, &mut w);
        assert_eq!(w.cwnd, MSS as f64);
        assert_eq!(b.btl_bw(), bw);
    }
}
