//! CUBIC congestion control (RFC 8312), the Linux default — a loss-based
//! baseline for comparison experiments.

use hostcc_sim::Nanos;

use crate::cc::{CongestionControl, Window};

/// CUBIC's multiplicative decrease factor β.
const BETA: f64 = 0.7;
/// CUBIC's scaling constant C (segments/s³).
const C: f64 = 0.4;

/// CUBIC sender state.
#[derive(Debug, Clone)]
pub struct Cubic {
    /// Window size (bytes) just before the last reduction.
    w_max: f64,
    /// Time of the last reduction.
    epoch_start: Option<Nanos>,
    /// Time offset at which the cubic curve crosses `w_max`.
    k_secs: f64,
}

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl Cubic {
    /// A fresh CUBIC instance.
    pub fn new() -> Self {
        Cubic {
            w_max: 0.0,
            epoch_start: None,
            k_secs: 0.0,
        }
    }

    fn target(&self, now: Nanos, epoch: Nanos, mss: f64) -> f64 {
        let t = (now.saturating_sub(epoch)).as_secs_f64();
        let w_max_seg = self.w_max / mss;
        let d = t - self.k_secs;
        (C * d * d * d + w_max_seg) * mss
    }
}

impl CongestionControl for Cubic {
    fn on_ack(
        &mut self,
        now: Nanos,
        newly_acked: u64,
        _ece: bool,
        _cum_ack: u64,
        _snd_nxt: u64,
        _rtt: Option<Nanos>,
        w: &mut Window,
    ) {
        if newly_acked == 0 {
            return;
        }
        if w.in_slow_start() {
            w.grow_reno(newly_acked);
            return;
        }
        let epoch = match self.epoch_start {
            Some(e) => e,
            None => {
                // First CA epoch without a prior loss: treat current window
                // as the plateau.
                self.epoch_start = Some(now);
                self.w_max = w.cwnd;
                self.k_secs = 0.0;
                now
            }
        };
        let target = self.target(now, epoch, w.mss);
        if target > w.cwnd {
            // Move a fraction of the way to the cubic target per ACK.
            w.cwnd += (target - w.cwnd) * (newly_acked as f64 / w.cwnd).min(1.0);
        } else {
            // TCP-friendly floor: at least Reno-speed growth.
            w.cwnd += w.mss * (newly_acked as f64 / w.cwnd) * 0.5;
        }
    }

    fn on_loss(&mut self, now: Nanos, w: &mut Window) {
        self.w_max = w.cwnd;
        w.ssthresh = w.cwnd * BETA;
        w.cwnd = w.ssthresh;
        w.clamp_floors();
        self.epoch_start = Some(now);
        // K = cbrt(w_max·(1−β)/C), with windows in segments.
        let w_max_seg = self.w_max / w.mss;
        self.k_secs = (w_max_seg * (1.0 - BETA) / C).cbrt();
    }

    fn on_rto(&mut self, now: Nanos, w: &mut Window) {
        self.w_max = w.cwnd;
        w.ssthresh = w.cwnd * BETA;
        w.cwnd = w.mss;
        w.clamp_floors();
        self.epoch_start = Some(now);
        let w_max_seg = self.w_max / w.mss;
        self.k_secs = (w_max_seg * (1.0 - BETA) / C).cbrt();
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 4030;

    #[test]
    fn slow_start_like_reno() {
        let mut c = Cubic::new();
        let mut w = Window::new(MSS);
        let before = w.cwnd;
        c.on_ack(Nanos::ZERO, MSS, false, MSS, 2 * MSS, None, &mut w);
        assert_eq!(w.cwnd, before + MSS as f64);
    }

    #[test]
    fn reduction_by_beta() {
        let mut c = Cubic::new();
        let mut w = Window::new(MSS);
        w.cwnd = 100_000.0;
        w.ssthresh = 100_000.0;
        c.on_loss(Nanos::ZERO, &mut w);
        assert!((w.cwnd - 70_000.0).abs() < 1.0);
    }

    #[test]
    fn concave_recovery_toward_w_max() {
        let mut c = Cubic::new();
        let mut w = Window::new(MSS);
        w.cwnd = 100_000.0;
        w.ssthresh = 100_000.0;
        c.on_loss(Nanos::ZERO, &mut w);
        let after_loss = w.cwnd;
        // Ack steadily for K seconds; cwnd should recover close to w_max.
        let mut now = Nanos::ZERO;
        for _ in 0..10_000 {
            now += Nanos::from_micros(100);
            c.on_ack(now, MSS, false, 0, 0, None, &mut w);
        }
        assert!(w.cwnd > after_loss, "recovers after loss");
        assert!(
            w.cwnd > 90_000.0,
            "approaches w_max within ~1s: cwnd={}",
            w.cwnd
        );
    }

    #[test]
    fn rto_collapses_but_remembers_plateau() {
        let mut c = Cubic::new();
        let mut w = Window::new(MSS);
        w.cwnd = 100_000.0;
        w.ssthresh = 100_000.0;
        c.on_rto(Nanos::ZERO, &mut w);
        assert_eq!(w.cwnd, MSS as f64);
        assert!(c.w_max > 0.0);
    }

    #[test]
    fn growth_beyond_w_max_is_convex() {
        let mut c = Cubic::new();
        let mut w = Window::new(MSS);
        w.cwnd = 50_000.0;
        w.ssthresh = 50_000.0;
        c.on_loss(Nanos::ZERO, &mut w);
        // K = cbrt(12.4 · 0.3 / 0.4) ≈ 2.1 s. Compare two growth intervals
        // both past K (the convex region): later growth must be faster.
        let mut now = Nanos::ZERO;
        let mut advance = |c: &mut Cubic, w: &mut Window, secs: f64| {
            let steps = (secs / 100e-6) as u64;
            let start = w.cwnd;
            for _ in 0..steps {
                now += Nanos::from_micros(100);
                c.on_ack(now, MSS, false, 0, 0, None, w);
            }
            w.cwnd - start
        };
        let _to_plateau = advance(&mut c, &mut w, 2.5); // past K
        let early = advance(&mut c, &mut w, 0.5);
        let late = advance(&mut c, &mut w, 0.5);
        assert!(late > early, "early={early} late={late}");
        assert!(w.cwnd > 50_000.0, "grew past w_max: {}", w.cwnd);
    }
}
