//! DCQCN: Data Center Quantized Congestion Notification (Zhu et al.,
//! SIGCOMM 2015), the rate-based scheme deployed for RoCEv2.
//!
//! In hardware DCQCN the receiver turns CE-marked packets into explicit
//! CNP frames; here the ACK's ECN-Echo bit plays the CNP role, so the
//! scheme rides the exact echo path DCTCP uses (and therefore sees
//! hostCC's receiver-side marks too). The reaction point keeps an EWMA
//! `α` of *CNP presence* per window — binary, unlike DCTCP's marked-byte
//! fraction — cuts multiplicatively on the first CNP of a window
//! (`cwnd ← cwnd·(1 − α/2)`), and recovers with additive increase that
//! escalates to hyper increase after a run of CNP-free windows (the
//! fast-recovery → additive → hyper ladder of the paper's §3, collapsed
//! onto window arithmetic).

use hostcc_sim::Nanos;

use crate::cc::{CongestionControl, Window};

/// DCQCN's α gain, matching the DCTCP default (`g = 1/16`).
pub const DCQCN_G: f64 = 1.0 / 16.0;

/// CNP-free windows before additive increase escalates to hyper increase.
pub const DCQCN_HYPER_AFTER: u64 = 5;

/// Additive-increase step in MSS per window during hyper increase.
pub const DCQCN_HYPER_AI: f64 = 5.0;

/// The DCQCN reaction-point state.
#[derive(Debug, Clone)]
pub struct Dcqcn {
    /// EWMA of per-window CNP presence (1 if the window saw a CNP).
    alpha: f64,
    g: f64,
    /// A CNP (ECE ack) was seen in the current observation window.
    cnp_in_window: bool,
    /// Consecutive CNP-free windows (drives the hyper-increase stage).
    clean_windows: u64,
    /// The window ends when `cum_ack` passes this sequence.
    window_end: u64,
    /// Number of window-boundary α updates (diagnostics).
    pub alpha_updates: u64,
    /// Number of multiplicative rate cuts taken (diagnostics).
    pub rate_cuts: u64,
}

impl Default for Dcqcn {
    fn default() -> Self {
        Self::new()
    }
}

impl Dcqcn {
    /// DCQCN with α initialized to 1 so the first CNP reacts strongly,
    /// mirroring DCTCP's `dctcp_alpha_on_init`.
    pub fn new() -> Self {
        Dcqcn {
            alpha: 1.0,
            g: DCQCN_G,
            cnp_in_window: false,
            clean_windows: 0,
            window_end: 0,
            alpha_updates: 0,
            rate_cuts: 0,
        }
    }

    /// Current α estimate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Whether recovery is in the hyper-increase stage.
    pub fn in_hyper_increase(&self) -> bool {
        self.clean_windows >= DCQCN_HYPER_AFTER
    }
}

impl CongestionControl for Dcqcn {
    fn on_ack(
        &mut self,
        _now: Nanos,
        newly_acked: u64,
        ece: bool,
        cum_ack: u64,
        snd_nxt: u64,
        _rtt: Option<Nanos>,
        w: &mut Window,
    ) {
        if newly_acked > 0 {
            if ece {
                // First CNP of the window: immediate multiplicative cut
                // (the reaction point acts on CNP arrival, not at window
                // boundaries), rate-limited to once per window like the
                // hardware's CNP timer.
                if !self.cnp_in_window {
                    self.cnp_in_window = true;
                    self.clean_windows = 0;
                    w.ssthresh = w.cwnd * (1.0 - self.alpha / 2.0);
                    w.cwnd = w.ssthresh;
                    w.clamp_floors();
                    self.rate_cuts += 1;
                }
            } else if w.in_slow_start() {
                w.grow_reno(newly_acked);
            } else {
                // Additive increase, escalating to hyper increase after a
                // run of clean windows.
                let ai = if self.in_hyper_increase() {
                    DCQCN_HYPER_AI
                } else {
                    1.0
                };
                w.cwnd += ai * w.mss * newly_acked as f64 / w.cwnd;
            }
            // Lazy-start the first observation window at the current send
            // frontier, as DCTCP does.
            if self.window_end == 0 {
                self.window_end = snd_nxt;
            }
        }
        // Window boundary: one RTT of data acknowledged.
        if cum_ack >= self.window_end && self.window_end != 0 {
            let f = if self.cnp_in_window { 1.0 } else { 0.0 };
            self.alpha = (1.0 - self.g) * self.alpha + self.g * f;
            self.alpha_updates += 1;
            if !self.cnp_in_window {
                self.clean_windows += 1;
            }
            self.cnp_in_window = false;
            self.window_end = snd_nxt;
        }
    }

    fn on_loss(&mut self, _now: Nanos, w: &mut Window) {
        // RoCEv2 deployments lean on PFC to avoid loss; when it happens
        // anyway, fall back to the standard halving.
        w.ssthresh = w.cwnd / 2.0;
        w.cwnd = w.ssthresh;
        w.clamp_floors();
        self.clean_windows = 0;
    }

    fn on_rto(&mut self, _now: Nanos, w: &mut Window) {
        w.ssthresh = w.cwnd / 2.0;
        w.cwnd = w.mss;
        w.clamp_floors();
        self.clean_windows = 0;
    }

    fn name(&self) -> &'static str {
        "dcqcn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 4030;

    fn win() -> Window {
        let mut w = Window::new(MSS);
        w.cwnd = 100_000.0;
        w.ssthresh = 100_000.0; // congestion avoidance
        w
    }

    /// Ack one window of `n` segments, the first `marked` of them ECE,
    /// starting the stream at `start`, with a full window in flight.
    fn ack_window(d: &mut Dcqcn, w: &mut Window, start: u64, n: u64, marked: u64) -> u64 {
        let mut cum = start;
        let end = start + n * MSS;
        for i in 0..n {
            cum += MSS;
            d.on_ack(Nanos::ZERO, MSS, i < marked, cum, end + n * MSS, None, w);
        }
        cum
    }

    #[test]
    fn first_cnp_cuts_immediately() {
        let mut d = Dcqcn::new();
        let mut w = win();
        let before = w.cwnd;
        // α starts at 1.0, so the first CNP cuts by α/2 = 50%.
        d.on_ack(Nanos::ZERO, MSS, true, MSS, 50 * MSS, None, &mut w);
        assert_eq!(w.cwnd, before * 0.5);
        assert_eq!(d.rate_cuts, 1);
    }

    #[test]
    fn at_most_one_cut_per_window() {
        let mut d = Dcqcn::new();
        let mut w = win();
        ack_window(&mut d, &mut w, 0, 25, 25);
        assert_eq!(d.rate_cuts, 1, "all-marked window cuts once");
    }

    #[test]
    fn alpha_decays_on_clean_windows() {
        let mut d = Dcqcn::new();
        let mut w = win();
        let mut cum = 0;
        for _ in 0..50 {
            cum = ack_window(&mut d, &mut w, cum, 10, 0);
        }
        assert!(d.alpha() < 0.05, "alpha={}", d.alpha());
        assert_eq!(d.rate_cuts, 0);
    }

    #[test]
    fn alpha_tracks_cnp_presence_not_fraction() {
        let mut d = Dcqcn::new();
        let mut w = win();
        let mut cum = 0;
        // One mark per 10-segment window, every window: presence is 1.0
        // even though the marked-byte fraction is 0.1.
        for _ in 0..200 {
            cum = ack_window(&mut d, &mut w, cum, 10, 1);
        }
        assert!(d.alpha() > 0.9, "alpha={}", d.alpha());
    }

    #[test]
    fn hyper_increase_after_clean_run() {
        let mut d = Dcqcn::new();
        let mut w = win();
        let mut cum = 0;
        // One cut, then clean windows until the hyper stage engages (the
        // first clean window's boundary still records the CNP, so run
        // a couple extra).
        cum = ack_window(&mut d, &mut w, cum, 10, 1);
        for _ in 0..DCQCN_HYPER_AFTER + 2 {
            cum = ack_window(&mut d, &mut w, cum, 10, 0);
        }
        assert!(d.in_hyper_increase());
        let before = w.cwnd;
        ack_window(&mut d, &mut w, cum, 10, 0);
        let hyper_gain = w.cwnd - before;
        // Hyper increase grows DCQCN_HYPER_AI× faster than plain additive.
        let plain_per_window = MSS as f64 * (10.0 * MSS as f64) / before;
        assert!(
            hyper_gain > 3.0 * plain_per_window,
            "hyper_gain={hyper_gain} plain={plain_per_window}"
        );
    }

    #[test]
    fn cnp_resets_hyper_stage() {
        let mut d = Dcqcn::new();
        let mut w = win();
        let mut cum = 0;
        for _ in 0..=DCQCN_HYPER_AFTER {
            cum = ack_window(&mut d, &mut w, cum, 10, 0);
        }
        assert!(d.in_hyper_increase());
        ack_window(&mut d, &mut w, cum, 10, 1);
        assert!(!d.in_hyper_increase());
    }

    #[test]
    fn loss_falls_back_to_halving() {
        let mut d = Dcqcn::new();
        let mut w = win();
        d.on_loss(Nanos::ZERO, &mut w);
        assert_eq!(w.cwnd, 50_000.0);
    }

    #[test]
    fn rto_collapses_window() {
        let mut d = Dcqcn::new();
        let mut w = win();
        d.on_rto(Nanos::ZERO, &mut w);
        assert_eq!(w.cwnd, MSS as f64);
    }
}
