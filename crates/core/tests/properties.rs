//! Property-based tests for the hostCC controller.

use hostcc_core::{HostCc, HostCcConfig, Regime, SignalSource};
use hostcc_host::{Mba, MsrBank, MsrReadModel};
use hostcc_sim::{Nanos, Rng};
use proptest::prelude::*;

fn controller(cfg: HostCcConfig, seed: u64) -> HostCc {
    HostCc::new(
        cfg,
        MsrReadModel::new(Nanos::from_nanos(600), Nanos::from_nanos(250)),
        0.5,
        Rng::new(seed),
    )
}

fn mba() -> Mba {
    Mba::new(
        [
            Nanos::ZERO,
            Nanos::from_nanos(170),
            Nanos::from_nanos(360),
            Nanos::from_nanos(580),
        ],
        Nanos::from_micros(22),
    )
}

proptest! {
    /// For every combination of signals, the controller lands in exactly
    /// the Fig 6 regime, the desired level stays within 0..=4, and the
    /// marking decision equals the congestion predicate.
    #[test]
    fn regime_classification_is_total_and_consistent(
        seed in any::<u64>(),
        segments in prop::collection::vec((0.0f64..100.0, 0.0f64..16.0), 1..20),
    ) {
        let cfg = HostCcConfig::paper_default();
        let it = cfg.it;
        let bt_pcie = cfg.bt_pcie().as_bytes_per_ns();
        let mut hc = controller(cfg, seed);
        let mut m = mba();
        let mut bank = MsrBank::new();
        let mut now = Nanos::ZERO;
        let dt = Nanos::from_nanos(100);
        for &(occ, rate) in &segments {
            // Hold this signal level for 100 µs so the EWMAs converge.
            for _ in 0..1000 {
                now += dt;
                bank.integrate_occupancy(occ, dt);
                bank.add_insertions(rate * 100.0);
                hc.on_tick(now, &bank, &mut m);
            }
            let congested = hc.is() > it;
            let met = hc.bs().as_bytes_per_ns() >= bt_pcie;
            let expect = match (congested, met) {
                (false, true) => Regime::R1,
                (true, true) => Regime::R2,
                (true, false) => Regime::R3,
                (false, false) => Regime::R4,
            };
            // The regime recorded at the last sample agrees with the
            // converged signals (EWMAs have settled by now).
            prop_assert_eq!(hc.regime(), expect,
                "occ={} rate={} is={} bs={}", occ, rate, hc.is(), hc.bs().as_gbps());
            prop_assert!(hc.desired_level() <= 4);
            prop_assert_eq!(hc.should_mark(), congested);
        }
    }

    /// The MBA level only moves one step per matured write, no matter how
    /// wild the signals are (the 22 µs actuator gate).
    #[test]
    fn level_changes_are_write_gated(seed in any::<u64>(), steps in 1usize..200) {
        let mut hc = controller(HostCcConfig::paper_default(), seed);
        let mut m = mba();
        let mut bank = MsrBank::new();
        let mut rng = Rng::new(seed ^ 0xABCD);
        let mut now = Nanos::ZERO;
        let dt = Nanos::from_nanos(100);
        let mut last_eff = 0u8;
        for _ in 0..steps {
            for _ in 0..10 {
                now += dt;
                let occ = rng.f64() * 93.0;
                let rate = rng.f64() * 13.0;
                bank.integrate_occupancy(occ, dt);
                bank.add_insertions(rate * 100.0);
                hc.on_tick(now, &bank, &mut m);
                let eff = m.effective_level(now);
                let diff = eff.abs_diff(last_eff);
                prop_assert!(diff <= 1, "effective level jumped by {diff}");
                last_eff = eff;
            }
        }
    }

    /// NIC-buffer signal source: marking follows the NIC threshold, not
    /// the IIO one.
    #[test]
    fn nic_signal_source_uses_its_own_threshold(backlog in 0u64..1_000_000) {
        let mut cfg = HostCcConfig::paper_default();
        cfg.signal_source = SignalSource::NicBuffer;
        cfg.nic_it_bytes = 64.0 * 1024.0;
        let mut hc = controller(cfg, 1);
        let mut m = mba();
        let mut bank = MsrBank::new();
        let mut now = Nanos::ZERO;
        let dt = Nanos::from_nanos(100);
        // Very high IIO occupancy the whole time — must be ignored.
        for _ in 0..2000 {
            now += dt;
            bank.integrate_occupancy(93.0, dt);
            bank.add_insertions(5.0 * 100.0);
            hc.on_tick_with_nic(now, &bank, backlog, &mut m);
        }
        prop_assert_eq!(hc.should_mark(), backlog as f64 > 64.0 * 1024.0,
            "backlog={} is={}", backlog, hc.is());
    }
}
