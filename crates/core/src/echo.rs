//! Echoing host congestion to the network CC via ECN (paper §3.3, §4.3).
//!
//! The kernel implementation hooks `ip_recv` through NetFilter and sets the
//! two ECN bits on datagrams before they reach the transport layer — "does
//! exactly what today's switches do". Here the experiment driver passes
//! every packet delivered by the host model through [`EcnEcho::process`]
//! with the controller's current [`crate::HostCc::should_mark`] decision.
//! Packets already marked by the fabric pass through unchanged, so host
//! and network congestion signals merge into a single CE stream.

use hostcc_fabric::Packet;
use hostcc_flowscope::FlowscopeHandle;

/// Receiver-side ECN marking with accounting.
#[derive(Debug, Clone, Default)]
pub struct EcnEcho {
    /// Packets this echo marked (excluding already-CE packets).
    pub host_marks: u64,
    /// Packets that arrived already CE-marked (fabric marks).
    pub fabric_marks: u64,
    /// Packets processed.
    pub processed: u64,
    /// Flow-ledger recorder: attributes CE marks per flow, classified as
    /// host-echo vs fabric (disabled by default).
    flowscope: FlowscopeHandle,
}

impl EcnEcho {
    /// A fresh echo stage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a flow-ledger recorder.
    pub fn set_flowscope(&mut self, handle: FlowscopeHandle) {
        self.flowscope = handle;
    }

    /// Apply the marking decision to a delivered packet.
    pub fn process(&mut self, pkt: &mut Packet, mark: bool) {
        self.processed += 1;
        if pkt.ecn.is_ce() {
            self.fabric_marks += 1;
            self.flowscope.ecn_mark(pkt.flow.0, false);
            return;
        }
        if mark {
            pkt.mark_ce();
            self.host_marks += 1;
            self.flowscope.ecn_mark(pkt.flow.0, true);
        }
    }

    /// Fraction of processed packets marked by the host echo.
    pub fn host_mark_fraction(&self) -> f64 {
        if self.processed == 0 {
            0.0
        } else {
            self.host_marks as f64 / self.processed as f64
        }
    }

    /// Reset window counters (the attached recorder, if any, stays).
    pub fn reset_window(&mut self) {
        self.host_marks = 0;
        self.fabric_marks = 0;
        self.processed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostcc_fabric::{EcnCodepoint, FlowId};
    use hostcc_sim::Nanos;

    fn pkt() -> Packet {
        Packet::data(1, FlowId(0), 0, 1000, false, Nanos::ZERO)
    }

    #[test]
    fn marks_when_told() {
        let mut e = EcnEcho::new();
        let mut p = pkt();
        e.process(&mut p, true);
        assert!(p.ecn.is_ce());
        assert_eq!(e.host_marks, 1);
    }

    #[test]
    fn passes_through_when_not_congested() {
        let mut e = EcnEcho::new();
        let mut p = pkt();
        e.process(&mut p, false);
        assert!(!p.ecn.is_ce());
        assert_eq!(e.host_marks, 0);
    }

    #[test]
    fn fabric_marks_counted_separately() {
        let mut e = EcnEcho::new();
        let mut p = pkt();
        p.ecn = EcnCodepoint::Ce;
        e.process(&mut p, true);
        assert!(p.ecn.is_ce());
        assert_eq!(e.fabric_marks, 1);
        assert_eq!(e.host_marks, 0, "switch marks are not double-counted");
    }

    #[test]
    fn mark_fraction() {
        let mut e = EcnEcho::new();
        for i in 0..10 {
            let mut p = pkt();
            e.process(&mut p, i < 3);
        }
        assert!((e.host_mark_fraction() - 0.3).abs() < 1e-12);
        e.reset_window();
        assert_eq!(e.processed, 0);
    }
}
