//! Host congestion signal collection (paper §3.1, §4.1).

use hostcc_host::{CounterSnapshot, MsrBank, MsrReadModel, CACHELINE};
use hostcc_sim::{Ewma, Nanos, Rate, Rng};

/// Configuration of the signal sampler.
#[derive(Debug, Clone)]
pub struct SignalConfig {
    /// Nominal sampling period. The effective period is
    /// `max(period, read latency)`; with the defaults both are sub-µs,
    /// matching the paper's "sub-microsecond granularity".
    pub period: Nanos,
    /// EWMA weight for `I_S` (paper default 1/8).
    pub is_weight: f64,
    /// EWMA weight for `B_S` (paper default 1/256).
    pub bs_weight: f64,
}

impl Default for SignalConfig {
    fn default() -> Self {
        SignalConfig {
            period: Nanos::from_nanos(700),
            is_weight: 1.0 / 8.0,
            bs_weight: 1.0 / 256.0,
        }
    }
}

/// One completed signal sample.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// When the sample completed.
    pub at: Nanos,
    /// Raw average IIO occupancy since the previous sample (cachelines).
    pub is_raw: f64,
    /// Raw average PCIe bandwidth since the previous sample.
    pub bs_raw: Rate,
    /// Smoothed `I_S`.
    pub is: f64,
    /// Smoothed `B_S`.
    pub bs: Rate,
    /// Cost of the `R_OCC` (occupancy) MSR read — Fig 7(a)'s distribution.
    pub read_is: Nanos,
    /// Cost of the `R_INS` (insertion) MSR read — Fig 7(b)'s distribution.
    pub read_bs: Nanos,
}

impl Sample {
    /// Total signal-read cost for this sample.
    pub fn read_latency(&self) -> Nanos {
        self.read_is + self.read_bs
    }
}

/// Samples the MSR bank periodically and maintains the smoothed signals.
#[derive(Debug)]
pub struct SignalSampler {
    cfg: SignalConfig,
    read_model: MsrReadModel,
    rng: Rng,
    f_iio_ghz: f64,
    prev: Option<CounterSnapshot>,
    is_ewma: Ewma,
    bs_ewma: Ewma,
    next_at: Nanos,
    /// Total samples taken.
    pub samples: u64,
}

impl SignalSampler {
    /// Build a sampler for a host with the given MSR read model and IIO
    /// clock.
    pub fn new(cfg: SignalConfig, read_model: MsrReadModel, f_iio_ghz: f64, rng: Rng) -> Self {
        assert!(cfg.period > Nanos::ZERO);
        let is_ewma = Ewma::new(cfg.is_weight, 0.0);
        let bs_ewma = Ewma::new(cfg.bs_weight, 0.0);
        SignalSampler {
            cfg,
            read_model,
            rng,
            f_iio_ghz,
            prev: None,
            is_ewma,
            bs_ewma,
            next_at: Nanos::ZERO,
            samples: 0,
        }
    }

    /// Current smoothed IIO occupancy.
    pub fn is(&self) -> f64 {
        self.is_ewma.get()
    }

    /// Current smoothed PCIe bandwidth.
    pub fn bs(&self) -> Rate {
        Rate::bytes_per_ns(self.bs_ewma.get())
    }

    /// Estimated host delay `ℓ_p + ℓ_m` via Little's law on the smoothed
    /// signals (paper §3.1 / §6: the delay-based-CC extension).
    pub fn host_delay(&self) -> Option<Nanos> {
        let bs = self.bs_ewma.get();
        if bs <= 0.0 || !self.is_ewma.is_primed() {
            return None;
        }
        let ns = self.is_ewma.get() * CACHELINE as f64 / bs;
        Some(Nanos::from_nanos(ns.round() as u64))
    }

    /// Whether a sample is due at `now`.
    pub fn due(&self, now: Nanos) -> bool {
        now >= self.next_at
    }

    /// Mutable access to the MSR read model (chaos: jitter perturbation).
    /// Each sample draws exactly one RNG value per MSR read regardless of
    /// the model parameters, so mutating and later restoring the model
    /// leaves the RNG stream aligned.
    pub fn read_model_mut(&mut self) -> &mut MsrReadModel {
        &mut self.read_model
    }

    /// Take a sample if one is due. Returns the new sample, or `None` if
    /// it is not time yet (or this is the priming read establishing the
    /// first counter snapshot).
    pub fn maybe_sample(&mut self, now: Nanos, bank: &MsrBank) -> Option<Sample> {
        if !self.due(now) {
            return None;
        }
        // Two MSR reads (R_OCC and R_INS) per sample; the paper's kernel
        // thread reads them back to back.
        let read_is = self.read_model.draw(&mut self.rng);
        let read_bs = self.read_model.draw(&mut self.rng);
        let snap = CounterSnapshot::take(bank, self.f_iio_ghz, now);
        self.next_at = now + self.cfg.period.max(read_is + read_bs);
        let Some(prev) = self.prev.replace(snap) else {
            return None; // priming read
        };
        let is_raw = snap.avg_occupancy_since(&prev, self.f_iio_ghz);
        let bs_raw = snap.avg_pcie_bytes_per_ns_since(&prev);
        let is = self.is_ewma.update(is_raw);
        let bs = self.bs_ewma.update(bs_raw);
        self.samples += 1;
        Some(Sample {
            at: now,
            is_raw,
            bs_raw: Rate::bytes_per_ns(bs_raw),
            is,
            bs: Rate::bytes_per_ns(bs),
            read_is,
            read_bs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler() -> SignalSampler {
        SignalSampler::new(
            SignalConfig::default(),
            MsrReadModel::new(Nanos::from_nanos(600), Nanos::from_nanos(250)),
            0.5,
            Rng::new(1),
        )
    }

    /// Integrate a constant occupancy/bandwidth into the bank for `dur`.
    fn feed(bank: &mut MsrBank, occ: f64, rate_bytes_per_ns: f64, dur: Nanos) {
        let dt = Nanos::from_nanos(100);
        let ticks = dur / dt;
        for _ in 0..ticks {
            bank.integrate_occupancy(occ, dt);
            bank.add_insertions(rate_bytes_per_ns * 100.0);
        }
    }

    #[test]
    fn first_read_is_priming() {
        let mut s = sampler();
        let bank = MsrBank::new();
        assert!(s.maybe_sample(Nanos::ZERO, &bank).is_none());
        assert_eq!(s.samples, 0);
    }

    #[test]
    fn recovers_constant_signals() {
        let mut s = sampler();
        let mut bank = MsrBank::new();
        let mut now = Nanos::ZERO;
        s.maybe_sample(now, &bank); // prime
        for _ in 0..2000 {
            let step = Nanos::from_micros(1);
            feed(&mut bank, 65.0, 12.875, step);
            now += step;
            s.maybe_sample(now, &bank);
        }
        assert!((s.is() - 65.0).abs() < 1.0, "I_S = {}", s.is());
        assert!((s.bs().as_gbps() - 103.0).abs() < 2.0, "B_S = {}", s.bs());
    }

    #[test]
    fn respects_sampling_period() {
        let mut s = sampler();
        let bank = MsrBank::new();
        s.maybe_sample(Nanos::ZERO, &bank);
        // Immediately after: not due (period ≥ 700 ns).
        assert!(!s.due(Nanos::from_nanos(500)));
        assert!(s.maybe_sample(Nanos::from_nanos(500), &bank).is_none());
        // Within ~2× the worst read latency it must be due again.
        assert!(s.due(Nanos::from_micros(2)));
    }

    #[test]
    fn is_ewma_reacts_within_samples() {
        let mut s = sampler();
        let mut bank = MsrBank::new();
        let mut now = Nanos::ZERO;
        s.maybe_sample(now, &bank);
        // 20 µs of occupancy 65…
        for _ in 0..20 {
            feed(&mut bank, 65.0, 12.875, Nanos::from_micros(1));
            now += Nanos::from_micros(1);
            s.maybe_sample(now, &bank);
        }
        // …then a jump to 93. Weight 1/8 ⇒ ~8 samples to mostly converge.
        for _ in 0..20 {
            feed(&mut bank, 93.0, 5.0, Nanos::from_micros(1));
            now += Nanos::from_micros(1);
            s.maybe_sample(now, &bank);
        }
        assert!(s.is() > 85.0, "I_S after jump = {}", s.is());
    }

    #[test]
    fn bs_ewma_is_much_slower() {
        let mut s = sampler();
        let mut bank = MsrBank::new();
        let mut now = Nanos::ZERO;
        s.maybe_sample(now, &bank);
        for _ in 0..30 {
            feed(&mut bank, 65.0, 12.875, Nanos::from_micros(1));
            now += Nanos::from_micros(1);
            s.maybe_sample(now, &bank);
        }
        let before = s.bs().as_gbps();
        // 20 samples of near-zero bandwidth barely move a 1/256 EWMA.
        for _ in 0..20 {
            feed(&mut bank, 10.0, 0.1, Nanos::from_micros(1));
            now += Nanos::from_micros(1);
            s.maybe_sample(now, &bank);
        }
        let after = s.bs().as_gbps();
        assert!(after > before * 0.88, "before={before} after={after}");
    }

    #[test]
    fn host_delay_from_littles_law() {
        let mut s = sampler();
        let mut bank = MsrBank::new();
        let mut now = Nanos::ZERO;
        s.maybe_sample(now, &bank);
        for _ in 0..2000 {
            feed(&mut bank, 65.0, 12.875, Nanos::from_micros(1));
            now += Nanos::from_micros(1);
            s.maybe_sample(now, &bank);
        }
        // delay = 65 × 64 / 12.875 ≈ 323 ns.
        let d = s.host_delay().expect("delay available");
        assert!(
            (d.as_nanos() as i64 - 323).unsigned_abs() < 15,
            "host delay = {d}"
        );
    }

    #[test]
    fn read_latency_reported_in_band() {
        let mut s = sampler();
        let mut bank = MsrBank::new();
        s.maybe_sample(Nanos::ZERO, &bank);
        feed(&mut bank, 50.0, 10.0, Nanos::from_micros(2));
        let sample = s.maybe_sample(Nanos::from_micros(2), &bank).unwrap();
        // Two reads of ~[352, 852] ns each.
        assert!(sample.read_latency() >= Nanos::from_nanos(700));
        assert!(sample.read_latency() <= Nanos::from_nanos(1800));
        assert!(sample.read_is >= Nanos::from_nanos(350));
        assert!(sample.read_bs >= Nanos::from_nanos(350));
    }
}
