//! Target-bandwidth policies.
//!
//! hostCC deliberately does not fix a host resource-allocation policy: "we
//! envision hostCC to embody various host resource allocation policies"
//! (§3.2). The controller consumes a target network bandwidth `B_T` from a
//! [`TargetPolicy`]; the paper's evaluation uses a fixed target
//! ([`FixedTarget`], 80 Gbps), and [`PriorityShareTarget`] demonstrates a
//! dynamic policy that scales the target with observed demand.

use hostcc_sim::{Nanos, Rate};

/// Computes the target network bandwidth `B_T` over time.
pub trait TargetPolicy: std::fmt::Debug {
    /// The target at `now`, given the currently observed network
    /// (PCIe-side) bandwidth.
    fn target(&mut self, now: Nanos, observed_bs: Rate) -> Rate;

    /// Policy name for experiment tables.
    fn name(&self) -> &'static str;
}

/// The paper's policy: a fixed `B_T`.
#[derive(Debug, Clone, Copy)]
pub struct FixedTarget(pub Rate);

impl TargetPolicy for FixedTarget {
    fn target(&mut self, _now: Nanos, _observed_bs: Rate) -> Rate {
        self.0
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// A demand-following policy: the target tracks a fraction of the peak
/// bandwidth the network traffic has recently demonstrated, bounded to
/// `[floor, ceiling]`. When network demand falls, host-local traffic gets
/// the released bandwidth back without operator intervention.
#[derive(Debug, Clone, Copy)]
pub struct PriorityShareTarget {
    /// Lower bound on the target.
    pub floor: Rate,
    /// Upper bound on the target.
    pub ceiling: Rate,
    /// Fraction of the demonstrated peak to defend.
    pub fraction: f64,
    peak: Rate,
    /// Decay applied to the demonstrated peak each update (forgets old
    /// bursts over ~1000 updates).
    decay: f64,
}

impl PriorityShareTarget {
    /// A policy defending `fraction` of demonstrated peak demand.
    pub fn new(floor: Rate, ceiling: Rate, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        PriorityShareTarget {
            floor,
            ceiling,
            fraction,
            peak: Rate::ZERO,
            decay: 0.999,
        }
    }
}

impl TargetPolicy for PriorityShareTarget {
    fn target(&mut self, _now: Nanos, observed_bs: Rate) -> Rate {
        self.peak = (self.peak * self.decay).max(observed_bs);
        (self.peak * self.fraction)
            .max(self.floor)
            .min(self.ceiling)
    }

    fn name(&self) -> &'static str {
        "priority-share"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_fixed() {
        let mut p = FixedTarget(Rate::gbps(80.0));
        assert_eq!(p.target(Nanos::ZERO, Rate::gbps(10.0)), Rate::gbps(80.0));
        assert_eq!(
            p.target(Nanos::from_secs(1), Rate::gbps(100.0)),
            Rate::gbps(80.0)
        );
    }

    #[test]
    fn share_tracks_demonstrated_peak() {
        let mut p = PriorityShareTarget::new(Rate::gbps(10.0), Rate::gbps(90.0), 0.8);
        // Low demand: floor.
        assert_eq!(p.target(Nanos::ZERO, Rate::gbps(5.0)), Rate::gbps(10.0));
        // A 100 Gbps burst: defend 80 % of it, capped at the ceiling.
        let t = p.target(Nanos::ZERO, Rate::gbps(100.0));
        assert!((t.as_gbps() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn share_decays_when_demand_vanishes() {
        let mut p = PriorityShareTarget::new(Rate::gbps(10.0), Rate::gbps(90.0), 0.8);
        p.target(Nanos::ZERO, Rate::gbps(100.0));
        for _ in 0..10_000 {
            p.target(Nanos::ZERO, Rate::ZERO);
        }
        assert_eq!(p.target(Nanos::ZERO, Rate::ZERO), Rate::gbps(10.0));
    }

    #[test]
    fn share_respects_ceiling() {
        let mut p = PriorityShareTarget::new(Rate::gbps(10.0), Rate::gbps(50.0), 1.0);
        let t = p.target(Nanos::ZERO, Rate::gbps(200.0));
        assert_eq!(t, Rate::gbps(50.0));
    }
}
