//! hostCC — the paper's contribution: a congestion-control architecture
//! for *host* congestion (Agarwal, Krishnamurthy, Agarwal; SIGCOMM 2023).
//!
//! Three ideas, three modules:
//!
//! 1. **Host congestion signals** ([`SignalSampler`], §3.1/§4.1): sample
//!    the IIO occupancy (`I_S`) and insertion (`B_S`) MSRs at sub-µs
//!    granularity, smooth with EWMA weights 1/8 and 1/256. The signals are
//!    collected *off* the NIC→memory datapath, so they stay readable during
//!    the very congestion they measure.
//! 2. **Sub-RTT host-local congestion response** ([`HostCc`], §3.2/§4.2):
//!    a four-regime controller (Fig 6) that moves the MBA backpressure
//!    level on host-local traffic to keep PCIe bandwidth at the target
//!    `B_T` whenever the host is congested — at microsecond timescales,
//!    far below the RTT at which network CC can react.
//! 3. **Network resource allocation at RTT granularity** ([`EcnEcho`],
//!    §3.3/§4.3): echo the host congestion signal to the unmodified
//!    network CC protocol by CE-marking delivered packets, exactly as a
//!    switch AQM would, so DCTCP's existing machinery allocates network
//!    resources using host *and* fabric signals.
//!
//! The controller is transport-agnostic and host-model-agnostic: it reads
//! an [`hostcc_host::MsrBank`], writes an [`hostcc_host::Mba`], and flags
//! packets. Everything else — policies ([`TargetPolicy`]), thresholds,
//! EWMA weights — is configuration.
//!
//! ```
//! use hostcc_core::{HostCc, HostCcConfig, Regime};
//! use hostcc_host::{Mba, MsrBank, MsrReadModel};
//! use hostcc_sim::{Nanos, Rng};
//!
//! // A controller with the paper's defaults (I_T = 70, B_T = 80 Gbps).
//! let cfg = HostCcConfig::paper_default();
//! let reads = MsrReadModel::new(Nanos::from_nanos(600), Nanos::from_nanos(250));
//! let mut hostcc = HostCc::new(cfg, reads, 0.5, Rng::new(42));
//!
//! // Feed it a congested host: occupancy pinned at the credit limit, PCIe
//! // bandwidth far below target.
//! let mut bank = MsrBank::new();
//! let mut mba = Mba::new(
//!     [Nanos::ZERO, Nanos::from_nanos(170), Nanos::from_nanos(360), Nanos::from_nanos(580)],
//!     Nanos::from_micros(22),
//! );
//! let mut now = Nanos::ZERO;
//! for _ in 0..10_000 {
//!     now += Nanos::from_nanos(100);
//!     bank.integrate_occupancy(93.0, Nanos::from_nanos(100));
//!     bank.add_insertions(5.4 * 100.0); // ≈ 43 Gbps
//!     hostcc.on_tick(now, &bank, &mut mba);
//! }
//!
//! // Regime 3 (Fig 6): host congested, target unmet → backpressure + echo.
//! assert_eq!(hostcc.regime(), Regime::R3);
//! assert!(hostcc.should_mark());
//! assert_eq!(mba.effective_level(now), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod echo;
mod policy;
mod response;
mod signals;

pub use echo::EcnEcho;
pub use policy::{FixedTarget, PriorityShareTarget, TargetPolicy};
pub use response::{HostCc, HostCcConfig, Regime, SignalSource};
pub use signals::{Sample, SignalConfig, SignalSampler};
