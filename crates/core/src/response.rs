//! The hostCC controller: four-regime host-local response (paper §3.2,
//! Fig 6) plus the decision of when to echo congestion to the network CC.

use hostcc_host::{Mba, MsrBank, MsrReadModel, MBA_LEVELS};
use hostcc_sim::{Nanos, Rate, Rng};
use hostcc_trace::{TraceEvent, TraceHandle};

use crate::signals::{Sample, SignalConfig, SignalSampler};

/// Which host congestion signal drives the controller.
///
/// The paper's contribution uses IIO occupancy (§3.1) and discusses NIC
/// buffer occupancy as an open question (§6: "it would also be interesting
/// to explore whether NIC buffer occupancy can provide accurate
/// information on time, location and reason for host congestion"). The
/// NIC-buffer variant is implemented here to answer that experimentally:
/// it asserts only *after* the domino effect has already reached the NIC,
/// so its reaction is structurally later than the IIO signal's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalSource {
    /// IIO buffer occupancy (`I_S` vs `I_T`) — the paper's signal.
    IioOccupancy,
    /// Receiver NIC buffer occupancy (bytes vs `nic_it_bytes`).
    NicBuffer,
}

/// hostCC configuration — deliberately tiny: "hostCC has only two
/// parameters, `B_T` and `I_T`" (§5.3). The rest are ablation switches and
/// plumbing constants.
#[derive(Debug, Clone)]
pub struct HostCcConfig {
    /// IIO occupancy threshold `I_T` (paper default 70; 50 with DDIO).
    pub it: f64,
    /// Which congestion signal gates the response.
    pub signal_source: SignalSource,
    /// Congestion threshold for the [`SignalSource::NicBuffer`] variant.
    pub nic_it_bytes: f64,
    /// Target network bandwidth `B_T` at the application/wire level
    /// (paper default 80 Gbps).
    pub bt: Rate,
    /// PCIe overhead factor used to translate `B_T` into the PCIe-side
    /// bandwidth the `B_S` signal measures (80 Gbps → 82–84 Gbps on the
    /// wire; Fig 19's green line).
    pub pcie_overhead: f64,
    /// Enable the sub-RTT host-local response (MBA control). Disabling
    /// this yields the "echo congestion signals only" ablation of Fig 18.
    pub local_response: bool,
    /// Enable echoing the congestion signal to the network CC (ECN marks).
    /// Disabling this yields the "host-local response only" ablation.
    pub echo: bool,
    /// Signal sampling configuration.
    pub signal: SignalConfig,
}

impl HostCcConfig {
    /// Paper defaults for the DDIO-disabled evaluation (§5): `I_T = 70`,
    /// `B_T = 80 Gbps`.
    pub fn paper_default() -> Self {
        HostCcConfig {
            it: 70.0,
            signal_source: SignalSource::IioOccupancy,
            nic_it_bytes: 64.0 * 1024.0,
            bt: Rate::gbps(80.0),
            pcie_overhead: 1.03,
            local_response: true,
            echo: true,
            signal: SignalConfig::default(),
        }
    }

    /// Paper defaults for DDIO enabled (§5.2): `I_T = 50` because the
    /// uncongested occupancy is ≈ 45 rather than ≈ 65.
    pub fn paper_ddio() -> Self {
        HostCcConfig {
            it: 50.0,
            ..Self::paper_default()
        }
    }

    /// `B_T` expressed in PCIe-side bytes (what `B_S` is compared to).
    pub fn bt_pcie(&self) -> Rate {
        self.bt * self.pcie_overhead
    }
}

/// The four operating regimes of Fig 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// No host congestion, target met → release backpressure on
    /// host-local traffic.
    R1,
    /// Host congestion, target met → echo only; network CC backs off.
    R2,
    /// Host congestion, target not met → more backpressure *and* echo.
    R3,
    /// No host congestion, target not met → hold; let AIMD grow into the
    /// spare resources.
    R4,
}

/// Per-regime visit counters (diagnostics / deep-dive figures).
#[derive(Debug, Clone, Copy, Default)]
pub struct RegimeStats {
    /// Samples spent in each regime (indexed R1..R4).
    pub visits: [u64; 4],
    /// MBA level increases requested.
    pub level_ups: u64,
    /// MBA level decreases requested.
    pub level_downs: u64,
}

/// The hostCC controller instance at one receiver host.
#[derive(Debug)]
pub struct HostCc {
    cfg: HostCcConfig,
    sampler: SignalSampler,
    regime: Regime,
    /// Level the controller wants (the MBA write may lag 22 µs behind).
    desired_level: u8,
    /// Regime statistics.
    pub stats: RegimeStats,
    last_sample: Option<Sample>,
    /// Smoothed NIC backlog (only used with [`SignalSource::NicBuffer`]).
    nic_ewma: hostcc_sim::Ewma,
    trace: TraceHandle,
}

impl HostCc {
    /// Build a controller for a host with the given MSR read model and IIO
    /// clock frequency.
    pub fn new(cfg: HostCcConfig, read_model: MsrReadModel, f_iio_ghz: f64, rng: Rng) -> Self {
        let sampler = SignalSampler::new(cfg.signal.clone(), read_model, f_iio_ghz, rng);
        let nic_ewma = hostcc_sim::Ewma::new(cfg.signal.is_weight, 0.0);
        HostCc {
            cfg,
            sampler,
            regime: Regime::R4,
            desired_level: 0,
            stats: RegimeStats::default(),
            last_sample: None,
            nic_ewma,
            trace: TraceHandle::disabled(),
        }
    }

    /// Attach a trace handle (regime-transition events).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// The configuration.
    pub fn cfg(&self) -> &HostCcConfig {
        &self.cfg
    }

    /// Change the target bandwidth at runtime (policy layer).
    pub fn set_bt(&mut self, bt: Rate) {
        self.cfg.bt = bt;
    }

    /// Smoothed `I_S`.
    pub fn is(&self) -> f64 {
        self.sampler.is()
    }

    /// Smoothed `B_S`.
    pub fn bs(&self) -> Rate {
        self.sampler.bs()
    }

    /// Estimated host delay (delay-based CC extension, §6).
    pub fn host_delay(&self) -> Option<Nanos> {
        self.sampler.host_delay()
    }

    /// Most recent raw sample.
    pub fn last_sample(&self) -> Option<&Sample> {
        self.last_sample.as_ref()
    }

    /// Current regime.
    pub fn regime(&self) -> Regime {
        self.regime
    }

    /// The MBA level the controller currently wants.
    pub fn desired_level(&self) -> u8 {
        self.desired_level
    }

    /// Total signal samples taken.
    pub fn samples(&self) -> u64 {
        self.sampler.samples
    }

    /// Mutable access to the sampler's MSR read model (chaos: jitter
    /// perturbation on the monitoring path).
    pub fn read_model_mut(&mut self) -> &mut hostcc_host::MsrReadModel {
        self.sampler.read_model_mut()
    }

    /// Whether host congestion is currently detected (`I_S > I_T`, or the
    /// smoothed NIC backlog above its threshold for the NIC-signal
    /// variant).
    pub fn host_congested(&self) -> bool {
        match self.cfg.signal_source {
            SignalSource::IioOccupancy => self.sampler.is() > self.cfg.it,
            SignalSource::NicBuffer => self.nic_ewma.get() > self.cfg.nic_it_bytes,
        }
    }

    /// Whether delivered packets should be CE-marked right now — the echo
    /// of §4.3: mark while the smoothed occupancy exceeds the threshold.
    pub fn should_mark(&self) -> bool {
        self.cfg.echo && self.host_congested()
    }

    /// Run the controller at `now`: sample if due, classify the regime,
    /// and steer the MBA. Returns the fresh sample when one was taken.
    pub fn on_tick(&mut self, now: Nanos, bank: &MsrBank, mba: &mut Mba) -> Option<Sample> {
        self.on_tick_with_nic(now, bank, 0, mba)
    }

    /// [`HostCc::on_tick`] with the receiver NIC backlog supplied, for the
    /// [`SignalSource::NicBuffer`] variant (ignored otherwise).
    pub fn on_tick_with_nic(
        &mut self,
        now: Nanos,
        bank: &MsrBank,
        nic_backlog_bytes: u64,
        mba: &mut Mba,
    ) -> Option<Sample> {
        let sample = self.sampler.maybe_sample(now, bank)?;
        self.last_sample = Some(sample);

        let congested = match self.cfg.signal_source {
            SignalSource::IioOccupancy => sample.is > self.cfg.it,
            SignalSource::NicBuffer => {
                self.nic_ewma.update(nic_backlog_bytes as f64) > self.cfg.nic_it_bytes
            }
        };
        let met = sample.bs.as_bytes_per_ns() >= self.cfg.bt_pcie().as_bytes_per_ns();
        let prev_regime = self.regime;
        self.regime = match (congested, met) {
            (false, true) => Regime::R1,
            (true, true) => Regime::R2,
            (true, false) => Regime::R3,
            (false, false) => Regime::R4,
        };
        if self.regime != prev_regime {
            let regime = match self.regime {
                Regime::R1 => 1,
                Regime::R2 => 2,
                Regime::R3 => 3,
                Regime::R4 => 4,
            };
            self.trace.emit(now, || TraceEvent::RegimeChange { regime });
        }
        self.stats.visits[match self.regime {
            Regime::R1 => 0,
            Regime::R2 => 1,
            Regime::R3 => 2,
            Regime::R4 => 3,
        }] += 1;

        // Level changes are gated on the previous MBA MSR write having
        // taken effect: the kernel module blocks ~22 µs per write (§4.2),
        // so the response moves one level per write — the single-step
        // oscillation visible in Fig 19(b).
        if self.cfg.local_response && !mba.write_in_flight(now) {
            match self.regime {
                Regime::R1 => {
                    // Release backpressure: host resources are plentiful and
                    // the network target is met, so host-local traffic must
                    // not be throttled unnecessarily (§3.2 regime 1).
                    if self.desired_level > 0 {
                        self.desired_level -= 1;
                        self.stats.level_downs += 1;
                    }
                }
                Regime::R3 => {
                    // Host congested and the network is short of its
                    // target: push host-local traffic back (§3.2 regime 3).
                    if self.desired_level + 1 < MBA_LEVELS {
                        self.desired_level += 1;
                        self.stats.level_ups += 1;
                    }
                }
                Regime::R2 | Regime::R4 => {}
            }
            mba.request(now, self.desired_level);
        }

        Some(sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostcc_host::MsrBank;

    fn controller(cfg: HostCcConfig) -> HostCc {
        HostCc::new(
            cfg,
            MsrReadModel::new(Nanos::from_nanos(600), Nanos::from_nanos(250)),
            0.5,
            Rng::new(7),
        )
    }

    fn mba() -> Mba {
        Mba::new(
            [
                Nanos::ZERO,
                Nanos::from_nanos(400),
                Nanos::from_nanos(1000),
                Nanos::from_nanos(2500),
            ],
            Nanos::from_micros(22),
        )
    }

    /// Drive the controller with constant signals for `micros` µs.
    fn drive(hc: &mut HostCc, mba: &mut Mba, occ: f64, bs_bytes_per_ns: f64, micros: u64) {
        let mut bank = MsrBank::new();
        let dt = Nanos::from_nanos(100);
        let mut now = Nanos::ZERO;
        for _ in 0..micros * 10 {
            now += dt;
            bank.integrate_occupancy(occ, dt);
            bank.add_insertions(bs_bytes_per_ns * 100.0);
            hc.on_tick(now, &bank, mba);
        }
    }

    #[test]
    fn regime1_releases_backpressure() {
        let mut hc = controller(HostCcConfig::paper_default());
        let mut m = mba();
        m.force_level(3);
        hc.desired_level = 3;
        // Not congested (I_S = 60 < 70), target met (B_S = 12.875 ≫ 10.3).
        drive(&mut hc, &mut m, 60.0, 12.875, 500);
        assert_eq!(hc.regime(), Regime::R1);
        assert_eq!(hc.desired_level(), 0);
        assert_eq!(m.effective_level(Nanos::from_millis(1)), 0);
        assert!(hc.stats.level_downs >= 3);
        assert!(!hc.should_mark());
    }

    #[test]
    fn regime2_echoes_without_level_change() {
        let mut hc = controller(HostCcConfig::paper_default());
        let mut m = mba();
        // Congested (I_S = 90) but target met (B_S ≈ 103 Gbps).
        drive(&mut hc, &mut m, 90.0, 12.875, 500);
        assert_eq!(hc.regime(), Regime::R2);
        assert_eq!(hc.desired_level(), 0, "no local response in R2");
        assert!(hc.should_mark(), "but congestion is echoed");
    }

    #[test]
    fn regime3_escalates_and_echoes() {
        let mut hc = controller(HostCcConfig::paper_default());
        let mut m = mba();
        // Congested (I_S = 93), target missed (B_S = 5.4 B/ns ≈ 43 Gbps).
        drive(&mut hc, &mut m, 93.0, 5.4, 1000);
        assert_eq!(hc.regime(), Regime::R3);
        assert_eq!(hc.desired_level(), 4, "escalates to max backpressure");
        assert!(hc.should_mark());
        assert!(hc.stats.level_ups >= 4);
    }

    #[test]
    fn regime4_holds() {
        let mut hc = controller(HostCcConfig::paper_default());
        let mut m = mba();
        hc.desired_level = 2;
        // Not congested (I_S = 40), target missed (B_S ≈ 43 Gbps): the
        // conservation decision — neither release nor escalate (§3.2).
        drive(&mut hc, &mut m, 40.0, 5.4, 500);
        assert_eq!(hc.regime(), Regime::R4);
        assert_eq!(hc.desired_level(), 2);
        assert!(!hc.should_mark());
    }

    #[test]
    fn ablation_echo_only_never_touches_mba() {
        let mut cfg = HostCcConfig::paper_default();
        cfg.local_response = false;
        let mut hc = controller(cfg);
        let mut m = mba();
        drive(&mut hc, &mut m, 93.0, 5.4, 1000);
        assert_eq!(m.effective_level(Nanos::from_millis(1)), 0);
        assert_eq!(m.writes(), 0);
        assert!(hc.should_mark());
    }

    #[test]
    fn ablation_local_only_never_marks() {
        let mut cfg = HostCcConfig::paper_default();
        cfg.echo = false;
        let mut hc = controller(cfg);
        let mut m = mba();
        drive(&mut hc, &mut m, 93.0, 5.4, 1000);
        assert!(hc.desired_level() > 0, "local response still active");
        assert!(!hc.should_mark(), "no echo");
    }

    #[test]
    fn level_changes_rate_limited_by_mba_write_latency() {
        let mut hc = controller(HostCcConfig::paper_default());
        let mut m = mba();
        // Severe congestion; the controller wants level 4 but each write
        // takes 22 µs, so after 50 µs the effective level is at most 2.
        drive(&mut hc, &mut m, 93.0, 2.0, 50);
        let eff = m.effective_level(Nanos::from_micros(50));
        assert!(eff <= 2, "effective level after 50 µs = {eff}");
        // Eventually it gets there.
        drive(&mut hc, &mut m, 93.0, 2.0, 500);
        assert_eq!(m.effective_level(Nanos::from_millis(1)), 4);
    }

    #[test]
    fn bt_is_compared_on_the_pcie_side() {
        let cfg = HostCcConfig::paper_default();
        // 80 Gbps target → 82.4 Gbps PCIe-side.
        assert!((cfg.bt_pcie().as_gbps() - 82.4).abs() < 1e-9);
        // B_S of 83 Gbps meets the target; 81 Gbps does not.
        let mut hc = controller(HostCcConfig::paper_default());
        let mut m = mba();
        drive(&mut hc, &mut m, 90.0, 83.0 / 8.0, 500);
        assert_eq!(hc.regime(), Regime::R2);
        let mut hc2 = controller(HostCcConfig::paper_default());
        drive(&mut hc2, &mut m, 90.0, 81.0 / 8.0, 500);
        assert_eq!(hc2.regime(), Regime::R3);
    }

    #[test]
    fn ddio_profile_uses_lower_threshold() {
        let cfg = HostCcConfig::paper_ddio();
        assert_eq!(cfg.it, 50.0);
        let mut hc = controller(cfg);
        let mut m = mba();
        // I_S = 60 is congestion under the DDIO profile…
        drive(&mut hc, &mut m, 60.0, 12.875, 300);
        assert!(hc.should_mark());
        // …but not under the default profile (threshold 70).
        let mut hc2 = controller(HostCcConfig::paper_default());
        drive(&mut hc2, &mut m, 60.0, 12.875, 300);
        assert!(!hc2.should_mark());
    }

    #[test]
    fn regime_transitions_are_traced() {
        use hostcc_trace::{TraceFilter, TraceHandle, TraceKind, Tracer};
        let mut hc = controller(HostCcConfig::paper_default());
        let trace = TraceHandle::new(Tracer::new(64, TraceFilter::all()));
        hc.set_trace(trace.clone());
        let mut m = mba();
        // Starts in R4; congested + target-missed signals move it to R3.
        drive(&mut hc, &mut m, 93.0, 5.4, 200);
        assert_eq!(hc.regime(), Regime::R3);
        let c = trace.counts().unwrap();
        assert!(c.of(TraceKind::RegimeChange) >= 1);
        trace.with(|t| {
            let first = t.records().next().unwrap();
            assert_eq!(
                first.event,
                hostcc_trace::TraceEvent::RegimeChange { regime: 3 }
            );
        });
    }

    #[test]
    fn set_bt_retargets_the_controller() {
        let mut hc = controller(HostCcConfig::paper_default());
        let mut m = mba();
        hc.set_bt(Rate::gbps(40.0));
        // B_S = 43 Gbps meets a 40 Gbps target (41.2 PCIe-side).
        drive(&mut hc, &mut m, 90.0, 43.0 / 8.0, 500);
        assert_eq!(hc.regime(), Regime::R2);
    }
}
