//! Simulation time: a `u64` count of nanoseconds since simulation start.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in simulation time **or** a duration, measured in nanoseconds.
///
/// The paper's phenomena span nine orders of magnitude — 2 ns TSC reads up to
/// the 200 ms Linux minimum RTO — so a single `u64` nanosecond clock covers
/// everything (584 years of headroom) without floating-point drift.
///
/// `Nanos` is deliberately a single type for both instants and durations:
/// the simulation only ever subtracts instants to obtain durations and adds
/// durations to instants, and the arithmetic below is saturating-free and
/// panics on underflow in debug builds, which has caught several modelling
/// bugs in development.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Time zero / the empty duration.
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable time; used as an "infinite" timeout sentinel.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This time expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs > self`.
    #[inline]
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_add(rhs.0).map(Nanos)
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.max(rhs.0))
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.min(rhs.0))
    }

    /// Scale a duration by a float factor (rounds to nearest nanosecond).
    ///
    /// Used for jittered timeouts and load-dependent latencies. Panics in
    /// debug builds if `factor` is negative or non-finite.
    #[inline]
    pub fn scale(self, factor: f64) -> Nanos {
        debug_assert!(factor.is_finite() && factor >= 0.0);
        Nanos((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    #[inline]
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Div for Nanos {
    type Output = u64;
    /// How many whole `rhs` intervals fit in `self`.
    #[inline]
    fn div(self, rhs: Nanos) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem for Nanos {
    type Output = Nanos;
    #[inline]
    fn rem(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 % rhs.0)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Nanos {
    /// Human-oriented rendering with an auto-selected unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "inf")
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_secs(1), Nanos::from_millis(1000));
        assert_eq!(Nanos::from_millis(1), Nanos::from_micros(1000));
        assert_eq!(Nanos::from_micros(1), Nanos::from_nanos(1000));
    }

    #[test]
    fn arithmetic() {
        let a = Nanos::from_micros(3);
        let b = Nanos::from_micros(1);
        assert_eq!(a + b, Nanos::from_micros(4));
        assert_eq!(a - b, Nanos::from_micros(2));
        assert_eq!(a * 2, Nanos::from_micros(6));
        assert_eq!(a / 3, Nanos::from_micros(1));
        assert_eq!(a / b, 3);
        assert_eq!(a % Nanos::from_micros(2), Nanos::from_micros(1));
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = Nanos::from_nanos(5);
        let b = Nanos::from_nanos(9);
        assert_eq!(a.saturating_sub(b), Nanos::ZERO);
        assert_eq!(b.saturating_sub(a), Nanos::from_nanos(4));
    }

    #[test]
    fn scale_rounds() {
        assert_eq!(Nanos::from_nanos(10).scale(1.26), Nanos::from_nanos(13));
        assert_eq!(Nanos::from_nanos(10).scale(0.0), Nanos::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(Nanos::from_nanos(7).to_string(), "7ns");
        assert_eq!(Nanos::from_micros(2).to_string(), "2.000us");
        assert_eq!(Nanos::from_millis(3).to_string(), "3.000ms");
        assert_eq!(Nanos::from_secs(4).to_string(), "4.000s");
        assert_eq!(Nanos::MAX.to_string(), "inf");
    }

    #[test]
    fn float_views() {
        let t = Nanos::from_nanos(1_500_000);
        assert!((t.as_millis_f64() - 1.5).abs() < 1e-12);
        assert!((t.as_micros_f64() - 1500.0).abs() < 1e-9);
        assert!((t.as_secs_f64() - 0.0015).abs() < 1e-12);
    }

    #[test]
    fn sum_of_durations() {
        let total: Nanos = [1u64, 2, 3].iter().map(|&n| Nanos::from_nanos(n)).sum();
        assert_eq!(total, Nanos::from_nanos(6));
    }
}
