//! A small deterministic PRNG (xoshiro256++) for repeatable experiments.
//!
//! We implement the generator inline rather than pulling in `rand`'s default
//! engines so that the bit-stream — and therefore every experiment output —
//! is pinned by this crate alone and cannot drift across `rand` major
//! versions.

/// Deterministic xoshiro256++ generator, seeded via SplitMix64.
///
/// Not cryptographic. Passes BigCrush per its authors (Blackman & Vigna),
/// which is far more than a network simulation needs.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Seed the generator. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derive an independent child stream; used to give each component its
    /// own generator so insertion-order changes in one component do not
    /// perturb another.
    pub fn fork(&mut self, label: u64) -> Rng {
        Rng::new(self.next_u64() ^ label.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (Lemire's method, bias negligible for
    /// the bounds used here).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed float with the given mean (for Poisson
    /// arrival processes and jittered timers).
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        // 1 - f64() is in (0, 1], so ln() is finite.
        -mean * (1.0 - self.f64()).ln()
    }

    /// A value uniformly jittered within `±frac` of `base`.
    #[inline]
    pub fn jitter(&mut self, base: f64, frac: f64) -> f64 {
        base * (1.0 + frac * (2.0 * self.f64() - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = Rng::new(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(5);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = Rng::new(6);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn exp_mean_roughly_right() {
        let mut r = Rng::new(8);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exp(250.0)).sum::<f64>() / n as f64;
        assert!((mean - 250.0).abs() < 5.0, "mean={mean}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::new(9);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(10);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }
}
