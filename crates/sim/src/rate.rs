//! Bandwidth arithmetic.
//!
//! The paper mixes units freely — access links in Gbps, memory bandwidth in
//! GBps, PCIe in both — and unit slips are the classic simulation bug. All
//! internal rate math therefore goes through [`Rate`], which stores
//! **bytes per nanosecond** (equivalently GB/s) and offers explicit
//! constructors/accessors for each unit in the paper.

use core::fmt;
use core::ops::{Add, Div, Mul, Sub};

use crate::Nanos;

/// Fixed-point scale for the exact serialization path: rates are snapped
/// to integer multiples of 2⁻²⁴ bytes/ns (≈ 0.48 bit/µs granularity, far
/// below anything the paper sweeps). Every integer-Gbps rate lands on the
/// grid exactly: `g` Gbps = `g/8` B/ns = `g·2²¹` ticks, with no rounding.
const FIXED_SHIFT: u32 = 24;

/// A data rate, stored as bytes per nanosecond (numerically equal to GB/s).
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Rate(f64);

impl Rate {
    /// The zero rate.
    pub const ZERO: Rate = Rate(0.0);

    /// From gigabits per second (the paper's unit for links and PCIe).
    #[inline]
    pub fn gbps(g: f64) -> Rate {
        Rate(g / 8.0)
    }

    /// From gigabytes per second (the paper's unit for memory bandwidth).
    #[inline]
    pub fn gbytes_per_sec(g: f64) -> Rate {
        Rate(g)
    }

    /// From bytes per nanosecond.
    #[inline]
    pub fn bytes_per_ns(b: f64) -> Rate {
        Rate(b)
    }

    /// As gigabits per second.
    #[inline]
    pub fn as_gbps(self) -> f64 {
        self.0 * 8.0
    }

    /// As gigabytes per second.
    #[inline]
    pub fn as_gbytes_per_sec(self) -> f64 {
        self.0
    }

    /// As bytes per nanosecond.
    #[inline]
    pub fn as_bytes_per_ns(self) -> f64 {
        self.0
    }

    /// Bytes transferred in `dt` at this rate (fractional).
    #[inline]
    pub fn bytes_in(self, dt: Nanos) -> f64 {
        self.0 * dt.as_nanos() as f64
    }

    /// The rate as an exact fixed-point tick count (units of 2⁻²⁴ B/ns),
    /// with pinned round-half-away-from-zero conversion. The conversion is
    /// lossless for every rate whose bytes/ns is a multiple of 2⁻²⁴ —
    /// in particular all integer-Gbps link rates.
    #[inline]
    fn fixed_ticks(self) -> u128 {
        (self.0 * (1u64 << FIXED_SHIFT) as f64).round() as u128
    }

    /// Time to transfer `bytes` at this rate, rounded up to whole ns.
    ///
    /// Computed in exact integer arithmetic over the fixed-point rate:
    /// `ceil(bytes·2²⁴ / ticks)` with a u128 ceiling division, never
    /// through an f64 quotient. An f64 path can land on either side of an
    /// exact integer (e.g. a degraded `100·0.7` Gbps rate), flipping the
    /// ceil by a whole nanosecond; the integer path makes serialization
    /// times a pure function of the snapped rate, so they are reproducible
    /// bit-for-bit across platforms and optimization levels.
    ///
    /// Returns [`Nanos::MAX`] for a zero rate.
    #[inline]
    pub fn time_for_bytes(self, bytes: u64) -> Nanos {
        if self.0 <= 0.0 {
            return Nanos::MAX;
        }
        let ticks = self.fixed_ticks();
        if ticks == 0 {
            return Nanos::MAX;
        }
        let num = (bytes as u128) << FIXED_SHIFT;
        Nanos::from_nanos(num.div_ceil(ticks) as u64)
    }

    /// True when the rate is exactly zero (or negative, which we clamp).
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 <= 0.0
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(self, other: Rate) -> Rate {
        Rate(self.0.min(other.0))
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: Rate) -> Rate {
        Rate(self.0.max(other.0))
    }

    /// Clamp negative to zero (useful after subtraction).
    #[inline]
    pub fn clamp_non_negative(self) -> Rate {
        Rate(self.0.max(0.0))
    }
}

impl Add for Rate {
    type Output = Rate;
    #[inline]
    fn add(self, r: Rate) -> Rate {
        Rate(self.0 + r.0)
    }
}

impl Sub for Rate {
    type Output = Rate;
    #[inline]
    fn sub(self, r: Rate) -> Rate {
        Rate(self.0 - r.0)
    }
}

impl Mul<f64> for Rate {
    type Output = Rate;
    #[inline]
    fn mul(self, f: f64) -> Rate {
        Rate(self.0 * f)
    }
}

impl Div<f64> for Rate {
    type Output = Rate;
    #[inline]
    fn div(self, f: f64) -> Rate {
        Rate(self.0 / f)
    }
}

impl Div for Rate {
    type Output = f64;
    /// Ratio of two rates (e.g. utilization = demand / capacity).
    #[inline]
    fn div(self, r: Rate) -> f64 {
        self.0 / r.0
    }
}

impl fmt::Debug for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}Gbps", self.as_gbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        // 100 Gbps = 12.5 GB/s.
        let r = Rate::gbps(100.0);
        assert!((r.as_gbytes_per_sec() - 12.5).abs() < 1e-12);
        assert!((r.as_bytes_per_ns() - 12.5).abs() < 1e-12);
        assert!((Rate::gbytes_per_sec(46.9).as_gbps() - 375.2).abs() < 1e-9);
    }

    #[test]
    fn bytes_in_interval() {
        let r = Rate::gbps(100.0);
        // 12.5 B/ns for 4096 ns.
        assert!((r.bytes_in(Nanos::from_nanos(4096)) - 51_200.0).abs() < 1e-6);
    }

    #[test]
    fn serialization_time() {
        // A 4096 B packet at 100 Gbps serializes in ceil(4096/12.5) = 328 ns.
        let r = Rate::gbps(100.0);
        assert_eq!(r.time_for_bytes(4096), Nanos::from_nanos(328));
    }

    #[test]
    fn zero_rate_never_finishes() {
        assert_eq!(Rate::ZERO.time_for_bytes(1), Nanos::MAX);
        assert!(Rate::ZERO.is_zero());
    }

    #[test]
    fn degraded_rate_serialization_is_exact() {
        // 100.0 * 0.58 is 57.99999999999999 in f64, so the old f64
        // quotient path computed 58 B / 7.249999999999999 B/ns =
        // 8.000000000000002 ns and ceiled it to 9 ns. Snapping to the
        // fixed-point grid recovers the exact 58 Gbps rate: 8 ns.
        let r = Rate::gbps(100.0 * 0.58);
        assert_eq!(r.time_for_bytes(58), Nanos::from_nanos(8));
        // And the flagship pinned value survives the snap untouched.
        assert_eq!(
            Rate::gbps(100.0).time_for_bytes(4096),
            Nanos::from_nanos(328)
        );
    }

    #[test]
    fn arithmetic() {
        let a = Rate::gbps(40.0);
        let b = Rate::gbps(10.0);
        assert!(((a + b).as_gbps() - 50.0).abs() < 1e-9);
        assert!(((a - b).as_gbps() - 30.0).abs() < 1e-9);
        assert!(((a * 2.0).as_gbps() - 80.0).abs() < 1e-9);
        assert!(((a / 4.0).as_gbps() - 10.0).abs() < 1e-9);
        assert!((a / b - 4.0).abs() < 1e-12);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn clamp_non_negative() {
        let neg = Rate::gbps(1.0) - Rate::gbps(5.0);
        assert!(neg.as_gbps() < 0.0);
        assert_eq!(neg.clamp_non_negative(), Rate::ZERO);
    }
}
