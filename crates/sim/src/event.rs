//! The pending-event set: a hierarchical timing wheel with stable FIFO
//! tie-breaking and an overflow heap for beyond-horizon events.
//!
//! The queue used to be a plain `BinaryHeap`; at millions of events per
//! run the `O(log n)` sift on every push/pop — each moving a full payload
//! — dominated engine self-time. The wheel replaces that with `O(1)`
//! placement and amortised-`O(1)` extraction:
//!
//! * **Levels.** [`LEVELS`] wheels of [`SLOTS`] slots each; level `k`
//!   buckets events by bits `[8k, 8k+8)` of their absolute firing time.
//!   An event lives at the *highest* level where its time differs from
//!   the wheel cursor, so near events sit in level 0 (one slot per
//!   nanosecond) and far events sit in coarse slots that are cascaded
//!   down as the cursor approaches them.
//! * **Cursor.** A lower bound on every pending firing time (`cursor ≤
//!   now ≤` every pending `at`). Popping advances it; cascading jumps it
//!   to the start of the coarse slot being re-distributed. The cursor
//!   only catches up to `now` while the queue is empty, which keeps
//!   every placement valid without relocation.
//! * **Ties.** Every entry carries the same monotone `seq` the heap used.
//!   All entries in an occupied level-0 slot share one timestamp, and
//!   extraction picks the minimum `seq`, so same-instant events still
//!   fire in scheduling order — pop order is the total order `(at, seq)`,
//!   bit-identical to the old heap.
//! * **Overflow.** Events beyond the wheel horizon (`2^48` ns past the
//!   cursor, ~78 simulated hours) go to a `BinaryHeap<ScheduledEvent>`
//!   and are batch-migrated into the wheel when the wheel drains.
//!
//! Occupancy bitmaps (four words per level) make "next occupied slot"
//! a couple of `trailing_zeros` instructions, so sparse schedules do not
//! pay a 256-slot linear scan.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Nanos;

/// An event scheduled for execution at [`ScheduledEvent::at`].
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Firing time.
    pub at: Nanos,
    /// Monotone sequence number; breaks ties so that two events scheduled
    /// for the same instant fire in scheduling order (determinism).
    pub seq: u64,
    /// The user payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the *earliest* event.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Bits of firing time consumed per wheel level.
const SLOT_BITS: u32 = 8;
/// Slots per level (`2^SLOT_BITS`).
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; together they cover `SLOT_BITS * LEVELS` bits of time.
const LEVELS: usize = 6;
/// Total bits of firing time the wheel resolves; times differing from
/// the cursor above this go to the overflow heap.
const WHEEL_BITS: u32 = SLOT_BITS * LEVELS as u32;
/// `u64` words per occupancy bitmap.
const WORDS: usize = SLOTS / 64;

/// The slot index of `t` at `level` (bits `[8*level, 8*level+8)`).
#[inline]
fn slot_of(t: u64, level: usize) -> usize {
    ((t >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
}

/// A discrete-event queue over a user-defined payload type `E`.
///
/// The queue tracks the simulation clock: [`EventQueue::pop`] advances
/// `now()` to the firing time of the returned event. Scheduling an event in
/// the past is a logic error and panics — silent time-travel is how
/// simulators produce plausible-looking garbage.
///
/// ```
/// use hostcc_sim::{EventQueue, Nanos};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_in(Nanos::from_micros(5), "later");
/// q.schedule_in(Nanos::from_micros(1), "sooner");
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t, ev), (Nanos::from_micros(1), "sooner"));
/// assert_eq!(q.now(), Nanos::from_micros(1));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// `LEVELS * SLOTS` buckets, flattened; `slots[level * SLOTS + s]`.
    /// Every entry in an occupied level-0 slot shares one firing time.
    slots: Vec<Vec<ScheduledEvent<E>>>,
    /// Per-level occupancy bitmaps over the `SLOTS` buckets.
    occ: [[u64; WORDS]; LEVELS],
    /// Events beyond the wheel horizon, earliest first.
    overflow: BinaryHeap<ScheduledEvent<E>>,
    /// Lower bound on every pending firing time (`cursor ≤ now`).
    cursor: u64,
    /// Entries currently in the wheel (excluding `overflow`).
    wheel_len: usize,
    now: Nanos,
    seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [[0; WORDS]; LEVELS],
            overflow: BinaryHeap::new(),
            cursor: 0,
            wheel_len: 0,
            now: Nanos::ZERO,
            seq: 0,
            popped: 0,
        }
    }

    /// Current simulation time (the firing time of the last popped event).
    #[inline]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of events currently pending.
    #[inline]
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever popped; useful for progress accounting
    /// and for the engine microbenches.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Total number of events ever popped — the counter the sim-rate
    /// profiler snapshots. Alias of [`EventQueue::events_processed`].
    ///
    /// ```
    /// use hostcc_sim::{EventQueue, Nanos};
    ///
    /// let mut q = EventQueue::new();
    /// q.schedule(Nanos::from_nanos(1), "a");
    /// q.schedule(Nanos::from_nanos(2), "b");
    /// assert_eq!(q.popped(), 0);
    /// q.pop();
    /// assert_eq!(q.popped(), 1);
    /// ```
    #[inline]
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Whether every event ever scheduled has also been popped — i.e. the
    /// simulation ran to completion rather than stopping with work pending.
    ///
    /// ```
    /// use hostcc_sim::{EventQueue, Nanos};
    ///
    /// let mut q = EventQueue::new();
    /// q.schedule(Nanos::from_nanos(5), ());
    /// assert!(!q.drained());
    /// q.pop();
    /// assert!(q.drained());
    /// ```
    #[inline]
    pub fn drained(&self) -> bool {
        self.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is earlier than the current clock.
    pub fn schedule(&mut self, at: Nanos, event: E) {
        assert!(
            at >= self.now,
            "scheduled event in the past: at={at} now={}",
            self.now
        );
        // An idle queue lets the cursor catch up to the clock for free
        // (nothing to relocate), keeping future placements fine-grained.
        if self.wheel_len == 0 && self.overflow.is_empty() {
            self.cursor = self.now.as_nanos();
        }
        let seq = self.seq;
        self.seq += 1;
        self.place(ScheduledEvent { at, seq, event });
    }

    /// Schedule `event` `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: Nanos, event: E) {
        let at = self.now.checked_add(delay).unwrap_or(Nanos::MAX);
        self.schedule(at, event);
    }

    /// Firing time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Nanos> {
        if self.wheel_len > 0 {
            // Level 0 first: the slot index *is* the low byte of the
            // firing time, and every entry in the slot shares it.
            if let Some(s) = self.next_occupied(0, slot_of(self.cursor, 0)) {
                let t = (self.cursor & !(SLOTS as u64 - 1)) | s as u64;
                return Some(Nanos::from_nanos(t));
            }
            // Higher levels hold ranges; the earliest occupied slot of
            // the lowest occupied level bounds everything above it, but
            // the slot itself must be scanned for its minimum.
            for level in 1..LEVELS {
                if let Some(s) = self.next_occupied(level, slot_of(self.cursor, level) + 1) {
                    let batch = &self.slots[level * SLOTS + s];
                    return batch.iter().map(|e| e.at).min();
                }
            }
            debug_assert!(false, "wheel_len > 0 but no occupied slot");
        }
        self.overflow.peek().map(|s| s.at)
    }

    /// Pop the earliest event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        loop {
            if self.wheel_len > 0 {
                if let Some(s) = self.next_occupied(0, slot_of(self.cursor, 0)) {
                    return Some(self.take_from_level0(s));
                }
                self.cascade_once();
                continue;
            }
            // Wheel empty: migrate the overflow batch around its minimum
            // into the wheel and resume.
            let t_min = self.overflow.peek()?.at.as_nanos();
            self.cursor = t_min;
            while let Some(top) = self.overflow.peek() {
                if (top.at.as_nanos() ^ self.cursor) >> WHEEL_BITS != 0 {
                    break;
                }
                let ev = self.overflow.pop().expect("peeked entry exists");
                self.place(ev);
            }
        }
    }

    /// Pop the earliest event only if it fires at or before `deadline`.
    ///
    /// This is the primitive the experiment drivers use to interleave the
    /// packet-level event stream with the fixed-tick host integration.
    pub fn pop_before(&mut self, deadline: Nanos) -> Option<(Nanos, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Advance the clock to `at` without firing anything.
    ///
    /// # Panics
    /// If `at` is earlier than the current clock, or if an event pending
    /// before `at` would be skipped.
    pub fn advance_to(&mut self, at: Nanos) {
        assert!(at >= self.now, "advance_to moved time backwards");
        if let Some(t) = self.peek_time() {
            assert!(
                t >= at,
                "advance_to({at}) would skip an event pending at {t}"
            );
        } else {
            // Idle queue: the cursor may follow the clock directly.
            self.cursor = at.as_nanos();
        }
        self.now = at;
    }

    /// Insert `ev` at the highest level where its time differs from the
    /// cursor, or into the overflow heap when beyond the wheel horizon.
    fn place(&mut self, ev: ScheduledEvent<E>) {
        let t = ev.at.as_nanos();
        debug_assert!(t >= self.cursor, "placement below the wheel cursor");
        let diff = t ^ self.cursor;
        if diff >> WHEEL_BITS != 0 {
            self.overflow.push(ev);
            return;
        }
        let level = if diff == 0 {
            0
        } else {
            (63 - diff.leading_zeros()) as usize / SLOT_BITS as usize
        };
        let s = slot_of(t, level);
        self.slots[level * SLOTS + s].push(ev);
        self.occ[level][s / 64] |= 1u64 << (s % 64);
        self.wheel_len += 1;
    }

    /// Extract the minimum-`seq` entry from level-0 slot `s`, advancing
    /// the cursor and clock to its (shared) firing time.
    fn take_from_level0(&mut self, s: usize) -> (Nanos, E) {
        let t = (self.cursor & !(SLOTS as u64 - 1)) | s as u64;
        let batch = &mut self.slots[s];
        let mut min = 0;
        for i in 1..batch.len() {
            if batch[i].seq < batch[min].seq {
                min = i;
            }
        }
        let ev = batch.swap_remove(min);
        if batch.is_empty() {
            self.occ[0][s / 64] &= !(1u64 << (s % 64));
        }
        self.wheel_len -= 1;
        debug_assert_eq!(ev.at.as_nanos(), t, "level-0 slot holds a foreign time");
        debug_assert!(ev.at >= self.now, "wheel produced an out-of-order event");
        self.cursor = t;
        self.now = ev.at;
        self.popped += 1;
        (ev.at, ev.event)
    }

    /// Jump the cursor to the earliest occupied coarse slot and re-place
    /// its entries one level (or more) down. Called when the current
    /// level-0 window is exhausted but the wheel still holds entries.
    fn cascade_once(&mut self) {
        for level in 1..LEVELS {
            // Entries at this level always sit strictly above the
            // cursor's own slot (equal slots live at lower levels).
            let Some(s) = self.next_occupied(level, slot_of(self.cursor, level) + 1) else {
                continue;
            };
            let shift = SLOT_BITS * (level as u32 + 1);
            let upper = if shift >= 64 {
                0
            } else {
                (self.cursor >> shift) << shift
            };
            self.cursor = upper | ((s as u64) << (SLOT_BITS * level as u32));
            let batch = std::mem::take(&mut self.slots[level * SLOTS + s]);
            self.occ[level][s / 64] &= !(1u64 << (s % 64));
            self.wheel_len -= batch.len();
            for ev in batch {
                self.place(ev);
            }
            return;
        }
        debug_assert!(false, "cascade_once on a wheel with no coarse entries");
    }

    /// The first occupied slot of `level` at index `from` or later.
    #[inline]
    fn next_occupied(&self, level: usize, from: usize) -> Option<usize> {
        if from >= SLOTS {
            return None;
        }
        let mut w = from / 64;
        let mut word = self.occ[level][w] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= WORDS {
                return None;
            }
            word = self.occ[level][w];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(30), "c");
        q.schedule(Nanos::from_nanos(10), "a");
        q.schedule(Nanos::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = Nanos::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(42), ());
        assert_eq!(q.now(), Nanos::ZERO);
        q.pop();
        assert_eq!(q.now(), Nanos::from_nanos(42));
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(10), ());
        q.pop();
        q.schedule(Nanos::from_nanos(5), ());
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(10), "early");
        q.schedule(Nanos::from_nanos(100), "late");
        assert_eq!(
            q.pop_before(Nanos::from_nanos(50)).map(|(_, e)| e),
            Some("early")
        );
        assert_eq!(q.pop_before(Nanos::from_nanos(50)), None);
        // The late event is still there.
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(10), 0u32);
        q.pop();
        q.schedule_in(Nanos::from_nanos(5), 1u32);
        assert_eq!(q.peek_time(), Some(Nanos::from_nanos(15)));
    }

    #[test]
    fn advance_to_moves_idle_clock() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(Nanos::from_micros(7));
        assert_eq!(q.now(), Nanos::from_micros(7));
    }

    #[test]
    #[should_panic(expected = "would skip an event")]
    fn advance_to_cannot_skip_events() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(10), ());
        q.advance_to(Nanos::from_nanos(20));
    }

    #[test]
    fn events_processed_counts() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule(Nanos::from_nanos(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.events_processed(), 10);
    }

    #[test]
    fn schedule_in_saturates_at_infinity() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(Nanos::from_nanos(1), ());
        q.pop();
        q.schedule_in(Nanos::MAX, ());
        assert_eq!(q.peek_time(), Some(Nanos::MAX));
    }

    #[test]
    fn cascades_across_levels() {
        // Spread events over several wheel levels: adjacent nanoseconds,
        // same level-0 window, the next 256-window, a level-2 distance
        // and a level-5 distance.
        let mut q = EventQueue::new();
        let times: [u64; 7] = [
            3,
            4,
            200,
            0x1234,
            0xabcd_ef01,
            0xff00_0000_0000 - 1,
            0xff00_0000_0000,
        ];
        // Schedule in reverse so placement order never matches pop order.
        for (i, t) in times.iter().rev().enumerate() {
            q.schedule(Nanos::from_nanos(*t), i);
        }
        let mut popped = Vec::new();
        while let Some((at, _)) = q.pop() {
            popped.push(at.as_nanos());
        }
        assert_eq!(popped, times);
        assert!(q.drained());
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut q = EventQueue::new();
        // Beyond the 2^48 ns wheel horizon from time zero.
        let far = 1u64 << 55;
        q.schedule(Nanos::from_nanos(far + 7), "far+7");
        q.schedule(Nanos::from_nanos(far), "far");
        q.schedule(Nanos::from_nanos(5), "near");
        assert_eq!(q.peek_time(), Some(Nanos::from_nanos(5)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("near"));
        // The overflow batch migrates in around its minimum.
        assert_eq!(q.pop(), Some((Nanos::from_nanos(far), "far")));
        assert_eq!(q.pop(), Some((Nanos::from_nanos(far + 7), "far+7")));
        assert!(q.drained());
    }

    #[test]
    fn overflow_ties_still_fifo() {
        let mut q = EventQueue::new();
        let far = Nanos::from_nanos(1u64 << 50);
        for i in 0..10 {
            q.schedule(far, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop_keep_order() {
        // Re-scheduling relative to each popped time exercises cursor
        // advancement mid-window and across windows.
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(100), 0u64);
        let mut fired = Vec::new();
        while let Some((t, id)) = q.pop() {
            fired.push((t.as_nanos(), id));
            if id < 6 {
                // One nearby and one next-window follow-up each round.
                q.schedule(t.checked_add(Nanos::from_nanos(3)).unwrap(), id + 1);
                q.schedule(t.checked_add(Nanos::from_nanos(300)).unwrap(), id + 100);
            }
        }
        assert_eq!(fired.len(), 13);
        let times: Vec<u64> = fired.iter().map(|(t, _)| *t).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "pop order must be time order");
        assert_eq!(q.events_processed(), 13);
    }

    #[test]
    fn len_counts_wheel_and_overflow_together() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(1), ());
        q.schedule(Nanos::from_nanos(1u64 << 60), ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.pop();
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
