//! The pending-event set: a time-ordered queue with stable FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Nanos;

/// An event scheduled for execution at [`ScheduledEvent::at`].
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Firing time.
    pub at: Nanos,
    /// Monotone sequence number; breaks ties so that two events scheduled
    /// for the same instant fire in scheduling order (determinism).
    pub seq: u64,
    /// The user payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the *earliest* event.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue over a user-defined payload type `E`.
///
/// The queue tracks the simulation clock: [`EventQueue::pop`] advances
/// `now()` to the firing time of the returned event. Scheduling an event in
/// the past is a logic error and panics — silent time-travel is how
/// simulators produce plausible-looking garbage.
///
/// ```
/// use hostcc_sim::{EventQueue, Nanos};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_in(Nanos::from_micros(5), "later");
/// q.schedule_in(Nanos::from_micros(1), "sooner");
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t, ev), (Nanos::from_micros(1), "sooner"));
/// assert_eq!(q.now(), Nanos::from_micros(1));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    now: Nanos,
    seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: Nanos::ZERO,
            seq: 0,
            popped: 0,
        }
    }

    /// Current simulation time (the firing time of the last popped event).
    #[inline]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of events currently pending.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever popped; useful for progress accounting
    /// and for the engine microbenches.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Total number of events ever popped — the counter the sim-rate
    /// profiler snapshots. Alias of [`EventQueue::events_processed`].
    ///
    /// ```
    /// use hostcc_sim::{EventQueue, Nanos};
    ///
    /// let mut q = EventQueue::new();
    /// q.schedule(Nanos::from_nanos(1), "a");
    /// q.schedule(Nanos::from_nanos(2), "b");
    /// assert_eq!(q.popped(), 0);
    /// q.pop();
    /// assert_eq!(q.popped(), 1);
    /// ```
    #[inline]
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Whether every event ever scheduled has also been popped — i.e. the
    /// simulation ran to completion rather than stopping with work pending.
    ///
    /// ```
    /// use hostcc_sim::{EventQueue, Nanos};
    ///
    /// let mut q = EventQueue::new();
    /// q.schedule(Nanos::from_nanos(5), ());
    /// assert!(!q.drained());
    /// q.pop();
    /// assert!(q.drained());
    /// ```
    #[inline]
    pub fn drained(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is earlier than the current clock.
    pub fn schedule(&mut self, at: Nanos, event: E) {
        assert!(
            at >= self.now,
            "scheduled event in the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// Schedule `event` `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: Nanos, event: E) {
        let at = self.now.checked_add(delay).unwrap_or(Nanos::MAX);
        self.schedule(at, event);
    }

    /// Firing time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pop the earliest event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "heap produced an out-of-order event");
        self.now = s.at;
        self.popped += 1;
        Some((s.at, s.event))
    }

    /// Pop the earliest event only if it fires at or before `deadline`.
    ///
    /// This is the primitive the experiment drivers use to interleave the
    /// packet-level event stream with the fixed-tick host integration.
    pub fn pop_before(&mut self, deadline: Nanos) -> Option<(Nanos, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Advance the clock to `at` without firing anything.
    ///
    /// # Panics
    /// If `at` is earlier than the current clock, or if an event pending
    /// before `at` would be skipped.
    pub fn advance_to(&mut self, at: Nanos) {
        assert!(at >= self.now, "advance_to moved time backwards");
        if let Some(t) = self.peek_time() {
            assert!(
                t >= at,
                "advance_to({at}) would skip an event pending at {t}"
            );
        }
        self.now = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(30), "c");
        q.schedule(Nanos::from_nanos(10), "a");
        q.schedule(Nanos::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = Nanos::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(42), ());
        assert_eq!(q.now(), Nanos::ZERO);
        q.pop();
        assert_eq!(q.now(), Nanos::from_nanos(42));
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(10), ());
        q.pop();
        q.schedule(Nanos::from_nanos(5), ());
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(10), "early");
        q.schedule(Nanos::from_nanos(100), "late");
        assert_eq!(
            q.pop_before(Nanos::from_nanos(50)).map(|(_, e)| e),
            Some("early")
        );
        assert_eq!(q.pop_before(Nanos::from_nanos(50)), None);
        // The late event is still there.
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(10), 0u32);
        q.pop();
        q.schedule_in(Nanos::from_nanos(5), 1u32);
        assert_eq!(q.peek_time(), Some(Nanos::from_nanos(15)));
    }

    #[test]
    fn advance_to_moves_idle_clock() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(Nanos::from_micros(7));
        assert_eq!(q.now(), Nanos::from_micros(7));
    }

    #[test]
    #[should_panic(expected = "would skip an event")]
    fn advance_to_cannot_skip_events() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(10), ());
        q.advance_to(Nanos::from_nanos(20));
    }

    #[test]
    fn events_processed_counts() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule(Nanos::from_nanos(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.events_processed(), 10);
    }

    #[test]
    fn schedule_in_saturates_at_infinity() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(Nanos::from_nanos(1), ());
        q.pop();
        q.schedule_in(Nanos::MAX, ());
        assert_eq!(q.peek_time(), Some(Nanos::MAX));
    }
}
