//! Deterministic discrete-event simulation engine for the hostCC reproduction.
//!
//! This crate provides the generic building blocks shared by every other
//! crate in the workspace:
//!
//! * [`Nanos`] — the simulation clock type (nanosecond resolution, `u64`).
//! * [`EventQueue`] — a stable (FIFO-on-tie) pending-event set generic over a
//!   user-defined event payload.
//! * [`Rng`] — a small, fast, seedable xoshiro256++ generator so that every
//!   experiment is exactly repeatable from its seed.
//! * [`Ewma`] — exponentially-weighted moving averages, used both by the
//!   simulated DCTCP (`α` with `g = 1/16`) and by hostCC itself
//!   (`I_S` with weight 1/8, `B_S` with weight 1/256, paper §4.1).
//! * [`Rate`] — bandwidth arithmetic in bytes/ns with Gbps/GBps conversions.
//!
//! The engine is single-threaded on purpose: the hostCC experiments need a
//! single logical clock across the host substrate, the fabric and the
//! transport, and determinism is worth far more to a reproduction than
//! parallel speed-up.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod ewma;
mod rate;
mod rng;
mod time;

pub use event::{EventQueue, ScheduledEvent};
pub use ewma::Ewma;
pub use rate::Rate;
pub use rng::Rng;
pub use time::Nanos;
