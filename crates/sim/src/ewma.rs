//! Exponentially-weighted moving average.

/// An EWMA with weight `w`: `v ← (1 − w)·v + w·x`.
///
/// hostCC smooths both of its congestion signals this way (paper §4.1):
/// `I_S` with `w = 1/8` (last ~8 samples dominant) and `B_S` with
/// `w = 1/256`. DCTCP's `α` update is the same recurrence with `g = 1/16`.
///
/// Until the first sample arrives, [`Ewma::get`] returns the configured
/// initial value; the first observation snaps the average to the sample so
/// that a cold start does not drag the signal toward an arbitrary initial
/// constant for hundreds of samples.
#[derive(Debug, Clone)]
pub struct Ewma {
    weight: f64,
    value: f64,
    primed: bool,
}

impl Ewma {
    /// Create an EWMA with the given weight in `(0, 1]` and initial value.
    ///
    /// # Panics
    /// If `weight` is outside `(0, 1]` or not finite.
    pub fn new(weight: f64, initial: f64) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0 && weight <= 1.0,
            "EWMA weight must be in (0, 1], got {weight}"
        );
        Ewma {
            weight,
            value: initial,
            primed: false,
        }
    }

    /// The paper's `I_S` smoothing weight, 1/8.
    pub fn for_iio_occupancy() -> Self {
        Ewma::new(1.0 / 8.0, 0.0)
    }

    /// The paper's `B_S` smoothing weight, 1/256.
    pub fn for_pcie_bandwidth() -> Self {
        Ewma::new(1.0 / 256.0, 0.0)
    }

    /// Feed one observation and return the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        if self.primed {
            self.value += self.weight * (x - self.value);
        } else {
            self.value = x;
            self.primed = true;
        }
        self.value
    }

    /// Current smoothed value.
    #[inline]
    pub fn get(&self) -> f64 {
        self.value
    }

    /// Whether at least one sample has been observed.
    #[inline]
    pub fn is_primed(&self) -> bool {
        self.primed
    }

    /// The configured weight.
    #[inline]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Discard history, returning to the unprimed state with value `initial`.
    pub fn reset(&mut self, initial: f64) {
        self.value = initial;
        self.primed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_snaps() {
        let mut e = Ewma::new(0.125, 0.0);
        assert_eq!(e.update(80.0), 80.0);
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.125, 0.0);
        for _ in 0..200 {
            e.update(42.0);
        }
        assert!((e.get() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn recurrence_matches_formula() {
        let mut e = Ewma::new(0.25, 0.0);
        e.update(100.0); // snaps
        let v = e.update(0.0);
        assert!((v - 75.0).abs() < 1e-12);
        let v = e.update(0.0);
        assert!((v - 56.25).abs() < 1e-12);
    }

    #[test]
    fn small_weight_reacts_slowly() {
        let mut fast = Ewma::new(1.0 / 8.0, 0.0);
        let mut slow = Ewma::new(1.0 / 256.0, 0.0);
        fast.update(0.0);
        slow.update(0.0);
        for _ in 0..8 {
            fast.update(100.0);
            slow.update(100.0);
        }
        assert!(fast.get() > 60.0);
        assert!(slow.get() < 5.0);
    }

    #[test]
    fn reset_unprimes() {
        let mut e = Ewma::new(0.5, 1.0);
        e.update(9.0);
        e.reset(2.0);
        assert!(!e.is_primed());
        assert_eq!(e.get(), 2.0);
        assert_eq!(e.update(7.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "EWMA weight")]
    fn zero_weight_rejected() {
        Ewma::new(0.0, 0.0);
    }

    #[test]
    fn paper_constructors() {
        assert!((Ewma::for_iio_occupancy().weight() - 0.125).abs() < 1e-12);
        assert!((Ewma::for_pcie_bandwidth().weight() - 1.0 / 256.0).abs() < 1e-12);
    }
}
