//! Property-based tests for the simulation engine.

use hostcc_sim::{EventQueue, Ewma, Nanos, Rate, Rng};
use proptest::prelude::*;

proptest! {
    /// Popping always yields events in non-decreasing time order, regardless
    /// of the insertion order.
    #[test]
    fn event_queue_is_time_ordered(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Nanos::from_nanos(t), i);
        }
        let mut last = Nanos::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
        prop_assert_eq!(q.events_processed(), times.len() as u64);
    }

    /// Events scheduled at identical times pop in scheduling (FIFO) order.
    #[test]
    fn event_queue_ties_are_fifo(n in 1usize..100, t in 0u64..1000) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(Nanos::from_nanos(t), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// Oracle equivalence: the timing wheel must pop exactly what the old
    /// `BinaryHeap<Reverse<(time, seq)>>` queue popped — a stable sort by
    /// (time, scheduling order). Times are drawn from a small range so the
    /// run is dense with same-timestamp ties.
    #[test]
    fn event_queue_matches_heap_oracle_dense(
        times in prop::collection::vec(0u64..3_000, 1..300),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Nanos::from_nanos(t), i);
        }
        let mut oracle: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        oracle.sort_by_key(|&(t, _)| t); // stable: ties stay in schedule order
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop()).map(|(t, e)| (t.as_nanos(), e)).collect();
        prop_assert_eq!(got, oracle);
    }

    /// Oracle equivalence under interleaved schedule/pop, with timestamps
    /// spanning every wheel level *and* the far-future overflow heap
    /// (deltas past 2^48 ns exceed the wheel horizon). Scheduling relative
    /// to the advancing `now` also exercises cursor cascades mid-stream.
    #[test]
    fn event_queue_matches_heap_oracle_interleaved(
        ops in prop::collection::vec(
            prop_oneof![
                // Mostly schedules: dense near-term, mid-level, and
                // beyond-horizon deltas.
                (prop_oneof![0u64..2_000, 1u64 << 20..1u64 << 44, 1u64 << 48..1u64 << 54])
                    .prop_map(Some),
                Just(None), // pop
            ],
            1..250,
        ),
    ) {
        let mut q = EventQueue::new();
        let mut model: Vec<(u64, usize)> = Vec::new(); // (time, seq); seq == id
        let mut seq = 0usize;
        for op in ops {
            match op {
                Some(delta) => {
                    let at = q.now().as_nanos() + delta;
                    q.schedule(Nanos::from_nanos(at), seq);
                    model.push((at, seq));
                    seq += 1;
                }
                None => {
                    let got = q.pop();
                    let want = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(t, s))| (t, s))
                        .map(|(i, _)| i);
                    match (got, want) {
                        (Some((t, e)), Some(i)) => {
                            let (mt, ms) = model.remove(i);
                            prop_assert_eq!((t.as_nanos(), e), (mt, ms));
                        }
                        (None, None) => {}
                        (g, w) => prop_assert!(false, "queue {g:?} vs oracle index {w:?}"),
                    }
                }
            }
        }
        // Drain what is left; the tail must match the oracle too.
        model.sort(); // (time, seq) — seq breaks ties exactly like FIFO
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop()).map(|(t, e)| (t.as_nanos(), e)).collect();
        prop_assert_eq!(got, model);
        prop_assert!(q.drained());
    }

    /// Far-future stress: every event lands beyond the wheel horizon, so
    /// the overflow heap carries them all and must refill the wheel in
    /// oracle order as time advances.
    #[test]
    fn event_queue_overflow_only_schedules(
        times in prop::collection::vec((1u64 << 48)..(1u64 << 60), 1..100),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Nanos::from_nanos(t), i);
        }
        let mut oracle: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        oracle.sort_by_key(|&(t, _)| t);
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop()).map(|(t, e)| (t.as_nanos(), e)).collect();
        prop_assert_eq!(got, oracle);
        prop_assert_eq!(q.popped(), times.len() as u64);
    }

    /// An EWMA of inputs bounded in [lo, hi] stays within [lo, hi] once primed.
    #[test]
    fn ewma_stays_in_input_hull(
        weight in 0.001f64..1.0,
        xs in prop::collection::vec(-1e6f64..1e6, 1..200),
    ) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut e = Ewma::new(weight, 0.0);
        for &x in &xs {
            let v = e.update(x);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "v={v} outside [{lo}, {hi}]");
        }
    }

    /// EWMA is a contraction: |v' − x| ≤ (1 − w)|v − x|.
    #[test]
    fn ewma_contracts_toward_input(weight in 0.01f64..1.0, v0 in -1e3f64..1e3, x in -1e3f64..1e3) {
        let mut e = Ewma::new(weight, 0.0);
        e.update(v0);
        let before = (e.get() - x).abs();
        e.update(x);
        let after = (e.get() - x).abs();
        prop_assert!(after <= before * (1.0 - weight) + 1e-9);
    }

    /// Rate round-trips between units.
    #[test]
    fn rate_unit_round_trip(g in 0.0f64..1000.0) {
        let r = Rate::gbps(g);
        prop_assert!((r.as_gbps() - g).abs() < 1e-9);
        let r2 = Rate::gbytes_per_sec(r.as_gbytes_per_sec());
        prop_assert!((r2.as_gbps() - g).abs() < 1e-9);
    }

    /// time_for_bytes is the inverse of bytes_in, up to 1 ns rounding plus
    /// the 2⁻²⁴ B/ns fixed-point snap of the serialization path.
    #[test]
    fn rate_inverse(g in 0.1f64..1000.0, bytes in 1u64..10_000_000) {
        let r = Rate::gbps(g);
        let t = r.time_for_bytes(bytes);
        let sent = r.bytes_in(t);
        // Rounding up a partial nanosecond never sends more than one extra
        // ns worth of bytes, and never less than requested — up to the snap
        // error (half a tick per nanosecond of transfer) for rates that are
        // not exactly on the fixed-point grid.
        let snap = t.as_nanos() as f64 * 0.5 / (1u64 << 24) as f64;
        prop_assert!(sent + snap + 1e-6 >= bytes as f64);
        prop_assert!(sent <= bytes as f64 + r.as_bytes_per_ns() + snap + 1e-6);
    }

    /// Serialization times are *exact* for every standard (integer-Gbps)
    /// rate and MTU-range payload: `time_for_bytes` equals `ceil(8·bytes/g)`
    /// computed in pure integer arithmetic, never off by an f64 ulp.
    #[test]
    fn rate_serialize_time_is_exact(g in 1u64..=400, bytes in 1u64..=16_384) {
        let r = Rate::gbps(g as f64);
        let exact = (8 * bytes).div_ceil(g);
        prop_assert_eq!(r.time_for_bytes(bytes), Nanos::from_nanos(exact));
    }

    /// RNG `below` is always within its bound and `range` inclusive.
    #[test]
    fn rng_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut r = Rng::new(seed);
        for _ in 0..100 {
            prop_assert!(r.below(bound) < bound);
            let v = r.range(bound / 2, bound);
            prop_assert!(v >= bound / 2 && v <= bound);
        }
    }

    /// Two RNGs with the same seed produce identical streams (determinism).
    #[test]
    fn rng_deterministic(seed in any::<u64>()) {
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
