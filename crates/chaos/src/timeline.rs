//! The chaos event taxonomy, the compact timeline grammar, and the named
//! presets.
//!
//! # Grammar
//!
//! A timeline spec is a `;`-separated list of events. Each event is
//!
//! ```text
//! <kind>[@link:<name>]@<start>[+<duration>][:<param>]...
//! ```
//!
//! where `<start>` and `<duration>` are durations (`700ns`, `500us`,
//! `2ms`, `1.5ms`, `1s`) and each `:<param>` is either a percentage
//! (`50%` → magnitude 0.5), a bare number (magnitude), or another
//! duration (sets the event duration — `degrade@5ms:50%:1ms` and
//! `degrade@5ms:50%+1ms` are equivalent). Omitted fields fall back to the
//! kind's defaults.
//!
//! Link faults (`flap`, `degrade`, `pause`, `burstloss`) optionally name
//! the link they act on: `flap@link:spine0-leaf2@2ms+500us`. On a
//! single-link scenario the target may be omitted (there is nothing to
//! disambiguate); a multi-link topology rejects untargeted link faults —
//! see [`ChaosTimeline::validate_targets`].

use hostcc_sim::Nanos;

/// The kinds of scheduled fault this subsystem can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// The sender links go fully down for the duration, then come back.
    LinkFlap,
    /// The sender links run at `magnitude × nominal rate` (a brownout).
    LinkDegrade,
    /// A storm of `magnitude` short PFC-style pauses: the sender links
    /// alternate down/up over the event window.
    PauseStorm,
    /// Random loss at the fabric: each packet is dropped with probability
    /// `magnitude` while the window is open.
    BurstLoss,
    /// MBA actuation stalls: pending level writes are deferred and new
    /// writes take `magnitude ×` the nominal 22 µs latency.
    MbaActuationStall,
    /// MSR read jitter widens to `magnitude × mean` (signal-quality
    /// attack on the hostCC sampler).
    MsrReadJitter,
    /// DDIO is toggled to the opposite setting, then restored.
    DdioToggle,
    /// The MApp aggressor surges by `magnitude` extra congestion degree.
    AggressorBurst,
    /// The host's ECN echo is suppressed (delivered packets are not
    /// CE-marked) for the window.
    EcnEchoOutage,
}

impl ChaosKind {
    /// Every kind, in taxonomy order.
    pub const ALL: [ChaosKind; 9] = [
        ChaosKind::LinkFlap,
        ChaosKind::LinkDegrade,
        ChaosKind::PauseStorm,
        ChaosKind::BurstLoss,
        ChaosKind::MbaActuationStall,
        ChaosKind::MsrReadJitter,
        ChaosKind::DdioToggle,
        ChaosKind::AggressorBurst,
        ChaosKind::EcnEchoOutage,
    ];

    /// Stable spec-grammar name.
    pub fn name(self) -> &'static str {
        match self {
            ChaosKind::LinkFlap => "flap",
            ChaosKind::LinkDegrade => "degrade",
            ChaosKind::PauseStorm => "pause",
            ChaosKind::BurstLoss => "burstloss",
            ChaosKind::MbaActuationStall => "mbastall",
            ChaosKind::MsrReadJitter => "msrjitter",
            ChaosKind::DdioToggle => "ddio",
            ChaosKind::AggressorBurst => "aggressor",
            ChaosKind::EcnEchoOutage => "echooutage",
        }
    }

    /// Parse a kind name as printed by [`ChaosKind::name`].
    pub fn parse(s: &str) -> Option<ChaosKind> {
        ChaosKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Default event duration when the spec omits one.
    pub fn default_duration(self) -> Nanos {
        match self {
            ChaosKind::LinkFlap => Nanos::from_micros(500),
            ChaosKind::LinkDegrade => Nanos::from_millis(1),
            ChaosKind::PauseStorm => Nanos::from_micros(1500),
            ChaosKind::BurstLoss => Nanos::from_micros(400),
            ChaosKind::MbaActuationStall => Nanos::from_millis(2),
            ChaosKind::MsrReadJitter => Nanos::from_millis(2),
            ChaosKind::DdioToggle => Nanos::from_micros(1500),
            ChaosKind::AggressorBurst => Nanos::from_millis(1),
            ChaosKind::EcnEchoOutage => Nanos::from_micros(1500),
        }
    }

    /// Default magnitude when the spec omits one. The unit is
    /// kind-specific (rate fraction, drop probability, pulse count,
    /// latency multiplier, jitter fraction, extra degree; unused for
    /// flap/ddio/echo).
    pub fn default_magnitude(self) -> f64 {
        match self {
            ChaosKind::LinkFlap => 0.0,
            ChaosKind::LinkDegrade => 0.5,
            ChaosKind::PauseStorm => 5.0,
            ChaosKind::BurstLoss => 0.5,
            ChaosKind::MbaActuationStall => 8.0,
            ChaosKind::MsrReadJitter => 1.0,
            ChaosKind::DdioToggle => 0.0,
            ChaosKind::AggressorBurst => 2.0,
            ChaosKind::EcnEchoOutage => 0.0,
        }
    }

    /// True for kinds that act on a physical link and hence accept (and,
    /// on multi-link topologies, require) a `link:<name>` target.
    pub fn is_link_fault(self) -> bool {
        matches!(
            self,
            ChaosKind::LinkFlap
                | ChaosKind::LinkDegrade
                | ChaosKind::PauseStorm
                | ChaosKind::BurstLoss
        )
    }

    /// Invariants (by watchdog name) this fault may *legitimately* bend
    /// while its window is open. Violations inside such windows are
    /// annotated in the [`crate::ResilienceReport`] rather than treated as
    /// simulator defects; violations anywhere else always are defects.
    pub fn may_violate(self) -> &'static [&'static str] {
        match self {
            // Flipping DDIO mid-run changes the eviction fraction between
            // the admission computation and the byte accounting it is
            // checked against, so the IIO identity may transiently miss
            // by more than its epsilon.
            ChaosKind::DdioToggle => &["iio_accounting"],
            _ => &[],
        }
    }

    fn validate_magnitude(self, m: f64) -> Result<(), String> {
        let ok = match self {
            ChaosKind::LinkDegrade => m > 0.0 && m <= 1.0,
            ChaosKind::BurstLoss => (0.0..=1.0).contains(&m),
            ChaosKind::PauseStorm => (1.0..=64.0).contains(&m),
            ChaosKind::MbaActuationStall => (1.0..=1000.0).contains(&m),
            ChaosKind::MsrReadJitter => (0.0..=1.0).contains(&m),
            ChaosKind::AggressorBurst => (0.0..=16.0).contains(&m),
            ChaosKind::LinkFlap | ChaosKind::DdioToggle | ChaosKind::EcnEchoOutage => true,
        };
        if ok {
            Ok(())
        } else {
            Err(format!("magnitude {m} out of range for '{}'", self.name()))
        }
    }
}

/// One scheduled fault: a kind, an optional link target, a start time, a
/// window, and a kind-specific magnitude.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosEvent {
    /// What to inject.
    pub kind: ChaosKind,
    /// The link this fault acts on (`flap@link:spine0-leaf2@…`). `None`
    /// on single-link scenarios, where the fault targets the one link.
    pub target: Option<String>,
    /// When the fault window opens (absolute simulated time).
    pub start: Nanos,
    /// How long the window stays open.
    pub duration: Nanos,
    /// Kind-specific magnitude (see [`ChaosKind::default_magnitude`]).
    pub magnitude: f64,
}

impl ChaosEvent {
    /// When the fault window closes.
    pub fn end(&self) -> Nanos {
        self.start + self.duration
    }

    /// The canonical spec encoding of this event — a pure function of the
    /// parsed content (magnitude is encoded by its bit pattern), used both
    /// for round-tripping and as the per-event RNG derivation key. An
    /// untargeted event keeps its historic encoding, so adding the target
    /// grammar never re-seeds existing timelines.
    pub fn canonical(&self) -> String {
        let target = match &self.target {
            Some(t) => format!("@link:{t}"),
            None => String::new(),
        };
        format!(
            "{}{target}@{}ns+{}ns:{:016x}",
            self.kind.name(),
            self.start.as_nanos(),
            self.duration.as_nanos(),
            self.magnitude.to_bits(),
        )
    }
}

/// Parse a duration literal: `<number><ns|us|ms|s>`.
fn parse_duration(tok: &str) -> Result<Nanos, String> {
    let (num, scale) = if let Some(v) = tok.strip_suffix("ns") {
        (v, 1.0)
    } else if let Some(v) = tok.strip_suffix("us") {
        (v, 1e3)
    } else if let Some(v) = tok.strip_suffix("ms") {
        (v, 1e6)
    } else if let Some(v) = tok.strip_suffix('s') {
        (v, 1e9)
    } else {
        return Err(format!("'{tok}' has no duration unit (ns/us/ms/s)"));
    };
    let v: f64 = num
        .parse()
        .map_err(|_| format!("bad duration number '{num}'"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("negative or non-finite duration '{tok}'"));
    }
    Ok(Nanos::from_nanos((v * scale).round() as u64))
}

fn parse_event(spec: &str) -> Result<ChaosEvent, String> {
    let (name, rest) = spec
        .split_once('@')
        .ok_or_else(|| format!("event '{spec}' is missing '@<start>'"))?;
    let kind = ChaosKind::parse(name).ok_or_else(|| {
        format!(
            "unknown chaos kind '{name}' (known: {})",
            ChaosKind::ALL.map(ChaosKind::name).join(" ")
        )
    })?;
    // Optional link target: `<kind>@link:<name>@<start>…`.
    let (target, rest) = if let Some(t) = rest.strip_prefix("link:") {
        let (tname, tail) = t
            .split_once('@')
            .ok_or_else(|| format!("event '{spec}': 'link:{t}' must be followed by '@<start>'"))?;
        if tname.is_empty() {
            return Err(format!("event '{spec}': empty link target"));
        }
        if !kind.is_link_fault() {
            return Err(format!(
                "event '{spec}': '{}' is not a link fault and takes no link target",
                kind.name()
            ));
        }
        (Some(tname.to_string()), tail)
    } else {
        (None, rest)
    };
    // Tokenize the tail: the first token is the start time; every later
    // token is introduced by '+' (duration) or ':' (parameter).
    let mut tokens: Vec<(char, String)> = Vec::new();
    let mut sep = ' ';
    let mut cur = String::new();
    for c in rest.chars() {
        if c == '+' || c == ':' {
            tokens.push((sep, std::mem::take(&mut cur)));
            sep = c;
        } else {
            cur.push(c);
        }
    }
    tokens.push((sep, cur));
    let start =
        parse_duration(&tokens[0].1).map_err(|e| format!("event '{spec}': bad start time: {e}"))?;
    let mut duration = kind.default_duration();
    let mut magnitude = kind.default_magnitude();
    for (sep, tok) in &tokens[1..] {
        if tok.is_empty() {
            return Err(format!("event '{spec}': empty token after '{sep}'"));
        }
        if *sep == '+' {
            duration = parse_duration(tok).map_err(|e| format!("event '{spec}': {e}"))?;
        } else if let Some(pct) = tok.strip_suffix('%') {
            magnitude = pct
                .parse::<f64>()
                .map_err(|_| format!("event '{spec}': bad percentage '{tok}'"))?
                / 100.0;
        } else if let Ok(d) = parse_duration(tok) {
            duration = d;
        } else {
            magnitude = tok.parse::<f64>().map_err(|_| {
                format!("event '{spec}': '{tok}' is neither a number, a percentage, nor a duration")
            })?;
        }
    }
    if duration == Nanos::ZERO {
        return Err(format!("event '{spec}': zero duration"));
    }
    kind.validate_magnitude(magnitude)
        .map_err(|e| format!("event '{spec}': {e}"))?;
    Ok(ChaosEvent {
        kind,
        target,
        start,
        duration,
        magnitude,
    })
}

/// A full chaos schedule: a named, ordered list of [`ChaosEvent`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosTimeline {
    /// Preset name, or `"custom"` for parsed specs.
    pub name: String,
    /// The events, in spec order.
    pub events: Vec<ChaosEvent>,
}

impl ChaosTimeline {
    /// Parse a `;`-separated timeline spec (see the module docs for the
    /// grammar).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                return Err(format!("empty event in chaos spec '{spec}'"));
            }
            events.push(parse_event(part)?);
        }
        Ok(ChaosTimeline {
            name: "custom".to_string(),
            events,
        })
    }

    /// The named presets: `(name, spec, description)`. Every preset lands
    /// its events inside the measurement window of both the standard and
    /// the `--quick` experiment budgets.
    pub fn presets() -> &'static [(&'static str, &'static str, &'static str)] {
        &[
            (
                "flap",
                "flap@4500us+400us",
                "single 400 us full link blackout",
            ),
            (
                "double-flap",
                "flap@4300us+300us;flap@5300us+300us",
                "two 300 us blackouts 1 ms apart (recovery under repeat stress)",
            ),
            (
                "brownout",
                "degrade@4500us:30%:1ms",
                "sender links at 30% rate for 1 ms",
            ),
            (
                "pause-storm",
                "pause@4500us+1200us:6",
                "6 PFC-style pause pulses across 1.2 ms",
            ),
            (
                "burst-loss",
                "burstloss@4500us+500us:0.3",
                "30% random fabric loss for 500 us",
            ),
            (
                "mba-stall",
                "mbastall@4200us+1500us:8",
                "MBA actuation writes 8x slower for 1.5 ms",
            ),
            (
                "msr-jitter",
                "msrjitter@4200us+1500us:1.0",
                "MSR read jitter widened to the full mean for 1.5 ms",
            ),
            (
                "ddio-flip",
                "ddio@4500us+1200us",
                "DDIO toggled to the opposite setting for 1.2 ms",
            ),
            (
                "aggressor-surge",
                "aggressor@4500us+1ms:2.0",
                "MApp aggressor degree +2x for 1 ms",
            ),
            (
                "echo-outage",
                "echooutage@4200us+1500us",
                "host ECN echo suppressed for 1.5 ms",
            ),
        ]
    }

    /// Look up a named preset.
    pub fn preset(name: &str) -> Option<Self> {
        Self::presets()
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|(n, spec, _)| ChaosTimeline {
                name: n.to_string(),
                ..Self::parse(spec).expect("presets always parse")
            })
    }

    /// Resolve a preset name or an inline spec string.
    pub fn resolve(s: &str) -> Result<Self, String> {
        if let Some(t) = Self::preset(s) {
            return Ok(t);
        }
        Self::parse(s).map_err(|e| {
            format!(
                "'{s}' is neither a chaos preset ({}) nor a valid spec: {e}",
                Self::presets()
                    .iter()
                    .map(|(n, _, _)| *n)
                    .collect::<Vec<_>>()
                    .join(" ")
            )
        })
    }

    /// The canonical spec string (stable across preset/spec spelling of
    /// the same timeline); the RNG derivation key is built from this.
    pub fn canonical(&self) -> String {
        self.events
            .iter()
            .map(ChaosEvent::canonical)
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Check every link fault against the scenario's addressable links.
    ///
    /// `links` is the set of valid target names (empty for the legacy
    /// single-link scenarios, which have nothing to address). The rules —
    /// mirroring the `--telemetry-filter` zero-match rejection:
    ///
    /// * a named target must exist in `links`;
    /// * with more than one addressable link, an *untargeted* link fault
    ///   is ambiguous and rejected — `flap@2ms` must say which link;
    /// * without any addressable links, targets are rejected (there is
    ///   only the implicit single link) and untargeted faults pass.
    pub fn validate_targets(&self, links: &[&str]) -> Result<(), String> {
        let listing = || {
            if links.is_empty() {
                "(none: this scenario has a single implicit link)".to_string()
            } else {
                links.join(" ")
            }
        };
        for ev in &self.events {
            match &ev.target {
                Some(t) if !links.contains(&t.as_str()) => {
                    return Err(format!(
                        "chaos target 'link:{t}' matches no link in this scenario; \
                         valid targets: {}",
                        listing()
                    ));
                }
                None if ev.kind.is_link_fault() && links.len() > 1 => {
                    return Err(format!(
                        "ambiguous link fault '{}@…': this topology has {} links, so the \
                         fault must address one ('{}@link:<name>@…'); valid targets: {}",
                        ev.kind.name(),
                        links.len(),
                        ev.kind.name(),
                        listing()
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Last instant at which any event window is still open.
    pub fn end(&self) -> Nanos {
        self.events
            .iter()
            .map(ChaosEvent::end)
            .max()
            .unwrap_or(Nanos::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_examples_parse() {
        let t = ChaosTimeline::parse("flap@2ms+500us;degrade@5ms:50%:1ms").unwrap();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[0].kind, ChaosKind::LinkFlap);
        assert_eq!(t.events[0].start, Nanos::from_millis(2));
        assert_eq!(t.events[0].duration, Nanos::from_micros(500));
        assert_eq!(t.events[1].kind, ChaosKind::LinkDegrade);
        assert_eq!(t.events[1].magnitude, 0.5);
        assert_eq!(t.events[1].duration, Nanos::from_millis(1));
    }

    #[test]
    fn defaults_fill_omitted_fields() {
        let t = ChaosTimeline::parse("burstloss@3ms").unwrap();
        let e = &t.events[0];
        assert_eq!(e.duration, ChaosKind::BurstLoss.default_duration());
        assert_eq!(e.magnitude, 0.5);
        assert_eq!(e.target, None);
    }

    #[test]
    fn link_targets_parse_and_round_trip() {
        let t = ChaosTimeline::parse("flap@link:spine0-leaf2@2ms+500us").unwrap();
        let e = &t.events[0];
        assert_eq!(e.kind, ChaosKind::LinkFlap);
        assert_eq!(e.target.as_deref(), Some("spine0-leaf2"));
        assert_eq!(e.start, Nanos::from_millis(2));
        assert_eq!(e.duration, Nanos::from_micros(500));
        // The target is part of the canonical key (distinct RNG streams,
        // distinct cell keys) …
        let untargeted = ChaosTimeline::parse("flap@2ms+500us").unwrap();
        assert_ne!(t.canonical(), untargeted.canonical());
        assert!(t.canonical().contains("link:spine0-leaf2"));
        // … while untargeted events keep their historic encoding.
        assert!(!untargeted.canonical().contains("link:"));
        // Targeted degrade with parameters.
        let d = ChaosTimeline::parse("degrade@link:h0-leaf0@5ms:30%:1ms").unwrap();
        assert_eq!(d.events[0].target.as_deref(), Some("h0-leaf0"));
        assert_eq!(d.events[0].magnitude, 0.3);
    }

    #[test]
    fn link_targets_are_rejected_on_non_link_kinds() {
        for (spec, needle) in [
            ("ddio@link:s0-s1@2ms", "takes no link target"),
            ("mbastall@link:s0-s1@2ms", "takes no link target"),
            ("flap@link:@2ms", "empty link target"),
            ("flap@link:s0-s1", "must be followed by '@<start>'"),
        ] {
            let err = ChaosTimeline::parse(spec).unwrap_err();
            assert!(err.contains(needle), "spec '{spec}': {err}");
        }
    }

    #[test]
    fn target_validation_mirrors_filter_rejection() {
        let links = ["h0-leaf0", "leaf0-spine0", "spine0-leaf1"];
        // A named, existing target passes.
        ChaosTimeline::parse("flap@link:leaf0-spine0@2ms")
            .unwrap()
            .validate_targets(&links)
            .unwrap();
        // Unknown target: rejected, listing the valid set.
        let err = ChaosTimeline::parse("flap@link:nope@2ms")
            .unwrap()
            .validate_targets(&links)
            .unwrap_err();
        assert!(err.contains("matches no link"), "{err}");
        assert!(err.contains("leaf0-spine0"), "{err}");
        // Untargeted link fault on a multi-link topology: ambiguous.
        let err = ChaosTimeline::parse("flap@2ms")
            .unwrap()
            .validate_targets(&links)
            .unwrap_err();
        assert!(err.contains("ambiguous link fault"), "{err}");
        assert!(err.contains("flap@link:<name>"), "{err}");
        // Legacy single-link scenario: untargeted passes, targets do not.
        ChaosTimeline::parse("flap@2ms")
            .unwrap()
            .validate_targets(&[])
            .unwrap();
        assert!(ChaosTimeline::parse("flap@link:x@2ms")
            .unwrap()
            .validate_targets(&[])
            .is_err());
        // Non-link kinds never need a target.
        ChaosTimeline::parse("mbastall@2ms")
            .unwrap()
            .validate_targets(&links)
            .unwrap();
        // Exactly one addressable link: nothing to disambiguate.
        ChaosTimeline::parse("flap@2ms")
            .unwrap()
            .validate_targets(&["s0-s1"])
            .unwrap();
    }

    #[test]
    fn fractional_durations_round_to_ns() {
        let t = ChaosTimeline::parse("flap@1.5ms+0.25us").unwrap();
        assert_eq!(t.events[0].start, Nanos::from_micros(1500));
        assert_eq!(t.events[0].duration, Nanos::from_nanos(250));
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for (spec, needle) in [
            ("zap@2ms", "unknown chaos kind"),
            ("flap", "missing '@"),
            ("flap@2", "no duration unit"),
            ("flap@2ms;", "empty event"),
            ("degrade@2ms:150%", "out of range"),
            ("flap@2ms+0ns", "zero duration"),
            ("burstloss@2ms:1.5", "out of range"),
            ("pause@2ms:0.2", "out of range"),
        ] {
            let err = ChaosTimeline::parse(spec).unwrap_err();
            assert!(err.contains(needle), "spec '{spec}': {err}");
        }
    }

    #[test]
    fn every_preset_resolves_and_has_unique_name() {
        let mut names = Vec::new();
        for (name, spec, _) in ChaosTimeline::presets() {
            let t = ChaosTimeline::resolve(name).unwrap();
            assert_eq!(&t.name, name);
            assert!(!t.events.is_empty());
            assert_eq!(t.events, ChaosTimeline::parse(spec).unwrap().events);
            assert!(!names.contains(name), "duplicate preset '{name}'");
            // Axis values are comma-separated and key=value formatted, so
            // preset names must stay free of both.
            assert!(!name.contains(',') && !name.contains('='));
            names.push(*name);
        }
        assert!(names.len() >= 8, "want ~8 presets, have {}", names.len());
    }

    #[test]
    fn resolve_rejects_unknowns_listing_presets() {
        let err = ChaosTimeline::resolve("not-a-preset").unwrap_err();
        assert!(err.contains("flap"), "{err}");
        assert!(err.contains("neither a chaos preset"), "{err}");
    }

    #[test]
    fn canonical_is_stable_and_spelling_independent() {
        let a = ChaosTimeline::parse("degrade@5ms:50%:1ms").unwrap();
        let b = ChaosTimeline::parse("degrade@5000us:0.5+1000000ns").unwrap();
        assert_eq!(a.canonical(), b.canonical());
        assert_ne!(
            a.canonical(),
            ChaosTimeline::parse("degrade@5ms:51%:1ms")
                .unwrap()
                .canonical()
        );
    }

    #[test]
    fn timeline_end_covers_all_windows() {
        let t = ChaosTimeline::parse("flap@2ms+500us;degrade@5ms:50%:1ms").unwrap();
        assert_eq!(t.end(), Nanos::from_millis(6));
    }
}
