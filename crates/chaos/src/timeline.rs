//! The chaos event taxonomy, the compact timeline grammar, and the named
//! presets.
//!
//! # Grammar
//!
//! A timeline spec is a `;`-separated list of events. Each event is
//!
//! ```text
//! <kind>@<start>[+<duration>][:<param>]...
//! ```
//!
//! where `<start>` and `<duration>` are durations (`700ns`, `500us`,
//! `2ms`, `1.5ms`, `1s`) and each `:<param>` is either a percentage
//! (`50%` → magnitude 0.5), a bare number (magnitude), or another
//! duration (sets the event duration — `degrade@5ms:50%:1ms` and
//! `degrade@5ms:50%+1ms` are equivalent). Omitted fields fall back to the
//! kind's defaults.

use hostcc_sim::Nanos;

/// The kinds of scheduled fault this subsystem can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// The sender links go fully down for the duration, then come back.
    LinkFlap,
    /// The sender links run at `magnitude × nominal rate` (a brownout).
    LinkDegrade,
    /// A storm of `magnitude` short PFC-style pauses: the sender links
    /// alternate down/up over the event window.
    PauseStorm,
    /// Random loss at the fabric: each packet is dropped with probability
    /// `magnitude` while the window is open.
    BurstLoss,
    /// MBA actuation stalls: pending level writes are deferred and new
    /// writes take `magnitude ×` the nominal 22 µs latency.
    MbaActuationStall,
    /// MSR read jitter widens to `magnitude × mean` (signal-quality
    /// attack on the hostCC sampler).
    MsrReadJitter,
    /// DDIO is toggled to the opposite setting, then restored.
    DdioToggle,
    /// The MApp aggressor surges by `magnitude` extra congestion degree.
    AggressorBurst,
    /// The host's ECN echo is suppressed (delivered packets are not
    /// CE-marked) for the window.
    EcnEchoOutage,
}

impl ChaosKind {
    /// Every kind, in taxonomy order.
    pub const ALL: [ChaosKind; 9] = [
        ChaosKind::LinkFlap,
        ChaosKind::LinkDegrade,
        ChaosKind::PauseStorm,
        ChaosKind::BurstLoss,
        ChaosKind::MbaActuationStall,
        ChaosKind::MsrReadJitter,
        ChaosKind::DdioToggle,
        ChaosKind::AggressorBurst,
        ChaosKind::EcnEchoOutage,
    ];

    /// Stable spec-grammar name.
    pub fn name(self) -> &'static str {
        match self {
            ChaosKind::LinkFlap => "flap",
            ChaosKind::LinkDegrade => "degrade",
            ChaosKind::PauseStorm => "pause",
            ChaosKind::BurstLoss => "burstloss",
            ChaosKind::MbaActuationStall => "mbastall",
            ChaosKind::MsrReadJitter => "msrjitter",
            ChaosKind::DdioToggle => "ddio",
            ChaosKind::AggressorBurst => "aggressor",
            ChaosKind::EcnEchoOutage => "echooutage",
        }
    }

    /// Parse a kind name as printed by [`ChaosKind::name`].
    pub fn parse(s: &str) -> Option<ChaosKind> {
        ChaosKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Default event duration when the spec omits one.
    pub fn default_duration(self) -> Nanos {
        match self {
            ChaosKind::LinkFlap => Nanos::from_micros(500),
            ChaosKind::LinkDegrade => Nanos::from_millis(1),
            ChaosKind::PauseStorm => Nanos::from_micros(1500),
            ChaosKind::BurstLoss => Nanos::from_micros(400),
            ChaosKind::MbaActuationStall => Nanos::from_millis(2),
            ChaosKind::MsrReadJitter => Nanos::from_millis(2),
            ChaosKind::DdioToggle => Nanos::from_micros(1500),
            ChaosKind::AggressorBurst => Nanos::from_millis(1),
            ChaosKind::EcnEchoOutage => Nanos::from_micros(1500),
        }
    }

    /// Default magnitude when the spec omits one. The unit is
    /// kind-specific (rate fraction, drop probability, pulse count,
    /// latency multiplier, jitter fraction, extra degree; unused for
    /// flap/ddio/echo).
    pub fn default_magnitude(self) -> f64 {
        match self {
            ChaosKind::LinkFlap => 0.0,
            ChaosKind::LinkDegrade => 0.5,
            ChaosKind::PauseStorm => 5.0,
            ChaosKind::BurstLoss => 0.5,
            ChaosKind::MbaActuationStall => 8.0,
            ChaosKind::MsrReadJitter => 1.0,
            ChaosKind::DdioToggle => 0.0,
            ChaosKind::AggressorBurst => 2.0,
            ChaosKind::EcnEchoOutage => 0.0,
        }
    }

    /// Invariants (by watchdog name) this fault may *legitimately* bend
    /// while its window is open. Violations inside such windows are
    /// annotated in the [`crate::ResilienceReport`] rather than treated as
    /// simulator defects; violations anywhere else always are defects.
    pub fn may_violate(self) -> &'static [&'static str] {
        match self {
            // Flipping DDIO mid-run changes the eviction fraction between
            // the admission computation and the byte accounting it is
            // checked against, so the IIO identity may transiently miss
            // by more than its epsilon.
            ChaosKind::DdioToggle => &["iio_accounting"],
            _ => &[],
        }
    }

    fn validate_magnitude(self, m: f64) -> Result<(), String> {
        let ok = match self {
            ChaosKind::LinkDegrade => m > 0.0 && m <= 1.0,
            ChaosKind::BurstLoss => (0.0..=1.0).contains(&m),
            ChaosKind::PauseStorm => (1.0..=64.0).contains(&m),
            ChaosKind::MbaActuationStall => (1.0..=1000.0).contains(&m),
            ChaosKind::MsrReadJitter => (0.0..=1.0).contains(&m),
            ChaosKind::AggressorBurst => (0.0..=16.0).contains(&m),
            ChaosKind::LinkFlap | ChaosKind::DdioToggle | ChaosKind::EcnEchoOutage => true,
        };
        if ok {
            Ok(())
        } else {
            Err(format!("magnitude {m} out of range for '{}'", self.name()))
        }
    }
}

/// One scheduled fault: a kind, a start time, a window, and a
/// kind-specific magnitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosEvent {
    /// What to inject.
    pub kind: ChaosKind,
    /// When the fault window opens (absolute simulated time).
    pub start: Nanos,
    /// How long the window stays open.
    pub duration: Nanos,
    /// Kind-specific magnitude (see [`ChaosKind::default_magnitude`]).
    pub magnitude: f64,
}

impl ChaosEvent {
    /// When the fault window closes.
    pub fn end(&self) -> Nanos {
        self.start + self.duration
    }

    /// The canonical spec encoding of this event — a pure function of the
    /// parsed content (magnitude is encoded by its bit pattern), used both
    /// for round-tripping and as the per-event RNG derivation key.
    pub fn canonical(&self) -> String {
        format!(
            "{}@{}ns+{}ns:{:016x}",
            self.kind.name(),
            self.start.as_nanos(),
            self.duration.as_nanos(),
            self.magnitude.to_bits(),
        )
    }
}

/// Parse a duration literal: `<number><ns|us|ms|s>`.
fn parse_duration(tok: &str) -> Result<Nanos, String> {
    let (num, scale) = if let Some(v) = tok.strip_suffix("ns") {
        (v, 1.0)
    } else if let Some(v) = tok.strip_suffix("us") {
        (v, 1e3)
    } else if let Some(v) = tok.strip_suffix("ms") {
        (v, 1e6)
    } else if let Some(v) = tok.strip_suffix('s') {
        (v, 1e9)
    } else {
        return Err(format!("'{tok}' has no duration unit (ns/us/ms/s)"));
    };
    let v: f64 = num
        .parse()
        .map_err(|_| format!("bad duration number '{num}'"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("negative or non-finite duration '{tok}'"));
    }
    Ok(Nanos::from_nanos((v * scale).round() as u64))
}

fn parse_event(spec: &str) -> Result<ChaosEvent, String> {
    let (name, rest) = spec
        .split_once('@')
        .ok_or_else(|| format!("event '{spec}' is missing '@<start>'"))?;
    let kind = ChaosKind::parse(name).ok_or_else(|| {
        format!(
            "unknown chaos kind '{name}' (known: {})",
            ChaosKind::ALL.map(ChaosKind::name).join(" ")
        )
    })?;
    // Tokenize the tail: the first token is the start time; every later
    // token is introduced by '+' (duration) or ':' (parameter).
    let mut tokens: Vec<(char, String)> = Vec::new();
    let mut sep = ' ';
    let mut cur = String::new();
    for c in rest.chars() {
        if c == '+' || c == ':' {
            tokens.push((sep, std::mem::take(&mut cur)));
            sep = c;
        } else {
            cur.push(c);
        }
    }
    tokens.push((sep, cur));
    let start =
        parse_duration(&tokens[0].1).map_err(|e| format!("event '{spec}': bad start time: {e}"))?;
    let mut duration = kind.default_duration();
    let mut magnitude = kind.default_magnitude();
    for (sep, tok) in &tokens[1..] {
        if tok.is_empty() {
            return Err(format!("event '{spec}': empty token after '{sep}'"));
        }
        if *sep == '+' {
            duration = parse_duration(tok).map_err(|e| format!("event '{spec}': {e}"))?;
        } else if let Some(pct) = tok.strip_suffix('%') {
            magnitude = pct
                .parse::<f64>()
                .map_err(|_| format!("event '{spec}': bad percentage '{tok}'"))?
                / 100.0;
        } else if let Ok(d) = parse_duration(tok) {
            duration = d;
        } else {
            magnitude = tok.parse::<f64>().map_err(|_| {
                format!("event '{spec}': '{tok}' is neither a number, a percentage, nor a duration")
            })?;
        }
    }
    if duration == Nanos::ZERO {
        return Err(format!("event '{spec}': zero duration"));
    }
    kind.validate_magnitude(magnitude)
        .map_err(|e| format!("event '{spec}': {e}"))?;
    Ok(ChaosEvent {
        kind,
        start,
        duration,
        magnitude,
    })
}

/// A full chaos schedule: a named, ordered list of [`ChaosEvent`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosTimeline {
    /// Preset name, or `"custom"` for parsed specs.
    pub name: String,
    /// The events, in spec order.
    pub events: Vec<ChaosEvent>,
}

impl ChaosTimeline {
    /// Parse a `;`-separated timeline spec (see the module docs for the
    /// grammar).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                return Err(format!("empty event in chaos spec '{spec}'"));
            }
            events.push(parse_event(part)?);
        }
        Ok(ChaosTimeline {
            name: "custom".to_string(),
            events,
        })
    }

    /// The named presets: `(name, spec, description)`. Every preset lands
    /// its events inside the measurement window of both the standard and
    /// the `--quick` experiment budgets.
    pub fn presets() -> &'static [(&'static str, &'static str, &'static str)] {
        &[
            (
                "flap",
                "flap@4500us+400us",
                "single 400 us full link blackout",
            ),
            (
                "double-flap",
                "flap@4300us+300us;flap@5300us+300us",
                "two 300 us blackouts 1 ms apart (recovery under repeat stress)",
            ),
            (
                "brownout",
                "degrade@4500us:30%:1ms",
                "sender links at 30% rate for 1 ms",
            ),
            (
                "pause-storm",
                "pause@4500us+1200us:6",
                "6 PFC-style pause pulses across 1.2 ms",
            ),
            (
                "burst-loss",
                "burstloss@4500us+500us:0.3",
                "30% random fabric loss for 500 us",
            ),
            (
                "mba-stall",
                "mbastall@4200us+1500us:8",
                "MBA actuation writes 8x slower for 1.5 ms",
            ),
            (
                "msr-jitter",
                "msrjitter@4200us+1500us:1.0",
                "MSR read jitter widened to the full mean for 1.5 ms",
            ),
            (
                "ddio-flip",
                "ddio@4500us+1200us",
                "DDIO toggled to the opposite setting for 1.2 ms",
            ),
            (
                "aggressor-surge",
                "aggressor@4500us+1ms:2.0",
                "MApp aggressor degree +2x for 1 ms",
            ),
            (
                "echo-outage",
                "echooutage@4200us+1500us",
                "host ECN echo suppressed for 1.5 ms",
            ),
        ]
    }

    /// Look up a named preset.
    pub fn preset(name: &str) -> Option<Self> {
        Self::presets()
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|(n, spec, _)| ChaosTimeline {
                name: n.to_string(),
                ..Self::parse(spec).expect("presets always parse")
            })
    }

    /// Resolve a preset name or an inline spec string.
    pub fn resolve(s: &str) -> Result<Self, String> {
        if let Some(t) = Self::preset(s) {
            return Ok(t);
        }
        Self::parse(s).map_err(|e| {
            format!(
                "'{s}' is neither a chaos preset ({}) nor a valid spec: {e}",
                Self::presets()
                    .iter()
                    .map(|(n, _, _)| *n)
                    .collect::<Vec<_>>()
                    .join(" ")
            )
        })
    }

    /// The canonical spec string (stable across preset/spec spelling of
    /// the same timeline); the RNG derivation key is built from this.
    pub fn canonical(&self) -> String {
        self.events
            .iter()
            .map(ChaosEvent::canonical)
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Last instant at which any event window is still open.
    pub fn end(&self) -> Nanos {
        self.events
            .iter()
            .map(ChaosEvent::end)
            .max()
            .unwrap_or(Nanos::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_examples_parse() {
        let t = ChaosTimeline::parse("flap@2ms+500us;degrade@5ms:50%:1ms").unwrap();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[0].kind, ChaosKind::LinkFlap);
        assert_eq!(t.events[0].start, Nanos::from_millis(2));
        assert_eq!(t.events[0].duration, Nanos::from_micros(500));
        assert_eq!(t.events[1].kind, ChaosKind::LinkDegrade);
        assert_eq!(t.events[1].magnitude, 0.5);
        assert_eq!(t.events[1].duration, Nanos::from_millis(1));
    }

    #[test]
    fn defaults_fill_omitted_fields() {
        let t = ChaosTimeline::parse("burstloss@3ms").unwrap();
        let e = t.events[0];
        assert_eq!(e.duration, ChaosKind::BurstLoss.default_duration());
        assert_eq!(e.magnitude, 0.5);
    }

    #[test]
    fn fractional_durations_round_to_ns() {
        let t = ChaosTimeline::parse("flap@1.5ms+0.25us").unwrap();
        assert_eq!(t.events[0].start, Nanos::from_micros(1500));
        assert_eq!(t.events[0].duration, Nanos::from_nanos(250));
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for (spec, needle) in [
            ("zap@2ms", "unknown chaos kind"),
            ("flap", "missing '@"),
            ("flap@2", "no duration unit"),
            ("flap@2ms;", "empty event"),
            ("degrade@2ms:150%", "out of range"),
            ("flap@2ms+0ns", "zero duration"),
            ("burstloss@2ms:1.5", "out of range"),
            ("pause@2ms:0.2", "out of range"),
        ] {
            let err = ChaosTimeline::parse(spec).unwrap_err();
            assert!(err.contains(needle), "spec '{spec}': {err}");
        }
    }

    #[test]
    fn every_preset_resolves_and_has_unique_name() {
        let mut names = Vec::new();
        for (name, spec, _) in ChaosTimeline::presets() {
            let t = ChaosTimeline::resolve(name).unwrap();
            assert_eq!(&t.name, name);
            assert!(!t.events.is_empty());
            assert_eq!(t.events, ChaosTimeline::parse(spec).unwrap().events);
            assert!(!names.contains(name), "duplicate preset '{name}'");
            // Axis values are comma-separated and key=value formatted, so
            // preset names must stay free of both.
            assert!(!name.contains(',') && !name.contains('='));
            names.push(*name);
        }
        assert!(names.len() >= 8, "want ~8 presets, have {}", names.len());
    }

    #[test]
    fn resolve_rejects_unknowns_listing_presets() {
        let err = ChaosTimeline::resolve("not-a-preset").unwrap_err();
        assert!(err.contains("flap"), "{err}");
        assert!(err.contains("neither a chaos preset"), "{err}");
    }

    #[test]
    fn canonical_is_stable_and_spelling_independent() {
        let a = ChaosTimeline::parse("degrade@5ms:50%:1ms").unwrap();
        let b = ChaosTimeline::parse("degrade@5000us:0.5+1000000ns").unwrap();
        assert_eq!(a.canonical(), b.canonical());
        assert_ne!(
            a.canonical(),
            ChaosTimeline::parse("degrade@5ms:51%:1ms")
                .unwrap()
                .canonical()
        );
    }

    #[test]
    fn timeline_end_covers_all_windows() {
        let t = ChaosTimeline::parse("flap@2ms+500us;degrade@5ms:50%:1ms").unwrap();
        assert_eq!(t.end(), Nanos::from_millis(6));
    }
}
