//! Compiling a [`ChaosTimeline`] into an injection schedule with pinned
//! per-event RNG streams.

use hostcc_sim::Nanos;

use crate::timeline::{ChaosEvent, ChaosKind, ChaosTimeline};

/// Derive the RNG seed of one chaos event stream from the run's scenario
/// seed and the event's canonical key.
///
/// This is byte-for-byte the pinned FNV-1a/SplitMix64 scheme the sweep
/// grid uses for per-cell seeds (`hostcc-experiments::grid::
/// derive_cell_seed`) — duplicated here because the dependency points the
/// other way. The experiments crate carries a cross-crate consistency test
/// pinning the two implementations to each other. The properties that
/// matter:
///
/// * the seed is a pure function of `(base_seed, key)` — no global state,
///   so serial and parallel sweep execution trivially agree;
/// * every event gets an independent, well-mixed stream, keyed by the
///   event's *content and position*, not by injection interleaving.
pub fn derive_event_seed(base_seed: u64, key: &str) -> u64 {
    if key.is_empty() {
        return base_seed;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = base_seed ^ h;
    for _ in 0..2 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// Whether an injection opens or closes a fault window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosPhase {
    /// The fault turns on.
    Start,
    /// The fault turns off (state is restored).
    End,
}

/// One scheduled state change: at `at`, event `event` moves through
/// `phase`. Pause storms expand into several start/end pairs of the same
/// event (one per pulse); every other kind contributes exactly one pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Absolute simulated firing time.
    pub at: Nanos,
    /// Index into [`ChaosDriver::timeline`]`.events`.
    pub event: usize,
    /// Open or close.
    pub phase: ChaosPhase,
}

/// A compiled timeline: the sorted injection schedule plus the per-event
/// seeds. The simulation schedules one queue event per injection at
/// construction time and calls back into its own fault hooks when each
/// fires; this type owns no simulator state.
#[derive(Debug, Clone)]
pub struct ChaosDriver {
    timeline: ChaosTimeline,
    injections: Vec<Injection>,
    seeds: Vec<u64>,
}

impl ChaosDriver {
    /// Compile `timeline` for a run whose scenario RNG seed is
    /// `scenario_seed`.
    pub fn new(timeline: ChaosTimeline, scenario_seed: u64) -> Self {
        let mut injections = Vec::new();
        let mut seeds = Vec::with_capacity(timeline.events.len());
        for (i, ev) in timeline.events.iter().enumerate() {
            seeds.push(derive_event_seed(
                scenario_seed,
                &format!("chaos[{i}]:{}", ev.canonical()),
            ));
            match ev.kind {
                ChaosKind::PauseStorm => {
                    // `magnitude` pulses, each down for half its slot.
                    let pulses = ev.magnitude.round() as u64;
                    let slot = Nanos::from_nanos(ev.duration.as_nanos() / pulses.max(1));
                    let down = Nanos::from_nanos(slot.as_nanos() / 2);
                    for p in 0..pulses {
                        let t0 = ev.start + Nanos::from_nanos(slot.as_nanos() * p);
                        injections.push(Injection {
                            at: t0,
                            event: i,
                            phase: ChaosPhase::Start,
                        });
                        injections.push(Injection {
                            at: t0 + down.max(Nanos::from_nanos(1)),
                            event: i,
                            phase: ChaosPhase::End,
                        });
                    }
                }
                _ => {
                    injections.push(Injection {
                        at: ev.start,
                        event: i,
                        phase: ChaosPhase::Start,
                    });
                    injections.push(Injection {
                        at: ev.end(),
                        event: i,
                        phase: ChaosPhase::End,
                    });
                }
            }
        }
        // Stable order: by time, then event index, then End before Start
        // (a window closing at t yields to one opening at t only after it
        // has closed). The sort is total, so the schedule is deterministic.
        injections.sort_by_key(|inj| {
            (
                inj.at,
                inj.event,
                match inj.phase {
                    ChaosPhase::End => 0u8,
                    ChaosPhase::Start => 1u8,
                },
            )
        });
        ChaosDriver {
            timeline,
            injections,
            seeds,
        }
    }

    /// The timeline this driver was compiled from.
    pub fn timeline(&self) -> &ChaosTimeline {
        &self.timeline
    }

    /// The sorted injection schedule.
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }

    /// The event an injection refers to.
    pub fn event(&self, index: usize) -> &ChaosEvent {
        &self.timeline.events[index]
    }

    /// The derived RNG seed of one event's stream.
    pub fn event_seed(&self, index: usize) -> u64 {
        self.seeds[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_content_keyed_and_distinct() {
        let t = ChaosTimeline::parse("flap@2ms+500us;burstloss@3ms:0.3").unwrap();
        let d1 = ChaosDriver::new(t.clone(), 1);
        let d2 = ChaosDriver::new(t, 1);
        assert_eq!(d1.event_seed(0), d2.event_seed(0), "pure function");
        assert_ne!(d1.event_seed(0), d1.event_seed(1));
        // Identical events at different positions still get distinct
        // streams (position is part of the key).
        let twin = ChaosTimeline::parse("flap@2ms+500us;flap@2ms+500us").unwrap();
        let d = ChaosDriver::new(twin, 1);
        assert_ne!(d.event_seed(0), d.event_seed(1));
    }

    #[test]
    fn seeds_follow_the_base_seed() {
        let t = ChaosTimeline::parse("burstloss@3ms:0.3").unwrap();
        assert_ne!(
            ChaosDriver::new(t.clone(), 1).event_seed(0),
            ChaosDriver::new(t, 2).event_seed(0)
        );
    }

    #[test]
    fn empty_key_passes_base_through() {
        assert_eq!(derive_event_seed(42, ""), 42);
    }

    #[test]
    fn simple_events_expand_to_one_pair() {
        let t = ChaosTimeline::parse("flap@2ms+500us").unwrap();
        let d = ChaosDriver::new(t, 1);
        let inj = d.injections();
        assert_eq!(inj.len(), 2);
        assert_eq!(inj[0].at, Nanos::from_millis(2));
        assert_eq!(inj[0].phase, ChaosPhase::Start);
        assert_eq!(inj[1].at, Nanos::from_micros(2500));
        assert_eq!(inj[1].phase, ChaosPhase::End);
    }

    #[test]
    fn pause_storm_expands_into_balanced_pulses() {
        let t = ChaosTimeline::parse("pause@1ms+600us:3").unwrap();
        let d = ChaosDriver::new(t, 1);
        let inj = d.injections();
        assert_eq!(inj.len(), 6);
        let starts = inj.iter().filter(|i| i.phase == ChaosPhase::Start).count();
        assert_eq!(starts, 3);
        // Pulses: down at 1000, 1200, 1400 us; each for 100 us.
        assert_eq!(inj[0].at, Nanos::from_millis(1));
        assert_eq!(inj[1].at, Nanos::from_micros(1100));
        assert_eq!(inj[2].at, Nanos::from_micros(1200));
        // Every Start is matched by an End and they alternate in time.
        for w in inj.windows(2) {
            assert!(w[0].at <= w[1].at);
            assert_ne!(w[0].phase, w[1].phase);
        }
    }

    #[test]
    fn schedule_is_sorted_and_deterministic() {
        let t =
            ChaosTimeline::parse("flap@2ms+1ms;echooutage@2ms+1ms;burstloss@2500us:0.2").unwrap();
        let a = ChaosDriver::new(t.clone(), 9);
        let b = ChaosDriver::new(t, 9);
        assert_eq!(a.injections(), b.injections());
        for w in a.injections().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }
}
