//! hostcc-chaos: declarative, time-scheduled fault orchestration.
//!
//! The paper's core claim is that hostCC keeps throughput and tail latency
//! stable *while the host is being disturbed*. This crate turns "disturbed"
//! into a first-class, reproducible object: a [`ChaosTimeline`] of typed
//! [`ChaosEvent`]s (link flaps, rate brownouts, PFC-style pause storms,
//! loss bursts, MBA actuation stalls, MSR read jitter, DDIO flips, MApp
//! aggressor surges, ECN echo outages), parsed from a compact spec string
//! (`flap@2ms+500us;degrade@5ms:50%:1ms`) or chosen from named presets.
//!
//! A [`ChaosDriver`] compiles a timeline into a sorted injection schedule
//! the simulation replays through its event queue, with per-event RNG
//! streams derived via the same pinned FNV-1a/SplitMix64 scheme the sweep
//! grid uses for per-cell seeds — so every chaos run is bit-identical at
//! any sweep worker count.
//!
//! The [`ResilienceReport`] types score a *differential* run: the same
//! timeline replayed against paired hostcc-off/hostcc-on cells, with
//! per-event throughput-dip depth, time-to-recover, tail-latency
//! inflation, and invariant-watchdog accounting (violations inside windows
//! where a fault legitimately bends a conservation law are annotated, any
//! other violation is a defect).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod report;
mod timeline;

pub use driver::{derive_event_seed, ChaosDriver, ChaosPhase, Injection};
pub use report::{ArmReport, EventScore, ResilienceReport};
pub use timeline::{ChaosEvent, ChaosKind, ChaosTimeline};
