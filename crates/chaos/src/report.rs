//! Differential resilience scoring: how much a run dipped under each
//! fault, how fast it recovered, and whether the invariant watchdog stayed
//! clean — for paired hostcc-off/hostcc-on arms under one identical
//! timeline.

use hostcc_sim::Nanos;

use crate::timeline::ChaosKind;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a(h: &mut u64, v: u64) {
    for byte in v.to_le_bytes() {
        *h = (*h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
}

fn fnv1a_str(h: &mut u64, s: &str) {
    for b in s.bytes() {
        *h = (*h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    fnv1a(h, 0x1f); // delimiter
}

/// JSON-safe float rendering (non-finite values become `null`).
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// How one arm fared across one fault window.
#[derive(Debug, Clone, PartialEq)]
pub struct EventScore {
    /// Index of the event in the timeline.
    pub index: usize,
    /// The fault kind.
    pub kind: ChaosKind,
    /// Window open time.
    pub start: Nanos,
    /// Window close time.
    pub end: Nanos,
    /// Throughput-dip depth: `1 − min(bw in window) / pre-fault mean`,
    /// clamped to `[0, 1]`. 0 = no visible dip.
    pub dip_frac: f64,
    /// Time after the window closes until delivered bandwidth regains 90%
    /// of the pre-fault mean (censored at the end of measurement when it
    /// never does — see [`EventScore::recovered`]).
    pub recover_ns: u64,
    /// Whether the 90% recovery threshold was reached before measurement
    /// ended.
    pub recovered: bool,
    /// Watchdog violations recorded while the window was open.
    pub violations: u64,
    /// Whether in-window violations are annotated as legitimate for this
    /// kind (see [`ChaosKind::may_violate`]). Always `false` when
    /// [`EventScore::violations`] is zero.
    pub annotated: bool,
}

/// One arm (hostcc on or off) of a differential chaos run.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmReport {
    /// Whether hostCC was active in this arm.
    pub hostcc: bool,
    /// Greedy-flow goodput over the whole measurement window.
    pub goodput_gbps: f64,
    /// End-to-end packet drop rate over the measurement window.
    pub drop_rate_pct: f64,
    /// RPC p99 latency, when the scenario carries the RPC workload.
    pub p99_rpc_ns: Option<u64>,
    /// Mean delivered bandwidth before the first fault window (the
    /// baseline the dips are measured against).
    pub pre_mean_gbps: f64,
    /// Jain's fairness index over the greedy flows' delivered bytes in the
    /// measurement window (1.0 = perfectly fair), from the flow ledger —
    /// chaos windows that starve a subset of flows show up here even when
    /// aggregate goodput recovers.
    pub fairness_jain: f64,
    /// Per-event scores, in timeline order.
    pub events: Vec<EventScore>,
    /// Total watchdog checks across the run.
    pub watchdog_checks: u64,
    /// Total watchdog violations across the run.
    pub violations: u64,
    /// Violations falling inside windows whose fault kind legitimately
    /// bends the violated law (annotated in the per-event scores).
    pub annotated_violations: u64,
    /// The arm's telemetry-summary fingerprint (bit-identity witness).
    pub telemetry_fingerprint: u64,
}

impl ArmReport {
    /// Violations *not* covered by an annotated fault window — these are
    /// simulator defects, never acceptable.
    pub fn unannotated_violations(&self) -> u64 {
        self.violations.saturating_sub(self.annotated_violations)
    }

    fn fold(&self, h: &mut u64) {
        fnv1a(h, u64::from(self.hostcc));
        fnv1a(h, self.goodput_gbps.to_bits());
        fnv1a(h, self.drop_rate_pct.to_bits());
        fnv1a(h, self.p99_rpc_ns.unwrap_or(u64::MAX));
        fnv1a(h, self.pre_mean_gbps.to_bits());
        fnv1a(h, self.fairness_jain.to_bits());
        fnv1a(h, self.watchdog_checks);
        fnv1a(h, self.violations);
        fnv1a(h, self.annotated_violations);
        fnv1a(h, self.telemetry_fingerprint);
        for e in &self.events {
            fnv1a(h, e.index as u64);
            fnv1a_str(h, e.kind.name());
            fnv1a(h, e.start.as_nanos());
            fnv1a(h, e.end.as_nanos());
            fnv1a(h, e.dip_frac.to_bits());
            fnv1a(h, e.recover_ns);
            fnv1a(h, u64::from(e.recovered));
            fnv1a(h, e.violations);
            fnv1a(h, u64::from(e.annotated));
        }
    }

    fn to_json(&self) -> String {
        let events: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                format!(
                    "{{\"index\":{},\"kind\":\"{}\",\"start_ns\":{},\"end_ns\":{},\
                     \"dip_frac\":{},\"recover_ns\":{},\"recovered\":{},\
                     \"violations\":{},\"annotated\":{}}}",
                    e.index,
                    e.kind.name(),
                    e.start.as_nanos(),
                    e.end.as_nanos(),
                    jf(e.dip_frac),
                    e.recover_ns,
                    e.recovered,
                    e.violations,
                    e.annotated,
                )
            })
            .collect();
        format!(
            "{{\"hostcc\":{},\"goodput_gbps\":{},\"drop_rate_pct\":{},\"p99_rpc_ns\":{},\
             \"pre_mean_gbps\":{},\"fairness_jain\":{},\"watchdog_checks\":{},\"violations\":{},\
             \"annotated_violations\":{},\"telemetry_fingerprint\":\"{:#018x}\",\
             \"events\":[{}]}}",
            self.hostcc,
            jf(self.goodput_gbps),
            jf(self.drop_rate_pct),
            self.p99_rpc_ns
                .map_or("null".to_string(), |v| v.to_string()),
            jf(self.pre_mean_gbps),
            jf(self.fairness_jain),
            self.watchdog_checks,
            self.violations,
            self.annotated_violations,
            self.telemetry_fingerprint,
            events.join(","),
        )
    }
}

/// The full differential report: one timeline, two arms.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// Preset name (or `"custom"`).
    pub preset: String,
    /// Canonical timeline spec.
    pub spec: String,
    /// The hostcc-off arm.
    pub off: ArmReport,
    /// The hostcc-on arm.
    pub on: ArmReport,
}

impl ResilienceReport {
    /// A deterministic fingerprint over every scored field of both arms —
    /// two runs of the same differential experiment (at any worker count)
    /// must produce identical fingerprints.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        fnv1a_str(&mut h, &self.preset);
        fnv1a_str(&mut h, &self.spec);
        self.off.fold(&mut h);
        self.on.fold(&mut h);
        h
    }

    /// `Err` when either arm saw a watchdog violation outside an annotated
    /// fault window (a conservation law broke for a reason no fault
    /// legitimately explains).
    pub fn verdict(&self) -> Result<(), String> {
        for arm in [&self.off, &self.on] {
            let n = arm.unannotated_violations();
            if n > 0 {
                return Err(format!(
                    "hostcc-{} arm: {n} watchdog violation(s) outside annotated fault windows",
                    if arm.hostcc { "on" } else { "off" },
                ));
            }
        }
        Ok(())
    }

    /// Deterministic JSON encoding (no timestamps, no wall-clock — safe to
    /// byte-compare across worker counts and machines).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"preset\":\"{}\",\"spec\":\"{}\",\"fingerprint\":\"{:#018x}\",\
             \"off\":{},\"on\":{}}}\n",
            self.preset,
            self.spec,
            self.fingerprint(),
            self.off.to_json(),
            self.on.to_json(),
        )
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== chaos '{}' ==\nspec: {}\n",
            self.preset, self.spec
        ));
        for arm in [&self.off, &self.on] {
            out.push_str(&format!(
                "hostcc {}: goodput {:.1} Gbps (pre-fault {:.1}), drops {:.3} %{}, \
                 fairness {:.3}, watchdog {}/{} violation(s) ({} annotated)\n",
                if arm.hostcc { "on " } else { "off" },
                arm.goodput_gbps,
                arm.pre_mean_gbps,
                arm.drop_rate_pct,
                arm.p99_rpc_ns.map_or(String::new(), |v| format!(
                    ", rpc p99 {:.1} us",
                    v as f64 / 1e3
                )),
                arm.fairness_jain,
                arm.violations,
                arm.watchdog_checks,
                arm.annotated_violations,
            ));
            for e in &arm.events {
                out.push_str(&format!(
                    "  [{}] {:<10} {:>8.3}..{:<8.3} ms  dip {:>5.1} %  recover {}{}\n",
                    e.index,
                    e.kind.name(),
                    e.start.as_nanos() as f64 / 1e6,
                    e.end.as_nanos() as f64 / 1e6,
                    e.dip_frac * 100.0,
                    if e.recovered {
                        format!("{:.1} us", e.recover_ns as f64 / 1e3)
                    } else {
                        "never (censored)".to_string()
                    },
                    if e.violations > 0 {
                        format!(
                            "  [{} violation(s){}]",
                            e.violations,
                            if e.annotated { ", annotated" } else { "" }
                        )
                    } else {
                        String::new()
                    },
                ));
            }
        }
        let d_off = self
            .off
            .events
            .iter()
            .map(|e| e.dip_frac)
            .fold(0.0, f64::max);
        let d_on = self
            .on
            .events
            .iter()
            .map(|e| e.dip_frac)
            .fold(0.0, f64::max);
        out.push_str(&format!(
            "worst dip: off {:.1} % vs on {:.1} %; fingerprint {:#018x}\n",
            d_off * 100.0,
            d_on * 100.0,
            self.fingerprint(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arm(hostcc: bool, violations: u64, annotated: u64) -> ArmReport {
        ArmReport {
            hostcc,
            goodput_gbps: 80.0,
            drop_rate_pct: 0.1,
            p99_rpc_ns: Some(250_000),
            pre_mean_gbps: 90.0,
            fairness_jain: 0.97,
            events: vec![EventScore {
                index: 0,
                kind: ChaosKind::LinkFlap,
                start: Nanos::from_millis(4),
                end: Nanos::from_micros(4500),
                dip_frac: 0.8,
                recover_ns: 120_000,
                recovered: true,
                violations,
                annotated: annotated > 0,
            }],
            watchdog_checks: 1000,
            violations,
            annotated_violations: annotated,
            telemetry_fingerprint: 0xdead,
        }
    }

    fn report() -> ResilienceReport {
        ResilienceReport {
            preset: "flap".to_string(),
            spec: "flap@4ms+500us".to_string(),
            off: arm(false, 0, 0),
            on: arm(true, 0, 0),
        }
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        let r = report();
        assert_eq!(r.fingerprint(), report().fingerprint());
        let mut r2 = report();
        r2.on.goodput_gbps += 1e-9;
        assert_ne!(r.fingerprint(), r2.fingerprint());
    }

    #[test]
    fn verdict_accepts_clean_and_annotated_rejects_unannotated() {
        assert!(report().verdict().is_ok());
        let mut annotated = report();
        annotated.on = arm(true, 3, 3);
        assert!(annotated.verdict().is_ok());
        let mut dirty = report();
        dirty.off = arm(false, 2, 1);
        let err = dirty.verdict().unwrap_err();
        assert!(err.contains("hostcc-off"), "{err}");
        assert!(err.contains("outside annotated"), "{err}");
    }

    #[test]
    fn json_is_deterministic_and_wall_clock_free() {
        let a = report().to_json();
        let b = report().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"preset\":\"flap\""));
        assert!(a.contains("\"recovered\":true"));
        assert!(a.contains("\"fairness_jain\":0.97"), "{a}");
        assert!(
            !a.contains("wall"),
            "no wall-clock in the byte-compared export"
        );
    }

    #[test]
    fn render_mentions_both_arms_and_the_dip() {
        let s = report().render();
        assert!(s.contains("hostcc off"), "{s}");
        assert!(s.contains("hostcc on"), "{s}");
        assert!(s.contains("dip"), "{s}");
    }
}
