//! Property-based tests for the metrics crate.

use hostcc_metrics::{Cdf, Counter, Histogram, Meter, TimeSeries};
use hostcc_sim::Nanos;
use proptest::prelude::*;

proptest! {
    /// Histogram quantiles are within 1/32 relative error of the exact
    /// (sorted-sample) quantiles, for any input distribution.
    #[test]
    fn histogram_matches_exact_quantiles(
        mut samples in prop::collection::vec(1u64..1_000_000_000, 10..500),
        q in 0.01f64..1.0,
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(Nanos::from_nanos(s));
        }
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
        let exact = samples[rank - 1] as f64;
        let got = h.quantile(q).unwrap().as_nanos() as f64;
        // Bucketed answer is an upper bound of the bucket of the exact one.
        prop_assert!(got + 1e-9 >= exact * (1.0 - 1.0/32.0), "got={got} exact={exact}");
        prop_assert!(got <= exact * (1.0 + 1.0/32.0) + 1.0, "got={got} exact={exact}");
    }

    /// Histogram count/min/max/mean agree with the raw samples.
    #[test]
    fn histogram_summary_stats_exact(samples in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(Nanos::from_nanos(s));
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min().unwrap().as_nanos(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max().unwrap().as_nanos(), *samples.iter().max().unwrap());
        let mean = samples.iter().sum::<u64>() / samples.len() as u64;
        prop_assert_eq!(h.mean().unwrap().as_nanos(), mean);
    }

    /// Merging two histograms is equivalent to recording all samples in one.
    #[test]
    fn histogram_merge_equivalence(
        xs in prop::collection::vec(1u64..1_000_000, 1..100),
        ys in prop::collection::vec(1u64..1_000_000, 1..100),
    ) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for &x in &xs { a.record(Nanos::from_nanos(x)); all.record(Nanos::from_nanos(x)); }
        for &y in &ys { b.record(Nanos::from_nanos(y)); all.record(Nanos::from_nanos(y)); }
        a.merge(&b);
        prop_assert_eq!(a.count(), all.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    /// CDF quantile at fraction f then `at` that value covers at least f.
    #[test]
    fn cdf_quantile_at_consistency(
        samples in prop::collection::vec(0u64..1_000_000, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let mut c = Cdf::new();
        for &s in &samples {
            c.record(Nanos::from_nanos(s));
        }
        let v = c.quantile(q).unwrap();
        prop_assert!(c.at(v) + 1e-12 >= q);
    }

    /// Meter rate times the window duration returns the accumulated bytes.
    #[test]
    fn meter_rate_inverts(bytes in 1u64..u32::MAX as u64, window_ns in 1u64..1_000_000_000) {
        let mut m = Meter::new();
        m.add(bytes);
        let r = m.rate_at(Nanos::from_nanos(window_ns));
        let recovered = r.bytes_in(Nanos::from_nanos(window_ns));
        prop_assert!((recovered - bytes as f64).abs() < 1.0);
    }

    /// Counter ratio is always in [0, 1] when numerator ≤ denominator.
    #[test]
    fn counter_ratio_bounds(n in 0u64..1000, extra in 0u64..1000) {
        let mut num = Counter::new();
        let mut den = Counter::new();
        num.add(n);
        den.add(n + extra);
        let r = num.ratio_of(&den);
        prop_assert!((0.0..=1.0).contains(&r) || (n == 0 && extra == 0 && r == 0.0));
    }

    /// Downsampling never invents values outside the original hull.
    #[test]
    fn timeseries_downsample_in_hull(
        vals in prop::collection::vec(-1e6f64..1e6, 2..500),
        n in 1usize..50,
    ) {
        let mut s = TimeSeries::new("x");
        for (i, &v) in vals.iter().enumerate() {
            s.push(Nanos::from_nanos(i as u64), v);
        }
        let d = s.downsample(n);
        prop_assert!(d.len() <= n.max(1));
        prop_assert!(d.min().unwrap() >= s.min().unwrap() - 1e-9);
        prop_assert!(d.max().unwrap() <= s.max().unwrap() + 1e-9);
    }
}

proptest! {
    /// CDF merge is commutative: every quantile of a ⊕ b equals the same
    /// quantile of b ⊕ a (the sweep joins per-worker CDFs in arbitrary
    /// completion order).
    #[test]
    fn cdf_merge_is_commutative(
        xs in prop::collection::vec(0u64..1_000_000, 0..100),
        ys in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut a = Cdf::new();
        let mut b = Cdf::new();
        for &x in &xs { a.record(Nanos::from_nanos(x)); }
        for &y in &ys { b.record(Nanos::from_nanos(y)); }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.count(), ba.count());
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0] {
            prop_assert_eq!(ab.quantile(q), ba.quantile(q));
        }
    }

    /// The empty CDF is a two-sided identity for merge.
    #[test]
    fn cdf_merge_identity(xs in prop::collection::vec(0u64..1_000_000, 0..100)) {
        let mut a = Cdf::new();
        for &x in &xs { a.record(Nanos::from_nanos(x)); }
        let mut left = Cdf::new();
        left.merge(&a);
        let mut right = a.clone();
        right.merge(&Cdf::new());
        prop_assert_eq!(left.count(), a.count());
        prop_assert_eq!(right.count(), a.count());
        for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
            prop_assert_eq!(left.quantile(q), a.quantile(q));
            prop_assert_eq!(right.quantile(q), a.quantile(q));
        }
    }
}
