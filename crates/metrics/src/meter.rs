//! Byte/throughput accounting over a measurement window.

use hostcc_sim::{Nanos, Rate};

/// Accumulates bytes and reports average throughput over explicit windows.
///
/// Experiments run a warm-up phase before measuring; [`Meter::reset_at`]
/// marks the start of the measurement window so warm-up traffic is excluded
/// from the reported averages (the paper's steady-state numbers).
#[derive(Debug, Clone, Default)]
pub struct Meter {
    bytes: u64,
    window_start: Nanos,
    /// Lifetime total, unaffected by resets.
    lifetime_bytes: u64,
}

impl Meter {
    /// A meter with its window starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Account `bytes` of traffic.
    #[inline]
    pub fn add(&mut self, bytes: u64) {
        self.bytes += bytes;
        self.lifetime_bytes += bytes;
    }

    /// Bytes accumulated in the current window.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Bytes accumulated since construction (across resets).
    #[inline]
    pub fn lifetime_bytes(&self) -> u64 {
        self.lifetime_bytes
    }

    /// Fold another meter's byte totals into this one (the window start is
    /// kept — merging is for aggregating parallel sub-meters that share a
    /// measurement window, e.g. per-worker accounting in a sweep).
    pub fn merge(&mut self, other: &Meter) {
        self.bytes += other.bytes;
        self.lifetime_bytes += other.lifetime_bytes;
    }

    /// Start a fresh measurement window at `now`, discarding window bytes.
    pub fn reset_at(&mut self, now: Nanos) {
        self.bytes = 0;
        self.window_start = now;
    }

    /// Average throughput from the window start until `now`.
    ///
    /// Returns [`Rate::ZERO`] for an empty or zero-length window.
    pub fn rate_at(&self, now: Nanos) -> Rate {
        let dt = now.saturating_sub(self.window_start);
        if dt == Nanos::ZERO {
            return Rate::ZERO;
        }
        Rate::bytes_per_ns(self.bytes as f64 / dt.as_nanos() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_over_window() {
        let mut m = Meter::new();
        m.add(12_500); // 12.5 KB in 1 us = 100 Gbps
        let r = m.rate_at(Nanos::from_micros(1));
        assert!((r.as_gbps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_window_is_zero_rate() {
        let mut m = Meter::new();
        m.add(1000);
        assert_eq!(m.rate_at(Nanos::ZERO), Rate::ZERO);
    }

    #[test]
    fn reset_excludes_warmup() {
        let mut m = Meter::new();
        m.add(1_000_000); // warm-up traffic
        m.reset_at(Nanos::from_millis(1));
        m.add(12_500_000); // 12.5 MB over 1 ms = 100 Gbps
        let r = m.rate_at(Nanos::from_millis(2));
        assert!((r.as_gbps() - 100.0).abs() < 1e-9);
        assert_eq!(m.lifetime_bytes(), 13_500_000);
    }

    #[test]
    fn merge_adds_bytes() {
        let mut a = Meter::new();
        a.add(6_250);
        let mut b = Meter::new();
        b.add(6_250);
        a.merge(&b);
        // 12.5 KB over 1 us = 100 Gbps, same as a single meter would see.
        assert!((a.rate_at(Nanos::from_micros(1)).as_gbps() - 100.0).abs() < 1e-9);
        assert_eq!(a.lifetime_bytes(), 12_500);
    }

    #[test]
    fn accumulates() {
        let mut m = Meter::new();
        m.add(3);
        m.add(4);
        assert_eq!(m.bytes(), 7);
    }
}
